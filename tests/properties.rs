//! Property-based tests of the method's structural invariants, on randomized
//! circuits and randomized contribution sets.

use proptest::prelude::*;
use tranvar::circuit::{Circuit, NodeId, Waveform};
use tranvar::core::{Contribution, VariationReport};
use tranvar::engine::dc::{dc_operating_point, DcOptions};
use tranvar::pss::PssOptions;
use tranvar::prelude::*;

fn report_from(sens: Vec<f64>, sigmas: Vec<f64>) -> VariationReport {
    VariationReport {
        metric: "p".into(),
        nominal: 0.0,
        contributions: sens
            .into_iter()
            .zip(sigmas)
            .enumerate()
            .map(|(i, (s, sg))| Contribution {
                label: format!("p{i}"),
                param_index: i,
                sensitivity: s,
                sigma: sg,
            })
            .collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// |rho| <= 1 for any pair of reports over the same parameter set.
    #[test]
    fn correlation_is_bounded(
        sa in prop::collection::vec(-1e3f64..1e3, 1..12),
        sb_seed in prop::collection::vec(-1e3f64..1e3, 12),
        sg in prop::collection::vec(1e-6f64..10.0, 12),
    ) {
        let n = sa.len();
        let a = report_from(sa, sg[..n].to_vec());
        let b = report_from(sb_seed[..n].to_vec(), sg[..n].to_vec());
        let rho = a.correlation(&b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho), "rho = {rho}");
        // Cauchy-Schwarz on the covariance itself.
        prop_assert!(a.covariance(&b).abs() <= a.sigma() * b.sigma() + 1e-12);
    }

    /// Variance of a difference is non-negative and consistent with eq. 13.
    #[test]
    fn difference_variance_nonnegative(
        sa in prop::collection::vec(-10f64..10.0, 1..10),
        sb_seed in prop::collection::vec(-10f64..10.0, 10),
        sg in prop::collection::vec(0.01f64..2.0, 10),
    ) {
        let n = sa.len();
        let a = report_from(sa, sg[..n].to_vec());
        let b = report_from(sb_seed[..n].to_vec(), sg[..n].to_vec());
        let d = tranvar::core::difference_sigma(&a, &b);
        prop_assert!(d.is_finite() && d >= 0.0);
        let direct = report_from(
            a.contributions.iter().zip(b.contributions.iter())
                .map(|(x, y)| y.sensitivity - x.sensitivity).collect(),
            sg[..n].to_vec(),
        );
        prop_assert!((d - direct.sigma()).abs() < 1e-9 * direct.sigma().max(1e-12));
    }

    /// Scaling every sigma by k scales the metric sigma by k (linearity of
    /// the perturbation model, paper eq. 1).
    #[test]
    fn sigma_scales_linearly(
        sens in prop::collection::vec(-10f64..10.0, 1..10),
        sg in prop::collection::vec(0.01f64..2.0, 10),
        k in 0.1f64..10.0,
    ) {
        let n = sens.len();
        let a = report_from(sens.clone(), sg[..n].to_vec());
        let b = report_from(sens, sg[..n].iter().map(|s| s * k).collect());
        prop_assert!((b.sigma() - k * a.sigma()).abs() < 1e-9 * b.sigma().max(1e-12));
    }

    /// Contribution variances always sum to the total variance.
    #[test]
    fn contributions_sum_to_total(
        sens in prop::collection::vec(-10f64..10.0, 1..10),
        sg in prop::collection::vec(0.01f64..2.0, 10),
    ) {
        let n = sens.len();
        let rep = report_from(sens, sg[..n].to_vec());
        let sum: f64 = rep.contributions.iter().map(|c| c.variance()).sum();
        prop_assert!((sum - rep.variance()).abs() < 1e-12 * rep.variance().max(1e-12));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On random resistor ladders, the LPTV DC-average flow equals DC-match
    /// analysis, and variance responds quadratically to a global mismatch
    /// scale.
    #[test]
    fn random_ladder_lptv_equals_dcmatch(
        rs in prop::collection::vec(500f64..5e3, 2..6),
        sigmas in prop::collection::vec(1f64..30.0, 6),
    ) {
        let n = rs.len();
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        ckt.add_vsource("V1", top, NodeId::GROUND, Waveform::Dc(1.5));
        let mut prev = top;
        let mut mid = NodeId::GROUND;
        for (i, r) in rs.iter().enumerate() {
            let next = if i == n - 1 {
                NodeId::GROUND
            } else {
                ckt.node(&format!("n{i}"))
            };
            let id = ckt.add_resistor(&format!("R{i}"), prev, next, *r);
            ckt.annotate_resistor_mismatch(id, sigmas[i]);
            if i == 0 {
                mid = next;
            }
            prev = next;
        }
        prop_assume!(n >= 2 && !mid.is_ground());
        ckt.add_capacitor("CL", mid, NodeId::GROUND, 1e-12);

        let mut opts = PssOptions::default();
        opts.n_steps = 16;
        let res = analyze(
            &ckt,
            &PssConfig::Driven { period: 1e-6, opts },
            &[MetricSpec::new("v", Metric::DcAverage { node: mid })],
        ).unwrap();
        let dcm = dc_match(&ckt, mid).unwrap();
        prop_assert!(
            (res.reports[0].sigma() - dcm.sigma()).abs() <= 1e-6 * dcm.sigma().max(1e-15),
            "lptv {} vs dcmatch {}", res.reports[0].sigma(), dcm.sigma()
        );
        // Sanity: the DC op exists and nominal matches it.
        let x = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        prop_assert!((res.reports[0].nominal - ckt.voltage(&x, mid)).abs() < 1e-7);
    }
}
