//! Property-based tests of the method's structural invariants, on randomized
//! circuits and randomized contribution sets.
//!
//! The workspace has no external property-testing dependency, so randomized
//! cases are generated with the seeded [`Rng64`] generator: each property is
//! checked over many deterministic pseudo-random draws, and failures report
//! the case index so the exact draw can be replayed.

use tranvar::circuit::{Circuit, NodeId, Waveform};
use tranvar::core::{Contribution, VariationReport};
use tranvar::engine::dc::{dc_operating_point, DcOptions};
use tranvar::num::rng::Rng64;
use tranvar::prelude::*;
use tranvar::pss::PssOptions;

fn report_from(sens: Vec<f64>, sigmas: Vec<f64>) -> VariationReport {
    VariationReport {
        metric: "p".into(),
        nominal: 0.0,
        contributions: sens
            .into_iter()
            .zip(sigmas)
            .enumerate()
            .map(|(i, (s, sg))| Contribution {
                label: format!("p{i}"),
                param_index: i,
                sensitivity: s,
                sigma: sg,
            })
            .collect(),
    }
}

fn uniform_in(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.uniform()
}

fn vec_in(rng: &mut Rng64, lo: f64, hi: f64, n: usize) -> Vec<f64> {
    (0..n).map(|_| uniform_in(rng, lo, hi)).collect()
}

/// |rho| <= 1 for any pair of reports over the same parameter set.
#[test]
fn correlation_is_bounded() {
    let mut rng = Rng64::seed_from(0xC0FFEE);
    for case in 0..64 {
        let n = 1 + (rng.next_u64() % 11) as usize;
        let sa = vec_in(&mut rng, -1e3, 1e3, n);
        let sb = vec_in(&mut rng, -1e3, 1e3, n);
        let sg = vec_in(&mut rng, 1e-6, 10.0, n);
        let a = report_from(sa, sg.clone());
        let b = report_from(sb, sg);
        let rho = a.correlation(&b);
        assert!(
            (-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho),
            "case {case}: rho = {rho}"
        );
        // Cauchy-Schwarz on the covariance itself.
        assert!(
            a.covariance(&b).abs() <= a.sigma() * b.sigma() + 1e-12,
            "case {case}"
        );
    }
}

/// Variance of a difference is non-negative and consistent with eq. 13.
#[test]
fn difference_variance_nonnegative() {
    let mut rng = Rng64::seed_from(0xD1FF);
    for case in 0..64 {
        let n = 1 + (rng.next_u64() % 9) as usize;
        let sa = vec_in(&mut rng, -10.0, 10.0, n);
        let sb = vec_in(&mut rng, -10.0, 10.0, n);
        let sg = vec_in(&mut rng, 0.01, 2.0, n);
        let a = report_from(sa.clone(), sg.clone());
        let b = report_from(sb.clone(), sg.clone());
        let d = tranvar::core::difference_sigma(&a, &b);
        assert!(d.is_finite() && d >= 0.0, "case {case}: d = {d}");
        let direct = report_from(sa.iter().zip(sb.iter()).map(|(x, y)| y - x).collect(), sg);
        assert!(
            (d - direct.sigma()).abs() < 1e-9 * direct.sigma().max(1e-12),
            "case {case}: {d} vs {}",
            direct.sigma()
        );
    }
}

/// Scaling every sigma by k scales the metric sigma by k (linearity of the
/// perturbation model, paper eq. 1).
#[test]
fn sigma_scales_linearly() {
    let mut rng = Rng64::seed_from(0x5CA1E);
    for case in 0..64 {
        let n = 1 + (rng.next_u64() % 9) as usize;
        let sens = vec_in(&mut rng, -10.0, 10.0, n);
        let sg = vec_in(&mut rng, 0.01, 2.0, n);
        let k = uniform_in(&mut rng, 0.1, 10.0);
        let a = report_from(sens.clone(), sg.clone());
        let b = report_from(sens, sg.iter().map(|s| s * k).collect());
        assert!(
            (b.sigma() - k * a.sigma()).abs() < 1e-9 * b.sigma().max(1e-12),
            "case {case}"
        );
    }
}

/// Contribution variances always sum to the total variance.
#[test]
fn contributions_sum_to_total() {
    let mut rng = Rng64::seed_from(0x707A1);
    for case in 0..64 {
        let n = 1 + (rng.next_u64() % 9) as usize;
        let sens = vec_in(&mut rng, -10.0, 10.0, n);
        let sg = vec_in(&mut rng, 0.01, 2.0, n);
        let rep = report_from(sens, sg);
        let sum: f64 = rep.contributions.iter().map(|c| c.variance()).sum();
        assert!(
            (sum - rep.variance()).abs() < 1e-12 * rep.variance().max(1e-12),
            "case {case}"
        );
    }
}

/// On random resistor ladders, the LPTV DC-average flow equals DC-match
/// analysis, and the nominal matches the DC operating point.
#[test]
fn random_ladder_lptv_equals_dcmatch() {
    let mut rng = Rng64::seed_from(0x1ADDE);
    for case in 0..12 {
        let n = 2 + (rng.next_u64() % 4) as usize;
        let rs = vec_in(&mut rng, 500.0, 5e3, n);
        let sigmas = vec_in(&mut rng, 1.0, 30.0, n);
        let mut ckt = Circuit::new();
        let top = ckt.node("top");
        ckt.add_vsource("V1", top, NodeId::GROUND, Waveform::Dc(1.5));
        let mut prev = top;
        let mut mid = NodeId::GROUND;
        for (i, r) in rs.iter().enumerate() {
            let next = if i == n - 1 {
                NodeId::GROUND
            } else {
                ckt.node(&format!("n{i}"))
            };
            let id = ckt.add_resistor(&format!("R{i}"), prev, next, *r);
            ckt.annotate_resistor_mismatch(id, sigmas[i]);
            if i == 0 {
                mid = next;
            }
            prev = next;
        }
        assert!(!mid.is_ground());
        ckt.add_capacitor("CL", mid, NodeId::GROUND, 1e-12);

        let mut opts = PssOptions::default();
        opts.n_steps = 16;
        let res = analyze(
            &ckt,
            &PssConfig::Driven { period: 1e-6, opts },
            &[MetricSpec::new("v", Metric::DcAverage { node: mid })],
        )
        .unwrap();
        let dcm = dc_match(&ckt, mid).unwrap();
        assert!(
            (res.reports[0].sigma() - dcm.sigma()).abs() <= 1e-6 * dcm.sigma().max(1e-15),
            "case {case}: lptv {} vs dcmatch {}",
            res.reports[0].sigma(),
            dcm.sigma()
        );
        // Sanity: the DC op exists and nominal matches it.
        let x = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        assert!((res.reports[0].nominal - ckt.voltage(&x, mid)).abs() < 1e-7);
    }
}

/// Builds a randomized pulse-driven RC ladder with mismatch annotations on
/// every element — the workload for the thread-count invariance properties.
fn random_mismatched_ladder(rng: &mut Rng64, stages: usize) -> Circuit {
    let mut ckt = Circuit::new();
    let top = ckt.node("in");
    ckt.add_vsource(
        "V1",
        top,
        NodeId::GROUND,
        Waveform::Pulse(tranvar::circuit::Pulse {
            v0: 0.0,
            v1: uniform_in(rng, 0.5, 1.5),
            delay: 1e-7,
            rise: 1e-8,
            fall: 1e-8,
            width: 4e-7,
            period: 1e-6,
        }),
    );
    let mut prev = top;
    for i in 0..stages {
        let next = ckt.node(&format!("n{i}"));
        let r = uniform_in(rng, 0.5e3, 5e3);
        let c = uniform_in(rng, 0.2e-9, 2e-9);
        let rid = ckt.add_resistor(&format!("R{i}"), prev, next, r);
        let cid = ckt.add_capacitor(&format!("C{i}"), next, NodeId::GROUND, c);
        ckt.annotate_resistor_mismatch(rid, 0.01 * r);
        ckt.annotate_capacitor_mismatch(cid, 0.01 * c);
        prev = next;
    }
    ckt
}

/// Session-cached re-solves are bit-identical to fresh per-call solves
/// (dense backend): one warm `Session` run over a sequence of randomized
/// circuits reproduces the free-function results byte-for-byte, PSS states
/// and reports alike.
#[test]
fn session_cached_resolves_are_bit_identical_to_fresh() {
    use tranvar::engine::Session;
    let mut rng = Rng64::seed_from(0x5E55_1081);
    let mut session = Session::default();
    for case in 0..6 {
        let stages = 2 + (rng.next_u64() % 3) as usize;
        let ckt = random_mismatched_ladder(&mut rng, stages);
        let mid = ckt.find_node("n0").unwrap();
        let mut opts = PssOptions::default();
        opts.n_steps = 24;
        let config = PssConfig::Driven { period: 1e-6, opts };
        let metrics = [MetricSpec::new("v", Metric::DcAverage { node: mid })];
        let fresh = analyze(&ckt, &config, &metrics).unwrap();
        let cached = tranvar::core::analyze_in(&mut session, &ckt, &config, &metrics).unwrap();
        assert_eq!(fresh.pss.states.len(), cached.pss.states.len());
        for (a, b) in fresh.pss.states.iter().zip(cached.pss.states.iter()) {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "case {case}: pss state");
            }
        }
        for (ra, rb) in fresh.reports.iter().zip(cached.reports.iter()) {
            assert_eq!(ra.nominal.to_bits(), rb.nominal.to_bits(), "case {case}");
            for (ca, cb) in ra.contributions.iter().zip(rb.contributions.iter()) {
                assert_eq!(
                    ca.sensitivity.to_bits(),
                    cb.sensitivity.to_bits(),
                    "case {case}: {}",
                    ca.label
                );
            }
        }
    }
}

/// `Campaign::run` produces identical bytes per scenario for 1, 2 and N
/// worker threads, and identical bytes to the per-call reference loop; the
/// whole grid performs one symbolic analysis per sparsity pattern.
#[test]
fn campaign_is_bit_identical_for_any_thread_count() {
    use tranvar::circuit::CircuitOverride;
    use tranvar::core::run_scenarios_per_call;
    let mut rng = Rng64::seed_from(0xCA4A16);
    let ckt = random_mismatched_ladder(&mut rng, 3);
    let mid = ckt.find_node("n1").unwrap();
    let v1 = ckt.find_device("V1").unwrap();
    let r0 = ckt.find_device("R0").unwrap();
    let mut scenarios = Vec::new();
    for (vi, vs) in [0.9, 1.0, 1.1].iter().enumerate() {
        for (si, sf) in [1.0, 1.8, 2.4].iter().enumerate() {
            scenarios.push(tranvar::core::Scenario::new(
                format!("v{vi}s{si}"),
                vec![
                    CircuitOverride::SourceScale {
                        device: v1,
                        factor: *vs,
                    },
                    CircuitOverride::Resistance {
                        device: r0,
                        ohms: 1e3 * (1.0 + 0.1 * vi as f64),
                    },
                    CircuitOverride::SigmaScale { factor: *sf },
                ],
            ));
        }
    }
    assert!(scenarios.len() >= 8);
    let mut opts = PssOptions::default();
    opts.n_steps = 24;
    let config = PssConfig::Driven { period: 1e-6, opts };
    let metrics = vec![MetricSpec::new("v", Metric::DcAverage { node: mid })];
    let campaign = Campaign::new(config.clone(), metrics.clone());
    let runs: Vec<CampaignResult> = [1usize, 2, 8]
        .iter()
        .map(|&t| {
            campaign
                .clone()
                .with_threads(t)
                .run(&ckt, &scenarios)
                .unwrap()
        })
        .collect();
    let reference = run_scenarios_per_call(&ckt, &scenarios, &config, &metrics).unwrap();
    for run in &runs {
        // The σ sweep shares solves: 3 unique supply/sizing corners.
        assert_eq!(run.n_unique_solves, 3);
        assert_eq!(run.outcomes.len(), scenarios.len());
        for (oc, rf) in run.outcomes.iter().zip(reference.iter()) {
            let (a, b) = (oc.result.as_ref().unwrap(), rf.result.as_ref().unwrap());
            for (sa, sb) in a.pss.states.iter().zip(b.pss.states.iter()) {
                for (x, y) in sa.iter().zip(sb.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{}", oc.scenario);
                }
            }
            for (ra, rb) in a.reports.iter().zip(b.reports.iter()) {
                assert_eq!(ra.nominal.to_bits(), rb.nominal.to_bits());
                for (cx, cy) in ra.contributions.iter().zip(rb.contributions.iter()) {
                    assert_eq!(cx.sensitivity.to_bits(), cy.sensitivity.to_bits());
                    assert_eq!(cx.sigma.to_bits(), cy.sigma.to_bits());
                }
            }
        }
    }
    // One symbolic analysis per sparsity pattern per worker: the
    // single-worker run sees exactly two patterns (static DC, dynamic
    // integration) across all 9 scenarios / 3 solves.
    assert_eq!(runs[0].stats.pattern_builds, 2, "{:?}", runs[0].stats);
    assert_eq!(runs[0].stats.symbolic_analyses, 2, "{:?}", runs[0].stats);
}

/// The interleaved+threaded monodromy accumulation is bit-identical to the
/// retained per-column sequential reference for 1, 2 and N threads, on
/// randomized PSS orbits.
#[test]
fn monodromy_is_bit_identical_for_any_thread_count() {
    use tranvar::pss::{monodromy_seq, monodromy_threaded, shooting_pss};
    let mut rng = Rng64::seed_from(0x5EED_0A0B);
    for case in 0..6 {
        let stages = 2 + (rng.next_u64() % 3) as usize;
        let ckt = random_mismatched_ladder(&mut rng, stages);
        let mut opts = PssOptions::default();
        opts.n_steps = 32;
        if case % 2 == 0 {
            opts.method = tranvar::engine::Integrator::Trapezoidal;
        }
        let sol = shooting_pss(&ckt, 1e-6, &opts).unwrap();
        let n = ckt.n_unknowns();
        let reference = monodromy_seq(&sol.records, n);
        for threads in [1usize, 2, 8] {
            let m = monodromy_threaded(&sol.records, n, threads);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        m[(i, j)].to_bits() == reference[(i, j)].to_bits(),
                        "case {case} threads {threads}: M[{i}][{j}] = {} vs {}",
                        m[(i, j)],
                        reference[(i, j)]
                    );
                }
            }
        }
    }
}

/// The interleaved+threaded all-parameter LPTV propagation is bit-identical
/// to the retained per-parameter sequential reference for 1, 2 and N
/// threads, on randomized PSS orbits.
#[test]
fn lptv_param_responses_are_bit_identical_for_any_thread_count() {
    use tranvar::lptv::{LptvOptions, PeriodicSolver};
    use tranvar::pss::shooting_pss;
    let mut rng = Rng64::seed_from(0x5EED_1111);
    for case in 0..4 {
        let stages = 2 + (rng.next_u64() % 3) as usize;
        let ckt = random_mismatched_ladder(&mut rng, stages);
        let mut opts = PssOptions::default();
        opts.n_steps = 24;
        let sol = shooting_pss(&ckt, 1e-6, &opts).unwrap();
        let n_params = ckt.mismatch_params().len();
        assert!(n_params >= 4);
        let seq = PeriodicSolver::new(&ckt, &sol)
            .unwrap()
            .all_param_responses_seq()
            .unwrap();
        for threads in [1usize, 2, 8] {
            let solver = PeriodicSolver::with_options(
                &ckt,
                &sol,
                LptvOptions {
                    threads,
                    ..LptvOptions::default()
                },
            )
            .unwrap();
            let batched = solver.all_param_responses().unwrap();
            assert_eq!(batched.len(), seq.len());
            for (k, (b, s)) in batched.iter().zip(seq.iter()).enumerate() {
                assert_eq!(b.dperiod.to_bits(), s.dperiod.to_bits());
                assert_eq!(b.dx.len(), s.dx.len());
                for (step, (bs, ss)) in b.dx.iter().zip(s.dx.iter()).enumerate() {
                    for (i, (x, y)) in bs.iter().zip(ss.iter()).enumerate() {
                        assert!(
                            x.to_bits() == y.to_bits(),
                            "case {case} threads {threads} param {k} step {step} row {i}: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }
}

/// Adaptive step control reproduces the fixed-grid trajectory on every demo
/// circuit: final states agree to within `10 × reltol` (scaled by the state
/// magnitude, plus the matching absolute floor) while the accepted grid
/// stays monotone inside the configured step bounds.
#[test]
fn adaptive_matches_fixed_on_all_demo_circuits() {
    use tranvar::circuits::{ArrivalOrder, LogicPath, RStringDac, RingOsc, StrongArm, Tech};
    use tranvar::engine::dc::{dc_operating_point, DcOptions};
    use tranvar::engine::tran::{transient, AdaptiveOptions, Integrator, TranOptions};

    let tech = Tech::t013();
    let reltol = 1e-5;
    let abstol = 1e-8;

    // (name, circuit, t_stop, dt, method, explicit x0, adaptive reltol)
    #[allow(clippy::type_complexity)]
    let mut cases: Vec<(
        &str,
        tranvar::circuit::Circuit,
        f64,
        f64,
        Integrator,
        Option<Vec<f64>>,
        f64,
    )> = Vec::new();

    let sa = StrongArm::paper(&tech);
    cases.push((
        "strongarm",
        sa.circuit.clone(),
        sa.t_read,
        sa.period / 2048.0,
        Integrator::BackwardEuler,
        None,
        reltol,
    ));

    // The logic path integrates under backward Euler: trapezoidal leaves a
    // slowly-decaying grid-phase-dependent ringing on its stiff internal
    // nodes that puts the *fixed* reference itself outside the accuracy
    // band (refining the grid flips the residual's sign instead of
    // shrinking it).
    let lp = LogicPath::new(&tech, ArrivalOrder::XFirst);
    cases.push((
        "logic-path",
        lp.circuit.clone(),
        lp.period,
        lp.period / 32768.0,
        Integrator::BackwardEuler,
        None,
        reltol,
    ));

    // The ring oscillator starts from its *unstable* DC equilibrium (plus a
    // kick), so any numerical difference between two trajectories grows
    // exponentially until the orbit saturates. A quarter-period horizon
    // keeps that amplification small enough for a meaningful comparison;
    // over a full period no per-step tolerance makes the final states
    // agree, because the growth factor dominates.
    let ring = RingOsc::paper(&tech);
    let mut kick = dc_operating_point(&ring.circuit, &DcOptions::default()).unwrap();
    kick[ring.circuit.unknown_of_node(ring.stages[0]).unwrap()] += 0.1;
    cases.push((
        "ring-osc",
        ring.circuit.clone(),
        ring.period_hint / 4.0,
        ring.period_hint / 16384.0,
        Integrator::Trapezoidal,
        Some(kick),
        reltol / 10.0,
    ));

    // The R-string DAC is purely resistive; loading the mid tap makes the
    // transient a genuine RC settling problem. Backward Euler, because the
    // all-zeros start is inconsistent with the VREF constraint row and
    // trapezoidal would ring that algebraic inconsistency undamped forever
    // (v_vref alternating between 0 and 2·vref on the fixed grid). The
    // controller runs 10× tighter than the band's `reltol`: BE truncation
    // error lags the settling ramp with one sign, so per-step errors add up
    // over the transient instead of cancelling.
    let dac = RStringDac::new(4, 1e3, 0.01, 1.2);
    let mut dac_ckt = dac.circuit.clone();
    let mid = dac.taps[dac.taps.len() / 2];
    dac_ckt.add_capacitor("CT", mid, tranvar::circuit::NodeId::GROUND, 1e-12);
    let n = dac_ckt.n_unknowns();
    cases.push((
        "r-string-dac",
        dac_ckt,
        20e-9,
        20e-9 / 16384.0,
        Integrator::BackwardEuler,
        Some(vec![0.0; n]),
        reltol / 10.0,
    ));

    for (name, ckt, t_stop, dt, method, x0, rtol) in cases {
        let mut fixed = TranOptions::new(t_stop, dt);
        fixed.method = method;
        fixed.x0 = x0.clone();
        let fref = transient(&ckt, &fixed).unwrap();

        let a = AdaptiveOptions {
            reltol: rtol,
            abstol: abstol * rtol / reltol,
            ..AdaptiveOptions::default()
        };
        let mut adap = TranOptions::adaptive(t_stop, dt, a);
        adap.method = method;
        adap.x0 = x0;
        let ares = transient(&ckt, &adap).unwrap();

        // Grid contract: strictly monotone, endpoints exact, interior steps
        // within the resolved bounds. A sliver shorter than h_min is only
        // permitted just before `t_stop` or a source breakpoint, where the
        // driver lands exactly regardless of the proposed step.
        let (h_min, h_max) = a.resolve_bounds(t_stop);
        let bps = ckt.source_breakpoints(0.0, t_stop);
        assert_eq!(ares.times[0], 0.0, "{name}");
        assert_eq!(*ares.times.last().unwrap(), t_stop, "{name}");
        for (k, w) in ares.times.windows(2).enumerate() {
            let h = w[1] - w[0];
            assert!(h > 0.0, "{name}: step {k} not monotone");
            assert!(
                h <= 1.05 * h_max * (1.0 + 1e-9),
                "{name}: step {k} h={h:.3e} > h_max"
            );
            let lands_on_stop = k + 2 >= ares.times.len();
            let lands_on_bp = bps.iter().any(|&b| (w[1] - b).abs() <= 1e-12 * t_stop);
            if !lands_on_stop && !lands_on_bp {
                assert!(
                    h >= h_min * (1.0 - 1e-9),
                    "{name}: step {k} h={h:.3e} < h_min"
                );
            }
        }

        // Final states agree within the 10×reltol accuracy band.
        let xf = fref.last();
        let xa = ares.last();
        let scale = xf.iter().fold(0.0f64, |m, v| m.max(v.abs()));
        let band = 10.0 * (reltol * scale + abstol);
        for (i, (u, v)) in xf.iter().zip(xa.iter()).enumerate() {
            assert!(
                (u - v).abs() <= band,
                "{name}: unknown {i} fixed {u:.6e} vs adaptive {v:.6e} (band {band:.3e})"
            );
        }
        // And the adaptive run must actually have been adaptive.
        assert!(
            ares.times.len() < fref.times.len(),
            "{name}: adaptive used {} samples vs fixed {}",
            ares.times.len(),
            fref.times.len()
        );
    }
}

/// Deterministic random sparse-ish test matrix with a dominant diagonal,
/// returned in both CSC and dense forms.
fn random_system(rng: &mut Rng64, n: usize, density: f64) -> tranvar::num::Csc<f64> {
    let mut t = tranvar::num::Triplets::new(n, n);
    for i in 0..n {
        for j in 0..n {
            let r = 2.0 * rng.uniform() - 1.0;
            if i == j {
                t.push(i, j, 4.0 + r);
            } else if r.abs() < density {
                t.push(i, j, r);
            }
        }
    }
    t.to_csc()
}

/// Lane-kernel dispatch is bit-for-bit identical to per-RHS `solve_into` and
/// to the runtime-width interleaved kernel, across exact lane widths,
/// remainder mixes, and both factor backends.
#[test]
fn lane_solves_bitwise_match_solve_into() {
    let mut rng = Rng64::seed_from(0x1A5E5);
    for case in 0..8 {
        let n = 6 + (rng.next_u64() % 30) as usize;
        let csc = random_system(&mut rng, n, 0.3);
        let dense_lu = csc.to_dense().lu().unwrap();
        let sparse_lu = csc.lu().unwrap();
        let ordered_lu = csc.lu_markowitz().unwrap();
        for n_rhs in [1usize, 2, 3, 4, 5, 8, 17] {
            let block0: Vec<f64> = (0..n * n_rhs).map(|_| 2.0 * rng.uniform() - 1.0).collect();
            // Per-RHS references from the single-solve kernels.
            let mut dref = vec![0.0; n * n_rhs];
            let mut sref = vec![0.0; n * n_rhs];
            let mut oref = vec![0.0; n * n_rhs];
            let mut b = vec![0.0; n];
            let mut out = vec![0.0; n];
            let mut scr = vec![0.0; n];
            for k in 0..n_rhs {
                for r in 0..n {
                    b[r] = block0[r * n_rhs + k];
                }
                dense_lu.solve_into(&b, &mut out);
                for r in 0..n {
                    dref[r * n_rhs + k] = out[r];
                }
                sparse_lu.solve_into(&b, &mut out, &mut scr);
                for r in 0..n {
                    sref[r * n_rhs + k] = out[r];
                }
                ordered_lu.solve_into(&b, &mut out, &mut scr);
                for r in 0..n {
                    oref[r * n_rhs + k] = out[r];
                }
            }
            let mut scratch = vec![0.0; tranvar::num::lanes_scratch_len(n, n_rhs)];
            // Dense lanes vs solve_into, and vs the interleaved kernel.
            let mut blk = block0.clone();
            dense_lu.solve_multi_lanes(&mut blk, n_rhs, &mut scratch);
            let mut ilv = block0.clone();
            let mut iscr = vec![0.0; n * n_rhs];
            dense_lu.solve_multi_interleaved(&mut ilv, n_rhs, &mut iscr);
            for i in 0..n * n_rhs {
                assert!(
                    blk[i].to_bits() == dref[i].to_bits(),
                    "case {case} dense lanes vs solve_into n_rhs={n_rhs} idx {i}"
                );
                assert!(
                    blk[i].to_bits() == ilv[i].to_bits(),
                    "case {case} dense lanes vs interleaved n_rhs={n_rhs} idx {i}"
                );
            }
            // Sparse (natural order) lanes.
            let mut blk = block0.clone();
            sparse_lu.solve_multi_lanes(&mut blk, n_rhs, &mut scratch);
            let mut ilv = block0.clone();
            sparse_lu.solve_multi_interleaved(&mut ilv, n_rhs, &mut iscr);
            for i in 0..n * n_rhs {
                assert!(
                    blk[i].to_bits() == sref[i].to_bits(),
                    "case {case} sparse lanes vs solve_into n_rhs={n_rhs} idx {i}"
                );
                assert!(
                    blk[i].to_bits() == ilv[i].to_bits(),
                    "case {case} sparse lanes vs interleaved n_rhs={n_rhs} idx {i}"
                );
            }
            // Sparse (Markowitz-ordered) lanes.
            let mut blk = block0.clone();
            ordered_lu.solve_multi_lanes(&mut blk, n_rhs, &mut scratch);
            for i in 0..n * n_rhs {
                assert!(
                    blk[i].to_bits() == oref[i].to_bits(),
                    "case {case} ordered lanes vs solve_into n_rhs={n_rhs} idx {i}"
                );
            }
        }
    }
}

/// Markowitz-ordered factorization agrees with the natural-order one to
/// machine precision on all four demo-circuit Jacobians, and its replayed
/// refactorizations are bit-identical to the fresh ordered factorization.
#[test]
fn markowitz_matches_natural_on_demo_circuits() {
    use tranvar::circuits::{ArrivalOrder, LogicPath, RStringDac, RingOsc, StrongArm, Tech};
    use tranvar::engine::solver::combine;

    let tech = Tech::t013();
    let cases: Vec<(&str, Circuit)> = vec![
        ("ring-osc", RingOsc::paper(&tech).circuit),
        ("strongarm", StrongArm::paper(&tech).circuit),
        (
            "logic-path",
            LogicPath::new(&tech, ArrivalOrder::XFirst).circuit,
        ),
        ("r-string-dac", RStringDac::new(4, 1e3, 0.01, 1.2).circuit),
    ];
    for (name, ckt) in cases {
        let n = ckt.n_unknowns();
        let x = vec![0.0; n];
        let asm = ckt.assemble(&x, 0.0);
        let nn = ckt.n_nodes() - 1;
        let csc = combine(&asm, 1.0, 1e9, 1e-12, nn);
        let natural = csc.lu().unwrap();
        let ordered = csc.lu_markowitz().unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.73).sin() + 0.2).collect();
        let xn = natural.solve(&b);
        let xo = ordered.solve(&b);
        let scale = xn.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for i in 0..n {
            assert!(
                (xn[i] - xo[i]).abs() <= 1e-9 * scale,
                "{name} row {i}: natural {} vs ordered {}",
                xn[i],
                xo[i]
            );
        }
        // Replay of the ordered analysis is bit-identical.
        let replay = csc.lu_with(&ordered.symbolic()).unwrap();
        let xr = replay.solve(&b);
        for i in 0..n {
            assert!(xr[i].to_bits() == xo[i].to_bits(), "{name} replay row {i}");
        }
    }
}
