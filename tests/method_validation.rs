//! Cross-crate validation of the pseudo-noise mismatch method against its
//! independent baselines: DC-match analysis, transient forward sensitivity,
//! and Monte-Carlo.

use tranvar::circuit::{Circuit, NodeId, Pulse, Waveform};
use tranvar::engine::dc::{dc_operating_point, DcOptions};
use tranvar::engine::mc::{monte_carlo, McOptions};
use tranvar::engine::transens::{transient_with_sensitivities, SensInit};
use tranvar::engine::TranOptions;
use tranvar::num::interp::Edge;
use tranvar::prelude::*;
use tranvar::pss::PssOptions;

fn mismatched_divider() -> (Circuit, NodeId) {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
    let r1 = ckt.add_resistor("R1", a, b, 1e3);
    let r2 = ckt.add_resistor("R2", b, NodeId::GROUND, 2e3);
    ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-12);
    ckt.annotate_resistor_mismatch(r1, 15.0);
    ckt.annotate_resistor_mismatch(r2, 10.0);
    (ckt, b)
}

/// For a circuit whose PSS is constant, the full LPTV flow must reproduce DC
/// match analysis exactly (the paper presents the method as the transient
/// generalization of refs. [8],[9]).
#[test]
fn lptv_reduces_to_dc_match() {
    let (ckt, b) = mismatched_divider();
    let mut opts = PssOptions::default();
    opts.n_steps = 32;
    let res = analyze(
        &ckt,
        &PssConfig::Driven { period: 1e-6, opts },
        &[MetricSpec::new("vout", Metric::DcAverage { node: b })],
    )
    .unwrap();
    let dcm = dc_match(&ckt, b).unwrap();
    let rep = &res.reports[0];
    assert!((rep.sigma() - dcm.sigma()).abs() < 1e-6 * dcm.sigma());
    for (a, b) in rep.contributions.iter().zip(dcm.contributions.iter()) {
        assert!(
            (a.sensitivity - b.sensitivity).abs() < 1e-6 * b.sensitivity.abs(),
            "{}: {} vs {}",
            a.label,
            a.sensitivity,
            b.sensitivity
        );
    }
}

/// Monte-Carlo ground truth matches the linear prediction for small
/// mismatch (divider case, where the response is almost exactly linear).
#[test]
fn lptv_matches_monte_carlo_on_divider() {
    let (ckt, b) = mismatched_divider();
    let mut opts = PssOptions::default();
    opts.n_steps = 32;
    let res = analyze(
        &ckt,
        &PssConfig::Driven { period: 1e-6, opts },
        &[MetricSpec::new("vout", Metric::DcAverage { node: b })],
    )
    .unwrap();
    let mc = monte_carlo(&ckt, &McOptions::new(3000, 7), |c| {
        let x = dc_operating_point(c, &DcOptions::default())?;
        Ok(c.voltage(&x, c.find_node("b")?))
    });
    let rel = (res.reports[0].sigma() - mc.stats.std_dev()) / mc.stats.std_dev();
    assert!(rel.abs() < 0.05, "lptv vs mc: {rel:+.3}");
}

/// The LPTV delay sensitivity agrees with transient forward sensitivity
/// (paper ref. [23]) — same linearization, different propagation route.
#[test]
fn lptv_delay_matches_transient_sensitivity() {
    let period = 10e-6;
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource(
        "V1",
        a,
        NodeId::GROUND,
        Waveform::Pulse(Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1e-6,
            rise: 1e-8,
            fall: 1e-8,
            width: 4e-6,
            period,
        }),
    );
    let r1 = ckt.add_resistor("R1", a, b, 1e3);
    ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
    ckt.annotate_resistor_mismatch(r1, 10.0);

    // LPTV route.
    let mut opts = PssOptions::default();
    opts.n_steps = 2000;
    let res = analyze(
        &ckt,
        &PssConfig::Driven { period, opts },
        &[MetricSpec::new(
            "delay",
            Metric::CrossingShift {
                node: b,
                threshold: 0.5,
                edge: Edge::Rising,
                t_after: 1e-6,
                t_ref: 1e-6,
            },
        )],
    )
    .unwrap();
    let s_lptv = res.reports[0].contributions[0].sensitivity;

    // Transient-sensitivity route: crossing-shift from δv/v̇ at the crossing
    // of a plain transient (single-shot, so expect agreement only to the
    // start-up-residue level — the PSS initial condition differs slightly).
    let topts = TranOptions::new(period, period / 2000.0);
    let ts = transient_with_sensitivities(&ckt, &topts, SensInit::FromDc).unwrap();
    let w = ts.tran.node_waveform(&ckt, b);
    let tc =
        tranvar::num::interp::first_crossing_after(&ts.tran.times, &w, 0.5, Edge::Rising, 1e-6)
            .unwrap();
    let idx = tranvar::num::interp::nearest_index(&ts.tran.times, tc);
    let slope = tranvar::num::interp::slope_at(&ts.tran.times, &w, idx);
    let ib = ckt.unknown_of_node(b).unwrap();
    let s_ts = -ts.sens[0][idx][ib] / slope;
    assert!(
        (s_lptv - s_ts).abs() < 0.05 * s_ts.abs(),
        "lptv {s_lptv:.4e} vs transient-sens {s_ts:.4e}"
    );
}

/// Correlated mismatch: sampling through a mixing matrix A (paper eq. 6)
/// produces the covariance A·Aᵀ in the measured outputs.
#[test]
fn correlated_sampling_matches_eq6() {
    let (ckt, _) = mismatched_divider();
    // Fully correlated R1/R2 deltas: common 1-sigma source.
    let a = tranvar::num::DMat::from_vec(2, 1, vec![15.0, 10.0]);
    let mut opts = McOptions::new(4000, 3);
    opts.correlation = Some(tranvar::num::rng::CorrelatedNormal::from_mixing(a));
    let mc = monte_carlo(&ckt, &opts, |c| {
        let x = dc_operating_point(c, &DcOptions::default())?;
        Ok(c.voltage(&x, c.find_node("b")?))
    });
    // vout = 2·R2/(R1+R2); with dR2/dR1 = 10/15 fully correlated the two
    // sensitivities partially cancel: sigma is much smaller than the
    // independent RSS.
    let s1: f64 = 2.0 * 2e3 / 9e6; // |dv/dR1| at R1=1k, R2=2k
    let s2: f64 = 2.0 * 1e3 / 9e6;
    let expected = (-s1 * 15.0 + s2 * 10.0).abs();
    let independent_rss = ((s1 * 15.0).powi(2) + (s2 * 10.0).powi(2)).sqrt();
    assert!(mc.stats.std_dev() < 0.75 * independent_rss);
    assert!(
        (mc.stats.std_dev() - expected).abs() < 0.1 * expected,
        "mc {:.4e} vs analytic {expected:.4e}",
        mc.stats.std_dev()
    );
}
