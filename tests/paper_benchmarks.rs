//! End-to-end invariants of the paper's three benchmarks, at reduced
//! Monte-Carlo sizes (the full-scale reproductions live in
//! `tranvar-bench`'s binaries).

use tranvar::circuits::{ArrivalOrder, LogicPath, RingOsc, StrongArm, Tech};
use tranvar::engine::mc::{monte_carlo, McOptions};
use tranvar::prelude::*;

/// Comparator: pseudo-noise offset σ within the (wide) CI of a small
/// bisection-MC, and the nominal offset is ~0 by symmetry.
#[test]
fn comparator_sigma_matches_mc() {
    let tech = Tech::t013();
    let sa = StrongArm::paper(&tech);
    let res = analyze(
        &sa.circuit,
        &PssConfig::Driven {
            period: sa.period,
            opts: sa.pss_options(),
        },
        &[sa.offset_metric()],
    )
    .unwrap();
    let rep = &res.reports[0];
    assert!(rep.nominal.abs() < 1e-3, "nominal {:.3e}", rep.nominal);

    let n = 40;
    let mc = monte_carlo(&sa.circuit, &McOptions::new(n, 17), |c| {
        sa.measure_offset_bisect(c)
    });
    assert_eq!(mc.n_failed, 0);
    let rel = (rep.sigma() - mc.stats.std_dev()) / mc.stats.std_dev();
    // 95% CI at n=40 is +/-22%; accept 3x that for a smoke bound.
    assert!(
        rel.abs() < 0.45,
        "pn {} vs mc {}",
        rep.sigma(),
        mc.stats.std_dev()
    );
}

/// Ring oscillator: pseudo-noise σ_f within the CI of a small MC.
#[test]
fn ring_sigma_matches_mc() {
    let tech = Tech::t013();
    let ring = RingOsc::paper(&tech);
    let res = analyze(
        &ring.circuit,
        &PssConfig::Autonomous {
            period_hint: ring.period_hint,
            phase_node: ring.stages[0],
            phase_value: ring.phase_value,
            opts: ring.osc_options(),
        },
        &[MetricSpec::new("f0", Metric::Frequency)],
    )
    .unwrap();
    let rep = &res.reports[0];
    let n = 80;
    let mc = monte_carlo(&ring.circuit, &McOptions::new(n, 23), |c| {
        ring.measure_frequency_transient(c)
    });
    assert!(mc.n_failed <= 2, "{} failures", mc.n_failed);
    let rel = (rep.sigma() - mc.stats.std_dev()) / mc.stats.std_dev();
    assert!(
        rel.abs() < 0.35,
        "pn {} vs mc {}",
        rep.sigma(),
        mc.stats.std_dev()
    );
    // The MC mean frequency must also sit near the PSS nominal.
    assert!(
        (mc.stats.mean() - rep.nominal).abs() < 0.02 * rep.nominal,
        "mc mean {} vs nominal {}",
        mc.stats.mean(),
        rep.nominal
    );
}

/// Logic path: delay σ within MC CI, and the Table I correlation ordering
/// holds for the Monte-Carlo estimates as well.
#[test]
fn logic_path_sigma_and_correlation_match_mc() {
    let tech = Tech::t013();
    let path = LogicPath::new(&tech, ArrivalOrder::XFirst);
    let res = analyze(
        &path.circuit,
        &PssConfig::Driven {
            period: path.period,
            opts: path.pss_options(),
        },
        &path.delay_metrics(),
    )
    .unwrap();
    let n = 80;
    let mc = tranvar::engine::mc::monte_carlo_multi(&path.circuit, &McOptions::new(n, 29), |c| {
        path.measure_delays_transient(c)
    });
    assert_eq!(mc.n_failed, 0);
    let rel = (res.reports[0].sigma() - mc.stats[0].std_dev()) / mc.stats[0].std_dev();
    assert!(
        rel.abs() < 0.35,
        "pn {} vs mc {}",
        res.reports[0].sigma(),
        mc.stats[0].std_dev()
    );
    let a: Vec<f64> = mc.samples.iter().map(|s| s[0]).collect();
    let b: Vec<f64> = mc.samples.iter().map(|s| s[1]).collect();
    let rho_mc = tranvar::num::stats::pearson_correlation(&a, &b);
    let rho_pn = res.reports[0].correlation(&res.reports[1]);
    assert!(rho_pn > 0.7 && rho_mc > 0.6, "pn {rho_pn}, mc {rho_mc}");
}

/// Fig. 11's qualitative shape: the pseudo-noise estimate degrades as
/// mismatch grows. The pseudo-noise σ is *exactly* linear in the mismatch
/// scale, so any drift of the Monte-Carlo/pseudo-noise σ ratio between
/// scales is circuit nonlinearity — the very thing that breaks the
/// linearized estimate. Both MC runs reuse the same seed (common random
/// numbers), so the ~6% sampling error of this sample count cancels in the
/// ratio instead of swamping the few-percent nonlinearity signal.
#[test]
fn error_grows_with_mismatch() {
    let base = Tech::t013();
    let mut ratios = Vec::new();
    for scale in [1.0, 5.0] {
        let tech = base.with_mismatch_scale(scale);
        let ring = RingOsc::paper(&tech);
        let res = analyze(
            &ring.circuit,
            &PssConfig::Autonomous {
                period_hint: ring.period_hint,
                phase_node: ring.stages[0],
                phase_value: ring.phase_value,
                opts: ring.osc_options(),
            },
            &[MetricSpec::new("f0", Metric::Frequency)],
        )
        .unwrap();
        let mc = monte_carlo(&ring.circuit, &McOptions::new(150, 31), |c| {
            ring.measure_frequency_transient(c)
        });
        ratios.push(mc.stats.std_dev() / res.reports[0].sigma());
    }
    let drift = (ratios[1] / ratios[0] - 1.0).abs();
    assert!(
        drift > 0.02,
        "mc/pn sigma ratio should drift measurably at 5x mismatch: \
         1x ratio {:.4}, 5x ratio {:.4}, drift {:.4}",
        ratios[0],
        ratios[1],
        drift
    );
}
