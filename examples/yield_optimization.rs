//! Yield optimization via mismatch sensitivities (paper Section VII):
//! rank transistors by d(sigma^2)/dW from ONE analysis, upsize the worst
//! offenders, and verify the offset variance actually dropped.
//!
//! Run with: `cargo run --release --example yield_optimization`

use tranvar::circuits::{StrongArm, Tech};
use tranvar::core::{resize_most_sensitive, width_sensitivities};
use tranvar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Tech::t013();
    let sa = StrongArm::paper(&tech);
    let config = PssConfig::Driven {
        period: sa.period,
        opts: sa.pss_options(),
    };
    let res = analyze(&sa.circuit, &config, &[sa.offset_metric()])?;
    let rep = &res.reports[0];
    println!("before: sigma(offset) = {:.3} mV", rep.sigma() * 1e3);
    println!("\nwidth sensitivities (eq. 16), most impactful first:");
    for w in width_sensitivities(&sa.circuit, rep).iter().take(5) {
        println!(
            "  {:<6} W = {:>5.2} um   d(sigma^2)/dW = {:+.3e} V^2/m",
            w.device,
            w.width * 1e6,
            w.dvar_dw
        );
    }

    // Upsize the two most sensitive transistors by 2x and re-analyze.
    let (resized, predicted_var) = resize_most_sensitive(&sa.circuit, rep, 2, 2.0);
    let res2 = analyze(&resized, &config, &[sa.offset_metric()])?;
    println!(
        "\nafter 2x upsizing the top-2 (first-order prediction {:.3} mV):",
        predicted_var.sqrt() * 1e3
    );
    println!(
        "  sigma(offset) = {:.3} mV (re-analyzed)",
        res2.reports[0].sigma() * 1e3
    );
    Ok(())
}
