//! Corner campaign: StrongARM comparator offset and logic-path delay swept
//! over a supply/sizing corner grid through the scenario-campaign API.
//!
//! One `Campaign::run` replaces a hand-written loop of `analyze` calls:
//! scenarios are numeric-only overrides against one base circuit (supply
//! scaling, input-pair resizing, mismatch-level scaling), worker sessions
//! reuse all solver state across corners, and scenarios differing only in
//! mismatch σ share one PSS+LPTV solve outright. The campaign result
//! carries per-scenario reports plus per-metric aggregates (worst corner,
//! spread).
//!
//! Run with: `cargo run --release --example corner_campaign`

use tranvar::circuit::CircuitOverride;
use tranvar::circuits::{ArrivalOrder, LogicPath, StrongArm, Tech};
use tranvar::prelude::*;
use tranvar::TranvarError;

fn main() -> Result<(), TranvarError> {
    let tech = Tech::t013();

    // ── 1. StrongARM comparator offset over supply × input-pair width. ──
    let sa = StrongArm::paper(&tech);
    let ckt = &sa.circuit;
    let vdd = ckt.find_device("VDD")?;
    let vclk = ckt.find_device("VCLK")?;
    let m2 = ckt.find_device("M2")?;
    let m3 = ckt.find_device("M3")?;

    let mut scenarios = Vec::new();
    for supply in [0.95f64, 1.05] {
        for w_input in [8.32e-6f64, 12e-6] {
            // The supply corner scales both the rail and the clock swing;
            // the sizing corner widens the input pair (Pelgrom σ rescales
            // automatically with √(W_old/W_new)).
            let corner = vec![
                CircuitOverride::SourceScale {
                    device: vdd,
                    factor: supply,
                },
                CircuitOverride::SourceScale {
                    device: vclk,
                    factor: supply,
                },
                CircuitOverride::MosWidth {
                    device: m2,
                    width: w_input,
                },
                CircuitOverride::MosWidth {
                    device: m3,
                    width: w_input,
                },
            ];
            for sigma_scale in [1.0f64, 1.5] {
                let mut overrides = corner.clone();
                overrides.push(CircuitOverride::SigmaScale {
                    factor: sigma_scale,
                });
                scenarios.push(Scenario::new(
                    format!(
                        "vdd={:.2}V w={:.1}um mm={sigma_scale:.1}x",
                        supply * tech.vdd,
                        w_input * 1e6
                    ),
                    overrides,
                ));
            }
        }
    }

    let campaign = Campaign::new(
        PssConfig::Driven {
            period: sa.period,
            opts: sa.pss_options(),
        },
        vec![sa.offset_metric()],
    );
    let res = campaign.run(ckt, &scenarios)?;
    println!(
        "StrongARM offset: {} scenarios, {} PSS+LPTV solves (sigma sweeps ride along free)",
        res.outcomes.len(),
        res.n_unique_solves
    );
    for oc in &res.outcomes {
        match &oc.result {
            Ok(r) => println!(
                "  {:<28} sigma(offset) = {:6.2} mV",
                oc.scenario,
                r.reports[0].sigma() * 1e3
            ),
            Err(e) => println!("  {:<28} FAILED: {e}", oc.scenario),
        }
    }
    let sum = res.summary("offset").expect("offset summary");
    println!(
        "  worst corner: {} ({:.2} mV); spread {:.2}-{:.2} mV\n",
        sum.worst_scenario,
        sum.max_sigma * 1e3,
        sum.min_sigma * 1e3,
        sum.max_sigma * 1e3
    );

    // ── 2. Logic-path delays over supply corners × mismatch level. ──
    let path = LogicPath::new(&tech, ArrivalOrder::XFirst);
    let pckt = &path.circuit;
    let sources: Vec<_> = ["VDD", "VX", "VY"]
        .iter()
        .map(|l| pckt.find_device(l))
        .collect::<Result<_, _>>()?;
    let mut scenarios = Vec::new();
    for supply in [0.95f64, 1.0, 1.05] {
        let corner: Vec<CircuitOverride> = sources
            .iter()
            .map(|&device| CircuitOverride::SourceScale {
                device,
                factor: supply,
            })
            .collect();
        for sigma_scale in [1.0f64, 2.0] {
            let mut overrides = corner.clone();
            overrides.push(CircuitOverride::SigmaScale {
                factor: sigma_scale,
            });
            scenarios.push(Scenario::new(
                format!("vdd={:.2}V mm={sigma_scale:.1}x", supply * tech.vdd),
                overrides,
            ));
        }
    }
    let campaign = Campaign::new(
        PssConfig::Driven {
            period: path.period,
            opts: path.pss_options(),
        },
        path.delay_metrics(),
    );
    let res = campaign.run(pckt, &scenarios)?;
    println!(
        "Logic-path delays: {} scenarios, {} solves",
        res.outcomes.len(),
        res.n_unique_solves
    );
    for oc in &res.outcomes {
        match &oc.result {
            Ok(r) => {
                let (a, b) = (&r.reports[0], &r.reports[1]);
                println!(
                    "  {:<20} delay_A = {:6.1} ps (sigma {:5.2}), delay_B = {:6.1} ps (sigma {:5.2})",
                    oc.scenario,
                    a.nominal * 1e12,
                    a.sigma() * 1e12,
                    b.nominal * 1e12,
                    b.sigma() * 1e12
                );
            }
            Err(e) => println!("  {:<20} FAILED: {e}", oc.scenario),
        }
    }
    for name in ["delay_A", "delay_B"] {
        let sum = res.summary(name).expect("delay summary");
        println!(
            "  {name}: worst corner {} (sigma {:.2} ps)",
            sum.worst_scenario,
            sum.max_sigma * 1e12
        );
    }
    Ok(())
}
