//! The paper's headline benchmark: input-referred offset of a StrongARM
//! clocked comparator via the Fig. 6 metastability feedback testbench.
//!
//! Run with: `cargo run --release --example comparator_offset`

use tranvar::circuits::{StrongArm, Tech};
use tranvar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Tech::t013();
    let sa = StrongArm::paper(&tech);

    let res = analyze(
        &sa.circuit,
        &PssConfig::Driven {
            period: sa.period,
            opts: sa.pss_options(),
        },
        &[sa.offset_metric()],
    )?;
    let rep = &res.reports[0];
    println!("StrongARM comparator input offset");
    println!("  nominal (symmetric): {:+.3} mV", rep.nominal * 1e3);
    println!("  sigma:               {:.3} mV", rep.sigma() * 1e3);
    println!("\nper-source breakdown (top 8):");
    for c in rep.ranked().iter().take(8) {
        println!(
            "  {:<10} {:>6.1}%  (S = {:+.3e}, sigma_p = {:.3e})",
            c.label,
            100.0 * c.variance() / rep.variance(),
            c.sensitivity,
            c.sigma
        );
    }

    // Cross-check one mismatch sample against the nonlinear bisection
    // measurement (what a Monte-Carlo sample would do).
    let k = sa
        .circuit
        .mismatch_params()
        .iter()
        .position(|p| p.label == "M2.dVT")
        .unwrap();
    let mut deltas = vec![0.0; sa.circuit.mismatch_params().len()];
    deltas[k] = 5e-3;
    let mut perturbed = sa.circuit.clone();
    perturbed.apply_mismatch(&deltas);
    let measured = sa.measure_offset_bisect(&perturbed)?;
    let predicted = rep.contributions[k].sensitivity * 5e-3;
    println!(
        "\n+5 mV on M2.VT: bisected offset {:+.3} mV, linear prediction {:+.3} mV",
        measured * 1e3,
        predicted * 1e3
    );
    Ok(())
}
