//! DNL of an R-string DAC — the eq. (13) example: variance of a difference
//! of two *correlated* metrics needs their covariance, which the
//! contribution breakdown gives without extra simulation.
//!
//! Run with: `cargo run --example dac_dnl`

use tranvar::circuits::RStringDac;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 3-bit string, 1 kOhm unit, 1% resistor mismatch, 1.6 V reference.
    let dac = RStringDac::new(3, 1e3, 0.01, 1.6);
    println!(
        "R-string DAC: LSB = {:.0} mV, 1% resistor mismatch",
        dac.lsb * 1e3
    );
    println!(
        "\n{:>6} {:>12} {:>14} {:>16}",
        "code", "V [V]", "sigma(V) [mV]", "sigma(DNL) [mV]"
    );
    for k in 1..7 {
        let rep = dac.code_report(k)?;
        let dnl = dac.dnl_sigma(k)?;
        println!(
            "{:>6} {:>12.3} {:>14.3} {:>16.3}",
            k,
            rep.nominal,
            rep.sigma() * 1e3,
            dnl * 1e3
        );
    }
    let a = dac.code_report(4)?;
    let b = dac.code_report(5)?;
    println!("\nadjacent codes 4/5: rho = {:.3};", a.correlation(&b));
    println!(
        "ignoring covariance would overestimate sigma(DNL) by {:.1}x",
        (a.variance() + b.variance()).sqrt() / tranvar::core::difference_sigma(&a, &b)
    );
    Ok(())
}
