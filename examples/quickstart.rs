//! Quickstart: mismatch analysis of a resistor divider, cross-checked three
//! ways — pseudo-noise/LPTV, DC-match, and Monte-Carlo.
//!
//! Run with: `cargo run --example quickstart`

use tranvar::circuit::{Circuit, NodeId, Waveform};
use tranvar::engine::dc::{dc_operating_point, DcOptions};
use tranvar::engine::mc::{monte_carlo, McOptions};
use tranvar::prelude::*;
use tranvar::pss::PssOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2 V source into a 1k/1k divider; each resistor has sigma_R = 10 ohm.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
    let r1 = ckt.add_resistor("R1", a, b, 1e3);
    let r2 = ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
    ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-12);
    ckt.annotate_resistor_mismatch(r1, 10.0);
    ckt.annotate_resistor_mismatch(r2, 10.0);

    // 1. The paper's flow: PSS + LPTV pseudo-noise.
    let mut opts = PssOptions::default();
    opts.n_steps = 32;
    let res = analyze(
        &ckt,
        &PssConfig::Driven { period: 1e-6, opts },
        &[MetricSpec::new("vout", Metric::DcAverage { node: b })],
    )?;
    let rep = &res.reports[0];
    println!(
        "pseudo-noise:  vout = {:.4} V, sigma = {:.3} mV",
        rep.nominal,
        rep.sigma() * 1e3
    );
    for c in rep.ranked() {
        println!(
            "   {:<8} sensitivity {:+.3e} V/ohm, contribution {:.3} mV",
            c.label,
            c.sensitivity,
            c.weighted().abs() * 1e3
        );
    }

    // 2. DC match analysis (the classic baseline this method generalizes).
    let dcm = dc_match(&ckt, b)?;
    println!("dc-match:      sigma = {:.3} mV", dcm.sigma() * 1e3);

    // 3. Monte-Carlo ground truth.
    let mc = monte_carlo(&ckt, &McOptions::new(2000, 42), |c| {
        let x = dc_operating_point(c, &DcOptions::default())?;
        Ok(c.voltage(&x, c.find_node("b")?))
    });
    println!(
        "monte-carlo:   sigma = {:.3} mV (n=2000, CI +/-{:.1}%)",
        mc.stats.std_dev() * 1e3,
        tranvar::num::stats::sigma_rel_ci95(2000) * 100.0
    );
    Ok(())
}
