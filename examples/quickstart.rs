//! Quickstart: mismatch analysis of a resistor divider, cross-checked three
//! ways — pseudo-noise/LPTV, DC-match, and Monte-Carlo — plus the two
//! transient step-control modes (`StepControl::Fixed` vs
//! `StepControl::Adaptive`).
//!
//! Run with: `cargo run --example quickstart`

use tranvar::circuit::{Circuit, NodeId, Waveform};
use tranvar::engine::dc::{dc_operating_point, DcOptions};
use tranvar::engine::mc::{monte_carlo, McOptions};
use tranvar::engine::tran::{transient, AdaptiveOptions, TranOptions};
use tranvar::prelude::*;
use tranvar::pss::PssOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 2 V source into a 1k/1k divider; each resistor has sigma_R = 10 ohm.
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
    let r1 = ckt.add_resistor("R1", a, b, 1e3);
    let r2 = ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
    ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-12);
    ckt.annotate_resistor_mismatch(r1, 10.0);
    ckt.annotate_resistor_mismatch(r2, 10.0);

    // 1. The paper's flow: PSS + LPTV pseudo-noise.
    let mut opts = PssOptions::default();
    opts.n_steps = 32;
    let res = analyze(
        &ckt,
        &PssConfig::Driven { period: 1e-6, opts },
        &[MetricSpec::new("vout", Metric::DcAverage { node: b })],
    )?;
    let rep = &res.reports[0];
    println!(
        "pseudo-noise:  vout = {:.4} V, sigma = {:.3} mV",
        rep.nominal,
        rep.sigma() * 1e3
    );
    for c in rep.ranked() {
        println!(
            "   {:<8} sensitivity {:+.3e} V/ohm, contribution {:.3} mV",
            c.label,
            c.sensitivity,
            c.weighted().abs() * 1e3
        );
    }

    // 2. DC match analysis (the classic baseline this method generalizes).
    let dcm = dc_match(&ckt, b)?;
    println!("dc-match:      sigma = {:.3} mV", dcm.sigma() * 1e3);

    // 3. Monte-Carlo ground truth.
    let mc = monte_carlo(&ckt, &McOptions::new(2000, 42), |c| {
        let x = dc_operating_point(c, &DcOptions::default())?;
        Ok(c.voltage(&x, c.find_node("b")?))
    });
    println!(
        "monte-carlo:   sigma = {:.3} mV (n=2000, CI +/-{:.1}%)",
        mc.stats.std_dev() * 1e3,
        tranvar::num::stats::sigma_rel_ci95(2000) * 100.0
    );

    // 4. Transient step control: `TranOptions::new` integrates on a fixed
    //    uniform grid (`StepControl::Fixed`, bit-reproducible reference),
    //    while `TranOptions::adaptive` lets the LTE controller pick each
    //    step within [h_min, h_max] to meet reltol/abstol — far fewer
    //    steps on stiff or mostly-quiet circuits, same answer.
    let t_stop = 20e-9;
    let mut fix = TranOptions::new(t_stop, t_stop / 2000.0);
    fix.x0 = Some(vec![0.0; ckt.n_unknowns()]);
    let fres = transient(&ckt, &fix)?;
    let mut adap = TranOptions::adaptive(t_stop, t_stop / 2000.0, AdaptiveOptions::default());
    adap.x0 = Some(vec![0.0; ckt.n_unknowns()]);
    let ares = transient(&ckt, &adap)?;
    println!(
        "transient:     vout(t_stop) = {:.4} V fixed ({} steps) vs {:.4} V adaptive ({} steps)",
        ckt.voltage(fres.last(), b),
        fres.times.len() - 1,
        ckt.voltage(ares.last(), b),
        ares.times.len() - 1
    );
    Ok(())
}
