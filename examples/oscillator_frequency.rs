//! Frequency variation of the 5-stage ring oscillator (paper Section IV-C):
//! autonomous PSS with the period as an unknown, frequency variance from the
//! per-parameter period sensitivities.
//!
//! Run with: `cargo run --release --example oscillator_frequency`

use tranvar::circuits::{RingOsc, Tech};
use tranvar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Tech::t013();
    let ring = RingOsc::paper(&tech);
    let res = analyze(
        &ring.circuit,
        &PssConfig::Autonomous {
            period_hint: ring.period_hint,
            phase_node: ring.stages[0],
            phase_value: ring.phase_value,
            opts: ring.osc_options(),
        },
        &[MetricSpec::new("f0", Metric::Frequency)],
    )?;
    let rep = &res.reports[0];
    println!("5-stage ring oscillator");
    println!("  f0      = {:.4} GHz", rep.nominal / 1e9);
    println!(
        "  sigma_f = {:.2} MHz ({:.2}% of f0)",
        rep.sigma() / 1e6,
        100.0 * rep.sigma() / rep.nominal
    );
    println!("\nper-stage contributions:");
    for stage in 0..5 {
        let share: f64 = rep
            .contributions
            .iter()
            .filter(|c| c.label.starts_with(&format!("inv{stage}.")))
            .map(|c| c.variance())
            .sum::<f64>()
            / rep.variance();
        println!("  inv{stage}: {:>5.1}%", share * 100.0);
    }
    // Verify against a nonlinear transient measurement of the nominal f0.
    let f_tran = ring.measure_frequency_transient(&ring.circuit)?;
    println!(
        "\ntransient-measured f0 = {:.4} GHz (PSS agrees to {:+.2}%)",
        f_tran / 1e9,
        100.0 * (rep.nominal - f_tran) / f_tran
    );
    Ok(())
}
