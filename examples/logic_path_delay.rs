//! Delay variation and delay-delay correlation of the Fig. 7 logic path —
//! including the Table I effect: shared critical path => correlated delays.
//!
//! Run with: `cargo run --release --example logic_path_delay`

use tranvar::circuits::{ArrivalOrder, LogicPath, Tech};
use tranvar::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = Tech::t013();
    for order in [ArrivalOrder::XFirst, ArrivalOrder::YFirst] {
        let path = LogicPath::new(&tech, order);
        let res = analyze(
            &path.circuit,
            &PssConfig::Driven {
                period: path.period,
                opts: path.pss_options(),
            },
            &path.delay_metrics(),
        )?;
        let (a, b) = (&res.reports[0], &res.reports[1]);
        println!("{order:?}:");
        println!(
            "  delay(A) = {:.2} ps +/- {:.2} ps",
            a.nominal * 1e12,
            a.sigma() * 1e12
        );
        println!(
            "  delay(B) = {:.2} ps +/- {:.2} ps",
            b.nominal * 1e12,
            b.sigma() * 1e12
        );
        println!("  correlation rho = {:.3}", a.correlation(b));
        // Skew between the two outputs benefits from the covariance term
        // exactly like the DAC DNL of eq. (13).
        println!(
            "  sigma(delay_B - delay_A) = {:.2} ps (RSS would say {:.2} ps)\n",
            difference_sigma(a, b) * 1e12,
            (a.variance() + b.variance()).sqrt() * 1e12
        );
    }
    Ok(())
}
