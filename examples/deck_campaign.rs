//! Deck-driven campaign: the SPICE frontend end to end — parse a netlist,
//! elaborate it into a circuit + campaign, run it, and rank the mismatch
//! contributors; then show the typed, spanned error a broken deck gets.
//!
//! Run with: `cargo run --example deck_campaign`

use tranvar::netlist::parse_and_elaborate;
use tranvar::prelude::*;

/// A 2 V resistor divider with 1% mismatch on both resistors, swept over
/// three sigma scale factors. The same text works as a `text/x-spice`
/// request body against `tranvar-serve`.
const DECK: &str = "divider testbench
* 2 V into 1k/1k; sigma_R = 10 ohm each; vout = 1 V, sigma ~ 5 mV.
V1 a 0 2.0
R1 a b 1e3
R2 b 0 1e3
C1 b 0 1p
.sigma r R* sigma=10.0
.sweep sigma 1.0 2.0 3.0
.pss 1u steps=32
.measure vout avg b
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let e = parse_and_elaborate(DECK)?;
    println!("deck: {}", e.title);

    let config = e
        .analysis
        .as_ref()
        .and_then(|a| a.pss_config())
        .expect("the deck carries a .pss card");
    let result = Campaign::new(config, e.metrics.clone()).run(&e.circuit, &e.scenarios)?;

    // The sigma sweep shares one PSS/LPTV solve across all scenarios —
    // the paper's "no additional simulation cost" sharing.
    println!(
        "{} scenarios, {} unique solve(s)",
        result.outcomes.len(),
        result.n_unique_solves
    );
    for outcome in &result.outcomes {
        let report = &outcome.result.as_ref().expect("solve succeeds").reports[0];
        println!(
            "  {:<10} vout = {:.4} V, sigma = {:.3} mV",
            outcome.scenario,
            report.nominal,
            report.sigma() * 1e3
        );
    }
    let nominal = &result.outcomes[0]
        .result
        .as_ref()
        .expect("solve succeeds")
        .reports[0];
    for c in nominal.ranked() {
        println!(
            "    {:<4} sensitivity {:+.3e} V/ohm, contribution {:.3} mV",
            c.label,
            c.sensitivity,
            c.weighted().abs() * 1e3
        );
    }

    // Errors are typed and spanned: every parse or elaboration failure
    // names its line and column and maps to a stable `netlist.*` code.
    let broken = DECK.replace("1e3", "'r_load'");
    let err = parse_and_elaborate(&broken).expect_err("undefined param");
    println!(
        "broken deck: [{}] {} (line {}, col {})",
        err.wire_fault().code,
        err,
        err.span().line,
        err.span().col
    );
    Ok(())
}
