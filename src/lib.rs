//! # tranvar
//!
//! **Fast, non-Monte-Carlo estimation of transient performance variation due
//! to device mismatch** — a from-scratch Rust reproduction of Kim, Jones &
//! Horowitz (DAC 2007; extended in IEEE TCAS-I 57(7), 2010,
//! doi:10.1109/TCSI.2009.2035418), including the entire simulator substrate
//! the paper assumes: MNA circuit simulation, periodic steady-state shooting,
//! LPTV/PNOISE analysis, and a parallel Monte-Carlo reference.
//!
//! ## The method in one paragraph
//!
//! DC device mismatch and sufficiently low-frequency noise are
//! indistinguishable over a bounded observation window, so mismatch with
//! variance σ² is modeled as 1/f pseudo-noise with PSD σ² at 1 Hz. One
//! periodic-steady-state (PSS) solve linearizes the circuit; the LPTV
//! periodic solver then propagates every pseudo-noise source to the output
//! by reusing the PSS factorizations (two triangular sweeps per source).
//! Reading the response at the right sideband turns it into the variance of
//! a *transient* metric: comparator input offset (baseband), logic-path
//! delay (first sideband / crossing shift), oscillator frequency (period
//! sensitivity). Correlations between metrics and ∂σ²/∂W yield-optimization
//! gradients fall out of the per-source breakdown at no extra cost —
//! 100–1000× faster than 1000-point Monte-Carlo at matching σ.
//!
//! ## Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`num`] | dense/sparse LU, FFT, Cholesky, normal RNG, statistics |
//! | [`circuit`] | netlist, MNA stamps, MOSFET model, Pelgrom mismatch, noise descriptors, numeric-only scenario overrides |
//! | [`engine`] | DC/AC/transient, DC & transient sensitivity, Monte-Carlo driver, analysis sessions |
//! | [`pss`] | shooting-Newton PSS (driven + autonomous) |
//! | [`lptv`] | periodic BVP solver, harmonic transfers, PNOISE, statistical waveforms |
//! | [`core`] | the paper's flow: metrics, reports, correlations, yield sensitivities, mixtures, scenario campaigns |
//! | [`circuits`] | StrongARM comparator, logic path, ring oscillator, DAC, technology |
//! | [`netlist`] | SPICE deck frontend: parse + elaborate text netlists into circuits and campaigns |
//!
//! ## Quickstart
//!
//! ```
//! use tranvar::circuit::{Circuit, NodeId, Waveform};
//! use tranvar::core::prelude::*;
//! use tranvar::pss::PssOptions;
//!
//! // A mismatched divider — the smallest possible mismatch analysis.
//! let mut ckt = Circuit::new();
//! let a = ckt.node("a");
//! let b = ckt.node("b");
//! ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
//! let r1 = ckt.add_resistor("R1", a, b, 1e3);
//! ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
//! ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-12);
//! ckt.annotate_resistor_mismatch(r1, 10.0);
//!
//! let mut opts = PssOptions::default();
//! opts.n_steps = 16;
//! let res = analyze(
//!     &ckt,
//!     &PssConfig::Driven { period: 1e-6, opts },
//!     &[MetricSpec::new("vout", Metric::DcAverage { node: b })],
//! )?;
//! println!("sigma(vout) = {:.3} mV", res.reports[0].sigma() * 1e3);
//! # Ok::<(), tranvar::core::CoreError>(())
//! ```
//!
//! Run the paper's experiments with the binaries in `tranvar-bench`
//! (`cargo run -p tranvar-bench --bin table2`, `--bin fig9`, ...); see
//! EXPERIMENTS.md for the full index.
//!
//! ## Performance architecture
//!
//! The hot path exploits the fact that a circuit's MNA sparsity pattern is
//! fixed: the sparse LU splits into one symbolic pivot analysis per circuit
//! plus numeric-only refactorizations per timestep
//! ([`num::SparseSymbolic`], [`num::SparseLu::refactor`]), every solver
//! offers zero-allocation and multi-RHS batched solves (`solve_into`,
//! `solve_multi`, `solve_multi_interleaved` — bit-for-bit identical per
//! RHS), and the transient sensitivity engine propagates all mismatch
//! parameters as one batched block across worker threads
//! ([`engine::TranOptions::threads`]). See ROADMAP.md's "Performance"
//! section and `BENCH_transens.json` for the measured trajectory.
//!
//! ## Sessions & campaigns
//!
//! One analysis call is the paper's unit of work; a variation-analysis
//! *service* runs that call across corners, supplies, sizings and mismatch
//! levels. Two layers turn the per-call library into that serving shape:
//!
//! - An [`engine::Session`] owns the solver choice, the symbolic-analysis
//!   cache keyed by MNA sparsity pattern, the reusable integration
//!   workspaces and the thread policy. Every analysis
//!   ([`engine::Session::dc_operating_point`], [`engine::Session::transient`],
//!   [`engine::Session::transient_with_sensitivities`],
//!   [`pss::shooting_pss_in`], [`pss::autonomous_pss_in`],
//!   [`core::analyze_in`]) borrows from it instead of allocating per call;
//!   the classic free functions remain as thin wrappers over a fresh
//!   session, bit-identical to before on the dense backend (the sparse
//!   backend's pivot-order replay is machine-precision identical — see
//!   [`engine::session`]).
//! - A [`core::Campaign`] evaluates named [`core::Scenario`]s — lists of
//!   numeric-only [`circuit::CircuitOverride`]s applied via
//!   [`circuit::Circuit::revalue`], which preserves the sparsity pattern —
//!   against one base circuit on worker sessions, sharing one PSS+LPTV
//!   solve across scenarios that differ only in mismatch σ. Results are
//!   byte-identical for any worker-thread count (dense backend) and to a
//!   sequential loop of per-call [`core::analyze`] calls; `BENCH_campaign.json`
//!   records the measured cached-vs-per-call speedup.
//!
//! Errors stay typed end-to-end: [`TranvarError`] unions every layer's
//! error with `From` impls, so campaign outcomes can be matched on rather
//! than stringified.
//!
//! ## Fault tolerance
//!
//! A long-running service cannot let one pathological circuit spin, blow
//! up, or take a worker down. The solve pipeline is guarded at four levels:
//!
//! - **Budgets** — [`engine::SolveBudget`] (from [`engine::BudgetLimits`]:
//!   max Newton iterations, max factorizations, wall-clock deadline) is a
//!   cooperative meter shared by every nested stage of a solve — DC
//!   homotopy, transient steps, PSS shooting rounds, LPTV passes.
//!   Exhaustion returns [`engine::EngineError::BudgetExceeded`] with the
//!   tripped limit and progress so far. The default is unlimited and
//!   costs a few atomic reads per Newton iteration.
//! - **Non-finite guards** — NaN/Inf in residuals, updates, or LU pivots
//!   fail fast as [`engine::EngineError::NonFinite`] /
//!   [`num::NumError::NonFinite`], deliberately distinct from
//!   [`num::NumError::Singular`]: a zero pivot may be rescued by gmin
//!   regularization, garbage operands need the model repaired.
//! - **Retry escalation** — [`engine::RetryPolicy`] re-attempts retryable
//!   failures ([`engine::is_retryable`]) up a bounded ladder: denser gmin
//!   schedule, more source steps, halved timestep, the other
//!   [`engine::SolverKind`]. Every attempt (and every homotopy stage) is
//!   recorded in [`engine::SolveDiagnostics`], so callers see exactly
//!   which path rescued a solve. The default policy is
//!   [`engine::RetryPolicy::none`] — results stay bit-identical unless
//!   you opt in (e.g. [`core::Campaign::with_retry`]).
//! - **Panic isolation** — [`core::Campaign`] catches worker panics,
//!   reports them as typed [`core::CoreError::Panic`] outcomes for the
//!   affected scenarios, retires the poisoned session, and keeps the
//!   rest of the campaign running; aggregates over zero successes are
//!   well-defined rather than NaN.
//!
//! All of it is testable deterministically: the `fault-inject` cargo
//! feature enables `engine::fault`, which forces singular/non-finite
//! factorizations at call *k*, poisons residuals, fails chosen homotopy
//! stages or retry rungs, panics at scenario *i*, and mocks the deadline
//! clock. With the feature off (the default) the hooks compile to inlined
//! no-ops.

#![warn(missing_docs)]

pub mod error;

pub use tranvar_circuit as circuit;
pub use tranvar_circuits as circuits;
pub use tranvar_core as core;
pub use tranvar_engine as engine;
pub use tranvar_lptv as lptv;
pub use tranvar_netlist as netlist;
pub use tranvar_num as num;
pub use tranvar_pss as pss;

pub use error::{http_status_of, TranvarError, WireStatus};
pub use tranvar_core::prelude;
