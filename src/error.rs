//! The workspace-wide error type.
//!
//! Every crate in the workspace carries its own typed error
//! ([`CircuitError`], [`NumError`], [`EngineError`], [`PssError`],
//! [`LptvError`], [`CoreError`]); [`TranvarError`] is the facade's union of
//! all of them, with `From` impls in both the per-crate and transitive
//! directions that matter for `?`-propagation. Campaign outcomes and
//! application code can therefore keep errors fully typed end-to-end —
//! matching on a `NoConvergence` at one corner of a scenario grid instead
//! of grepping a stringified message.
//!
//! ## Failure taxonomy for fault-tolerant callers
//!
//! The variants a resilient caller (a retry loop, a serving layer, a
//! campaign consumer) should distinguish — each with its wire identity
//! (stable code + HTTP status) from [`TranvarError::wire_status`]:
//!
//! - [`EngineError::BudgetExceeded`] (`engine.budget-exceeded`, 504) — a
//!   cooperative [`tranvar_engine::SolveBudget`] limit (Newton
//!   iterations, factorizations, or deadline) tripped mid-solve, with
//!   progress diagnostics attached. *Not retryable*: retrying re-spends
//!   a budget that is already gone; raise the budget or reject the
//!   request.
//! - [`EngineError::NonFinite`] / [`NumError::NonFinite`]
//!   (`engine.non-finite` / `num.non-finite`, 422) — NaN or Inf entered
//!   a residual, update, or factorization. Distinct from
//!   [`NumError::Singular`] (`num.singular`, 422 — a
//!   structurally/numerically zero pivot): singularity can often be
//!   rescued by gmin regularization or a different homotopy path,
//!   non-finite operands mean the model evaluation itself produced
//!   garbage.
//! - [`CoreError::Panic`] (`core.panic`, 500) — a campaign worker
//!   panicked; the panic was caught, the worker session retired, and the
//!   message preserved. The affected scenarios fail typed, the rest of
//!   the campaign completes.
//! - [`NumError::Internal`] (`num.internal`, 500) — a kernel workspace
//!   invariant was violated (a bug surfaced as a typed error rather than
//!   a panic in library code).
//!
//! Bad input (`circuit.*`, `*.bad-config`) answers 400. A SPICE deck
//! that fails to parse or elaborate (`netlist.*`, 422) is
//! *unprocessable*: the request was syntactically a valid submission but
//! its content cannot be turned into a circuit — every such error
//! carries the offending line and column. The serving layer
//! (`tranvar-serve`) adds its own request-level codes on top —
//! `serve.shed` (429, queue full, with `Retry-After`),
//! `serve.bad-request` / `serve.unknown-deck` (400), `serve.draining`
//! (503) — see the README's failure-taxonomy table for the full wire
//! contract.
//!
//! [`tranvar_engine::is_retryable`] encodes which engine errors the
//! [`tranvar_engine::RetryPolicy`] escalation ladder will re-attempt, and
//! [`tranvar_engine::SolveDiagnostics`] records the attempt trail of every
//! rescued (or abandoned) solve.

use std::error::Error;
use std::fmt;
use tranvar_circuit::CircuitError;
use tranvar_core::CoreError;
use tranvar_engine::EngineError;
use tranvar_lptv::LptvError;
use tranvar_netlist::NetlistError;
use tranvar_num::{FailureClass, NumError, WireFault};
use tranvar_pss::PssError;

/// The wire identity of a [`TranvarError`]: a stable machine-readable code
/// plus the HTTP status a serving layer should answer with.
///
/// Produced by [`TranvarError::wire_status`]. The codes are a public
/// contract — clients branch on them — so they only ever *gain* entries;
/// renaming or removing one is a breaking change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireStatus {
    /// Stable dot-separated error code, e.g. `"engine.budget-exceeded"`.
    pub code: &'static str,
    /// HTTP status for a serving layer: `400` bad input, `422` unstable
    /// solve, `504` exhausted budget/deadline, `500` internal fault.
    pub http: u16,
}

/// The HTTP status a [`FailureClass`] maps to. One place, exhaustive, so a
/// new class cannot ship without choosing its status.
pub fn http_status_of(class: FailureClass) -> u16 {
    match class {
        FailureClass::BadInput => 400,
        FailureClass::Unprocessable => 422,
        FailureClass::Unstable => 422,
        FailureClass::Exhausted => 504,
        FailureClass::Internal => 500,
    }
}

impl TranvarError {
    /// Map this error to its stable wire code and HTTP status.
    ///
    /// The match is exhaustive over [`TranvarError`]'s own variants and each
    /// arm delegates to that layer's own exhaustive `wire_fault()`
    /// classification, so adding a variant anywhere in the workspace is a
    /// compile error in the defining crate until it is classified. Queue
    /// shedding (HTTP 429) is not represented here: a shed request never
    /// produced a `TranvarError`, so the serving layer answers it directly.
    pub fn wire_status(&self) -> WireStatus {
        let fault: WireFault = match self {
            TranvarError::Circuit(e) => e.wire_fault(),
            TranvarError::Num(e) => e.wire_fault(),
            TranvarError::Engine(e) => e.wire_fault(),
            TranvarError::Pss(e) => e.wire_fault(),
            TranvarError::Lptv(e) => e.wire_fault(),
            TranvarError::Core(e) => e.wire_fault(),
            TranvarError::Netlist(e) => e.wire_fault(),
        };
        WireStatus {
            code: fault.code,
            http: http_status_of(fault.class),
        }
    }
}

/// Any error the `tranvar` workspace can produce, preserved with full type
/// information.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TranvarError {
    /// Circuit construction/lookup failure.
    Circuit(CircuitError),
    /// Numerical-kernel failure (singular matrix, ...).
    Num(NumError),
    /// Engine-analysis failure (DC/transient/sensitivity/Monte-Carlo).
    Engine(EngineError),
    /// Periodic steady-state failure.
    Pss(PssError),
    /// LPTV/periodic-solver failure.
    Lptv(LptvError),
    /// Analysis-flow failure (metrics, campaign configuration).
    Core(CoreError),
    /// SPICE deck parse/elaboration failure (spanned).
    Netlist(NetlistError),
}

impl fmt::Display for TranvarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranvarError::Circuit(e) => write!(f, "circuit error: {e}"),
            TranvarError::Num(e) => write!(f, "numerical error: {e}"),
            TranvarError::Engine(e) => write!(f, "engine error: {e}"),
            TranvarError::Pss(e) => write!(f, "pss error: {e}"),
            TranvarError::Lptv(e) => write!(f, "lptv error: {e}"),
            TranvarError::Core(e) => write!(f, "analysis error: {e}"),
            TranvarError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for TranvarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TranvarError::Circuit(e) => Some(e),
            TranvarError::Num(e) => Some(e),
            TranvarError::Engine(e) => Some(e),
            TranvarError::Pss(e) => Some(e),
            TranvarError::Lptv(e) => Some(e),
            TranvarError::Core(e) => Some(e),
            TranvarError::Netlist(e) => Some(e),
        }
    }
}

impl From<CircuitError> for TranvarError {
    fn from(e: CircuitError) -> Self {
        TranvarError::Circuit(e)
    }
}
impl From<NumError> for TranvarError {
    fn from(e: NumError) -> Self {
        TranvarError::Num(e)
    }
}
impl From<EngineError> for TranvarError {
    fn from(e: EngineError) -> Self {
        TranvarError::Engine(e)
    }
}
impl From<PssError> for TranvarError {
    fn from(e: PssError) -> Self {
        TranvarError::Pss(e)
    }
}
impl From<LptvError> for TranvarError {
    fn from(e: LptvError) -> Self {
        TranvarError::Lptv(e)
    }
}
impl From<CoreError> for TranvarError {
    fn from(e: CoreError) -> Self {
        TranvarError::Core(e)
    }
}
impl From<NetlistError> for TranvarError {
    fn from(e: NetlistError) -> Self {
        TranvarError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer_with_source_and_display() {
        let cases: Vec<TranvarError> = vec![
            CircuitError::UnknownNode { name: "x".into() }.into(),
            NumError::Singular { col: 1 }.into(),
            EngineError::BadConfig("dt".into()).into(),
            PssError::BadConfig("period".into()).into(),
            LptvError::MissingRecords.into(),
            CoreError::Metric("no crossing".into()).into(),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_some(), "{e:?}");
        }
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TranvarError>();
    }

    #[test]
    fn question_mark_propagation_compiles_across_layers() {
        fn engine_stage() -> Result<(), EngineError> {
            Err(EngineError::BadConfig("synthetic".into()))
        }
        fn pipeline() -> Result<(), TranvarError> {
            engine_stage()?;
            Ok(())
        }
        assert!(matches!(pipeline(), Err(TranvarError::Engine(_))));
    }

    #[test]
    fn wire_status_covers_every_failure_shape() {
        use std::time::Duration;
        use tranvar_engine::{BudgetKind, BudgetProgress};

        let budget_exceeded: TranvarError = EngineError::BudgetExceeded {
            analysis: "tran".into(),
            progress: BudgetProgress {
                newton_iters: 10,
                factorizations: 4,
                elapsed: Duration::from_millis(5),
                exhausted: BudgetKind::Deadline,
            },
        }
        .into();

        let cases: Vec<(TranvarError, &str, u16)> = vec![
            // Bad decks and configs are the client's fault: 400.
            (
                CircuitError::UnknownNode { name: "x".into() }.into(),
                "circuit.unknown-node",
                400,
            ),
            (
                CircuitError::InvalidParameter {
                    device: "R1".into(),
                    reason: "negative".into(),
                }
                .into(),
                "circuit.invalid-parameter",
                400,
            ),
            (
                EngineError::BadConfig("dt".into()).into(),
                "engine.bad-config",
                400,
            ),
            (
                PssError::BadConfig("period".into()).into(),
                "pss.bad-config",
                400,
            ),
            (
                LptvError::MissingRecords.into(),
                "lptv.missing-records",
                400,
            ),
            (
                CoreError::BadConfig("workers".into()).into(),
                "core.bad-config",
                400,
            ),
            // Unprocessable decks: 422, with the offending span preserved.
            (
                NetlistError::Syntax {
                    span: tranvar_netlist::Span::new(3, 7),
                    what: "expected a node".into(),
                }
                .into(),
                "netlist.syntax",
                422,
            ),
            (
                NetlistError::DanglingNode {
                    span: tranvar_netlist::Span::new(4, 1),
                    node: "x".into(),
                }
                .into(),
                "netlist.dangling-node",
                422,
            ),
            // Numerically unstable solves on a well-formed request: 422.
            (NumError::Singular { col: 1 }.into(), "num.singular", 422),
            (
                EngineError::NoConvergence {
                    analysis: "dc".into(),
                    detail: "stalled".into(),
                }
                .into(),
                "engine.no-convergence",
                422,
            ),
            (
                PssError::NoOscillation {
                    detail: "flat".into(),
                }
                .into(),
                "pss.no-oscillation",
                422,
            ),
            (
                CoreError::Metric("no crossing".into()).into(),
                "core.metric",
                422,
            ),
            // Exhausted budget/deadline: 504.
            (budget_exceeded, "engine.budget-exceeded", 504),
            // Panics and invariant violations are our fault: 500.
            (
                CoreError::Panic {
                    context: "scenario 3".into(),
                    message: "boom".into(),
                }
                .into(),
                "core.panic",
                500,
            ),
            (
                NumError::Internal {
                    what: "workspace size",
                }
                .into(),
                "num.internal",
                500,
            ),
        ];
        for (err, code, http) in cases {
            let ws = err.wire_status();
            assert_eq!(ws.code, code, "{err:?}");
            assert_eq!(ws.http, http, "{err:?}");
        }

        // Delegation through wrapper layers preserves the inner identity.
        let nested: TranvarError =
            CoreError::Engine(EngineError::Num(NumError::Singular { col: 0 })).into();
        assert_eq!(nested.wire_status().code, "num.singular");
        assert_eq!(nested.wire_status().http, 422);
    }
}
