//! The workspace-wide error type.
//!
//! Every crate in the workspace carries its own typed error
//! ([`CircuitError`], [`NumError`], [`EngineError`], [`PssError`],
//! [`LptvError`], [`CoreError`]); [`TranvarError`] is the facade's union of
//! all of them, with `From` impls in both the per-crate and transitive
//! directions that matter for `?`-propagation. Campaign outcomes and
//! application code can therefore keep errors fully typed end-to-end —
//! matching on a `NoConvergence` at one corner of a scenario grid instead
//! of grepping a stringified message.
//!
//! ## Failure taxonomy for fault-tolerant callers
//!
//! The variants a resilient caller (a retry loop, a serving layer, a
//! campaign consumer) should distinguish:
//!
//! - [`EngineError::BudgetExceeded`] — a cooperative
//!   [`tranvar_engine::SolveBudget`] limit (Newton iterations,
//!   factorizations, or deadline) tripped mid-solve, with progress
//!   diagnostics attached. *Not retryable*: retrying re-spends a budget
//!   that is already gone; raise the budget or reject the request.
//! - [`EngineError::NonFinite`] / [`NumError::NonFinite`] — NaN or Inf
//!   entered a residual, update, or factorization. Distinct from
//!   [`NumError::Singular`] (a structurally/numerically zero pivot):
//!   singularity can often be rescued by gmin regularization or a
//!   different homotopy path, non-finite operands mean the model
//!   evaluation itself produced garbage.
//! - [`CoreError::Panic`] — a campaign worker panicked; the panic was
//!   caught, the worker session retired, and the message preserved. The
//!   affected scenarios fail typed, the rest of the campaign completes.
//! - [`NumError::Internal`] — a kernel workspace invariant was violated
//!   (a bug surfaced as a typed error rather than a panic in library
//!   code).
//!
//! [`tranvar_engine::is_retryable`] encodes which engine errors the
//! [`tranvar_engine::RetryPolicy`] escalation ladder will re-attempt, and
//! [`tranvar_engine::SolveDiagnostics`] records the attempt trail of every
//! rescued (or abandoned) solve.

use std::error::Error;
use std::fmt;
use tranvar_circuit::CircuitError;
use tranvar_core::CoreError;
use tranvar_engine::EngineError;
use tranvar_lptv::LptvError;
use tranvar_num::NumError;
use tranvar_pss::PssError;

/// Any error the `tranvar` workspace can produce, preserved with full type
/// information.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum TranvarError {
    /// Circuit construction/lookup failure.
    Circuit(CircuitError),
    /// Numerical-kernel failure (singular matrix, ...).
    Num(NumError),
    /// Engine-analysis failure (DC/transient/sensitivity/Monte-Carlo).
    Engine(EngineError),
    /// Periodic steady-state failure.
    Pss(PssError),
    /// LPTV/periodic-solver failure.
    Lptv(LptvError),
    /// Analysis-flow failure (metrics, campaign configuration).
    Core(CoreError),
}

impl fmt::Display for TranvarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranvarError::Circuit(e) => write!(f, "circuit error: {e}"),
            TranvarError::Num(e) => write!(f, "numerical error: {e}"),
            TranvarError::Engine(e) => write!(f, "engine error: {e}"),
            TranvarError::Pss(e) => write!(f, "pss error: {e}"),
            TranvarError::Lptv(e) => write!(f, "lptv error: {e}"),
            TranvarError::Core(e) => write!(f, "analysis error: {e}"),
        }
    }
}

impl Error for TranvarError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TranvarError::Circuit(e) => Some(e),
            TranvarError::Num(e) => Some(e),
            TranvarError::Engine(e) => Some(e),
            TranvarError::Pss(e) => Some(e),
            TranvarError::Lptv(e) => Some(e),
            TranvarError::Core(e) => Some(e),
        }
    }
}

impl From<CircuitError> for TranvarError {
    fn from(e: CircuitError) -> Self {
        TranvarError::Circuit(e)
    }
}
impl From<NumError> for TranvarError {
    fn from(e: NumError) -> Self {
        TranvarError::Num(e)
    }
}
impl From<EngineError> for TranvarError {
    fn from(e: EngineError) -> Self {
        TranvarError::Engine(e)
    }
}
impl From<PssError> for TranvarError {
    fn from(e: PssError) -> Self {
        TranvarError::Pss(e)
    }
}
impl From<LptvError> for TranvarError {
    fn from(e: LptvError) -> Self {
        TranvarError::Lptv(e)
    }
}
impl From<CoreError> for TranvarError {
    fn from(e: CoreError) -> Self {
        TranvarError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_every_layer_with_source_and_display() {
        let cases: Vec<TranvarError> = vec![
            CircuitError::UnknownNode { name: "x".into() }.into(),
            NumError::Singular { col: 1 }.into(),
            EngineError::BadConfig("dt".into()).into(),
            PssError::BadConfig("period".into()).into(),
            LptvError::MissingRecords.into(),
            CoreError::Metric("no crossing".into()).into(),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_some(), "{e:?}");
        }
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TranvarError>();
    }

    #[test]
    fn question_mark_propagation_compiles_across_layers() {
        fn engine_stage() -> Result<(), EngineError> {
            Err(EngineError::BadConfig("synthetic".into()))
        }
        fn pipeline() -> Result<(), TranvarError> {
            engine_stage()?;
            Ok(())
        }
        assert!(matches!(pipeline(), Err(TranvarError::Engine(_))));
    }
}
