//! Shooting-Newton periodic steady-state (PSS) analysis.
//!
//! Instead of integrating through the whole settling transient, shooting
//! finds the fixed point of the one-period flow map `Φ_T`: solve
//! `Φ_T(x₀) − x₀ = 0` with Newton, whose Jacobian is the monodromy matrix
//! `M = ∂Φ_T/∂x₀` assembled from the per-step records of
//! [`tranvar_engine::integrate_cycle`] (paper Section IV, refs. \[12\],\[16\]).
//!
//! Because shooting is a root-finder rather than a forward simulation it
//! converges to *unstable or marginally stable* periodic orbits as well —
//! which is exactly what the clocked-comparator metastability testbench of
//! paper Fig. 6 requires.

use crate::error::PssError;
use tranvar_circuit::{Circuit, NodeId};
use tranvar_engine::dc::{DcOptions, NewtonOptions};
use tranvar_engine::tran::{
    integrate_cycle_adaptive_with, integrate_cycle_with, CycleResult, CycleWorkspace, Integrator,
    StepControl, StepRecord,
};
use tranvar_engine::{
    chunk_ranges, effective_threads_for_work, map_scoped, Session, SessionOptions,
    MIN_WORK_PER_THREAD,
};
use tranvar_num::dense::vecops;
use tranvar_num::{DMat, NumError};

/// Last state of an integrated cycle, as a typed error instead of a panic
/// when the cycle is empty (`n_steps == 0` should be rejected upstream, but
/// a kernel bug must not take down a whole campaign worker).
pub(crate) fn last_state(cyc: &CycleResult) -> Result<&Vec<f64>, PssError> {
    cyc.states.last().ok_or(PssError::Num(NumError::Internal {
        what: "cycle integration produced no states",
    }))
}

/// PSS analysis controls.
#[derive(Clone, Debug, PartialEq)]
pub struct PssOptions {
    /// Time steps per period.
    pub n_steps: usize,
    /// Maximum shooting-Newton iterations.
    pub max_iter: usize,
    /// Convergence tolerance on `|Φ(x₀) − x₀|_∞`.
    pub tol: f64,
    /// Integration scheme (trapezoidal recommended for oscillators).
    pub method: Integrator,
    /// Inner Newton controls per timestep.
    pub newton: NewtonOptions,
    /// Node-row gmin.
    pub gmin: f64,
    /// Forward warm-up cycles integrated before shooting starts.
    pub warmup_cycles: usize,
    /// Clamp on the shooting update ∞-norm.
    pub update_limit: f64,
    /// Worker threads for the monodromy column propagation
    /// ([`monodromy_threaded`]): `0` uses all available cores, `1` runs
    /// single-threaded. Results are bit-identical for any thread count —
    /// each state-space column's arithmetic is independent of the
    /// partitioning (mirrors [`tranvar_engine::TranOptions::threads`]).
    pub threads: usize,
    /// Cycle-grid selection: [`StepControl::Fixed`] integrates every cycle
    /// on the uniform `period / n_steps` grid (the bit-identical reference
    /// path); [`StepControl::Adaptive`] lets the LTE controller pick the
    /// accepted grid per cycle, starting each cycle at `period / n_steps`.
    /// The per-step records carry their own `h`/`θ`, so the monodromy and
    /// every LPTV consumer follow whichever grid was accepted.
    ///
    /// Because the adaptive grid moves with the shooting iterate `x₀`, the
    /// cycle map is only reproducible to the LTE tolerance: set [`tol`]
    /// at or above `reltol` when using the adaptive mode (the 1e-9 default
    /// is tuned for the fixed grid and will report `NoConvergence`).
    ///
    /// [`tol`]: PssOptions::tol
    pub step_control: StepControl,
}

impl Default for PssOptions {
    fn default() -> Self {
        PssOptions {
            n_steps: 256,
            max_iter: 40,
            tol: 1e-9,
            method: Integrator::BackwardEuler,
            newton: NewtonOptions::default(),
            gmin: 1e-12,
            warmup_cycles: 2,
            update_limit: 0.6,
            threads: 0,
            step_control: StepControl::Fixed,
        }
    }
}

/// Integrates one period under [`PssOptions::step_control`]: the uniform
/// `period / n_steps` grid in fixed mode, the LTE-accepted grid (seeded at
/// `period / n_steps`) in adaptive mode. Shared by the driven and
/// autonomous shooting drivers so every cycle of one solve uses the same
/// grid policy.
#[allow(clippy::too_many_arguments)]
pub(crate) fn integrate_pss_cycle(
    ckt: &Circuit,
    ws: &mut CycleWorkspace,
    x0: &[f64],
    t0: f64,
    period: f64,
    opts: &PssOptions,
    newton: &NewtonOptions,
    record: bool,
) -> Result<CycleResult, tranvar_engine::EngineError> {
    match opts.step_control {
        StepControl::Fixed => integrate_cycle_with(
            ckt,
            ws,
            x0,
            t0,
            period,
            opts.n_steps,
            opts.method,
            newton,
            opts.gmin,
            record,
        ),
        StepControl::Adaptive(a) => integrate_cycle_adaptive_with(
            ckt,
            ws,
            x0,
            t0,
            period,
            period / opts.n_steps.max(1) as f64,
            &a,
            opts.method,
            newton,
            opts.gmin,
            record,
        ),
    }
}

/// A converged periodic steady state with everything the LPTV layer needs.
#[derive(Clone, Debug)]
pub struct PssSolution {
    /// Period (s); for autonomous circuits this is the *solved* period.
    pub period: f64,
    /// Sample times spanning one period (uniform with
    /// [`PssOptions::n_steps`] steps in fixed mode, the accepted
    /// non-uniform grid in adaptive mode).
    pub times: Vec<f64>,
    /// One state per sample time; `states[0] ≈ states.last()`.
    pub states: Vec<Vec<f64>>,
    /// Per-step factorization records (one per accepted step, each with
    /// its own `h`/`θ`).
    pub records: Vec<StepRecord>,
    /// Monodromy matrix `∂Φ_T/∂x₀`.
    pub monodromy: DMat<f64>,
    /// Integration scheme used (θ needed by the LPTV source terms).
    pub method: Integrator,
    /// `∂Φ/∂T` — only present for autonomous solutions.
    pub dphi_dt: Option<Vec<f64>>,
    /// Unknown index pinned by the oscillator phase condition.
    pub phase_unknown: Option<usize>,
    /// Final shooting residual ∞-norm.
    pub residual: f64,
}

impl PssSolution {
    /// Fundamental frequency `1/T`.
    pub fn fundamental(&self) -> f64 {
        1.0 / self.period
    }

    /// Extracts one node's periodic waveform (`n_steps + 1` samples).
    pub fn node_waveform(&self, ckt: &Circuit, node: NodeId) -> Vec<f64> {
        self.states.iter().map(|x| ckt.voltage(x, node)).collect()
    }

    /// Time-derivative of a node waveform by centered differences on the
    /// periodic grid (used for delay-sensitivity extraction).
    ///
    /// On a uniform grid this is the historical fixed-step arithmetic
    /// (bit-identical to pre-adaptive results); on a non-uniform accepted
    /// grid the differences are weighted by the actual periodic sample
    /// spacings.
    pub fn node_slope(&self, ckt: &Circuit, node: NodeId) -> Vec<f64> {
        let w = self.node_waveform(ckt, node);
        let n = w.len() - 1; // w[0] == w[n]
        let mut out = vec![0.0; n + 1];
        if tranvar_num::interp::is_uniform_grid(&self.times, 1e-9) {
            let h = self.period / n as f64;
            for (i, o) in out.iter_mut().enumerate().take(n) {
                let prev = w[(i + n - 1) % n];
                let next = w[(i + 1) % n];
                *o = (next - prev) / (2.0 * h);
            }
        } else {
            for (i, o) in out.iter_mut().enumerate().take(n) {
                // i runs over 0..n, so the "next" sample is always i+1 (at
                // i = n−1 that is the period endpoint, which duplicates
                // sample 0); only the "previous" sample of i = 0 wraps,
                // through t = 0 ≡ period.
                let (prev, t_prev) = if i == 0 {
                    (w[n - 1], self.times[n - 1] - self.period)
                } else {
                    (w[i - 1], self.times[i - 1])
                };
                *o = (w[i + 1] - prev) / (self.times[i + 1] - t_prev);
            }
        }
        out[n] = out[0];
        out
    }
}

/// Propagates the monodromy matrix `M = ∏ J_k⁻¹ B_k` from cycle records.
///
/// Single-threaded convenience wrapper around [`monodromy_threaded`]; the
/// shooting drivers pass [`PssOptions::threads`] through instead.
pub fn monodromy(records: &[StepRecord], n: usize) -> DMat<f64> {
    monodromy_threaded(records, n, 1)
}

/// Batched, threaded monodromy accumulation.
///
/// The `n` columns of `M` propagate independently through the record
/// product, so they are split into contiguous chunks — one std scoped
/// worker per chunk (`threads` in the [`tranvar_engine::TranOptions::threads`]
/// convention: `0` = all cores). Each worker stages its chunk as an
/// RHS-interleaved block and advances it with one
/// [`tranvar_engine::FactoredJacobian::solve_multi_lanes`] sweep per
/// record: every factor entry becomes a chunk-wide contiguous axpy through
/// the compile-time lane kernels, every
/// factor row is read once per record instead of once per column, and all
/// buffers are preallocated outside the record loop.
///
/// Per-column arithmetic is independent of the chunking, so the result is
/// bit-for-bit identical for any thread count and to the per-column
/// sequential reference [`monodromy_seq`].
pub fn monodromy_threaded(records: &[StepRecord], n: usize, threads: usize) -> DMat<f64> {
    let mut m = DMat::<f64>::identity(n);
    if n == 0 {
        return m;
    }
    // Auto mode stays single-threaded when the whole accumulation is too
    // small to amortize a thread spawn (work proxy: one dense triangular
    // sweep per record per column ≈ records·n² flops; see
    // `effective_threads_for_work`).
    let threads =
        effective_threads_for_work(threads, n, records.len() * n * n, MIN_WORK_PER_THREAD);
    let chunk = n.div_ceil(threads).max(1);
    let propagate = |c0: usize, p: usize| -> Vec<f64> {
        // Interleaved identity columns: cur[i·p + j] = I[(i, c0 + j)].
        let mut cur = vec![0.0; n * p];
        for j in 0..p {
            cur[(c0 + j) * p + j] = 1.0;
        }
        let mut nxt = vec![0.0; n * p];
        let mut scratch = vec![0.0; tranvar_num::lanes_scratch_len(n, p)];
        for rec in records {
            rec.b.mat_vec_interleaved(&cur, &mut nxt, p);
            rec.lu.solve_multi_lanes(&mut nxt, p, &mut scratch);
            std::mem::swap(&mut cur, &mut nxt);
        }
        cur
    };
    // One scoped worker per column chunk via the shared engine helper (a
    // single chunk runs inline on the calling thread).
    let blocks = map_scoped(chunk_ranges(n, chunk), |(c0, p)| (c0, propagate(c0, p)));
    for (c0, blk) in blocks {
        let p = blk.len() / n;
        for j in 0..p {
            for i in 0..n {
                m[(i, c0 + j)] = blk[i * p + j];
            }
        }
    }
    m
}

/// Sequential per-column monodromy reference: one coupling product and one
/// allocating solve per column per record — the pre-batching behavior,
/// retained for validation and as the benchmark baseline
/// (`BENCH_pss.json`).
pub fn monodromy_seq(records: &[StepRecord], n: usize) -> DMat<f64> {
    let mut m = DMat::<f64>::identity(n);
    let mut col = vec![0.0; n];
    for rec in records {
        let mut next = DMat::<f64>::zeros(n, n);
        for j in 0..n {
            for (i, c) in col.iter_mut().enumerate() {
                *c = m[(i, j)];
            }
            let bx = rec.b.mat_vec(&col);
            let sx = rec.lu.solve(&bx);
            for (i, v) in sx.iter().enumerate() {
                next[(i, j)] = *v;
            }
        }
        m = next;
    }
    m
}

/// Solves the driven PSS problem for a circuit whose stimuli are periodic in
/// `period` (paper Section IV-B: every source must be DC or divide the
/// period).
///
/// # Errors
///
/// - [`PssError::NotPeriodic`] if a source is incompatible with `period`,
/// - [`PssError::NoConvergence`] if shooting stalls,
/// - engine errors from the inner integrations.
pub fn shooting_pss(
    ckt: &Circuit,
    period: f64,
    opts: &PssOptions,
) -> Result<PssSolution, PssError> {
    shooting_pss_in(
        &mut Session::new(SessionOptions {
            solver: opts.newton.solver,
            threads: opts.threads,
        }),
        ckt,
        period,
        opts,
    )
}

/// [`shooting_pss`] borrowing an analysis [`Session`]: the DC seed, every
/// warm-up cycle and every shooting round run through the session's
/// workspaces, so repeated solves on one circuit (scenario campaigns,
/// corner sweeps) perform no per-call allocation or symbolic re-analysis.
/// The session's solver choice overrides [`NewtonOptions::solver`], and its
/// thread policy is applied when [`PssOptions::threads`] is automatic (`0`).
///
/// A fresh session reproduces [`shooting_pss`] bit-for-bit; a reused one
/// is bit-identical on the dense backend. On the sparse backend the
/// session's pivot-order replay (across DC homotopy stages and reused
/// workspaces) is identical to machine precision only — see
/// [`tranvar_engine::session`].
///
/// # Errors
///
/// See [`shooting_pss`].
pub fn shooting_pss_in(
    session: &mut Session,
    ckt: &Circuit,
    period: f64,
    opts: &PssOptions,
) -> Result<PssSolution, PssError> {
    check_periodicity(ckt, period)?;
    let n = ckt.n_unknowns();
    let newton = NewtonOptions {
        solver: session.solver(),
        ..opts.newton.clone()
    };
    let threads = session.effective_threads(opts.threads);

    // Initial guess: DC operating point, then a few forward cycles.
    let mut x0 = session.dc_operating_point(
        ckt,
        &DcOptions {
            newton: newton.clone(),
            ..DcOptions::default()
        },
    )?;
    // The session's cycle workspace serves every cycle this solve
    // integrates: warm-up cycles and shooting rounds share the assembly
    // buffers, Newton vectors and factorization staging instead of
    // re-allocating them per round — and a warm session extends that reuse
    // across solves.
    let ws = session.cycle_workspace();
    for _ in 0..opts.warmup_cycles {
        let cyc = integrate_pss_cycle(ckt, ws, &x0, 0.0, period, opts, &newton, false)?;
        x0 = last_state(&cyc)?.clone();
    }

    let mut last_residual = f64::INFINITY;
    for _iter in 0..opts.max_iter {
        // The shooting loop is itself a Newton iteration on the cycle map;
        // charge it to the same budget its inner integrations draw from.
        newton.budget.begin_iteration("pss shooting")?;
        let cyc = integrate_pss_cycle(ckt, ws, &x0, 0.0, period, opts, &newton, true)?;
        let x_end = last_state(&cyc)?.clone();
        let r = vecops::sub(&x_end, &x0);
        last_residual = vecops::norm_inf(&r);
        let m = monodromy_threaded(&cyc.records, n, threads);
        if last_residual < opts.tol {
            return Ok(finish(
                cyc,
                period,
                m,
                opts.method,
                None,
                None,
                last_residual,
            ));
        }
        // Newton: (M − I)·Δ = −r.
        let mut a = m.clone();
        for i in 0..n {
            a[(i, i)] -= 1.0;
        }
        let mut delta = a.lu()?.solve(&r);
        vecops::scale(&mut delta, -1.0);
        let dmax = vecops::norm_inf(&delta);
        if dmax > opts.update_limit {
            let k = opts.update_limit / dmax;
            vecops::scale(&mut delta, k);
        }
        for (xi, di) in x0.iter_mut().zip(delta.iter()) {
            *xi += di;
        }
    }
    Err(PssError::NoConvergence {
        analysis: "shooting".into(),
        detail: format!(
            "residual {last_residual:.3e} after {} iterations (tol {:.1e})",
            opts.max_iter, opts.tol
        ),
    })
}

pub(crate) fn finish(
    cyc: CycleResult,
    period: f64,
    monodromy: DMat<f64>,
    method: Integrator,
    dphi_dt: Option<Vec<f64>>,
    phase_unknown: Option<usize>,
    residual: f64,
) -> PssSolution {
    PssSolution {
        period,
        times: cyc.times,
        states: cyc.states,
        records: cyc.records,
        monodromy,
        method,
        dphi_dt,
        phase_unknown,
        residual,
    }
}

pub(crate) fn check_periodicity(ckt: &Circuit, period: f64) -> Result<(), PssError> {
    if period <= 0.0 {
        return Err(PssError::BadConfig("period must be positive".into()));
    }
    for (i, dev) in ckt.devices().iter().enumerate() {
        let wave = match dev {
            tranvar_circuit::Device::Vsource { wave, .. } => wave,
            tranvar_circuit::Device::Isource { wave, .. } => wave,
            _ => continue,
        };
        if !wave.is_periodic_in(period) {
            return Err(PssError::NotPeriodic {
                device: ckt.label(tranvar_circuit::DeviceId::from_index(i)).into(),
                period,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::{Pulse, Waveform};

    /// Driven RC: the PSS of a sine-driven RC matches the AC phasor.
    #[test]
    fn sine_driven_rc_matches_ac() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let freq = 1.0e5;
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq,
                delay: 0.0,
            },
        );
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1.59155e-9); // fc = 1e5 Hz
        let mut opts = PssOptions::default();
        opts.method = Integrator::Trapezoidal;
        opts.n_steps = 512;
        let sol = shooting_pss(&ckt, 1.0 / freq, &opts).unwrap();
        assert!(sol.residual < 1e-9);
        // |H| at the corner = 1/√2; amplitude of b's waveform should match.
        let w = sol.node_waveform(&ckt, b);
        let amp = tranvar_num::fft::fundamental_amplitude(&w[..w.len() - 1]);
        assert!((amp - 1.0 / 2.0_f64.sqrt()).abs() < 2e-3, "amplitude {amp}");
    }

    /// Pulse-driven RC: check `x(T) = x(0)` and periodic repeatability.
    #[test]
    fn pulse_driven_rc_is_periodic() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let period = 10e-6;
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 4e-6,
                period,
            }),
        );
        ckt.add_resistor("R1", a, b, 10e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9); // tau = 10 us >> period
        let sol = shooting_pss(&ckt, period, &PssOptions::default()).unwrap();
        let first = &sol.states[0];
        let last = sol.states.last().unwrap();
        for (u, v) in first.iter().zip(last.iter()) {
            assert!((u - v).abs() < 1e-8);
        }
        // The slow RC reaches a ripple steady state straddling the duty-cycle
        // average (~0.4): forward simulation from DC would need many cycles.
        let w = sol.node_waveform(&ckt, b);
        let mean = w[..w.len() - 1].iter().sum::<f64>() / (w.len() - 1) as f64;
        assert!((mean - 0.4).abs() < 0.02, "ripple mean {mean}");
    }

    /// Adaptive cycle integration inside shooting: same pulse-driven RC as
    /// above, solved on an LTE-controlled grid. The orbit must still close,
    /// the stored grid must be non-uniform with matching per-step records,
    /// and the ripple mean (now time-weighted) must agree with the fixed-grid
    /// reference.
    #[test]
    fn adaptive_shooting_matches_fixed_reference() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let period = 10e-6;
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 4e-6,
                period,
            }),
        );
        ckt.add_resistor("R1", a, b, 10e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
        let mut opts = PssOptions::default();
        opts.step_control = StepControl::Adaptive(tranvar_engine::AdaptiveOptions {
            reltol: 1e-4,
            abstol: 1e-7,
            ..tranvar_engine::AdaptiveOptions::default()
        });
        // The adaptive grid moves with x0, so the cycle map is only accurate
        // to the LTE tolerance: the shooting tolerance must sit at or above
        // it (see the `step_control` field docs).
        opts.tol = 1e-4;
        let sol = shooting_pss(&ckt, period, &opts).unwrap();
        assert!(sol.residual < opts.tol);
        // Orbit closes to within the shooting tolerance.
        let first = &sol.states[0];
        let last = sol.states.last().unwrap();
        for (u, v) in first.iter().zip(last.iter()) {
            assert!((u - v).abs() < 2.0 * opts.tol);
        }
        assert_eq!(sol.times[0], 0.0);
        assert_eq!(*sol.times.last().unwrap(), period);
        assert_eq!(sol.records.len(), sol.states.len() - 1);
        for (k, rec) in sol.records.iter().enumerate() {
            assert_eq!(rec.t1, sol.times[k + 1]);
            assert_eq!(rec.h, sol.times[k + 1] - sol.times[k]);
        }
        // The pulse edges force a genuinely non-uniform grid.
        assert!(!tranvar_num::interp::is_uniform_grid(&sol.times, 1e-9));
        // Time-weighted ripple mean matches the fixed-grid duty-cycle value.
        let w = sol.node_waveform(&ckt, b);
        let mean = tranvar_num::interp::time_weighted_mean(&sol.times, &w);
        assert!((mean - 0.4).abs() < 0.02, "ripple mean {mean}");
    }

    /// An adaptive ring-oscillator PSS (autonomous path) is exercised in
    /// `autonomous.rs`; here we check the driven dispatch helper directly.
    #[test]
    fn integrate_pss_cycle_dispatches_by_mode() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
        let period = 1e-5;
        let newton = NewtonOptions::default();
        let x0 = vec![0.0; ckt.n_unknowns()];
        let mut ws = CycleWorkspace::new();
        let fixed = PssOptions::default();
        let cyc =
            integrate_pss_cycle(&ckt, &mut ws, &x0, 0.0, period, &fixed, &newton, false).unwrap();
        assert_eq!(cyc.states.len(), fixed.n_steps + 1);
        let mut adap = PssOptions::default();
        adap.step_control = StepControl::Adaptive(tranvar_engine::AdaptiveOptions::default());
        let cyc =
            integrate_pss_cycle(&ckt, &mut ws, &x0, 0.0, period, &adap, &newton, false).unwrap();
        // The LTE controller needs far fewer steps on this mild RC.
        assert!(cyc.states.len() < fixed.n_steps / 2, "{}", cyc.states.len());
        assert_eq!(*cyc.times.last().unwrap(), period);
    }

    #[test]
    fn monodromy_of_rc_decays() {
        // For a linear RC with tau, the monodromy eigenvalue along the cap
        // state is exp(-T/tau).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let period = 1e-3;
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-6); // tau = 1 ms
        let mut opts = PssOptions::default();
        opts.method = Integrator::Trapezoidal;
        opts.n_steps = 1024;
        let sol = shooting_pss(&ckt, period, &opts).unwrap();
        // The (b,b) monodromy entry is the decay of a cap-voltage kick.
        let ib = ckt.unknown_of_node(b).unwrap();
        let expect = (-1.0f64).exp();
        assert!(
            (sol.monodromy[(ib, ib)] - expect).abs() < 1e-3,
            "M_bb = {} vs {expect}",
            sol.monodromy[(ib, ib)]
        );
    }

    /// The interleaved/threaded accumulation must reproduce the per-column
    /// sequential reference exactly, for every thread count.
    #[test]
    fn threaded_monodromy_matches_sequential_reference() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let c = ckt.node("c");
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Sin {
                offset: 0.5,
                ampl: 0.5,
                freq: 1.0e5,
                delay: 0.0,
            },
        );
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
        ckt.add_resistor("R2", b, c, 2e3);
        ckt.add_capacitor("C2", c, NodeId::GROUND, 0.5e-9);
        let mut opts = PssOptions::default();
        opts.n_steps = 64;
        opts.method = Integrator::Trapezoidal;
        let sol = shooting_pss(&ckt, 1.0e-5, &opts).unwrap();
        let n = ckt.n_unknowns();
        let reference = monodromy_seq(&sol.records, n);
        for threads in [1usize, 2, 3, 8] {
            let m = monodromy_threaded(&sol.records, n, threads);
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        m[(i, j)].to_bits() == reference[(i, j)].to_bits(),
                        "threads {threads}: M[{i}][{j}] = {} vs seq {}",
                        m[(i, j)],
                        reference[(i, j)]
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_incommensurate_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: 3.0e5,
                delay: 0.0,
            },
        );
        ckt.add_resistor("R1", a, NodeId::GROUND, 1e3);
        let err = shooting_pss(&ckt, 1.0 / 2.0e5, &PssOptions::default());
        assert!(matches!(err, Err(PssError::NotPeriodic { .. })));
    }
}
