//! Shooting-Newton periodic steady-state (PSS) analysis.
//!
//! Instead of integrating through the whole settling transient, shooting
//! finds the fixed point of the one-period flow map `Φ_T`: solve
//! `Φ_T(x₀) − x₀ = 0` with Newton, whose Jacobian is the monodromy matrix
//! `M = ∂Φ_T/∂x₀` assembled from the per-step records of
//! [`tranvar_engine::integrate_cycle`] (paper Section IV, refs. [12],[16]).
//!
//! Because shooting is a root-finder rather than a forward simulation it
//! converges to *unstable or marginally stable* periodic orbits as well —
//! which is exactly what the clocked-comparator metastability testbench of
//! paper Fig. 6 requires.

use crate::error::PssError;
use tranvar_circuit::{Circuit, NodeId};
use tranvar_engine::dc::{dc_operating_point, DcOptions, NewtonOptions};
use tranvar_engine::tran::{integrate_cycle, CycleResult, Integrator, StepRecord};
use tranvar_num::dense::vecops;
use tranvar_num::DMat;

/// PSS analysis controls.
#[derive(Clone, Debug, PartialEq)]
pub struct PssOptions {
    /// Time steps per period.
    pub n_steps: usize,
    /// Maximum shooting-Newton iterations.
    pub max_iter: usize,
    /// Convergence tolerance on `|Φ(x₀) − x₀|_∞`.
    pub tol: f64,
    /// Integration scheme (trapezoidal recommended for oscillators).
    pub method: Integrator,
    /// Inner Newton controls per timestep.
    pub newton: NewtonOptions,
    /// Node-row gmin.
    pub gmin: f64,
    /// Forward warm-up cycles integrated before shooting starts.
    pub warmup_cycles: usize,
    /// Clamp on the shooting update ∞-norm.
    pub update_limit: f64,
}

impl Default for PssOptions {
    fn default() -> Self {
        PssOptions {
            n_steps: 256,
            max_iter: 40,
            tol: 1e-9,
            method: Integrator::BackwardEuler,
            newton: NewtonOptions::default(),
            gmin: 1e-12,
            warmup_cycles: 2,
            update_limit: 0.6,
        }
    }
}

/// A converged periodic steady state with everything the LPTV layer needs.
#[derive(Clone, Debug)]
pub struct PssSolution {
    /// Period (s); for autonomous circuits this is the *solved* period.
    pub period: f64,
    /// `n_steps + 1` sample times spanning one period.
    pub times: Vec<f64>,
    /// `n_steps + 1` states; `states[0] ≈ states[n_steps]`.
    pub states: Vec<Vec<f64>>,
    /// Per-step factorization records (length `n_steps`).
    pub records: Vec<StepRecord>,
    /// Monodromy matrix `∂Φ_T/∂x₀`.
    pub monodromy: DMat<f64>,
    /// Integration scheme used (θ needed by the LPTV source terms).
    pub method: Integrator,
    /// `∂Φ/∂T` — only present for autonomous solutions.
    pub dphi_dt: Option<Vec<f64>>,
    /// Unknown index pinned by the oscillator phase condition.
    pub phase_unknown: Option<usize>,
    /// Final shooting residual ∞-norm.
    pub residual: f64,
}

impl PssSolution {
    /// Fundamental frequency `1/T`.
    pub fn fundamental(&self) -> f64 {
        1.0 / self.period
    }

    /// Extracts one node's periodic waveform (`n_steps + 1` samples).
    pub fn node_waveform(&self, ckt: &Circuit, node: NodeId) -> Vec<f64> {
        self.states.iter().map(|x| ckt.voltage(x, node)).collect()
    }

    /// Time-derivative of a node waveform by centered differences on the
    /// periodic grid (used for delay-sensitivity extraction).
    pub fn node_slope(&self, ckt: &Circuit, node: NodeId) -> Vec<f64> {
        let w = self.node_waveform(ckt, node);
        let n = w.len() - 1; // w[0] == w[n]
        let h = self.period / n as f64;
        let mut out = vec![0.0; n + 1];
        for (i, o) in out.iter_mut().enumerate().take(n) {
            let prev = w[(i + n - 1) % n];
            let next = w[(i + 1) % n];
            *o = (next - prev) / (2.0 * h);
        }
        out[n] = out[0];
        out
    }
}

/// Propagates the monodromy matrix `M = ∏ J_k⁻¹ B_k` from cycle records.
///
/// The accumulation is blocked: per record, all `n` columns of `B·M` are
/// staged in one column-major block and solved with a single multi-RHS
/// batched sweep over the step factorization (each factor row is read once
/// per record instead of once per column), with all buffers preallocated
/// outside the record loop. Per-column results are bit-for-bit identical to
/// column-by-column solves.
pub fn monodromy(records: &[StepRecord], n: usize) -> DMat<f64> {
    let mut m = DMat::<f64>::identity(n);
    let mut col = vec![0.0; n];
    let mut block = vec![0.0; n * n];
    let mut scratch = vec![0.0; n * n];
    for rec in records {
        for j in 0..n {
            for (i, c) in col.iter_mut().enumerate() {
                *c = m[(i, j)];
            }
            rec.b.mat_vec_into(&col, &mut block[j * n..(j + 1) * n]);
        }
        rec.lu.solve_multi(&mut block, n, &mut scratch);
        for j in 0..n {
            for i in 0..n {
                m[(i, j)] = block[j * n + i];
            }
        }
    }
    m
}

/// Solves the driven PSS problem for a circuit whose stimuli are periodic in
/// `period` (paper Section IV-B: every source must be DC or divide the
/// period).
///
/// # Errors
///
/// - [`PssError::NotPeriodic`] if a source is incompatible with `period`,
/// - [`PssError::NoConvergence`] if shooting stalls,
/// - engine errors from the inner integrations.
pub fn shooting_pss(
    ckt: &Circuit,
    period: f64,
    opts: &PssOptions,
) -> Result<PssSolution, PssError> {
    check_periodicity(ckt, period)?;
    let n = ckt.n_unknowns();

    // Initial guess: DC operating point, then a few forward cycles.
    let mut x0 = dc_operating_point(
        ckt,
        &DcOptions {
            newton: opts.newton,
            ..DcOptions::default()
        },
    )?;
    for _ in 0..opts.warmup_cycles {
        let cyc = integrate_cycle(
            ckt,
            &x0,
            0.0,
            period,
            opts.n_steps,
            opts.method,
            &opts.newton,
            opts.gmin,
            false,
        )?;
        x0 = cyc.states.last().expect("cycle states").clone();
    }

    let mut last_residual = f64::INFINITY;
    for _iter in 0..opts.max_iter {
        let cyc = integrate_cycle(
            ckt,
            &x0,
            0.0,
            period,
            opts.n_steps,
            opts.method,
            &opts.newton,
            opts.gmin,
            true,
        )?;
        let x_end = cyc.states.last().expect("cycle states").clone();
        let r = vecops::sub(&x_end, &x0);
        last_residual = vecops::norm_inf(&r);
        let m = monodromy(&cyc.records, n);
        if last_residual < opts.tol {
            return Ok(finish(
                cyc,
                period,
                m,
                opts.method,
                None,
                None,
                last_residual,
            ));
        }
        // Newton: (M − I)·Δ = −r.
        let mut a = m.clone();
        for i in 0..n {
            a[(i, i)] -= 1.0;
        }
        let mut delta = a.lu()?.solve(&r);
        vecops::scale(&mut delta, -1.0);
        let dmax = vecops::norm_inf(&delta);
        if dmax > opts.update_limit {
            let k = opts.update_limit / dmax;
            vecops::scale(&mut delta, k);
        }
        for (xi, di) in x0.iter_mut().zip(delta.iter()) {
            *xi += di;
        }
    }
    Err(PssError::NoConvergence {
        analysis: "shooting".into(),
        detail: format!(
            "residual {last_residual:.3e} after {} iterations (tol {:.1e})",
            opts.max_iter, opts.tol
        ),
    })
}

pub(crate) fn finish(
    cyc: CycleResult,
    period: f64,
    monodromy: DMat<f64>,
    method: Integrator,
    dphi_dt: Option<Vec<f64>>,
    phase_unknown: Option<usize>,
    residual: f64,
) -> PssSolution {
    PssSolution {
        period,
        times: cyc.times,
        states: cyc.states,
        records: cyc.records,
        monodromy,
        method,
        dphi_dt,
        phase_unknown,
        residual,
    }
}

pub(crate) fn check_periodicity(ckt: &Circuit, period: f64) -> Result<(), PssError> {
    if period <= 0.0 {
        return Err(PssError::BadConfig("period must be positive".into()));
    }
    for (i, dev) in ckt.devices().iter().enumerate() {
        let wave = match dev {
            tranvar_circuit::Device::Vsource { wave, .. } => wave,
            tranvar_circuit::Device::Isource { wave, .. } => wave,
            _ => continue,
        };
        if !wave.is_periodic_in(period) {
            return Err(PssError::NotPeriodic {
                device: ckt.label(tranvar_circuit::DeviceId::from_index(i)).into(),
                period,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::{Pulse, Waveform};

    /// Driven RC: the PSS of a sine-driven RC matches the AC phasor.
    #[test]
    fn sine_driven_rc_matches_ac() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let freq = 1.0e5;
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq,
                delay: 0.0,
            },
        );
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1.59155e-9); // fc = 1e5 Hz
        let mut opts = PssOptions::default();
        opts.method = Integrator::Trapezoidal;
        opts.n_steps = 512;
        let sol = shooting_pss(&ckt, 1.0 / freq, &opts).unwrap();
        assert!(sol.residual < 1e-9);
        // |H| at the corner = 1/√2; amplitude of b's waveform should match.
        let w = sol.node_waveform(&ckt, b);
        let amp = tranvar_num::fft::fundamental_amplitude(&w[..w.len() - 1]);
        assert!((amp - 1.0 / 2.0_f64.sqrt()).abs() < 2e-3, "amplitude {amp}");
    }

    /// Pulse-driven RC: check `x(T) = x(0)` and periodic repeatability.
    #[test]
    fn pulse_driven_rc_is_periodic() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let period = 10e-6;
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 4e-6,
                period,
            }),
        );
        ckt.add_resistor("R1", a, b, 10e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9); // tau = 10 us >> period
        let sol = shooting_pss(&ckt, period, &PssOptions::default()).unwrap();
        let first = &sol.states[0];
        let last = sol.states.last().unwrap();
        for (u, v) in first.iter().zip(last.iter()) {
            assert!((u - v).abs() < 1e-8);
        }
        // The slow RC reaches a ripple steady state straddling the duty-cycle
        // average (~0.4): forward simulation from DC would need many cycles.
        let w = sol.node_waveform(&ckt, b);
        let mean = w[..w.len() - 1].iter().sum::<f64>() / (w.len() - 1) as f64;
        assert!((mean - 0.4).abs() < 0.02, "ripple mean {mean}");
    }

    #[test]
    fn monodromy_of_rc_decays() {
        // For a linear RC with tau, the monodromy eigenvalue along the cap
        // state is exp(-T/tau).
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let period = 1e-3;
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-6); // tau = 1 ms
        let mut opts = PssOptions::default();
        opts.method = Integrator::Trapezoidal;
        opts.n_steps = 1024;
        let sol = shooting_pss(&ckt, period, &opts).unwrap();
        // The (b,b) monodromy entry is the decay of a cap-voltage kick.
        let ib = ckt.unknown_of_node(b).unwrap();
        let expect = (-1.0f64).exp();
        assert!(
            (sol.monodromy[(ib, ib)] - expect).abs() < 1e-3,
            "M_bb = {} vs {expect}",
            sol.monodromy[(ib, ib)]
        );
    }

    #[test]
    fn rejects_incommensurate_source() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Sin {
                offset: 0.0,
                ampl: 1.0,
                freq: 3.0e5,
                delay: 0.0,
            },
        );
        ckt.add_resistor("R1", a, NodeId::GROUND, 1e3);
        let err = shooting_pss(&ckt, 1.0 / 2.0e5, &PssOptions::default());
        assert!(matches!(err, Err(PssError::NotPeriodic { .. })));
    }
}
