//! Autonomous (oscillator) PSS: shooting with the period as an extra unknown.
//!
//! Oscillators have no external clock — the fundamental frequency is itself
//! an output and shifts under mismatch (paper Section IV-C). The shooting
//! system is bordered with a phase condition that pins one state component at
//! `t = 0`, removing the time-translation null space of `I − M`:
//!
//! ```text
//! [ I − M   −∂Φ/∂T ] [δx₀]   [ Φ(x₀,T) − x₀ ]
//! [ e_φᵀ       0   ] [δT ] = [ x₀[φ] − v_φ  ]
//! ```
//!
//! The same bordered operator later gives the *frequency sensitivity* of the
//! oscillator to each mismatch parameter at negligible cost (the LPTV layer
//! reuses the records and `∂Φ/∂T` stored here).

use crate::error::PssError;
use crate::shooting::last_state;
use crate::shooting::{
    check_periodicity, finish, integrate_pss_cycle, monodromy_threaded, PssOptions, PssSolution,
};
use tranvar_circuit::{Circuit, NodeId};
use tranvar_engine::dc::DcOptions;
use tranvar_engine::measure::average_period;
use tranvar_engine::tran::TranOptions;
use tranvar_engine::{NewtonOptions, Session, SessionOptions};
use tranvar_num::dense::vecops;
use tranvar_num::interp::{crossings, Edge};
use tranvar_num::DMat;

/// Oscillator PSS controls on top of [`PssOptions`].
#[derive(Clone, Debug, PartialEq)]
pub struct OscOptions {
    /// Shared shooting controls.
    pub pss: PssOptions,
    /// Warm-up length in units of the period hint.
    pub settle_periods: f64,
    /// Initial-condition kick (V) applied to the phase node to break the
    /// symmetric latch-up equilibrium.
    pub kick: f64,
    /// Relative clamp on period updates per Newton iteration.
    pub period_update_limit: f64,
}

impl Default for OscOptions {
    fn default() -> Self {
        let mut pss = PssOptions::default();
        // Trapezoidal preserves oscillation amplitude/period.
        pss.method = tranvar_engine::Integrator::Trapezoidal;
        pss.tol = 1e-8;
        OscOptions {
            pss,
            settle_periods: 12.0,
            kick: 0.1,
            period_update_limit: 0.1,
        }
    }
}

/// Result of the warm-up transient: a refined period estimate and a state on
/// the orbit at a rising crossing of the phase level.
struct Warmup {
    period_est: f64,
    x_start: Vec<f64>,
    phase_value: f64,
}

fn warm_up(
    session: &mut Session,
    ckt: &Circuit,
    period_hint: f64,
    phase_node: NodeId,
    phase_value: f64,
    opts: &OscOptions,
) -> Result<Warmup, PssError> {
    let newton = NewtonOptions {
        solver: session.solver(),
        ..opts.pss.newton.clone()
    };
    let mut x0 = session.dc_operating_point(
        ckt,
        &DcOptions {
            newton: newton.clone(),
            ..DcOptions::default()
        },
    )?;
    if let Some(i) = ckt.unknown_of_node(phase_node) {
        x0[i] += opts.kick;
    }
    let t_stop = opts.settle_periods * period_hint;
    let dt = period_hint / opts.pss.n_steps as f64;
    let mut tran_opts = TranOptions::new(t_stop, dt);
    tran_opts.step_control = opts.pss.step_control;
    tran_opts.method = opts.pss.method;
    tran_opts.newton = newton;
    tran_opts.gmin = opts.pss.gmin;
    tran_opts.x0 = Some(x0);
    let res = session.transient(ckt, &tran_opts)?;
    let period_est = average_period(ckt, &res, phase_node, phase_value, 3).map_err(|e| {
        PssError::NoOscillation {
            detail: format!("warm-up transient shows no periodicity: {e}"),
        }
    })?;
    // State at the last rising crossing of the phase level.
    let w = res.node_waveform(ckt, phase_node);
    let rises = crossings(&res.times, &w, phase_value, Edge::Rising);
    let t_cross = *rises.last().expect("average_period guarantees crossings");
    let idx = tranvar_num::interp::nearest_index(&res.times, t_cross);
    Ok(Warmup {
        period_est,
        x_start: res.states[idx].clone(),
        phase_value: w[idx],
    })
}

/// Solves the autonomous PSS problem of an oscillator.
///
/// `period_hint` seeds the warm-up transient (an order-of-magnitude guess is
/// enough); `phase_node`/`phase_value` define the phase condition — the node
/// is pinned to the value it has at the chosen crossing, which fixes the time
/// origin of the orbit.
///
/// # Errors
///
/// - [`PssError::NoOscillation`] if the warm-up never oscillates,
/// - [`PssError::NoConvergence`] if bordered shooting stalls,
/// - engine/numerical errors from the inner solves.
pub fn autonomous_pss(
    ckt: &Circuit,
    period_hint: f64,
    phase_node: NodeId,
    phase_value: f64,
    opts: &OscOptions,
) -> Result<PssSolution, PssError> {
    autonomous_pss_in(
        &mut Session::new(SessionOptions {
            solver: opts.pss.newton.solver,
            threads: opts.pss.threads,
        }),
        ckt,
        period_hint,
        phase_node,
        phase_value,
        opts,
    )
}

/// [`autonomous_pss`] borrowing an analysis [`Session`]: the DC seed, the
/// warm-up transient and every bordered-Newton cycle run through the
/// session's workspaces (see [`crate::shooting::shooting_pss_in`] for the
/// reuse and determinism contract).
///
/// # Errors
///
/// See [`autonomous_pss`].
pub fn autonomous_pss_in(
    session: &mut Session,
    ckt: &Circuit,
    period_hint: f64,
    phase_node: NodeId,
    phase_value: f64,
    opts: &OscOptions,
) -> Result<PssSolution, PssError> {
    check_periodicity(ckt, period_hint)?; // only DC sources are allowed anyway
    let n = ckt.n_unknowns();
    let pi = ckt
        .unknown_of_node(phase_node)
        .ok_or_else(|| PssError::BadConfig("phase node cannot be ground".into()))?;
    let newton = NewtonOptions {
        solver: session.solver(),
        ..opts.pss.newton.clone()
    };
    let threads = session.effective_threads(opts.pss.threads);

    let warm = warm_up(session, ckt, period_hint, phase_node, phase_value, opts)?;
    let mut x0 = warm.x_start;
    let mut period = warm.period_est;
    // Pin the phase to the state actually sampled (closest grid point to the
    // crossing) — this keeps the initial phase residual tiny.
    let v_pin = warm.phase_value;

    // The session's cycle workspace serves every cycle of the bordered
    // Newton loop (two integrations per round: nominal and
    // period-perturbed) and carries over to later solves.
    let ws = session.cycle_workspace();
    let mut last_residual = f64::INFINITY;
    for _iter in 0..opts.pss.max_iter {
        // One bordered-Newton round per iteration, charged to the shared
        // budget alongside its two inner cycle integrations.
        newton.budget.begin_iteration("autonomous shooting")?;
        let cyc = integrate_pss_cycle(ckt, ws, &x0, 0.0, period, &opts.pss, &newton, true)?;
        let x_end = last_state(&cyc)?.clone();
        let r = vecops::sub(&x_end, &x0);
        let phase_res = x0[pi] - v_pin;
        last_residual = vecops::norm_inf(&r).max(phase_res.abs());
        let m = monodromy_threaded(&cyc.records, n, threads);

        // ∂Φ/∂T by forward difference on the period.
        let dt_rel = 1e-6;
        let cyc2 = integrate_pss_cycle(
            ckt,
            ws,
            &x0,
            0.0,
            period * (1.0 + dt_rel),
            &opts.pss,
            &newton,
            false,
        )?;
        let x_end2 = last_state(&cyc2)?;
        let dphi_dt: Vec<f64> = x_end2
            .iter()
            .zip(x_end.iter())
            .map(|(a, b)| (a - b) / (period * dt_rel))
            .collect();

        if last_residual < opts.pss.tol {
            return Ok(finish(
                cyc,
                period,
                m,
                opts.pss.method,
                Some(dphi_dt),
                Some(pi),
                last_residual,
            ));
        }

        // Bordered Newton system.
        let mut a = DMat::<f64>::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = -m[(i, j)];
            }
            a[(i, i)] += 1.0;
            a[(i, n)] = -dphi_dt[i];
        }
        a[(n, pi)] = 1.0;
        let mut rhs = vec![0.0; n + 1];
        rhs[..n].copy_from_slice(&r);
        rhs[n] = -phase_res;
        let sol = a.lu()?.solve(&rhs);
        // Newton solves A·[δx; δT] = rhs with the sign convention
        // x ← x + δx where A ≈ −∂(residual)/∂x, hence the layout above.
        let mut dx = sol[..n].to_vec();
        let mut dt = sol[n];
        // Limiting.
        let dmax = vecops::norm_inf(&dx);
        if dmax > opts.pss.update_limit {
            let k = opts.pss.update_limit / dmax;
            vecops::scale(&mut dx, k);
            dt *= k;
        }
        let dt_cap = opts.period_update_limit * period;
        if dt.abs() > dt_cap {
            let k = dt_cap / dt.abs();
            dt *= k;
            vecops::scale(&mut dx, k);
        }
        for (xi, di) in x0.iter_mut().zip(dx.iter()) {
            *xi += di;
        }
        period += dt;
        if period <= 0.0 {
            return Err(PssError::NoConvergence {
                analysis: "autonomous shooting".into(),
                detail: "period iterate became non-positive".into(),
            });
        }
    }
    Err(PssError::NoConvergence {
        analysis: "autonomous shooting".into(),
        detail: format!(
            "residual {last_residual:.3e} after {} iterations",
            opts.pss.max_iter
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::{MosModel, MosType, Waveform};
    use tranvar_engine::dc::dc_operating_point;
    use tranvar_engine::tran::transient;

    /// Builds an N-stage MOSFET inverter ring oscillator with explicit load
    /// capacitors (mirrors the paper's Section IV-C example at small scale).
    fn ring(n_stages: usize, cload: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(1.2));
        let nodes: Vec<NodeId> = (0..n_stages).map(|i| ckt.node(&format!("s{i}"))).collect();
        for i in 0..n_stages {
            let inp = nodes[i];
            let out = nodes[(i + 1) % n_stages];
            ckt.add_mosfet(
                &format!("MP{i}"),
                out,
                inp,
                vdd,
                MosType::Pmos,
                MosModel::pmos_013(),
                2e-6,
                0.13e-6,
            );
            ckt.add_mosfet(
                &format!("MN{i}"),
                out,
                inp,
                NodeId::GROUND,
                MosType::Nmos,
                MosModel::nmos_013(),
                1e-6,
                0.13e-6,
            );
            ckt.add_capacitor(&format!("CL{i}"), out, NodeId::GROUND, cload);
        }
        (ckt, nodes[0])
    }

    #[test]
    fn three_stage_ring_locks() {
        let (ckt, s0) = ring(3, 10e-15);
        let mut opts = OscOptions::default();
        opts.pss.n_steps = 128;
        let sol = autonomous_pss(&ckt, 200e-12, s0, 0.6, &opts).unwrap();
        assert!(sol.residual < opts.pss.tol);
        // Frequency in a plausible GHz range for these sizes.
        let f0 = sol.fundamental();
        assert!(f0 > 5e8 && f0 < 2e10, "f0 = {f0:.3e}");
        // Orbit is closed.
        let first = &sol.states[0];
        let last = sol.states.last().unwrap();
        for (u, v) in first.iter().zip(last.iter()) {
            assert!((u - v).abs() < 1e-7);
        }
        // Waveform swings across the supply.
        let w = sol.node_waveform(&ckt, s0);
        let (lo, hi) = w
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        assert!(lo < 0.2 && hi > 1.0, "swing {lo}..{hi}");
    }

    #[test]
    fn solved_period_matches_transient_measurement() {
        let (ckt, s0) = ring(3, 10e-15);
        let mut opts = OscOptions::default();
        opts.pss.n_steps = 128;
        let sol = autonomous_pss(&ckt, 200e-12, s0, 0.6, &opts).unwrap();
        // Long transient measurement of the same period.
        let mut x0 = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        x0[ckt.unknown_of_node(s0).unwrap()] += 0.1;
        let mut topts = TranOptions::new(30.0 * sol.period, sol.period / 128.0);
        topts.method = tranvar_engine::Integrator::Trapezoidal;
        topts.x0 = Some(x0);
        let res = transient(&ckt, &topts).unwrap();
        let t_meas = average_period(&ckt, &res, s0, 0.6, 5).unwrap();
        assert!(
            (t_meas - sol.period).abs() < 5e-3 * sol.period,
            "transient {t_meas:.4e} vs pss {:.4e}",
            sol.period
        );
    }

    #[test]
    fn phase_node_cannot_be_ground() {
        let (ckt, _) = ring(3, 10e-15);
        let err = autonomous_pss(&ckt, 1e-10, NodeId::GROUND, 0.0, &OscOptions::default());
        assert!(matches!(err, Err(PssError::BadConfig(_))));
    }
}
