//! # tranvar-pss
//!
//! Periodic steady-state (PSS) analysis via shooting Newton — the substrate
//! the paper borrows from RF simulators (SpectreRF/ADS, refs. \[12\],\[15\],\[16\]).
//!
//! - [`shooting`]: driven PSS — finds the fixed point of the one-period flow
//!   map without integrating through settling transients; converges to
//!   unstable/metastable orbits (needed by the comparator testbench of paper
//!   Fig. 6),
//! - [`autonomous`]: oscillator PSS with the period as an unknown and a
//!   phase-condition-bordered Newton system (paper Section IV-C),
//!
//! Both store per-step factorizations and the monodromy matrix in
//! [`PssSolution`]; the LPTV noise/mismatch analysis in `tranvar-lptv`
//! re-uses them so every additional noise source costs only a pair of
//! triangular sweeps — the source of the paper's speedup.

#![warn(missing_docs)]

pub mod autonomous;
pub mod error;
pub mod shooting;

pub use autonomous::{autonomous_pss, autonomous_pss_in, OscOptions};
pub use error::PssError;
pub use shooting::{
    monodromy, monodromy_seq, monodromy_threaded, shooting_pss, shooting_pss_in, PssOptions,
    PssSolution,
};
