//! Error types for periodic steady-state analysis.

use std::error::Error;
use std::fmt;
use tranvar_engine::EngineError;
use tranvar_num::{FailureClass, NumError, WireFault};

/// Errors produced by the PSS solvers.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PssError {
    /// A stimulus is not periodic in the requested analysis period
    /// (paper Section IV-B requires all inputs periodic or constant).
    NotPeriodic {
        /// Offending device label.
        device: String,
        /// Requested analysis period.
        period: f64,
    },
    /// The shooting iteration failed to converge.
    NoConvergence {
        /// Which stage failed.
        analysis: String,
        /// Diagnostics.
        detail: String,
    },
    /// Oscillator start-up failed (no oscillation detected in the warm-up
    /// transient).
    NoOscillation {
        /// Diagnostics.
        detail: String,
    },
    /// Invalid configuration.
    BadConfig(String),
    /// Underlying engine failure.
    Engine(EngineError),
    /// Underlying numerical failure.
    Num(NumError),
}

impl fmt::Display for PssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PssError::NotPeriodic { device, period } => {
                write!(
                    f,
                    "source `{device}` is not periodic in the analysis period {period:.3e} s"
                )
            }
            PssError::NoConvergence { analysis, detail } => {
                write!(f, "{analysis} failed to converge: {detail}")
            }
            PssError::NoOscillation { detail } => write!(f, "no oscillation detected: {detail}"),
            PssError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PssError::Engine(e) => write!(f, "engine failure: {e}"),
            PssError::Num(e) => write!(f, "numerical failure: {e}"),
        }
    }
}

impl PssError {
    /// The stable wire identity of this failure (see
    /// [`tranvar_num::WireFault`]); exhaustive so new variants must be
    /// classified. Wrapped layers delegate to their own classification.
    pub fn wire_fault(&self) -> WireFault {
        use FailureClass::*;
        match self {
            PssError::NotPeriodic { .. } => WireFault::new("pss.not-periodic", BadInput),
            PssError::NoConvergence { .. } => WireFault::new("pss.no-convergence", Unstable),
            PssError::NoOscillation { .. } => WireFault::new("pss.no-oscillation", Unstable),
            PssError::BadConfig(_) => WireFault::new("pss.bad-config", BadInput),
            PssError::Engine(e) => e.wire_fault(),
            PssError::Num(e) => e.wire_fault(),
        }
    }
}

impl Error for PssError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PssError::Engine(e) => Some(e),
            PssError::Num(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for PssError {
    fn from(e: EngineError) -> Self {
        PssError::Engine(e)
    }
}

impl From<NumError> for PssError {
    fn from(e: NumError) -> Self {
        PssError::Num(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_traits() {
        let e = PssError::NotPeriodic {
            device: "V1".into(),
            period: 1e-9,
        };
        assert!(e.to_string().contains("V1"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PssError>();
    }
}
