//! # tranvar-circuits
//!
//! The benchmark circuits of the paper's evaluation (Section VI), built on a
//! calibrated 0.13 µm-class technology:
//!
//! - [`tech`]: model cards + Pelgrom coefficients (AVT = 6.5 mV·µm,
//!   Aβ = 3.25 %·µm), calibrated near the paper's quoted 3σ(I_DS) ≈ 14%
//!   operating point,
//! - [`gates`]: CMOS inverter/NAND builders with mismatch annotations,
//! - [`strongarm`]: the StrongARM clocked comparator (Fig. 10a) with the
//!   metastability feedback testbench (Fig. 6) and two Monte-Carlo offset
//!   measurement kernels,
//! - [`logic_path`]: the Fig. 7 shared/disjoint critical-path pair behind
//!   Table I,
//! - [`ring_osc`]: the 5-stage ring oscillator of Figs. 11–12,
//! - [`dac`]: the R-string DAC DNL example of eq. (13).

#![warn(missing_docs)]

pub mod dac;
pub mod gates;
pub mod logic_path;
pub mod ring_osc;
pub mod strongarm;
pub mod tech;

pub use dac::RStringDac;
pub use logic_path::{ArrivalOrder, LogicPath};
pub use ring_osc::RingOsc;
pub use strongarm::StrongArm;
pub use tech::Tech;
