//! N-stage ring oscillator — the paper's Section IV-C / Figs. 11–12
//! benchmark (5 stages in the paper's evaluation).

use crate::gates::{inverter, Gate};
use crate::tech::Tech;
use tranvar_circuit::{Circuit, NodeId, Waveform};
use tranvar_engine::dc::{dc_operating_point, DcOptions};
use tranvar_engine::measure::average_frequency;
use tranvar_engine::tran::{transient, TranOptions};
use tranvar_engine::{EngineError, Integrator};
use tranvar_pss::OscOptions;

/// A constructed ring oscillator and its measurement bindings.
#[derive(Clone, Debug)]
pub struct RingOsc {
    /// The netlist (with Pelgrom annotations on every transistor).
    pub circuit: Circuit,
    /// Stage output nodes; `stages[0]` is the PSS phase node.
    pub stages: Vec<NodeId>,
    /// Gate handles per stage.
    pub gates: Vec<Gate>,
    /// Supply node.
    pub vdd: NodeId,
    /// Order-of-magnitude period estimate (s) for PSS warm-up.
    pub period_hint: f64,
    /// Phase-condition level (V).
    pub phase_value: f64,
}

impl RingOsc {
    /// Builds an `n_stages`-stage ring (must be odd) with `cload` per stage.
    ///
    /// # Panics
    ///
    /// Panics if `n_stages` is even or < 3.
    pub fn new(tech: &Tech, n_stages: usize, cload: f64) -> Self {
        assert!(
            n_stages >= 3 && n_stages % 2 == 1,
            "ring oscillator needs an odd stage count >= 3"
        );
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(tech.vdd));
        // Pre-create the stage nodes so gate outputs wire the loop.
        let stages: Vec<NodeId> = (0..n_stages)
            .map(|i| ckt.node(&format!("inv{i}.out")))
            .collect();
        let mut gates = Vec::with_capacity(n_stages);
        for i in 0..n_stages {
            let input = stages[(i + n_stages - 1) % n_stages];
            let g = inverter(tech, &mut ckt, &format!("inv{i}"), vdd, input, 1.0);
            debug_assert_eq!(g.out, stages[i]);
            ckt.add_capacitor(&format!("CL{i}"), stages[i], NodeId::GROUND, cload);
            gates.push(g);
        }
        // Rough delay estimate: t_d ≈ C·V/I_drive.
        let beta = tech.nmos.kp * crate::gates::WN_UNIT / tech.lmin;
        let i_on = 0.5 * beta * (tech.vdd - tech.nmos.vt0).powi(2);
        let ctot = cload + 4.0 * tech.nmos.cox * crate::gates::WN_UNIT * tech.lmin;
        let period_hint = 2.0 * n_stages as f64 * ctot * tech.vdd / i_on;
        RingOsc {
            circuit: ckt,
            stages,
            gates,
            vdd,
            period_hint,
            phase_value: tech.vdd / 2.0,
        }
    }

    /// The paper's 5-stage configuration with 10 fF stage loads.
    pub fn paper(tech: &Tech) -> Self {
        RingOsc::new(tech, 5, 10e-15)
    }

    /// Oscillator shooting options tuned for this circuit class.
    pub fn osc_options(&self) -> OscOptions {
        let mut o = OscOptions::default();
        o.pss.n_steps = 192;
        o.pss.tol = 1e-8;
        o
    }

    /// Nonlinear transient frequency measurement (the Monte-Carlo kernel):
    /// kick, settle, and average the period over trailing cycles.
    ///
    /// # Errors
    ///
    /// Propagates simulation and measurement failures.
    pub fn measure_frequency_transient(&self, ckt: &Circuit) -> Result<f64, EngineError> {
        let mut x0 = dc_operating_point(ckt, &DcOptions::default())?;
        if let Some(i) = ckt.unknown_of_node(self.stages[0]) {
            x0[i] += 0.1;
        }
        let mut opts = TranOptions::new(20.0 * self.period_hint, self.period_hint / 150.0);
        opts.method = Integrator::Trapezoidal;
        opts.x0 = Some(x0);
        let res = transient(ckt, &opts)?;
        average_frequency(ckt, &res, self.stages[0], self.phase_value, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_core::prelude::*;
    use tranvar_pss::autonomous_pss;

    #[test]
    fn five_stage_ring_oscillates_and_locks() {
        let tech = Tech::t013();
        let ring = RingOsc::paper(&tech);
        let f_tran = ring.measure_frequency_transient(&ring.circuit).unwrap();
        assert!(f_tran > 1e8 && f_tran < 5e10, "f = {f_tran:.3e}");
        let sol = autonomous_pss(
            &ring.circuit,
            ring.period_hint,
            ring.stages[0],
            ring.phase_value,
            &ring.osc_options(),
        )
        .unwrap();
        assert!(
            (sol.fundamental() - f_tran).abs() < 0.01 * f_tran,
            "pss {:.4e} vs transient {f_tran:.4e}",
            sol.fundamental()
        );
    }

    #[test]
    fn frequency_variation_analysis_runs() {
        let tech = Tech::t013();
        let ring = RingOsc::paper(&tech);
        let res = analyze(
            &ring.circuit,
            &PssConfig::Autonomous {
                period_hint: ring.period_hint,
                phase_node: ring.stages[0],
                phase_value: ring.phase_value,
                opts: ring.osc_options(),
            },
            &[MetricSpec::new("f0", Metric::Frequency)],
        )
        .unwrap();
        let rep = &res.reports[0];
        // All 20 parameters (5 stages × 2 FETs × 2 params) contribute.
        assert_eq!(rep.contributions.len(), 20);
        let rel = rep.sigma() / rep.nominal;
        // Per-stage current mismatch of a ~1 µm device is σ(I)/I ≈ 10%;
        // averaging over 2·5 delay edges gives roughly σ_f/f ≈ 2–4%.
        assert!(rel > 0.005 && rel < 0.10, "sigma_f/f = {rel:.4}");
    }

    #[test]
    fn even_stage_count_panics() {
        let tech = Tech::t013();
        let result = std::panic::catch_unwind(|| RingOsc::new(&tech, 4, 1e-15));
        assert!(result.is_err());
    }
}
