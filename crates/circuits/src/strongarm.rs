//! StrongARM clocked comparator (paper Fig. 10a) with the metastability
//! feedback testbench of Fig. 6.
//!
//! The input-referred offset of a clocked comparator has no DC operating
//! point to measure from — it only exists transiently. The Fig. 6 testbench
//! closes an ideal integrator loop around the comparator: any difference
//! between the differential outputs accumulates on `vos`, which is fed back
//! (±half each side) into the inputs; the loop settles exactly when the
//! comparator is metastable, i.e. `v(vos)` *is* the input-referred offset.
//! The whole testbench is periodic in the clock, so shooting-Newton finds
//! the metastable orbit directly (a root-finder does not care that forward
//! simulation approaches it only slowly), and the baseband pseudo-noise
//! readout of the `vos` node gives the offset variance (Section V-A).
//!
//! Monte-Carlo has no such shortcut: it must either run the feedback
//! testbench to settling (hundreds of clock cycles — the configuration whose
//! cost Table II highlights) or bisect a forced offset, re-simulating the
//! decision per probe. Both are implemented as the MC measurement kernels.

use crate::tech::Tech;
use tranvar_circuit::{Circuit, DeviceId, NodeId, Pulse, Waveform};
use tranvar_core::{Metric, MetricSpec};
use tranvar_engine::dc::NewtonOptions;
use tranvar_engine::measure::settled_mean;
use tranvar_engine::tran::{transient, TranOptions};
use tranvar_engine::{EngineError, Integrator};
use tranvar_pss::PssOptions;

/// The constructed comparator testbench and its measurement bindings.
#[derive(Clone, Debug)]
pub struct StrongArm {
    /// The netlist (comparator + integrator feedback).
    pub circuit: Circuit,
    /// Offset-accumulator node (the measured quantity).
    pub vos: NodeId,
    /// Differential outputs.
    pub outp: NodeId,
    /// Differential outputs.
    pub outn: NodeId,
    /// Clock period (s).
    pub period: f64,
    /// Decision readout time within the cycle (end of evaluation).
    pub t_read: f64,
    /// Comparator transistors in Fig. 10 order (M1 tail, M2/M3 input pair,
    /// M4/M5 cross-coupled NMOS, M6/M7 cross-coupled PMOS, M8/M9 precharge,
    /// M10/M11 internal-node precharge).
    pub devices: Vec<DeviceId>,
}

impl StrongArm {
    /// Builds the paper's comparator: input pair sized at the quoted
    /// 8.32 µm/0.13 µm device.
    pub fn paper(tech: &Tech) -> Self {
        StrongArm::new(tech, 8.32e-6)
    }

    /// Builds the comparator with a given input-pair width.
    pub fn new(tech: &Tech, w_input: f64) -> Self {
        let period = 1.5e-9;
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let clk = ckt.node("clk");
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let tail = ckt.node("tail");
        let xp = ckt.node("xp");
        let xn = ckt.node("xn");
        let outp = ckt.node("outp");
        let outn = ckt.node("outn");
        let vos = ckt.node("vos");
        let vcm = ckt.node("vcm");

        ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(tech.vdd));
        // Clock low (precharge) for the first 1 ns, evaluation ~0.42 ns.
        ckt.add_vsource(
            "VCLK",
            clk,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: tech.vdd,
                delay: 1.0e-9,
                rise: 30e-12,
                fall: 30e-12,
                width: 0.42e-9,
                period,
            }),
        );
        // Input drive: inp = VCM + vos/2, inn = VCM − vos/2 (Fig. 6).
        ckt.add_vsource("VCM", vcm, NodeId::GROUND, Waveform::Dc(0.8));
        ckt.add_vcvs("EP", inp, vcm, vos, NodeId::GROUND, 0.5);
        ckt.add_vcvs("EN", inn, vcm, vos, NodeId::GROUND, -0.5);

        // Comparator core (Fig. 10a).
        let m1 = tech.nmos(&mut ckt, "M1", tail, clk, NodeId::GROUND, 10e-6);
        let m2 = tech.nmos(&mut ckt, "M2", xp, inp, tail, w_input);
        let m3 = tech.nmos(&mut ckt, "M3", xn, inn, tail, w_input);
        let m4 = tech.nmos(&mut ckt, "M4", outp, outn, xp, 1.5e-6);
        let m5 = tech.nmos(&mut ckt, "M5", outn, outp, xn, 1.5e-6);
        let m6 = tech.pmos(&mut ckt, "M6", outp, outn, vdd, 1.5e-6);
        let m7 = tech.pmos(&mut ckt, "M7", outn, outp, vdd, 1.5e-6);
        let m8 = tech.pmos(&mut ckt, "M8", outp, clk, vdd, 3e-6);
        let m9 = tech.pmos(&mut ckt, "M9", outn, clk, vdd, 3e-6);
        let m10 = tech.pmos(&mut ckt, "M10", xp, clk, vdd, 2e-6);
        let m11 = tech.pmos(&mut ckt, "M11", xn, clk, vdd, 2e-6);

        // Explicit output/internal loading slows regeneration to a numerically
        // benign exponent (the orbit's linearization is propagated exactly).
        ckt.add_capacitor("CXP", xp, NodeId::GROUND, 10e-15);
        ckt.add_capacitor("CXN", xn, NodeId::GROUND, 10e-15);
        ckt.add_capacitor("COP", outp, NodeId::GROUND, 40e-15);
        ckt.add_capacitor("CON", outn, NodeId::GROUND, 40e-15);

        // Ideal integrator: C·dvos/dt = −K·(v(outp) − v(outn)).
        ckt.add_capacitor("CINT", vos, NodeId::GROUND, 1e-12);
        ckt.add_vccs("GINT", vos, NodeId::GROUND, outn, outp, 1.0e-6);

        StrongArm {
            circuit: ckt,
            vos,
            outp,
            outn,
            period,
            t_read: 1.44e-9,
            devices: vec![m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11],
        }
    }

    /// The offset metric: cycle-average of the `vos` node (Section V-A
    /// baseband readout).
    pub fn offset_metric(&self) -> MetricSpec {
        MetricSpec::new("offset", Metric::DcAverage { node: self.vos })
    }

    /// PSS options tuned for this circuit class.
    pub fn pss_options(&self) -> PssOptions {
        let mut o = PssOptions::default();
        o.n_steps = 384;
        o.warmup_cycles = 4;
        o.tol = 1e-8;
        o.newton = NewtonOptions {
            step_limit: 0.3,
            ..NewtonOptions::default()
        };
        o
    }

    /// One comparator decision with a forced input offset: simulate from the
    /// precharged state to the readout time and return `sign(outp − outn)`.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn decide(&self, ckt: &Circuit, v_forced: f64) -> Result<f64, EngineError> {
        let mut forced = ckt.clone();
        let vos = forced.find_node("vos")?;
        forced.add_vsource("VFORCE", vos, NodeId::GROUND, Waveform::Dc(v_forced));
        let mut opts = TranOptions::new(self.t_read, self.period / 1024.0);
        opts.method = Integrator::BackwardEuler;
        let res = transient(&forced, &opts)?;
        let x = res.last();
        Ok(forced.voltage(x, forced.find_node("outp")?)
            - forced.voltage(x, forced.find_node("outn")?))
    }

    /// Monte-Carlo kernel (fast variant): bisect the forced offset until the
    /// decision flips — the "sweep" measurement the paper describes as the
    /// conventional alternative (Section IV-A).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn measure_offset_bisect(&self, ckt: &Circuit) -> Result<f64, EngineError> {
        let (mut lo, mut hi) = (-0.1, 0.1);
        let d_lo = self.decide(ckt, lo)?;
        let d_hi = self.decide(ckt, hi)?;
        if d_lo.signum() == d_hi.signum() {
            return Err(EngineError::Measurement(format!(
                "offset outside ±100 mV bracket (d_lo={d_lo:.3e}, d_hi={d_hi:.3e})"
            )));
        }
        for _ in 0..18 {
            let mid = 0.5 * (lo + hi);
            let d = self.decide(ckt, mid)?;
            if d.signum() == d_lo.signum() {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // The applied differential that balances the comparator; the
        // input-referred offset is its negative... both conventions appear in
        // the literature — we report the balancing voltage, matching the
        // sign the feedback testbench settles to.
        Ok(0.5 * (lo + hi))
    }

    /// Monte-Carlo kernel (paper-faithful, slow variant): run the feedback
    /// testbench for `n_cycles` clock cycles and average the settled `vos` —
    /// this is the configuration whose cost makes the comparator row of
    /// Table II so expensive for Monte-Carlo.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures.
    pub fn measure_offset_settling(
        &self,
        ckt: &Circuit,
        n_cycles: usize,
    ) -> Result<f64, EngineError> {
        let mut opts = TranOptions::new(n_cycles as f64 * self.period, self.period / 512.0);
        opts.method = Integrator::BackwardEuler;
        let res = transient(ckt, &opts)?;
        Ok(settled_mean(ckt, &res, ckt.find_node("vos")?, 0.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_core::prelude::*;

    #[test]
    fn nominal_comparator_is_balanced() {
        let tech = Tech::t013();
        let sa = StrongArm::paper(&tech);
        // A ±10 mV forced offset must flip the decision.
        // StrongARM polarity: the side with the higher input discharges its
        // output, so a positive applied offset drives outp LOW.
        let dp = sa.decide(&sa.circuit, 10e-3).unwrap();
        let dn = sa.decide(&sa.circuit, -10e-3).unwrap();
        assert!(dp < -0.05, "decision(+10mV) = {dp}");
        assert!(dn > 0.05, "decision(-10mV) = {dn}");
        // Nominal (symmetric) offset is ~0.
        let off = sa.measure_offset_bisect(&sa.circuit).unwrap();
        assert!(off.abs() < 1e-3, "nominal offset {off}");
    }

    #[test]
    fn offset_variation_analysis_runs() {
        let tech = Tech::t013();
        let sa = StrongArm::paper(&tech);
        let res = analyze(
            &sa.circuit,
            &PssConfig::Driven {
                period: sa.period,
                opts: sa.pss_options(),
            },
            &[sa.offset_metric()],
        )
        .unwrap();
        let rep = &res.reports[0];
        // 11 transistors × 2 parameters.
        assert_eq!(rep.contributions.len(), 22);
        // Input-pair VT σ is 6.25 mV each; the offset σ must be of that
        // order (a few to a few tens of mV).
        let sigma = rep.sigma();
        assert!(
            sigma > 2e-3 && sigma < 60e-3,
            "offset sigma = {:.3} mV",
            sigma * 1e3
        );
        // The input pair dominates (Fig. 10's conclusion).
        let share: f64 = rep
            .contributions
            .iter()
            .filter(|c| c.label.starts_with("M2.") || c.label.starts_with("M3."))
            .map(|c| c.variance())
            .sum::<f64>()
            / rep.variance();
        assert!(share > 0.3, "input-pair share = {share:.2}");
    }

    #[test]
    fn lptv_offset_matches_bisected_mc_sample() {
        // Golden cross-check: perturb one device, compare the LPTV-predicted
        // offset shift against the nonlinear bisection measurement.
        let tech = Tech::t013();
        let sa = StrongArm::paper(&tech);
        let res = analyze(
            &sa.circuit,
            &PssConfig::Driven {
                period: sa.period,
                opts: sa.pss_options(),
            },
            &[sa.offset_metric()],
        )
        .unwrap();
        let rep = &res.reports[0];
        // Apply +5 mV to M2's VT only.
        let n_params = sa.circuit.mismatch_params().len();
        let k_m2vt = sa
            .circuit
            .mismatch_params()
            .iter()
            .position(|p| p.label == "M2.dVT")
            .unwrap();
        let dvt = 5e-3;
        let mut deltas = vec![0.0; n_params];
        deltas[k_m2vt] = dvt;
        let mut perturbed = sa.circuit.clone();
        perturbed.apply_mismatch(&deltas);
        let measured = sa.measure_offset_bisect(&perturbed).unwrap();
        let predicted = rep.contributions[k_m2vt].sensitivity * dvt;
        assert!(
            (measured - predicted).abs() < 0.15 * predicted.abs().max(1e-3),
            "bisect {measured:.4e} vs lptv {predicted:.4e}"
        );
    }
}
