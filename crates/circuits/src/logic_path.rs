//! The Fig. 7 logic path: two outputs whose critical paths share gates `a`
//! and `b` when input X rises before Y, and are disjoint when Y rises first
//! — the Table I correlation experiment.
//!
//! Topology (all edges rising at the inputs, falling at the outputs):
//!
//! ```text
//! Y ──▷ inv_a ──▷ inv_b ──┬──▷ NAND_A ──▷ A
//!                          │       ▲
//! X ──▷ inv1 ──▷ inv2 ─────┼───────┘
//!      └─▷ inv3 ──▷ inv4 ──┴──▷ NAND_B ──▷ B
//! ```
//!
//! A NAND output falls when its *later-arriving* input rises. With X early,
//! both outputs are timed by Y's path through the shared `a`,`b` pair
//! (ρ ≈ 0.9); with Y early, each output is timed by its own private X buffer
//! chain (ρ ≈ 0).

use crate::gates::{inverter, nand2, Gate};
use crate::tech::Tech;
use tranvar_circuit::{Circuit, NodeId, Pulse, Waveform};
use tranvar_core::{Metric, MetricSpec};
use tranvar_engine::measure::delay_from;
use tranvar_engine::tran::{transient, TranOptions};
use tranvar_engine::EngineError;
use tranvar_num::interp::Edge;
use tranvar_pss::PssOptions;

/// Which input arrives first (Table I's two rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArrivalOrder {
    /// X rises before Y: critical paths share gates a and b.
    XFirst,
    /// Y rises before X: critical paths are disjoint.
    YFirst,
}

/// The constructed logic path and its measurement bindings.
#[derive(Clone, Debug)]
pub struct LogicPath {
    /// The netlist.
    pub circuit: Circuit,
    /// Output A.
    pub out_a: NodeId,
    /// Output B.
    pub out_b: NodeId,
    /// Clock/stimulus period (s).
    pub period: f64,
    /// Rising-edge time of the *later* input — the delay reference.
    pub t_edge: f64,
    /// Mid-supply threshold used for crossings.
    pub threshold: f64,
    /// Gate handles: shared chain `[a, b]`.
    pub shared: Vec<Gate>,
    /// Gate handles on the private X branches.
    pub x_branches: Vec<Gate>,
    /// The two output NANDs.
    pub nands: Vec<Gate>,
}

impl LogicPath {
    /// Builds the benchmark with the given input arrival order.
    pub fn new(tech: &Tech, order: ArrivalOrder) -> Self {
        let period = 4e-9;
        let (t_x, t_y): (f64, f64) = match order {
            ArrivalOrder::XFirst => (0.4e-9, 1.0e-9),
            ArrivalOrder::YFirst => (1.0e-9, 0.4e-9),
        };
        let t_edge = t_x.max(t_y);
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(tech.vdd));
        let x = ckt.node("X");
        let y = ckt.node("Y");
        let pulse = |delay: f64| {
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: tech.vdd,
                delay,
                rise: 30e-12,
                fall: 30e-12,
                width: 1.5e-9,
                period,
            })
        };
        ckt.add_vsource("VX", x, NodeId::GROUND, pulse(t_x));
        ckt.add_vsource("VY", y, NodeId::GROUND, pulse(t_y));

        // Shared chain from Y: gates a and b (Fig. 7's labels).
        // Small shared gates (more mismatch) vs upsized output NANDs (less):
        // sets the variance split that the paper's rho = 0.885 reflects.
        let ga = inverter(tech, &mut ckt, "a", vdd, y, 0.75);
        let gb = inverter(tech, &mut ckt, "b", vdd, ga.out, 0.75);
        // Private X buffers.
        let i1 = inverter(tech, &mut ckt, "i1", vdd, x, 1.0);
        let i2 = inverter(tech, &mut ckt, "i2", vdd, i1.out, 1.0);
        let i3 = inverter(tech, &mut ckt, "i3", vdd, x, 1.0);
        let i4 = inverter(tech, &mut ckt, "i4", vdd, i3.out, 1.0);
        // Output NANDs.
        let na = nand2(tech, &mut ckt, "nandA", vdd, i2.out, gb.out, 2.0);
        let nb = nand2(tech, &mut ckt, "nandB", vdd, i4.out, gb.out, 2.0);
        let out_a = na.out;
        let out_b = nb.out;
        // Output loading.
        ckt.add_capacitor("CA", out_a, NodeId::GROUND, 5e-15);
        ckt.add_capacitor("CB", out_b, NodeId::GROUND, 5e-15);
        LogicPath {
            circuit: ckt,
            out_a,
            out_b,
            period,
            t_edge,
            threshold: tech.vdd / 2.0,
            shared: vec![ga, gb],
            x_branches: vec![i1, i2, i3, i4],
            nands: vec![na, nb],
        }
    }

    /// The two delay metrics (input rising edge → output falling edge, paper
    /// Fig. 7 caption).
    pub fn delay_metrics(&self) -> Vec<MetricSpec> {
        let mk = |name: &str, node: NodeId| {
            MetricSpec::new(
                name,
                Metric::CrossingShift {
                    node,
                    threshold: self.threshold,
                    edge: Edge::Falling,
                    t_after: self.t_edge,
                    t_ref: self.t_edge,
                },
            )
        };
        vec![mk("delay_A", self.out_a), mk("delay_B", self.out_b)]
    }

    /// PSS options tuned for this circuit class.
    pub fn pss_options(&self) -> PssOptions {
        let mut o = PssOptions::default();
        o.n_steps = 800;
        o.warmup_cycles = 2;
        o
    }

    /// Nonlinear transient measurement of both delays (the Monte-Carlo
    /// kernel).
    ///
    /// # Errors
    ///
    /// Propagates simulation and measurement failures.
    pub fn measure_delays_transient(&self, ckt: &Circuit) -> Result<Vec<f64>, EngineError> {
        let mut opts = TranOptions::new(self.period, self.period / 2000.0);
        opts.gmin = 1e-12;
        let res = transient(ckt, &opts)?;
        let da = delay_from(
            ckt,
            &res,
            self.out_a,
            self.threshold,
            Edge::Falling,
            self.t_edge,
        )?;
        let db = delay_from(
            ckt,
            &res,
            self.out_b,
            self.threshold,
            Edge::Falling,
            self.t_edge,
        )?;
        Ok(vec![da, db])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_core::prelude::*;

    #[test]
    fn delays_are_plausible_and_match_pss_nominal() {
        let tech = Tech::t013();
        let path = LogicPath::new(&tech, ArrivalOrder::XFirst);
        let delays = path.measure_delays_transient(&path.circuit).unwrap();
        // Three gate delays of tens of ps each.
        for d in &delays {
            assert!(*d > 10e-12 && *d < 600e-12, "delay {d:.3e}");
        }
        let res = analyze(
            &path.circuit,
            &PssConfig::Driven {
                period: path.period,
                opts: path.pss_options(),
            },
            &path.delay_metrics(),
        )
        .unwrap();
        for (rep, d) in res.reports.iter().zip(delays.iter()) {
            assert!(
                (rep.nominal - d).abs() < 0.03 * d,
                "{}: pss {} vs tran {}",
                rep.metric,
                rep.nominal,
                d
            );
        }
    }

    /// The headline Table I result: shared critical path ⇒ high correlation,
    /// disjoint paths ⇒ near-zero correlation.
    #[test]
    fn table1_correlation_structure() {
        let tech = Tech::t013();
        let shared = LogicPath::new(&tech, ArrivalOrder::XFirst);
        let res = analyze(
            &shared.circuit,
            &PssConfig::Driven {
                period: shared.period,
                opts: shared.pss_options(),
            },
            &shared.delay_metrics(),
        )
        .unwrap();
        let rho_shared = res.reports[0].correlation(&res.reports[1]);
        assert!(rho_shared > 0.6, "shared-path rho = {rho_shared:.3}");

        let disjoint = LogicPath::new(&tech, ArrivalOrder::YFirst);
        let res2 = analyze(
            &disjoint.circuit,
            &PssConfig::Driven {
                period: disjoint.period,
                opts: disjoint.pss_options(),
            },
            &disjoint.delay_metrics(),
        )
        .unwrap();
        let rho_disjoint = res2.reports[0].correlation(&res2.reports[1]);
        assert!(
            rho_disjoint.abs() < 0.15,
            "disjoint-path rho = {rho_disjoint:.3}"
        );
    }
}
