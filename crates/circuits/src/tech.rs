//! The 0.13 µm-class technology used by every benchmark circuit.
//!
//! Calibrated against the operating point quoted in Section VI of the paper:
//! `AVT = 6.5 mV·µm`, `Aβ = 3.25 %·µm`, and a 8.32 µm/0.13 µm nMOS at
//! `V_GS = 1.0 V` whose drain-current 3σ mismatch lands near the paper's
//! ≈14% (our smoothed square-law model gives a slightly lower g_m/I_D than
//! the authors' BSIM cards, so the exact figure is recorded in
//! EXPERIMENTS.md and asserted within a tolerance band here).

use tranvar_circuit::{Circuit, DeviceId, MosModel, MosType, NodeId, Pelgrom};

/// A process corner: model cards plus matching coefficients.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tech {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Minimum drawn length (m).
    pub lmin: f64,
    /// NMOS model card.
    pub nmos: MosModel,
    /// PMOS model card.
    pub pmos: MosModel,
    /// Pelgrom matching coefficients.
    pub pelgrom: Pelgrom,
}

impl Tech {
    /// The paper's 0.13 µm process.
    pub fn t013() -> Self {
        let mut nmos = MosModel::nmos_013();
        let mut pmos = MosModel::pmos_013();
        // Threshold choice trades logic speed against the g_m/I_D that sets
        // the V_T share of current mismatch at the paper's quoted bias.
        nmos.vt0 = 0.50;
        pmos.vt0 = 0.45;
        Tech {
            vdd: 1.2,
            lmin: 0.13e-6,
            nmos,
            pmos,
            pelgrom: Pelgrom::paper_013(),
        }
    }

    /// Same process with mismatch scaled by `factor` (the Fig. 11 sweep).
    pub fn with_mismatch_scale(mut self, factor: f64) -> Self {
        self.pelgrom = self.pelgrom.scaled(factor);
        self
    }

    /// Adds a minimum-length NMOS with Pelgrom annotations.
    pub fn nmos(
        &self,
        ckt: &mut Circuit,
        label: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w: f64,
    ) -> DeviceId {
        let id = ckt.add_mosfet(label, d, g, s, MosType::Nmos, self.nmos, w, self.lmin);
        ckt.annotate_pelgrom(id, self.pelgrom.avt, self.pelgrom.abeta);
        id
    }

    /// Adds a minimum-length PMOS with Pelgrom annotations.
    pub fn pmos(
        &self,
        ckt: &mut Circuit,
        label: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        w: f64,
    ) -> DeviceId {
        let id = ckt.add_mosfet(label, d, g, s, MosType::Pmos, self.pmos, w, self.lmin);
        ckt.annotate_pelgrom(id, self.pelgrom.avt, self.pelgrom.abeta);
        id
    }

    /// Relative 1-σ drain-current mismatch of a device at the given bias:
    /// `σ(I_D)/I_D = √((g_m/I_D·σ_VT)² + σ_β²)` — the quantity whose 3σ the
    /// paper quotes as ≈14% for the 8.32/0.13 device at V_GS = 1 V.
    pub fn ids_rel_sigma(&self, ty: MosType, w: f64, vgs: f64, vds: f64) -> f64 {
        let model = match ty {
            MosType::Nmos => self.nmos,
            MosType::Pmos => self.pmos,
        };
        let op =
            tranvar_circuit::mosfet::eval_mosfet(ty, &model, w, self.lmin, 0.0, 1.0, vds, vgs, 0.0);
        let (svt, sbeta) = self.pelgrom.sigmas(w, self.lmin);
        let gm_over_id = if op.ids.abs() > 0.0 {
            (op.di_dvg / op.ids).abs()
        } else {
            0.0
        };
        ((gm_over_id * svt).powi(2) + sbeta * sbeta).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's calibration point: 8.32/0.13 nMOS at V_GS = 1.0 V has
    /// 3σ(I_DS) ≈ 14%. Our model card is asserted within [11%, 17%] and the
    /// measured value is reported in EXPERIMENTS.md.
    #[test]
    fn paper_bias_point_current_mismatch() {
        let t = Tech::t013();
        let s3 = 3.0 * t.ids_rel_sigma(MosType::Nmos, 8.32e-6, 1.0, 1.2);
        assert!(s3 > 0.11 && s3 < 0.17, "3sigma(IDS) = {:.3}", s3);
    }

    #[test]
    fn mismatch_scale_multiplies_sigmas() {
        let t = Tech::t013();
        let t3 = t.with_mismatch_scale(3.0);
        let s1 = t.ids_rel_sigma(MosType::Nmos, 8.32e-6, 1.0, 1.2);
        let s3 = t3.ids_rel_sigma(MosType::Nmos, 8.32e-6, 1.0, 1.2);
        assert!((s3 / s1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn helpers_annotate_pelgrom() {
        let t = Tech::t013();
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        t.nmos(&mut ckt, "M1", d, d, NodeId::GROUND, 2e-6);
        t.pmos(&mut ckt, "M2", d, d, NodeId::GROUND, 2e-6);
        assert_eq!(ckt.mismatch_params().len(), 4);
    }
}
