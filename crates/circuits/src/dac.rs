//! Resistor-string DAC — the eq. (13) example: the DNL of adjacent codes is
//! a *difference* of two correlated performance metrics, so its variance
//! needs the covariance term the contribution breakdown provides for free.

use tranvar_circuit::{Circuit, DeviceId, NodeId, Waveform};
use tranvar_core::dcmatch::dc_match;
use tranvar_core::report::{difference_sigma, VariationReport};
use tranvar_core::CoreError;

/// An N-resistor string DAC with mismatch annotations on every resistor.
#[derive(Clone, Debug)]
pub struct RStringDac {
    /// The netlist.
    pub circuit: Circuit,
    /// Tap nodes `taps[k]` = output voltage of code `k+1`
    /// (code 0 is ground, code N is `vref`).
    pub taps: Vec<NodeId>,
    /// The string resistors, bottom to top.
    pub resistors: Vec<DeviceId>,
    /// Reference voltage.
    pub vref: f64,
    /// Nominal LSB size (V).
    pub lsb: f64,
}

impl RStringDac {
    /// Builds an `n_bits` DAC (`2^n_bits` resistors) with unit resistance
    /// `r_unit` and relative mismatch `sigma_rel` per resistor.
    pub fn new(n_bits: usize, r_unit: f64, sigma_rel: f64, vref: f64) -> Self {
        let n = 1usize << n_bits;
        let mut ckt = Circuit::new();
        let top = ckt.node("vref");
        ckt.add_vsource("VREF", top, NodeId::GROUND, Waveform::Dc(vref));
        let mut taps = Vec::with_capacity(n - 1);
        let mut resistors = Vec::with_capacity(n);
        let mut below = NodeId::GROUND;
        for k in 0..n {
            let above = if k == n - 1 {
                top
            } else {
                let t = ckt.node(&format!("tap{}", k + 1));
                taps.push(t);
                t
            };
            let r = ckt.add_resistor(&format!("R{k}"), above, below, r_unit);
            ckt.annotate_resistor_mismatch(r, sigma_rel * r_unit);
            resistors.push(r);
            below = above;
        }
        RStringDac {
            circuit: ckt,
            taps,
            resistors,
            vref,
            lsb: vref / n as f64,
        }
    }

    /// Variation report of code `k` (1-based; the voltage at `taps[k−1]`).
    ///
    /// # Errors
    ///
    /// Propagates DC-match failures.
    pub fn code_report(&self, k: usize) -> Result<VariationReport, CoreError> {
        dc_match(&self.circuit, self.taps[k - 1])
    }

    /// `σ(DNL_k)` in volts for the step from code `k` to `k+1`
    /// (paper eq. 13: `σ² = σ_{k+1}² + σ_k² − 2σ_{k+1,k}`).
    ///
    /// # Errors
    ///
    /// Propagates DC-match failures.
    pub fn dnl_sigma(&self, k: usize) -> Result<f64, CoreError> {
        let a = self.code_report(k)?;
        let b = self.code_report(k + 1)?;
        Ok(difference_sigma(&a, &b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// For an n-resistor string with relative mismatch σ_r, classic theory:
    /// the step k→k+1 is V_{k+1}−V_k = vref·R_{k}/(ΣR); to first order
    /// σ(DNL) ≈ LSB·σ_r·√(1 − 1/N) ≈ LSB·σ_r.
    #[test]
    fn dnl_matches_analytic() {
        let dac = RStringDac::new(3, 1e3, 0.01, 1.6); // 8 resistors, LSB 0.2 V
        let s = dac.dnl_sigma(3).unwrap();
        let expect = 0.2 * 0.01 * (1.0f64 - 1.0 / 8.0).sqrt();
        assert!(
            (s - expect).abs() < 0.02 * expect,
            "sigma(DNL) = {s:.4e} vs {expect:.4e}"
        );
    }

    /// Adjacent codes are strongly correlated — ignoring the covariance
    /// overestimates DNL dramatically (the point of eq. 13).
    #[test]
    fn covariance_matters() {
        let dac = RStringDac::new(3, 1e3, 0.01, 1.6);
        let a = dac.code_report(4).unwrap();
        let b = dac.code_report(5).unwrap();
        let rho = a.correlation(&b);
        // Exact analytic value for mid-codes of an 8-tap string is 0.7746.
        assert!(rho > 0.7, "adjacent-code correlation {rho}");
        let naive = (a.variance() + b.variance()).sqrt();
        let correct = difference_sigma(&a, &b);
        assert!(naive > 1.8 * correct, "naive {naive} vs correct {correct}");
    }

    /// Code voltages are right nominally.
    #[test]
    fn nominal_code_levels() {
        let dac = RStringDac::new(3, 1e3, 0.01, 1.6);
        for k in 1..8 {
            let rep = dac.code_report(k).unwrap();
            assert!(
                (rep.nominal - 0.2 * k as f64).abs() < 1e-6,
                "code {k}: {}",
                rep.nominal
            );
        }
    }
}
