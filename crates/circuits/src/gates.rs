//! CMOS gate builders (inverter, NAND2) used by the logic-path and
//! ring-oscillator benchmarks.

use crate::tech::Tech;
use tranvar_circuit::{Circuit, DeviceId, NodeId};

/// Default NMOS width for a 1× gate (m).
pub const WN_UNIT: f64 = 1.0e-6;
/// Default PMOS width for a 1× gate (m).
pub const WP_UNIT: f64 = 2.0e-6;

/// Handles to the transistors of one gate (for sensitivity reporting).
#[derive(Clone, Debug)]
pub struct Gate {
    /// Gate output node.
    pub out: NodeId,
    /// Devices of this gate.
    pub devices: Vec<DeviceId>,
}

/// Adds a static CMOS inverter driving a fresh node named `{label}.out`.
///
/// `strength` scales both widths.
pub fn inverter(
    tech: &Tech,
    ckt: &mut Circuit,
    label: &str,
    vdd: NodeId,
    input: NodeId,
    strength: f64,
) -> Gate {
    let out = ckt.node(&format!("{label}.out"));
    let mp = tech.pmos(
        ckt,
        &format!("{label}.MP"),
        out,
        input,
        vdd,
        WP_UNIT * strength,
    );
    let mn = tech.nmos(
        ckt,
        &format!("{label}.MN"),
        out,
        input,
        NodeId::GROUND,
        WN_UNIT * strength,
    );
    Gate {
        out,
        devices: vec![mp, mn],
    }
}

/// Adds a two-input NAND driving `{label}.out`; the series NMOS stack is
/// upsized by 2× to balance drive.
pub fn nand2(
    tech: &Tech,
    ckt: &mut Circuit,
    label: &str,
    vdd: NodeId,
    a: NodeId,
    b: NodeId,
    strength: f64,
) -> Gate {
    let out = ckt.node(&format!("{label}.out"));
    let mid = ckt.node(&format!("{label}.mid"));
    let mpa = tech.pmos(
        ckt,
        &format!("{label}.MPA"),
        out,
        a,
        vdd,
        WP_UNIT * strength,
    );
    let mpb = tech.pmos(
        ckt,
        &format!("{label}.MPB"),
        out,
        b,
        vdd,
        WP_UNIT * strength,
    );
    let mna = tech.nmos(
        ckt,
        &format!("{label}.MNA"),
        out,
        a,
        mid,
        2.0 * WN_UNIT * strength,
    );
    let mnb = tech.nmos(
        ckt,
        &format!("{label}.MNB"),
        mid,
        b,
        NodeId::GROUND,
        2.0 * WN_UNIT * strength,
    );
    Gate {
        out,
        devices: vec![mpa, mpb, mna, mnb],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::Waveform;
    use tranvar_engine::dc::{dc_operating_point, DcOptions};

    #[test]
    fn inverter_truth_table() {
        let tech = Tech::t013();
        for (vin, want_high) in [(0.0, true), (1.2, false)] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let inp = ckt.node("in");
            ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(tech.vdd));
            ckt.add_vsource("VIN", inp, NodeId::GROUND, Waveform::Dc(vin));
            let g = inverter(&tech, &mut ckt, "I1", vdd, inp, 1.0);
            let x = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
            let vo = ckt.voltage(&x, g.out);
            if want_high {
                assert!(vo > 1.1, "vin={vin} vo={vo}");
            } else {
                assert!(vo < 0.1, "vin={vin} vo={vo}");
            }
        }
    }

    #[test]
    fn nand_truth_table() {
        let tech = Tech::t013();
        for (va, vb, want_high) in [
            (0.0, 0.0, true),
            (1.2, 0.0, true),
            (0.0, 1.2, true),
            (1.2, 1.2, false),
        ] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(tech.vdd));
            ckt.add_vsource("VA", a, NodeId::GROUND, Waveform::Dc(va));
            ckt.add_vsource("VB", b, NodeId::GROUND, Waveform::Dc(vb));
            let g = nand2(&tech, &mut ckt, "G1", vdd, a, b, 1.0);
            let x = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
            let vo = ckt.voltage(&x, g.out);
            if want_high {
                assert!(vo > 1.05, "a={va} b={vb} vo={vo}");
            } else {
                assert!(vo < 0.1, "a={va} b={vb} vo={vo}");
            }
        }
    }

    #[test]
    fn gate_devices_are_annotated() {
        let tech = Tech::t013();
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("in");
        let g = inverter(&tech, &mut ckt, "I1", vdd, inp, 1.0);
        assert_eq!(g.devices.len(), 2);
        assert_eq!(ckt.mismatch_params().len(), 4);
    }
}
