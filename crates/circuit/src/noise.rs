//! Noise-source descriptors: physical device noise and mismatch pseudo-noise.
//!
//! The LPTV noise analysis treats every source as a stationary unit process
//! ξ(t) with power spectral density [`NoiseSource::psd`], injected into the
//! circuit through a bias-dependent vector `w(x(t))` returned by
//! [`NoiseSource::injection`]. For white sources the modulation
//! `w(t) = √S(x(t))·dir` is the standard cyclostationary model; mismatch
//! pseudo-noise uses the exact parameter-derivative injection `∂residual/∂p`
//! scaled by σ so that reading the output PSD at 1 Hz yields the variance
//! directly (paper Section III).

use crate::circuit::{Circuit, Device, DeviceId, ParamDeriv};
use crate::error::CircuitError;
use crate::mosfet::eval_mosfet;

/// Boltzmann constant times nominal temperature (300 K), in Joules.
pub const KT: f64 = 1.380649e-23 * 300.0;

/// The stochastic flavor of a noise source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum NoiseKind {
    /// Resistor thermal noise: white current PSD `4kT/R` across the resistor.
    ResistorThermal,
    /// MOSFET channel thermal noise: white current PSD `4kTγ·g_m(t)`.
    MosThermal,
    /// MOSFET flicker noise: current PSD `kf·g_m(t)²/(C_ox·W·L·f)`.
    MosFlicker,
    /// Mismatch pseudo-noise for mismatch parameter `k` (paper Figs. 3–4):
    /// 1/f-shaped with PSD σ² at 1 Hz.
    Mismatch(usize),
}

/// One noise source attached to a device.
#[derive(Clone, Debug, PartialEq)]
pub struct NoiseSource {
    /// Human-readable name, e.g. `"M2.thermal"` or `"M2.dVT"`.
    pub label: String,
    /// The device producing the noise.
    pub device: DeviceId,
    /// Flavor.
    pub kind: NoiseKind,
}

impl NoiseSource {
    /// PSD of the underlying stationary unit process at frequency `f` (Hz).
    ///
    /// White sources return 1 (their magnitude is folded into the
    /// injection); 1/f sources return `1/f`. The mismatch pseudo-noise
    /// follows the paper's recipe `N²/f = σ²/f` — i.e. σ² at 1 Hz — with σ
    /// likewise folded into the injection, so the returned shape is `1/f`.
    pub fn psd(&self, f: f64) -> f64 {
        match self.kind {
            NoiseKind::ResistorThermal | NoiseKind::MosThermal => 1.0,
            NoiseKind::MosFlicker | NoiseKind::Mismatch(_) => 1.0 / f.abs().max(f64::MIN_POSITIVE),
        }
    }

    /// Bias-dependent injection vector `w(x)` such that the noise current
    /// entering the MNA residual is `w(x(t))·ξ(t)` with ξ the unit process.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] if the source refers to a mismatch parameter
    /// or device that does not exist.
    pub fn injection(&self, ckt: &Circuit, x: &[f64]) -> Result<ParamDeriv, CircuitError> {
        let mut out = ParamDeriv::default();
        match self.kind {
            NoiseKind::Mismatch(k) => {
                let sigma = ckt
                    .mismatch_params()
                    .get(k)
                    .ok_or(CircuitError::UnknownMismatchParam { index: k })?
                    .sigma;
                let mut pd = ckt.d_residual_dparam(k, x)?;
                for (_, v) in pd.df.iter_mut() {
                    *v *= sigma;
                }
                for (_, v) in pd.dq.iter_mut() {
                    *v *= sigma;
                }
                return Ok(pd);
            }
            NoiseKind::ResistorThermal => {
                if let Device::Resistor { a, b, r } = ckt.device(self.device) {
                    let mag = (4.0 * KT / r).sqrt();
                    if let Some(ia) = ckt.unknown_of_node(*a) {
                        out.df.push((ia, mag));
                    }
                    if let Some(ib) = ckt.unknown_of_node(*b) {
                        out.df.push((ib, -mag));
                    }
                } else {
                    return Err(CircuitError::UnknownDevice {
                        index: self.device.index(),
                    });
                }
            }
            NoiseKind::MosThermal | NoiseKind::MosFlicker => {
                if let Device::Mosfet(m) = ckt.device(self.device) {
                    let op = eval_mosfet(
                        m.ty,
                        &m.model,
                        m.w,
                        m.l,
                        m.vt_shift,
                        m.beta_scale,
                        ckt.voltage(x, m.d),
                        ckt.voltage(x, m.g),
                        ckt.voltage(x, m.s),
                    );
                    let mag = match self.kind {
                        NoiseKind::MosThermal => {
                            (4.0 * KT * m.model.gamma_noise * op.gm_abs).sqrt()
                        }
                        NoiseKind::MosFlicker => {
                            op.gm_abs * (m.model.kf / (m.model.cox * m.w * m.l)).sqrt()
                        }
                        _ => unreachable!(),
                    };
                    if let Some(id) = ckt.unknown_of_node(m.d) {
                        out.df.push((id, mag));
                    }
                    if let Some(is) = ckt.unknown_of_node(m.s) {
                        out.df.push((is, -mag));
                    }
                } else {
                    return Err(CircuitError::UnknownDevice {
                        index: self.device.index(),
                    });
                }
            }
        }
        Ok(out)
    }
}

/// Enumerates the mismatch pseudo-noise sources of a circuit (one per
/// registered mismatch parameter), in parameter order.
pub fn mismatch_pseudo_noise(ckt: &Circuit) -> Vec<NoiseSource> {
    ckt.mismatch_params()
        .iter()
        .enumerate()
        .map(|(k, p)| NoiseSource {
            label: p.label.clone(),
            device: p.device,
            kind: NoiseKind::Mismatch(k),
        })
        .collect()
}

/// Enumerates the physical (thermal + flicker) noise sources of a circuit.
pub fn physical_noise(ckt: &Circuit) -> Vec<NoiseSource> {
    let mut out = Vec::new();
    for (i, dev) in ckt.devices().iter().enumerate() {
        let id = DeviceId(i);
        match dev {
            Device::Resistor { .. } => out.push(NoiseSource {
                label: format!("{}.thermal", ckt.label(id)),
                device: id,
                kind: NoiseKind::ResistorThermal,
            }),
            Device::Mosfet(_) => {
                out.push(NoiseSource {
                    label: format!("{}.thermal", ckt.label(id)),
                    device: id,
                    kind: NoiseKind::MosThermal,
                });
                out.push(NoiseSource {
                    label: format!("{}.flicker", ckt.label(id)),
                    device: id,
                    kind: NoiseKind::MosFlicker,
                });
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::NodeId;
    use crate::mosfet::{MosModel, MosType};
    use crate::waveform::Waveform;

    #[test]
    fn resistor_thermal_magnitude() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r = ckt.add_resistor("R1", a, NodeId::GROUND, 1000.0);
        let src = NoiseSource {
            label: "R1.thermal".into(),
            device: r,
            kind: NoiseKind::ResistorThermal,
        };
        let inj = src.injection(&ckt, &[0.0]).unwrap();
        assert_eq!(inj.df.len(), 1);
        let expect = (4.0 * KT / 1000.0).sqrt();
        assert!((inj.df[0].1 - expect).abs() < 1e-18);
        assert_eq!(src.psd(123.0), 1.0);
    }

    #[test]
    fn mismatch_source_scales_by_sigma() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(1.2));
        ckt.add_resistor("RD", vdd, d, 5e3);
        let m = ckt.add_mosfet(
            "M1",
            d,
            vdd,
            NodeId::GROUND,
            MosType::Nmos,
            MosModel::nmos_013(),
            2e-6,
            0.13e-6,
        );
        ckt.annotate_pelgrom(m, 6.5e-9, 3.25e-8);
        let srcs = mismatch_pseudo_noise(&ckt);
        assert_eq!(srcs.len(), 2);
        let x = vec![1.2, 0.6, -1e-4];
        let inj = srcs[0].injection(&ckt, &x).unwrap();
        let raw = ckt.d_residual_dparam(0, &x).unwrap();
        let sigma = ckt.mismatch_params()[0].sigma;
        for ((i1, v1), (i2, v2)) in inj.df.iter().zip(raw.df.iter()) {
            assert_eq!(i1, i2);
            assert!((v1 - v2 * sigma).abs() < 1e-18);
        }
        // Pseudo-noise is 1/f shaped: σ² folded into injection, shape 1/f.
        assert!((srcs[0].psd(1.0) - 1.0).abs() < 1e-15);
        assert!((srcs[0].psd(10.0) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn physical_enumeration_counts() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_resistor("R1", a, NodeId::GROUND, 1e3);
        ckt.add_mosfet(
            "M1",
            a,
            a,
            NodeId::GROUND,
            MosType::Nmos,
            MosModel::nmos_013(),
            1e-6,
            0.13e-6,
        );
        let srcs = physical_noise(&ckt);
        assert_eq!(srcs.len(), 3); // 1 resistor + thermal/flicker of the FET
    }
}
