//! Error types for circuit construction and assembly.

use std::error::Error;
use std::fmt;
use tranvar_num::{FailureClass, WireFault};

/// Errors produced while building or evaluating a circuit.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A node name was referenced that does not exist.
    UnknownNode {
        /// The requested name.
        name: String,
    },
    /// A device index was out of range.
    UnknownDevice {
        /// The requested index.
        index: usize,
    },
    /// A device parameter was invalid (non-positive resistance, etc.).
    InvalidParameter {
        /// Device label.
        device: String,
        /// Explanation of the problem.
        reason: String,
    },
    /// A mismatch parameter index was out of range.
    UnknownMismatchParam {
        /// The requested index.
        index: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            CircuitError::UnknownDevice { index } => write!(f, "unknown device index {index}"),
            CircuitError::InvalidParameter { device, reason } => {
                write!(f, "invalid parameter on `{device}`: {reason}")
            }
            CircuitError::UnknownMismatchParam { index } => {
                write!(f, "unknown mismatch parameter index {index}")
            }
        }
    }
}

impl CircuitError {
    /// The stable wire identity of this failure (see
    /// [`tranvar_num::WireFault`]); exhaustive so new variants must be
    /// classified. Every construction/lookup failure is the caller's deck,
    /// so the whole enum classifies as bad input.
    pub fn wire_fault(&self) -> WireFault {
        use FailureClass::BadInput;
        match self {
            CircuitError::UnknownNode { .. } => WireFault::new("circuit.unknown-node", BadInput),
            CircuitError::UnknownDevice { .. } => {
                WireFault::new("circuit.unknown-device", BadInput)
            }
            CircuitError::InvalidParameter { .. } => {
                WireFault::new("circuit.invalid-parameter", BadInput)
            }
            CircuitError::UnknownMismatchParam { .. } => {
                WireFault::new("circuit.unknown-mismatch-param", BadInput)
            }
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CircuitError::UnknownNode { name: "vdd".into() };
        assert!(e.to_string().contains("vdd"));
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}
