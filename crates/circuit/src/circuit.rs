//! Netlist representation and MNA assembly.
//!
//! The unknown vector is the classic MNA layout: all non-ground node voltages
//! followed by branch currents (voltage sources, inductors, VCVS). Devices
//! stamp four objects at a given state `x` and time `t`:
//!
//! - `f(x,t)`: resistive/static KCL+branch residual contributions,
//! - `q(x)`: charges and fluxes (the dynamic part; residual is
//!   `f + dq/dt = 0`),
//! - `G = ∂f/∂x` and `C = ∂q/∂x` (Jacobians as sparse triplets).
//!
//! Every mismatch parameter additionally exposes `∂f/∂p` and `∂q/∂p`
//! ([`Circuit::d_residual_dparam`]) — this *is* the pseudo-noise injection
//! vector of the paper (Figs. 3–4): bias-dependent, evaluated along the
//! periodic steady state by the LPTV analysis.

use crate::error::CircuitError;
use crate::mismatch::{MismatchKind, MismatchParam};
use crate::mosfet::{eval_mosfet, MosModel, MosType};
use crate::waveform::Waveform;
use tranvar_num::Triplets;

/// Handle to a circuit node. `NodeId::GROUND` is the reference node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground/reference node.
    pub const GROUND: NodeId = NodeId(0);

    /// Returns `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

/// Handle to a device instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub(crate) usize);

impl DeviceId {
    /// Raw index into the device list.
    pub fn index(self) -> usize {
        self.0
    }

    /// Reconstructs a handle from a raw index (no validation; indices come
    /// from enumerating [`Circuit::devices`]).
    pub fn from_index(index: usize) -> Self {
        DeviceId(index)
    }
}

/// A MOSFET instance (model card copied per instance so Monte-Carlo samples
/// can perturb devices independently).
#[derive(Clone, Debug, PartialEq)]
pub struct Mosfet {
    /// Drain node.
    pub d: NodeId,
    /// Gate node.
    pub g: NodeId,
    /// Source node.
    pub s: NodeId,
    /// Polarity.
    pub ty: MosType,
    /// Model card (owned copy).
    pub model: MosModel,
    /// Drawn width (m).
    pub w: f64,
    /// Drawn length (m).
    pub l: f64,
    /// Additive threshold perturbation (V) — Monte-Carlo mismatch state.
    pub vt_shift: f64,
    /// Multiplicative current-factor perturbation — Monte-Carlo state.
    pub beta_scale: f64,
}

impl Mosfet {
    /// Total gate-source capacitance (intrinsic share + overlap).
    pub fn cgs(&self) -> f64 {
        0.5 * self.model.cox * self.w * self.l + self.model.cov * self.w
    }

    /// Total gate-drain capacitance (intrinsic share + overlap).
    pub fn cgd(&self) -> f64 {
        0.5 * self.model.cox * self.w * self.l + self.model.cov * self.w
    }

    /// Drain (or source) junction capacitance to the bulk rail.
    pub fn cj_term(&self) -> f64 {
        self.model.cj * self.w
    }
}

/// A circuit device.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Device {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance (Ω), must be positive.
        r: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance (F), must be positive.
        c: f64,
    },
    /// Linear inductor between `a` and `b` with its own current unknown.
    Inductor {
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Inductance (H), must be positive.
        l: f64,
        /// Branch-current unknown index.
        branch: usize,
    },
    /// Independent voltage source from `p` to `n`.
    Vsource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform.
        wave: Waveform,
        /// Branch-current unknown index.
        branch: usize,
    },
    /// Independent current source pushing current out of `p` into `n`
    /// through the external circuit (i.e. KCL sees `+I` leaving `p`).
    Isource {
        /// Positive terminal.
        p: NodeId,
        /// Negative terminal.
        n: NodeId,
        /// Source waveform.
        wave: Waveform,
    },
    /// Voltage-controlled current source: `gm·(v_cp − v_cn)` flows p→n.
    Vccs {
        /// Output positive terminal.
        p: NodeId,
        /// Output negative terminal.
        n: NodeId,
        /// Controlling positive node.
        cp: NodeId,
        /// Controlling negative node.
        cn: NodeId,
        /// Transconductance (S).
        gm: f64,
    },
    /// Voltage-controlled voltage source: `v_p − v_n = gain·(v_cp − v_cn)`.
    Vcvs {
        /// Output positive terminal.
        p: NodeId,
        /// Output negative terminal.
        n: NodeId,
        /// Controlling positive node.
        cp: NodeId,
        /// Controlling negative node.
        cn: NodeId,
        /// Voltage gain.
        gain: f64,
        /// Branch-current unknown index.
        branch: usize,
    },
    /// MOSFET.
    Mosfet(Mosfet),
}

/// One numeric-only circuit modification, applied via [`Circuit::revalue`].
///
/// Overrides change device values, source levels, sizing or mismatch σ
/// **without touching the netlist topology**, so the MNA sparsity pattern
/// is preserved and any symbolic analysis cached for the base circuit
/// remains valid. They are the vocabulary of the scenario/campaign layer:
/// a corner is a list of overrides against a base circuit.
///
/// [`CircuitOverride::is_statistical_only`] distinguishes overrides that
/// affect only the mismatch statistics (σ) from those that change the
/// solved equations — campaigns share one PSS+LPTV solve across scenarios
/// whose solve-affecting overrides agree, because the unit-parameter
/// responses are independent of σ.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum CircuitOverride {
    /// Sets a resistor's resistance (Ω, must be positive).
    Resistance {
        /// Target resistor.
        device: DeviceId,
        /// New resistance (Ω).
        ohms: f64,
    },
    /// Sets a capacitor's capacitance (F, must be positive).
    Capacitance {
        /// Target capacitor.
        device: DeviceId,
        /// New capacitance (F).
        farads: f64,
    },
    /// Sets an inductor's inductance (H, must be positive).
    Inductance {
        /// Target inductor.
        device: DeviceId,
        /// New inductance (H).
        henries: f64,
    },
    /// Replaces the level of a DC V/I source (supply or bias corner).
    SourceDc {
        /// Target source.
        device: DeviceId,
        /// New DC level (V or A).
        value: f64,
    },
    /// Scales a V/I source waveform by a factor (works for any waveform —
    /// DC, pulse, sine, PWL — scaling every level, like the
    /// source-stepping homotopy does).
    SourceScale {
        /// Target source.
        device: DeviceId,
        /// Multiplicative level factor.
        factor: f64,
    },
    /// Resizes a MOSFET's drawn width (m, must be positive). Pelgrom
    /// mismatch parameters attached to the device are re-scaled by
    /// `√(W_old/W_new)` (σ ∝ 1/√(W·L)).
    MosWidth {
        /// Target MOSFET.
        device: DeviceId,
        /// New drawn width (m).
        width: f64,
    },
    /// Scales every registered mismatch σ (the Fig. 11-style mismatch-level
    /// sweep). Statistical-only: does not change the solved equations.
    SigmaScale {
        /// Multiplicative σ factor (non-negative).
        factor: f64,
    },
    /// Sets one mismatch parameter's σ. Statistical-only.
    SigmaSet {
        /// Mismatch-parameter index.
        param: usize,
        /// New standard deviation in the parameter's natural unit.
        sigma: f64,
    },
}

impl CircuitOverride {
    /// `true` if the override affects only the mismatch statistics (σ) and
    /// not the solved circuit equations: the nominal orbit and the
    /// unit-parameter responses of circuits differing only in such
    /// overrides are identical, so their solves can be shared.
    pub fn is_statistical_only(&self) -> bool {
        matches!(
            self,
            CircuitOverride::SigmaScale { .. } | CircuitOverride::SigmaSet { .. }
        )
    }
}

/// Sparse derivative of the MNA residual with respect to one scalar
/// parameter: the pseudo-noise injection vector of the paper.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParamDeriv {
    /// `∂f/∂p` entries as `(row, value)`.
    pub df: Vec<(usize, f64)>,
    /// `∂q/∂p` entries as `(row, value)`.
    pub dq: Vec<(usize, f64)>,
}

/// Assembled MNA system at one `(x, t)` point.
#[derive(Clone, Debug)]
pub struct Assembly {
    /// Number of unknowns.
    pub n: usize,
    /// Static residual `f(x, t)` (includes independent sources).
    pub f: Vec<f64>,
    /// Charge/flux vector `q(x)`.
    pub q: Vec<f64>,
    /// Jacobian `∂f/∂x` triplets.
    pub g: Triplets<f64>,
    /// Jacobian `∂q/∂x` triplets.
    pub c: Triplets<f64>,
    /// Operating point of each MOSFET, indexed by *device* index (entries
    /// for non-MOSFET devices are defaulted). Captured during assembly so
    /// sensitivity paths can reuse the expensive model evaluations instead
    /// of repeating them — see [`Circuit::d_residual_dparams_with_ops`].
    pub mos_ops: Vec<crate::mosfet::MosOp>,
}

impl Assembly {
    /// Copies another assembly's contents into this one, retaining this
    /// buffer's allocations (per-timestep warm-start reuse).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions disagree.
    pub fn copy_from(&mut self, other: &Assembly) {
        assert_eq!(self.n, other.n, "assembly dimension mismatch");
        self.f.copy_from_slice(&other.f);
        self.q.copy_from_slice(&other.q);
        self.g.copy_from(&other.g);
        self.c.copy_from(&other.c);
        self.mos_ops.clear();
        self.mos_ops.extend_from_slice(&other.mos_ops);
    }
}

/// A circuit under construction and its mismatch annotations.
///
/// # Examples
///
/// ```
/// use tranvar_circuit::{Circuit, Waveform};
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let vout = ckt.node("out");
/// ckt.add_vsource("V1", vin, tranvar_circuit::NodeId::GROUND, Waveform::Dc(1.0));
/// ckt.add_resistor("R1", vin, vout, 1e3);
/// ckt.add_resistor("R2", vout, tranvar_circuit::NodeId::GROUND, 1e3);
/// assert_eq!(ckt.n_unknowns(), 3); // two nodes + one branch current
/// ```
#[derive(Clone, Debug, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    devices: Vec<Device>,
    labels: Vec<String>,
    n_branches: usize,
    mismatch: Vec<MismatchParam>,
}

impl Circuit {
    /// Creates an empty circuit containing only the ground node.
    pub fn new() -> Self {
        Circuit {
            node_names: vec!["0".to_string()],
            devices: Vec::new(),
            labels: Vec::new(),
            n_branches: 0,
            mismatch: Vec::new(),
        }
    }

    /// Returns (creating if needed) the node with the given name.
    ///
    /// The names `"0"` and `"gnd"` alias the ground node.
    pub fn node(&mut self, name: &str) -> NodeId {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return NodeId::GROUND;
        }
        if let Some(i) = self.node_names.iter().position(|n| n == name) {
            NodeId(i)
        } else {
            self.node_names.push(name.to_string());
            NodeId(self.node_names.len() - 1)
        }
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownNode`] if no node has that name.
    pub fn find_node(&self, name: &str) -> Result<NodeId, CircuitError> {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            return Ok(NodeId::GROUND);
        }
        self.node_names
            .iter()
            .position(|n| n == name)
            .map(NodeId)
            .ok_or_else(|| CircuitError::UnknownNode { name: name.into() })
    }

    /// Node name for diagnostics.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.0]
    }

    /// Number of nodes including ground.
    pub fn n_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of branch-current unknowns.
    pub fn n_branches(&self) -> usize {
        self.n_branches
    }

    /// Total number of MNA unknowns.
    pub fn n_unknowns(&self) -> usize {
        (self.node_names.len() - 1) + self.n_branches
    }

    /// Unknown index of a node voltage (`None` for ground).
    pub fn unknown_of_node(&self, node: NodeId) -> Option<usize> {
        if node.is_ground() {
            None
        } else {
            Some(node.0 - 1)
        }
    }

    /// Unknown index of branch `b`.
    pub fn unknown_of_branch(&self, b: usize) -> usize {
        (self.node_names.len() - 1) + b
    }

    /// Voltage of `node` in a solution vector.
    pub fn voltage(&self, x: &[f64], node: NodeId) -> f64 {
        match self.unknown_of_node(node) {
            None => 0.0,
            Some(i) => x[i],
        }
    }

    /// Devices in insertion order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Sorted, deduplicated derivative discontinuities of every independent
    /// source waveform inside the open interval `(t0, t1)` — the times an
    /// adaptive transient integrator must land a step on exactly (see
    /// [`Waveform::breakpoints_in`]).
    pub fn source_breakpoints(&self, t0: f64, t1: f64) -> Vec<f64> {
        let mut out = Vec::new();
        for d in &self.devices {
            match d {
                Device::Vsource { wave, .. } | Device::Isource { wave, .. } => {
                    wave.breakpoints_in(t0, t1, &mut out);
                }
                _ => {}
            }
        }
        out.sort_by(|a, b| a.partial_cmp(b).unwrap());
        out.dedup();
        out
    }

    /// Device by id.
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.0]
    }

    /// Label of a device.
    pub fn label(&self, id: DeviceId) -> &str {
        &self.labels[id.0]
    }

    /// Finds a device by label.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownDevice`] if no device has that label.
    pub fn find_device(&self, label: &str) -> Result<DeviceId, CircuitError> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(DeviceId)
            .ok_or(CircuitError::UnknownDevice { index: usize::MAX })
    }

    fn push_device(&mut self, label: &str, dev: Device) -> DeviceId {
        self.devices.push(dev);
        self.labels.push(label.to_string());
        DeviceId(self.devices.len() - 1)
    }

    fn new_branch(&mut self) -> usize {
        self.n_branches += 1;
        self.n_branches - 1
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `r <= 0`.
    pub fn add_resistor(&mut self, label: &str, a: NodeId, b: NodeId, r: f64) -> DeviceId {
        assert!(r > 0.0, "resistor `{label}` must have positive resistance");
        self.push_device(label, Device::Resistor { a, b, r })
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn add_capacitor(&mut self, label: &str, a: NodeId, b: NodeId, c: f64) -> DeviceId {
        assert!(
            c > 0.0,
            "capacitor `{label}` must have positive capacitance"
        );
        self.push_device(label, Device::Capacitor { a, b, c })
    }

    /// Adds an inductor (introduces one branch-current unknown).
    ///
    /// # Panics
    ///
    /// Panics if `l <= 0`.
    pub fn add_inductor(&mut self, label: &str, a: NodeId, b: NodeId, l: f64) -> DeviceId {
        assert!(l > 0.0, "inductor `{label}` must have positive inductance");
        let branch = self.new_branch();
        self.push_device(label, Device::Inductor { a, b, l, branch })
    }

    /// Adds an independent voltage source (one branch-current unknown).
    pub fn add_vsource(&mut self, label: &str, p: NodeId, n: NodeId, wave: Waveform) -> DeviceId {
        let branch = self.new_branch();
        self.push_device(label, Device::Vsource { p, n, wave, branch })
    }

    /// Adds an independent current source (current flows out of `p`, into `n`
    /// through the external circuit).
    pub fn add_isource(&mut self, label: &str, p: NodeId, n: NodeId, wave: Waveform) -> DeviceId {
        self.push_device(label, Device::Isource { p, n, wave })
    }

    /// Adds a voltage-controlled current source.
    pub fn add_vccs(
        &mut self,
        label: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> DeviceId {
        self.push_device(label, Device::Vccs { p, n, cp, cn, gm })
    }

    /// Adds a voltage-controlled voltage source (one branch unknown).
    pub fn add_vcvs(
        &mut self,
        label: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> DeviceId {
        let branch = self.new_branch();
        self.push_device(
            label,
            Device::Vcvs {
                p,
                n,
                cp,
                cn,
                gain,
                branch,
            },
        )
    }

    /// Adds a MOSFET.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `l` is non-positive.
    #[allow(clippy::too_many_arguments)]
    pub fn add_mosfet(
        &mut self,
        label: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        ty: MosType,
        model: MosModel,
        w: f64,
        l: f64,
    ) -> DeviceId {
        assert!(
            w > 0.0 && l > 0.0,
            "mosfet `{label}` needs positive W and L"
        );
        self.push_device(
            label,
            Device::Mosfet(Mosfet {
                d,
                g,
                s,
                ty,
                model,
                w,
                l,
                vt_shift: 0.0,
                beta_scale: 1.0,
            }),
        )
    }

    // ---------------------------------------------------------------------
    // Mismatch annotations
    // ---------------------------------------------------------------------

    /// Registers a mismatch parameter; returns its index.
    pub fn add_mismatch(&mut self, param: MismatchParam) -> usize {
        self.mismatch.push(param);
        self.mismatch.len() - 1
    }

    /// Registered mismatch parameters.
    pub fn mismatch_params(&self) -> &[MismatchParam] {
        &self.mismatch
    }

    /// Annotates a MOSFET with Pelgrom V_T and β mismatch:
    /// `σ_VT = A_VT/√(W·L)`, `σ_{δβ/β} = A_β/√(W·L)` (paper eqs. 4–5).
    ///
    /// `avt` is in V·m, `abeta` dimensionless·m (e.g. 6.5 mV·µm = 6.5e-9 V·m).
    ///
    /// # Panics
    ///
    /// Panics if the device is not a MOSFET.
    pub fn annotate_pelgrom(&mut self, dev: DeviceId, avt: f64, abeta: f64) -> (usize, usize) {
        let (w, l) = match &self.devices[dev.0] {
            Device::Mosfet(m) => (m.w, m.l),
            other => panic!("pelgrom annotation on non-MOSFET {other:?}"),
        };
        let area_sqrt = (w * l).sqrt();
        let label = self.labels[dev.0].clone();
        let ivt = self.add_mismatch(MismatchParam {
            label: format!("{label}.dVT"),
            device: dev,
            kind: MismatchKind::MosVt,
            sigma: avt / area_sqrt,
        });
        let ibeta = self.add_mismatch(MismatchParam {
            label: format!("{label}.dBeta"),
            device: dev,
            kind: MismatchKind::MosBetaRel,
            sigma: abeta / area_sqrt,
        });
        (ivt, ibeta)
    }

    /// Annotates a resistor with absolute-σ resistance mismatch (Fig. 3).
    pub fn annotate_resistor_mismatch(&mut self, dev: DeviceId, sigma_ohms: f64) -> usize {
        let label = self.labels[dev.0].clone();
        self.add_mismatch(MismatchParam {
            label: format!("{label}.dR"),
            device: dev,
            kind: MismatchKind::ResAbs,
            sigma: sigma_ohms,
        })
    }

    /// Annotates a capacitor with absolute-σ capacitance mismatch (Fig. 3).
    pub fn annotate_capacitor_mismatch(&mut self, dev: DeviceId, sigma_farads: f64) -> usize {
        let label = self.labels[dev.0].clone();
        self.add_mismatch(MismatchParam {
            label: format!("{label}.dC"),
            device: dev,
            kind: MismatchKind::CapAbs,
            sigma: sigma_farads,
        })
    }

    /// Annotates an inductor with absolute-σ inductance mismatch (Fig. 3).
    pub fn annotate_inductor_mismatch(&mut self, dev: DeviceId, sigma_henries: f64) -> usize {
        let label = self.labels[dev.0].clone();
        self.add_mismatch(MismatchParam {
            label: format!("{label}.dL"),
            device: dev,
            kind: MismatchKind::IndAbs,
            sigma: sigma_henries,
        })
    }

    /// Applies one Monte-Carlo mismatch sample: `deltas[k]` is the value of
    /// mismatch parameter `k` in its natural unit (V for δV_T, relative for
    /// δβ/β, Ω/F/H for passives).
    ///
    /// # Panics
    ///
    /// Panics if `deltas.len()` differs from the number of parameters.
    pub fn apply_mismatch(&mut self, deltas: &[f64]) {
        assert_eq!(
            deltas.len(),
            self.mismatch.len(),
            "mismatch sample length mismatch"
        );
        for (param, &delta) in self.mismatch.iter().zip(deltas.iter()) {
            let dev = &mut self.devices[param.device.0];
            match (param.kind, dev) {
                (MismatchKind::MosVt, Device::Mosfet(m)) => m.vt_shift += delta,
                (MismatchKind::MosBetaRel, Device::Mosfet(m)) => m.beta_scale *= 1.0 + delta,
                (MismatchKind::ResAbs, Device::Resistor { r, .. }) => *r += delta,
                (MismatchKind::CapAbs, Device::Capacitor { c, .. }) => *c += delta,
                (MismatchKind::IndAbs, Device::Inductor { l, .. }) => *l += delta,
                (kind, dev) => panic!("mismatch kind {kind:?} incompatible with {dev:?}"),
            }
        }
    }

    /// Resets all Monte-Carlo mismatch state to nominal.
    pub fn reset_mismatch(&mut self) {
        for dev in &mut self.devices {
            if let Device::Mosfet(m) = dev {
                m.vt_shift = 0.0;
                m.beta_scale = 1.0;
            }
        }
        // Passive deltas are not tracked separately; callers that perturb
        // passives should clone the nominal circuit instead (the Monte-Carlo
        // driver does).
    }

    // ---------------------------------------------------------------------
    // Assembly
    // ---------------------------------------------------------------------

    /// Assembles the full MNA system at state `x` and time `t`.
    pub fn assemble(&self, x: &[f64], t: f64) -> Assembly {
        let n = self.n_unknowns();
        let mut out = Assembly {
            n,
            f: vec![0.0; n],
            q: vec![0.0; n],
            g: Triplets::new(n, n),
            c: Triplets::new(n, n),
            mos_ops: Vec::new(),
        };
        self.assemble_into(x, t, &mut out);
        out
    }

    /// Assembles into a caller-provided buffer (clears it first).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_unknowns()` or the buffer size disagrees.
    pub fn assemble_into(&self, x: &[f64], t: f64, out: &mut Assembly) {
        let n = self.n_unknowns();
        assert_eq!(x.len(), n, "state vector length mismatch");
        assert_eq!(out.n, n, "assembly buffer dimension mismatch");
        out.f.iter_mut().for_each(|v| *v = 0.0);
        out.q.iter_mut().for_each(|v| *v = 0.0);
        out.g.clear();
        out.c.clear();
        out.mos_ops.clear();
        out.mos_ops
            .resize(self.devices.len(), crate::mosfet::MosOp::default());

        let v = |node: NodeId| self.voltage(x, node);
        // Helper closures cannot borrow `out` mutably while `v` borrows `x`,
        // so index arithmetic is done inline below.
        for (dev_idx, dev) in self.devices.iter().enumerate() {
            match dev {
                Device::Resistor { a, b, r } => {
                    let g = 1.0 / r;
                    let i = (v(*a) - v(*b)) * g;
                    stamp_f(self, out, *a, i);
                    stamp_f(self, out, *b, -i);
                    stamp_g2(self, out, *a, *b, g);
                }
                Device::Capacitor { a, b, c } => {
                    let qc = (v(*a) - v(*b)) * c;
                    stamp_q(self, out, *a, qc);
                    stamp_q(self, out, *b, -qc);
                    stamp_c2(self, out, *a, *b, *c);
                }
                Device::Inductor { a, b, l, branch } => {
                    let bi = self.unknown_of_branch(*branch);
                    let il = x[bi];
                    stamp_f(self, out, *a, il);
                    stamp_f(self, out, *b, -il);
                    if let Some(ia) = self.unknown_of_node(*a) {
                        out.g.push(ia, bi, 1.0);
                        out.g.push(bi, ia, 1.0);
                    }
                    if let Some(ib) = self.unknown_of_node(*b) {
                        out.g.push(ib, bi, -1.0);
                        out.g.push(bi, ib, -1.0);
                    }
                    // Branch residual: v_a - v_b - L·di/dt = 0.
                    out.f[bi] += v(*a) - v(*b);
                    out.q[bi] += -l * il;
                    out.c.push(bi, bi, -l);
                }
                Device::Vsource { p, n, wave, branch } => {
                    let bi = self.unknown_of_branch(*branch);
                    let ib = x[bi];
                    stamp_f(self, out, *p, ib);
                    stamp_f(self, out, *n, -ib);
                    if let Some(ip) = self.unknown_of_node(*p) {
                        out.g.push(ip, bi, 1.0);
                        out.g.push(bi, ip, 1.0);
                    }
                    if let Some(inn) = self.unknown_of_node(*n) {
                        out.g.push(inn, bi, -1.0);
                        out.g.push(bi, inn, -1.0);
                    }
                    out.f[bi] += v(*p) - v(*n) - wave.value(t);
                }
                Device::Isource { p, n, wave } => {
                    let i = wave.value(t);
                    stamp_f(self, out, *p, i);
                    stamp_f(self, out, *n, -i);
                }
                Device::Vccs { p, n, cp, cn, gm } => {
                    let i = gm * (v(*cp) - v(*cn));
                    stamp_f(self, out, *p, i);
                    stamp_f(self, out, *n, -i);
                    stamp_g_cross(self, out, *p, *n, *cp, *cn, *gm);
                }
                Device::Vcvs {
                    p,
                    n,
                    cp,
                    cn,
                    gain,
                    branch,
                } => {
                    let bi = self.unknown_of_branch(*branch);
                    let ib = x[bi];
                    stamp_f(self, out, *p, ib);
                    stamp_f(self, out, *n, -ib);
                    if let Some(ip) = self.unknown_of_node(*p) {
                        out.g.push(ip, bi, 1.0);
                        out.g.push(bi, ip, 1.0);
                    }
                    if let Some(inn) = self.unknown_of_node(*n) {
                        out.g.push(inn, bi, -1.0);
                        out.g.push(bi, inn, -1.0);
                    }
                    out.f[bi] += v(*p) - v(*n) - gain * (v(*cp) - v(*cn));
                    if let Some(icp) = self.unknown_of_node(*cp) {
                        out.g.push(bi, icp, -gain);
                    }
                    if let Some(icn) = self.unknown_of_node(*cn) {
                        out.g.push(bi, icn, *gain);
                    }
                }
                Device::Mosfet(m) => {
                    let op = eval_mosfet(
                        m.ty,
                        &m.model,
                        m.w,
                        m.l,
                        m.vt_shift,
                        m.beta_scale,
                        v(m.d),
                        v(m.g),
                        v(m.s),
                    );
                    out.mos_ops[dev_idx] = op;
                    stamp_f(self, out, m.d, op.ids);
                    stamp_f(self, out, m.s, -op.ids);
                    // Jacobian rows for drain and source KCL.
                    for (node, sign) in [(m.d, 1.0), (m.s, -1.0)] {
                        if let Some(row) = self.unknown_of_node(node) {
                            if let Some(cd) = self.unknown_of_node(m.d) {
                                out.g.push(row, cd, sign * op.di_dvd);
                            }
                            if let Some(cg) = self.unknown_of_node(m.g) {
                                out.g.push(row, cg, sign * op.di_dvg);
                            }
                            if let Some(cs) = self.unknown_of_node(m.s) {
                                out.g.push(row, cs, sign * op.di_dvs);
                            }
                        }
                    }
                    // Linear gate/junction capacitances.
                    let cgs = m.cgs();
                    let cgd = m.cgd();
                    let cj = m.cj_term();
                    let qgs = (v(m.g) - v(m.s)) * cgs;
                    stamp_q(self, out, m.g, qgs);
                    stamp_q(self, out, m.s, -qgs);
                    stamp_c2(self, out, m.g, m.s, cgs);
                    let qgd = (v(m.g) - v(m.d)) * cgd;
                    stamp_q(self, out, m.g, qgd);
                    stamp_q(self, out, m.d, -qgd);
                    stamp_c2(self, out, m.g, m.d, cgd);
                    // Junction caps to ground rail.
                    for term in [m.d, m.s] {
                        if let Some(it) = self.unknown_of_node(term) {
                            out.q[it] += v(term) * cj;
                            out.c.push(it, it, cj);
                        }
                    }
                }
            }
        }
    }

    /// Derivative of the residual with respect to mismatch parameter `k`,
    /// evaluated at state `x`: the pseudo-noise injection vector.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownMismatchParam`] for an invalid index.
    pub fn d_residual_dparam(&self, k: usize, x: &[f64]) -> Result<ParamDeriv, CircuitError> {
        let mut out = ParamDeriv::default();
        self.d_residual_dparam_into(k, x, &mut out)?;
        Ok(out)
    }

    /// Allocation-free variant of [`Circuit::d_residual_dparam`]: clears and
    /// refills `out`, retaining its buffers (per-timestep sensitivity hot
    /// path).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownMismatchParam`] for an invalid index.
    pub fn d_residual_dparam_into(
        &self,
        k: usize,
        x: &[f64],
        out: &mut ParamDeriv,
    ) -> Result<(), CircuitError> {
        self.d_residual_dparams_into(k, x, std::slice::from_mut(out))
    }

    /// Derivatives for the contiguous parameter range `k0 .. k0 + out.len()`
    /// at state `x`, refilling `out` in place.
    ///
    /// Parameters that live on the same device share one model evaluation:
    /// a Pelgrom-annotated MOSFET contributes both a V_T and a β parameter,
    /// and the expensive smoothed-square-law evaluation is identical for the
    /// pair — the batched sensitivity propagation calls this once per state
    /// and halves its device-evaluation bill relative to per-parameter
    /// calls. The computed values are bit-for-bit the same either way.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownMismatchParam`] if the range exceeds
    /// the registered parameters.
    pub fn d_residual_dparams_into(
        &self,
        k0: usize,
        x: &[f64],
        out: &mut [ParamDeriv],
    ) -> Result<(), CircuitError> {
        self.d_residual_dparams_impl(k0, x, None, out)
    }

    /// Like [`Circuit::d_residual_dparams_into`], but reuses the MOSFET
    /// operating points captured by a previous assembly at the *same state*
    /// ([`Assembly::mos_ops`]) instead of re-evaluating the device models —
    /// the transient-sensitivity propagation gets every MOS derivative for
    /// free this way. Values are bit-for-bit those of the evaluating path.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnknownMismatchParam`] if the range exceeds
    /// the registered parameters.
    pub fn d_residual_dparams_with_ops(
        &self,
        k0: usize,
        x: &[f64],
        mos_ops: &[crate::mosfet::MosOp],
        out: &mut [ParamDeriv],
    ) -> Result<(), CircuitError> {
        self.d_residual_dparams_impl(k0, x, Some(mos_ops), out)
    }

    fn d_residual_dparams_impl(
        &self,
        k0: usize,
        x: &[f64],
        mos_ops: Option<&[crate::mosfet::MosOp]>,
        out: &mut [ParamDeriv],
    ) -> Result<(), CircuitError> {
        let v = |node: NodeId| self.voltage(x, node);
        // One-entry memo: consecutive parameters of one device (the Pelgrom
        // V_T/β pair) reuse the same operating-point evaluation.
        let mut memo: Option<(usize, crate::mosfet::MosOp)> = None;
        for (i, slot) in out.iter_mut().enumerate() {
            let k = k0 + i;
            slot.df.clear();
            slot.dq.clear();
            let param = self
                .mismatch
                .get(k)
                .ok_or(CircuitError::UnknownMismatchParam { index: k })?;
            let dev_idx = param.device.0;
            let dev = &self.devices[dev_idx];
            match (param.kind, dev) {
                (MismatchKind::MosVt | MismatchKind::MosBetaRel, Device::Mosfet(m)) => {
                    let op = match (mos_ops, memo) {
                        (Some(ops), _) => ops[dev_idx],
                        (None, Some((d, op))) if d == dev_idx => op,
                        _ => {
                            let op = eval_mosfet(
                                m.ty,
                                &m.model,
                                m.w,
                                m.l,
                                m.vt_shift,
                                m.beta_scale,
                                v(m.d),
                                v(m.g),
                                v(m.s),
                            );
                            memo = Some((dev_idx, op));
                            op
                        }
                    };
                    let di = if param.kind == MismatchKind::MosVt {
                        op.di_dvt
                    } else {
                        op.di_dbeta_rel
                    };
                    push_pair(self, &mut slot.df, m.d, m.s, di);
                }
                (MismatchKind::ResAbs, Device::Resistor { a, b, r }) => {
                    // i = (va−vb)/R ⇒ ∂i/∂R = −(va−vb)/R² = −I_R/R  (Fig. 3).
                    let didr = -(v(*a) - v(*b)) / (r * r);
                    push_pair(self, &mut slot.df, *a, *b, didr);
                }
                (MismatchKind::CapAbs, Device::Capacitor { a, b, .. }) => {
                    // q = C·(va−vb) ⇒ ∂q/∂C = va−vb (Fig. 3).
                    let dqdc = v(*a) - v(*b);
                    push_pair(self, &mut slot.dq, *a, *b, dqdc);
                }
                (MismatchKind::IndAbs, Device::Inductor { branch, .. }) => {
                    // Branch flux q = −L·i ⇒ ∂q/∂L = −i (Fig. 3).
                    let bi = self.unknown_of_branch(*branch);
                    slot.dq.push((bi, -x[bi]));
                }
                (kind, dev) => panic!("mismatch kind {kind:?} incompatible with {dev:?}"),
            }
        }
        Ok(())
    }

    /// Moves an assembled system from time `t_old` to `t_new` by updating
    /// only the independent-source contributions to `f` — the device stamps
    /// depend solely on the state, so an assembly at `(x, t_old)` becomes a
    /// valid assembly at `(x, t_new)` with a handful of waveform
    /// evaluations. This is the per-timestep warm start of the transient
    /// integrator: the accepted assembly of step `k` seeds the Newton
    /// iteration of step `k+1` without re-evaluating every device.
    pub fn retime_sources(&self, asm: &mut Assembly, t_old: f64, t_new: f64) {
        if t_old == t_new {
            return;
        }
        for dev in &self.devices {
            match dev {
                Device::Vsource { wave, branch, .. } => {
                    // Branch residual carries −wave(t).
                    let bi = self.unknown_of_branch(*branch);
                    asm.f[bi] += wave.value(t_old) - wave.value(t_new);
                }
                Device::Isource { p, n, wave } => {
                    let delta = wave.value(t_new) - wave.value(t_old);
                    if let Some(ip) = self.unknown_of_node(*p) {
                        asm.f[ip] += delta;
                    }
                    if let Some(inn) = self.unknown_of_node(*n) {
                        asm.f[inn] -= delta;
                    }
                }
                _ => {}
            }
        }
    }

    /// Vector of σ for each mismatch parameter, in parameter order.
    pub fn mismatch_sigmas(&self) -> Vec<f64> {
        self.mismatch.iter().map(|p| p.sigma).collect()
    }

    /// Mutable access to a device for design-space exploration (e.g. the
    /// width-resizing yield optimizer). Invariants such as Pelgrom σ are the
    /// caller's responsibility — see [`Circuit::rescale_mismatch_sigmas`].
    pub fn device_mut(&mut self, id: DeviceId) -> &mut Device {
        &mut self.devices[id.0]
    }

    /// Rescales each mismatch parameter's σ by `factor(param)` (used after
    /// geometry changes: Pelgrom σ ∝ 1/√(W·L)).
    pub fn rescale_mismatch_sigmas(&mut self, mut factor: impl FnMut(&MismatchParam) -> f64) {
        for i in 0..self.mismatch.len() {
            let k = factor(&self.mismatch[i]);
            self.mismatch[i].sigma *= k;
        }
    }

    /// Applies a set of numeric-only overrides in place.
    ///
    /// Every override rewrites device *values* (or mismatch σ) without
    /// adding, removing or rewiring anything, so the MNA sparsity pattern —
    /// and with it any cached symbolic analysis keyed on that pattern — is
    /// preserved exactly. This is the scenario-application primitive of the
    /// campaign layer in `tranvar-core`: a worker session revalues one
    /// clone of the base circuit per scenario and every solve after the
    /// first is a pure numeric replay.
    ///
    /// Overrides are applied in order; later overrides see the effects of
    /// earlier ones (relevant for [`CircuitOverride::SourceScale`] after
    /// [`CircuitOverride::SourceDc`], or stacked sigma scalings).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::InvalidParameter`] for a kind mismatch
    /// (e.g. a resistance override on a capacitor) or a non-positive
    /// element value, and [`CircuitError::UnknownMismatchParam`] /
    /// [`CircuitError::UnknownDevice`] for out-of-range indices. The
    /// circuit is modified up to the failing override.
    pub fn revalue(&mut self, overrides: &[CircuitOverride]) -> Result<(), CircuitError> {
        for ov in overrides {
            self.apply_override(ov)?;
        }
        Ok(())
    }

    fn apply_override(&mut self, ov: &CircuitOverride) -> Result<(), CircuitError> {
        let device_of = |this: &Circuit, id: DeviceId| -> Result<(), CircuitError> {
            if id.0 >= this.devices.len() {
                return Err(CircuitError::UnknownDevice { index: id.0 });
            }
            Ok(())
        };
        let positive = |this: &Circuit, id: DeviceId, what: &str, v: f64| {
            if v > 0.0 {
                Ok(())
            } else {
                Err(CircuitError::InvalidParameter {
                    device: this.labels[id.0].clone(),
                    reason: format!("{what} must be positive, got {v:e}"),
                })
            }
        };
        let mismatch_err =
            |this: &Circuit, id: DeviceId, what: &str| CircuitError::InvalidParameter {
                device: this.labels[id.0].clone(),
                reason: format!("{what} override does not match the device kind"),
            };
        match *ov {
            CircuitOverride::Resistance { device, ohms } => {
                device_of(self, device)?;
                positive(self, device, "resistance", ohms)?;
                match &mut self.devices[device.0] {
                    Device::Resistor { r, .. } => *r = ohms,
                    _ => return Err(mismatch_err(self, device, "resistance")),
                }
            }
            CircuitOverride::Capacitance { device, farads } => {
                device_of(self, device)?;
                positive(self, device, "capacitance", farads)?;
                match &mut self.devices[device.0] {
                    Device::Capacitor { c, .. } => *c = farads,
                    _ => return Err(mismatch_err(self, device, "capacitance")),
                }
            }
            CircuitOverride::Inductance { device, henries } => {
                device_of(self, device)?;
                positive(self, device, "inductance", henries)?;
                match &mut self.devices[device.0] {
                    Device::Inductor { l, .. } => *l = henries,
                    _ => return Err(mismatch_err(self, device, "inductance")),
                }
            }
            CircuitOverride::SourceDc { device, value } => {
                device_of(self, device)?;
                if !value.is_finite() {
                    return Err(CircuitError::InvalidParameter {
                        device: self.labels[device.0].clone(),
                        reason: format!("source level must be finite, got {value:e}"),
                    });
                }
                match &mut self.devices[device.0] {
                    Device::Vsource { wave, .. } | Device::Isource { wave, .. } => match wave {
                        Waveform::Dc(v) => *v = value,
                        _ => {
                            return Err(CircuitError::InvalidParameter {
                                device: self.labels[device.0].clone(),
                                reason: "SourceDc override needs a DC waveform (use SourceScale \
                                         for time-varying stimuli)"
                                    .into(),
                            })
                        }
                    },
                    _ => return Err(mismatch_err(self, device, "source-level")),
                }
            }
            CircuitOverride::SourceScale { device, factor } => {
                device_of(self, device)?;
                if !factor.is_finite() {
                    return Err(CircuitError::InvalidParameter {
                        device: self.labels[device.0].clone(),
                        reason: format!("source scale must be finite, got {factor:e}"),
                    });
                }
                match &mut self.devices[device.0] {
                    Device::Vsource { wave, .. } | Device::Isource { wave, .. } => {
                        *wave = scale_waveform(wave, factor);
                    }
                    _ => return Err(mismatch_err(self, device, "source-scale")),
                }
            }
            CircuitOverride::MosWidth { device, width } => {
                device_of(self, device)?;
                positive(self, device, "width", width)?;
                let w_old = match &mut self.devices[device.0] {
                    Device::Mosfet(m) => {
                        let w_old = m.w;
                        m.w = width;
                        w_old
                    }
                    _ => return Err(mismatch_err(self, device, "width")),
                };
                // Pelgrom σ ∝ 1/√(W·L): geometry changes re-scale every
                // matching parameter attached to this device.
                let factor = (w_old / width).sqrt();
                for p in &mut self.mismatch {
                    if p.device == device
                        && matches!(p.kind, MismatchKind::MosVt | MismatchKind::MosBetaRel)
                    {
                        p.sigma *= factor;
                    }
                }
            }
            CircuitOverride::SigmaScale { factor } => {
                if factor.is_nan() || factor < 0.0 {
                    return Err(CircuitError::InvalidParameter {
                        device: "<all mismatch>".into(),
                        reason: format!("sigma scale must be non-negative, got {factor:e}"),
                    });
                }
                for p in &mut self.mismatch {
                    p.sigma *= factor;
                }
            }
            CircuitOverride::SigmaSet { param, sigma } => {
                if !sigma.is_finite() || sigma < 0.0 {
                    return Err(CircuitError::InvalidParameter {
                        device: format!("<mismatch param {param}>"),
                        reason: format!("sigma must be finite and non-negative, got {sigma:e}"),
                    });
                }
                let p = self
                    .mismatch
                    .get_mut(param)
                    .ok_or(CircuitError::UnknownMismatchParam { index: param })?;
                p.sigma = sigma;
            }
        }
        Ok(())
    }

    /// Returns a copy of the circuit with every independent source scaled by
    /// `alpha` (source-stepping homotopy for hard DC problems).
    pub fn scaled_sources(&self, alpha: f64) -> Circuit {
        let mut out = self.clone();
        for dev in &mut out.devices {
            match dev {
                Device::Vsource { wave, .. } | Device::Isource { wave, .. } => {
                    *wave = scale_waveform(wave, alpha);
                }
                _ => {}
            }
        }
        out
    }
}

fn scale_waveform(w: &Waveform, alpha: f64) -> Waveform {
    match w {
        Waveform::Dc(v) => Waveform::Dc(v * alpha),
        Waveform::Pulse(p) => {
            let mut p = *p;
            p.v0 *= alpha;
            p.v1 *= alpha;
            Waveform::Pulse(p)
        }
        Waveform::Sin {
            offset,
            ampl,
            freq,
            delay,
        } => Waveform::Sin {
            offset: offset * alpha,
            ampl: ampl * alpha,
            freq: *freq,
            delay: *delay,
        },
        Waveform::Pwl(points) => {
            Waveform::Pwl(points.iter().map(|&(t, v)| (t, v * alpha)).collect())
        }
    }
}

fn stamp_f(ckt: &Circuit, out: &mut Assembly, node: NodeId, val: f64) {
    if let Some(i) = ckt.unknown_of_node(node) {
        out.f[i] += val;
    }
}

fn stamp_q(ckt: &Circuit, out: &mut Assembly, node: NodeId, val: f64) {
    if let Some(i) = ckt.unknown_of_node(node) {
        out.q[i] += val;
    }
}

/// Two-terminal conductance stamp.
fn stamp_g2(ckt: &Circuit, out: &mut Assembly, a: NodeId, b: NodeId, g: f64) {
    let (ia, ib) = (ckt.unknown_of_node(a), ckt.unknown_of_node(b));
    if let Some(ia) = ia {
        out.g.push(ia, ia, g);
        if let Some(ib) = ib {
            out.g.push(ia, ib, -g);
            out.g.push(ib, ia, -g);
        }
    }
    if let Some(ib) = ib {
        out.g.push(ib, ib, g);
    }
}

/// Two-terminal capacitance stamp.
fn stamp_c2(ckt: &Circuit, out: &mut Assembly, a: NodeId, b: NodeId, c: f64) {
    let (ia, ib) = (ckt.unknown_of_node(a), ckt.unknown_of_node(b));
    if let Some(ia) = ia {
        out.c.push(ia, ia, c);
        if let Some(ib) = ib {
            out.c.push(ia, ib, -c);
            out.c.push(ib, ia, -c);
        }
    }
    if let Some(ib) = ib {
        out.c.push(ib, ib, c);
    }
}

/// Transconductance stamp: current `gm·(v_cp − v_cn)` from p to n.
fn stamp_g_cross(
    ckt: &Circuit,
    out: &mut Assembly,
    p: NodeId,
    n: NodeId,
    cp: NodeId,
    cn: NodeId,
    gm: f64,
) {
    for (node, sign) in [(p, 1.0), (n, -1.0)] {
        if let Some(row) = ckt.unknown_of_node(node) {
            if let Some(icp) = ckt.unknown_of_node(cp) {
                out.g.push(row, icp, sign * gm);
            }
            if let Some(icn) = ckt.unknown_of_node(cn) {
                out.g.push(row, icn, -sign * gm);
            }
        }
    }
}

/// Pushes `+val` at node `a`'s row and `−val` at node `b`'s row.
fn push_pair(ckt: &Circuit, list: &mut Vec<(usize, f64)>, a: NodeId, b: NodeId, val: f64) {
    if let Some(ia) = ckt.unknown_of_node(a) {
        list.push((ia, val));
    }
    if let Some(ib) = ckt.unknown_of_node(b) {
        list.push((ib, -val));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mismatch::MismatchKind;

    /// Revalued circuits must assemble exactly like circuits built with the
    /// target values directly, and the stamp pattern must be unchanged.
    #[test]
    fn revalue_matches_direct_construction_and_preserves_pattern() {
        let build = |r: f64, c: f64, v: f64| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let b = ckt.node("b");
            ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(v));
            let r1 = ckt.add_resistor("R1", a, b, r);
            let c1 = ckt.add_capacitor("C1", b, NodeId::GROUND, c);
            ckt.annotate_resistor_mismatch(r1, 10.0);
            ckt.annotate_capacitor_mismatch(c1, 1e-11);
            (ckt, r1, c1)
        };
        let (mut ckt, r1, c1) = build(1e3, 1e-9, 1.0);
        let v1 = ckt.find_device("V1").unwrap();
        ckt.revalue(&[
            CircuitOverride::Resistance {
                device: r1,
                ohms: 2.2e3,
            },
            CircuitOverride::Capacitance {
                device: c1,
                farads: 0.5e-9,
            },
            CircuitOverride::SourceDc {
                device: v1,
                value: 1.4,
            },
            CircuitOverride::SigmaScale { factor: 2.0 },
        ])
        .unwrap();
        let (direct, _, _) = build(2.2e3, 0.5e-9, 1.4);
        let x = vec![0.7, 0.3, -1e-3];
        let (base, fresh) = (ckt.assemble(&x, 0.0), direct.assemble(&x, 0.0));
        assert_eq!(base.f, fresh.f);
        assert_eq!(base.q, fresh.q);
        assert_eq!(base.g.to_csc(), fresh.g.to_csc());
        assert_eq!(base.c.to_csc(), fresh.c.to_csc());
        // σ: scaled by 2 relative to the direct build.
        assert_eq!(ckt.mismatch_sigmas(), vec![20.0, 2e-11]);
        // Pattern identical to the pre-revalue circuit: the original CSC
        // structure accepts a value-refill from the revalued stamps.
        let (orig, _, _) = build(1e3, 1e-9, 1.0);
        let mut csc = orig.assemble(&x, 0.0).g.to_csc();
        assert!(csc.refill_from(&ckt.assemble(&x, 0.0).g).is_ok());
    }

    #[test]
    fn revalue_mos_width_rescales_pelgrom_sigma() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let m = ckt.add_mosfet(
            "M1",
            d,
            d,
            NodeId::GROUND,
            MosType::Nmos,
            MosModel::nmos_013(),
            2e-6,
            0.13e-6,
        );
        ckt.annotate_pelgrom(m, 6.5e-9, 3.25e-8);
        let before = ckt.mismatch_sigmas();
        ckt.revalue(&[CircuitOverride::MosWidth {
            device: m,
            width: 8e-6,
        }])
        .unwrap();
        match ckt.device(m) {
            Device::Mosfet(mm) => assert_eq!(mm.w, 8e-6),
            _ => unreachable!(),
        }
        let after = ckt.mismatch_sigmas();
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((a - b * 0.5).abs() < 1e-15 * b, "{a} vs {}", b * 0.5);
        }
    }

    #[test]
    fn revalue_rejects_kind_mismatch_and_bad_values() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        let r1 = ckt.add_resistor("R1", a, NodeId::GROUND, 1e3);
        assert!(ckt
            .revalue(&[CircuitOverride::Capacitance {
                device: r1,
                farads: 1e-9
            }])
            .is_err());
        assert!(ckt
            .revalue(&[CircuitOverride::Resistance {
                device: r1,
                ohms: -5.0
            }])
            .is_err());
        assert!(ckt
            .revalue(&[CircuitOverride::SigmaSet {
                param: 3,
                sigma: 1.0
            }])
            .is_err());
        ckt.annotate_resistor_mismatch(r1, 10.0);
        assert!(ckt
            .revalue(&[CircuitOverride::SigmaSet {
                param: 0,
                sigma: -1.0
            }])
            .is_err());
        assert!(ckt
            .revalue(&[CircuitOverride::SigmaSet {
                param: 0,
                sigma: f64::NAN
            }])
            .is_err());
        assert!(ckt
            .revalue(&[CircuitOverride::SigmaScale { factor: -2.0 }])
            .is_err());
        let v1 = ckt.find_device("V1").unwrap();
        assert!(ckt
            .revalue(&[CircuitOverride::SourceDc {
                device: v1,
                value: 2.5
            }])
            .is_ok());
        assert!(matches!(
            ckt.device(v1),
            Device::Vsource {
                wave: Waveform::Dc(v),
                ..
            } if *v == 2.5
        ));
    }

    #[test]
    fn statistical_only_classification() {
        assert!(CircuitOverride::SigmaScale { factor: 2.0 }.is_statistical_only());
        assert!(CircuitOverride::SigmaSet {
            param: 0,
            sigma: 1.0
        }
        .is_statistical_only());
        assert!(!CircuitOverride::Resistance {
            device: DeviceId(0),
            ohms: 1.0
        }
        .is_statistical_only());
    }

    #[test]
    fn retime_sources_matches_fresh_assembly() {
        use crate::waveform::Pulse;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-6,
                rise: 1e-7,
                fall: 1e-7,
                width: 4e-6,
                period: 10e-6,
            }),
        );
        ckt.add_isource(
            "I1",
            b,
            NodeId::GROUND,
            Waveform::Sin {
                offset: 1e-3,
                ampl: 2e-3,
                freq: 1e5,
                delay: 0.0,
            },
        );
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
        let x = vec![0.3, 0.1, -2e-4];
        let (t0, t1) = (0.8e-6, 1.35e-6); // crosses the pulse edge
        let mut asm = ckt.assemble(&x, t0);
        ckt.retime_sources(&mut asm, t0, t1);
        let fresh = ckt.assemble(&x, t1);
        for (i, (a, b)) in asm.f.iter().zip(fresh.f.iter()).enumerate() {
            assert!((a - b).abs() < 1e-12, "f[{i}]: {a} vs {b}");
        }
        assert_eq!(asm.q, fresh.q);
    }

    #[test]
    fn assembly_copy_from_reuses_buffers() {
        let (ckt, _, _) = divider();
        let x = vec![0.5; ckt.n_unknowns()];
        let asm1 = ckt.assemble(&x, 0.0);
        let mut asm2 = ckt.assemble(&vec![0.0; ckt.n_unknowns()], 0.0);
        asm2.copy_from(&asm1);
        assert_eq!(asm2.f, asm1.f);
        assert_eq!(asm2.q, asm1.q);
        assert_eq!(asm2.g.len(), asm1.g.len());
    }

    fn divider() -> (Circuit, NodeId, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.add_vsource("V1", vin, NodeId::GROUND, Waveform::Dc(2.0));
        ckt.add_resistor("R1", vin, vout, 1000.0);
        ckt.add_resistor("R2", vout, NodeId::GROUND, 1000.0);
        (ckt, vin, vout)
    }

    #[test]
    fn node_dedup_and_ground_aliases() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert!(ckt.node("0").is_ground());
        assert!(ckt.node("gnd").is_ground());
        assert_eq!(ckt.n_nodes(), 2);
    }

    #[test]
    fn unknown_layout() {
        let (ckt, vin, vout) = divider();
        assert_eq!(ckt.n_unknowns(), 3);
        assert_eq!(ckt.unknown_of_node(vin), Some(0));
        assert_eq!(ckt.unknown_of_node(vout), Some(1));
        assert_eq!(ckt.unknown_of_branch(0), 2);
        assert_eq!(ckt.unknown_of_node(NodeId::GROUND), None);
    }

    #[test]
    fn divider_residual_zero_at_solution() {
        let (ckt, _, _) = divider();
        // Exact solution: vin=2, vout=1, branch current = -(2-1)/1000 ...
        // current through V1 from p to n inside source: KCL at vin:
        // i_R1 + i_br = 0 -> i_br = -(2-1)/1000 = -1 mA.
        let x = vec![2.0, 1.0, -1.0e-3];
        let asm = ckt.assemble(&x, 0.0);
        for (i, f) in asm.f.iter().enumerate() {
            assert!(f.abs() < 1e-12, "row {i}: {f}");
        }
    }

    #[test]
    fn jacobian_matches_finite_difference_linear() {
        let (ckt, _, _) = divider();
        jac_fd_check(&ckt, &[1.7, 0.4, 2.0e-3]);
    }

    #[test]
    fn jacobian_matches_finite_difference_mosfet() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(1.2));
        ckt.add_vsource("VG", g, NodeId::GROUND, Waveform::Dc(0.8));
        ckt.add_resistor("RD", vdd, d, 5e3);
        ckt.add_mosfet(
            "M1",
            d,
            g,
            NodeId::GROUND,
            MosType::Nmos,
            MosModel::nmos_013(),
            2e-6,
            0.13e-6,
        );
        jac_fd_check(&ckt, &[1.2, 0.8, 0.63, -1e-4, 2e-5]);
    }

    fn jac_fd_check(ckt: &Circuit, x0: &[f64]) {
        let n = ckt.n_unknowns();
        assert_eq!(x0.len(), n);
        let asm0 = ckt.assemble(x0, 0.0);
        let gd = asm0.g.to_csc().to_dense();
        let cd = asm0.c.to_csc().to_dense();
        let h = 1e-7;
        for j in 0..n {
            let mut xp = x0.to_vec();
            xp[j] += h;
            let mut xm = x0.to_vec();
            xm[j] -= h;
            let ap = ckt.assemble(&xp, 0.0);
            let am = ckt.assemble(&xm, 0.0);
            for i in 0..n {
                let dfd = (ap.f[i] - am.f[i]) / (2.0 * h);
                let dqd = (ap.q[i] - am.q[i]) / (2.0 * h);
                let tolg = 1e-4 * gd[(i, j)].abs().max(1e-6);
                assert!(
                    (gd[(i, j)] - dfd).abs() < tolg,
                    "G[{i}][{j}] {} vs fd {dfd}",
                    gd[(i, j)]
                );
                let tolc = 1e-4 * cd[(i, j)].abs().max(1e-12);
                assert!(
                    (cd[(i, j)] - dqd).abs() < tolc,
                    "C[{i}][{j}] {} vs fd {dqd}",
                    cd[(i, j)]
                );
            }
        }
    }

    #[test]
    fn param_deriv_matches_finite_difference() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(1.2));
        ckt.add_vsource("VG", g, NodeId::GROUND, Waveform::Dc(0.9));
        let rd = ckt.add_resistor("RD", vdd, d, 3e3);
        let m1 = ckt.add_mosfet(
            "M1",
            d,
            g,
            NodeId::GROUND,
            MosType::Nmos,
            MosModel::nmos_013(),
            4e-6,
            0.13e-6,
        );
        ckt.annotate_pelgrom(m1, 6.5e-9, 3.25e-8);
        ckt.annotate_resistor_mismatch(rd, 30.0);
        let x = vec![1.2, 0.9, 0.5, -1e-4, 1e-5];

        for k in 0..ckt.mismatch_params().len() {
            let pd = ckt.d_residual_dparam(k, &x).unwrap();
            // Finite difference by perturbing the circuit.
            let h_for = |kind: MismatchKind| match kind {
                MismatchKind::MosVt => 1e-6,
                MismatchKind::MosBetaRel => 1e-6,
                MismatchKind::ResAbs => 1e-3,
                _ => 1e-9,
            };
            let kind = ckt.mismatch_params()[k].kind;
            let h = h_for(kind);
            let mut deltas = vec![0.0; ckt.mismatch_params().len()];
            deltas[k] = h;
            let mut cp = ckt.clone();
            cp.apply_mismatch(&deltas);
            let ap = cp.assemble(&x, 0.0);
            deltas[k] = -h;
            let mut cm = ckt.clone();
            cm.apply_mismatch(&deltas);
            let am = cm.assemble(&x, 0.0);
            let mut df_fd = vec![0.0; ckt.n_unknowns()];
            let mut dq_fd = vec![0.0; ckt.n_unknowns()];
            for i in 0..ckt.n_unknowns() {
                df_fd[i] = (ap.f[i] - am.f[i]) / (2.0 * h);
                dq_fd[i] = (ap.q[i] - am.q[i]) / (2.0 * h);
            }
            let mut df = vec![0.0; ckt.n_unknowns()];
            for (i, val) in &pd.df {
                df[*i] += val;
            }
            let mut dq = vec![0.0; ckt.n_unknowns()];
            for (i, val) in &pd.dq {
                dq[*i] += val;
            }
            for i in 0..ckt.n_unknowns() {
                assert!(
                    (df[i] - df_fd[i]).abs() < 1e-4 * df_fd[i].abs().max(1e-7),
                    "param {k} df[{i}]: {} vs {}",
                    df[i],
                    df_fd[i]
                );
                assert!(
                    (dq[i] - dq_fd[i]).abs() < 1e-4 * dq_fd[i].abs().max(1e-12),
                    "param {k} dq[{i}]: {} vs {}",
                    dq[i],
                    dq_fd[i]
                );
            }
        }
    }

    #[test]
    fn pelgrom_sigma_scaling() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let m = ckt.add_mosfet(
            "M1",
            d,
            d,
            NodeId::GROUND,
            MosType::Nmos,
            MosModel::nmos_013(),
            8.32e-6,
            0.13e-6,
        );
        // AVT = 6.5 mV·µm = 6.5e-9 V·m
        let (ivt, ibeta) = ckt.annotate_pelgrom(m, 6.5e-9, 3.25e-8);
        let area_sqrt = (8.32e-6_f64 * 0.13e-6).sqrt();
        let svt = ckt.mismatch_params()[ivt].sigma;
        let sbeta = ckt.mismatch_params()[ibeta].sigma;
        assert!((svt - 6.5e-9 / area_sqrt).abs() < 1e-12);
        assert!((sbeta - 3.25e-8 / area_sqrt).abs() < 1e-12);
        // For the paper's device this is about 6.25 mV and 3.1%.
        assert!((svt - 6.25e-3).abs() < 0.2e-3, "sigma_vt = {svt}");
        assert!((sbeta - 0.0312).abs() < 0.002, "sigma_beta = {sbeta}");
    }

    #[test]
    fn apply_and_reset_mismatch() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let m = ckt.add_mosfet(
            "M1",
            d,
            d,
            NodeId::GROUND,
            MosType::Nmos,
            MosModel::nmos_013(),
            1e-6,
            0.13e-6,
        );
        ckt.annotate_pelgrom(m, 6.5e-9, 3.25e-8);
        ckt.apply_mismatch(&[0.01, 0.05]);
        match ckt.device(m) {
            Device::Mosfet(mm) => {
                assert!((mm.vt_shift - 0.01).abs() < 1e-15);
                assert!((mm.beta_scale - 1.05).abs() < 1e-15);
            }
            _ => unreachable!(),
        }
        ckt.reset_mismatch();
        match ckt.device(m) {
            Device::Mosfet(mm) => {
                assert_eq!(mm.vt_shift, 0.0);
                assert_eq!(mm.beta_scale, 1.0);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn vccs_stamps_correctly() {
        // VCCS from a controlled by itself: i = gm*v flows a->gnd.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_isource("I1", NodeId::GROUND, a, Waveform::Dc(1e-3));
        ckt.add_vccs("G1", a, NodeId::GROUND, a, NodeId::GROUND, 1e-3);
        // KCL: -1mA (injected) + gm*v = 0 -> v = 1.0
        let x = vec![1.0];
        let asm = ckt.assemble(&x, 0.0);
        assert!(asm.f[0].abs() < 1e-15);
    }

    #[test]
    fn inductor_dc_steady_state() {
        // V -- L -- R to ground: at DC steady state i = V/R, q_branch = -L*i.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        ckt.add_inductor("L1", a, b, 1e-6);
        ckt.add_resistor("R1", b, NodeId::GROUND, 100.0);
        // unknowns: va, vb, i_V (branch 0, added first), i_L (branch 1).
        // At steady state: va=1, vb=1, i_L = 10 mA (a->b), i_V = -10 mA.
        let x = vec![1.0, 1.0, -0.01, 0.01];
        let asm = ckt.assemble(&x, 0.0);
        for (i, f) in asm.f.iter().enumerate() {
            assert!(f.abs() < 1e-12, "row {i}: {f}");
        }
        // Inductor flux on its branch row.
        let bi = ckt.unknown_of_branch(ckt_branch(&ckt, "L1"));
        assert!((asm.q[bi] + 1e-6 * 0.01).abs() < 1e-18);
    }

    fn ckt_branch(ckt: &Circuit, label: &str) -> usize {
        let id = ckt.find_device(label).unwrap();
        match ckt.device(id) {
            Device::Inductor { branch, .. } => *branch,
            Device::Vsource { branch, .. } => *branch,
            Device::Vcvs { branch, .. } => *branch,
            _ => panic!("no branch"),
        }
    }
}
