//! Smoothed square-law MOSFET model with analytic derivatives.
//!
//! The paper's flow only needs a transistor model whose drain current has the
//! canonical first-order mismatch structure (∂I_D/∂V_T = −g_m and
//! ∂I_D/∂(δβ/β) = I_D, the Pelgrom pair of Fig. 4), is C¹-smooth for Newton
//! robustness in strongly switching circuits (StrongARM latch, logic gates),
//! and exhibits a realistic g_m/I_D so that the quoted operating point
//! (8.32 µm/0.13 µm nMOS at V_GS = 1.0 V ⇒ 3σ(I_DS) ≈ 14%) can be
//! calibrated. A Level-1 square law with a softplus sub-threshold blend and
//! an exponential triode→saturation transition satisfies all three; this is
//! our substitute for the authors' foundry BSIM models (see DESIGN.md).

/// Thermal voltage kT/q at room temperature (V).
pub const VT_THERMAL: f64 = 0.02585;

/// MOSFET polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MosType {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// Model card shared by a device (copied per instance so Monte-Carlo can
/// perturb devices independently).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MosModel {
    /// Zero-bias threshold magnitude (V, positive for both polarities).
    pub vt0: f64,
    /// Transconductance parameter µ·C_ox (A/V²).
    pub kp: f64,
    /// Channel-length modulation (1/V).
    pub lambda: f64,
    /// Sub-threshold ideality factor (softplus sharpness = n·kT/q).
    pub n_sub: f64,
    /// Gate-oxide capacitance per area (F/m²).
    pub cox: f64,
    /// Gate overlap capacitance per width (F/m).
    pub cov: f64,
    /// Junction capacitance per width (F/m).
    pub cj: f64,
    /// Thermal-noise excess factor γ (i²_n = 4kTγg_m).
    pub gamma_noise: f64,
    /// Flicker-noise coefficient (dimensionless, scaled by g_m²/(C_ox·W·L·f)).
    pub kf: f64,
}

impl MosModel {
    /// A representative 0.13 µm-class NMOS card.
    pub fn nmos_013() -> Self {
        MosModel {
            vt0: 0.38,
            kp: 4.2e-4,
            lambda: 0.15,
            n_sub: 1.8,
            cox: 1.2e-2,
            cov: 3.0e-10,
            cj: 8.0e-10,
            gamma_noise: 1.0,
            kf: 2.0e-25,
        }
    }

    /// A representative 0.13 µm-class PMOS card.
    pub fn pmos_013() -> Self {
        MosModel {
            vt0: 0.36,
            kp: 1.7e-4,
            lambda: 0.18,
            n_sub: 1.8,
            cox: 1.2e-2,
            cov: 3.0e-10,
            cj: 8.0e-10,
            gamma_noise: 1.0,
            kf: 1.0e-25,
        }
    }
}

/// Operating-point result of one model evaluation, expressed in *physical*
/// terminal quantities: `ids` is the current leaving the drain terminal, and
/// the `di_*` entries are its partial derivatives.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MosOp {
    /// Current leaving the physical drain (A).
    pub ids: f64,
    /// ∂ids/∂v_drain.
    pub di_dvd: f64,
    /// ∂ids/∂v_gate.
    pub di_dvg: f64,
    /// ∂ids/∂v_source.
    pub di_dvs: f64,
    /// ∂ids/∂(δV_T) — derivative w.r.t. a shift of this device's stored
    /// threshold parameter (the Pelgrom V_T mismatch variable).
    pub di_dvt: f64,
    /// ∂ids/∂(δβ/β) — derivative w.r.t. relative current-factor mismatch.
    /// Always equals `ids` for a current ∝ β.
    pub di_dbeta_rel: f64,
    /// |g_m| in the conducting frame (for 4kTγg_m thermal noise).
    pub gm_abs: f64,
    /// |I_DS| (for flicker / β-noise magnitudes).
    pub id_abs: f64,
}

/// Local-frame square-law evaluation: `vgs`, `vds ≥ 0` with positive
/// parameters; returns `(id, gm, gds, did_dvt)` where `id` flows drain→source.
fn eval_local(
    vgs: f64,
    vds: f64,
    vt_eff: f64,
    beta: f64,
    lambda: f64,
    n_sub: f64,
) -> (f64, f64, f64, f64) {
    debug_assert!(vds >= 0.0);
    let a = n_sub * VT_THERMAL;
    let arg = (vgs - vt_eff) / a;
    // Softplus overdrive and its vgs-derivative (logistic).
    let (vov, dvov) = if arg > 40.0 {
        (vgs - vt_eff, 1.0)
    } else if arg < -40.0 {
        let e = arg.exp();
        (a * e, e)
    } else {
        let e = arg.exp();
        (a * (1.0 + e).ln(), e / (1.0 + e))
    };
    if vov <= 0.0 {
        return (0.0, 0.0, 0.0, 0.0);
    }
    // Smooth triode/saturation blend: ve = vov·(1 − e^{−vds/vov}).
    let u = vds / vov;
    let eu = (-u).exp();
    let ve = vov * (1.0 - eu);
    let dve_dvds = eu;
    let dve_dvov = 1.0 - eu * (1.0 + u);
    let gfun = vov * ve - 0.5 * ve * ve;
    let clm = 1.0 + lambda * vds;
    let id = beta * gfun * clm;
    let dg_dvov_total = ve + (vov - ve) * dve_dvov;
    let gm = beta * clm * dg_dvov_total * dvov;
    let gds = beta * clm * (vov - ve) * dve_dvds + beta * gfun * lambda;
    let did_dvt = -beta * clm * dg_dvov_total * dvov;
    (id, gm, gds, did_dvt)
}

/// Evaluates the model at physical terminal voltages `(vd, vg, vs)`.
///
/// Handles drain/source swap for reverse bias and polarity mirroring for
/// PMOS, so callers can stamp the returned derivatives directly:
/// KCL(drain) += ids, KCL(source) −= ids, with the Jacobian entries
/// `di_dvd/di_dvg/di_dvs` on the corresponding columns.
pub fn eval_mosfet(
    ty: MosType,
    model: &MosModel,
    w: f64,
    l: f64,
    vt_shift: f64,
    beta_scale: f64,
    vd: f64,
    vg: f64,
    vs: f64,
) -> MosOp {
    // Mirror all node voltages for PMOS; the final current/derivative mapping
    // is handled below.
    let (mvd, mvg, mvs) = match ty {
        MosType::Nmos => (vd, vg, vs),
        MosType::Pmos => (-vd, -vg, -vs),
    };
    let beta = model.kp * (w / l) * beta_scale;
    let vt_eff = model.vt0 + vt_shift;
    // Drain/source swap in the mirrored frame.
    let swapped = mvd < mvs;
    let (vdl, vsl) = if swapped { (mvs, mvd) } else { (mvd, mvs) };
    let vgs_l = mvg - vsl;
    let vds_l = vdl - vsl;
    let (id_l, gm_l, gds_l, divt_l) =
        eval_local(vgs_l, vds_l, vt_eff, beta, model.lambda, model.n_sub);

    // Current leaving the mirrored drain and its derivatives w.r.t. the
    // mirrored node voltages.
    let (m_ids, m_dvd, m_dvg, m_dvs, m_dvt) = if swapped {
        (
            -id_l,
            gm_l + gds_l, // ∂(−id_l(vg−vd, vs−vd))/∂vd
            -gm_l,
            -gds_l,
            -divt_l,
        )
    } else {
        (id_l, gds_l, gm_l, -(gm_l + gds_l), divt_l)
    };

    // Map back to physical frame. For PMOS: ids = −m_ids and
    // ∂ids/∂v = +∂m_ids/∂v_m (two sign flips cancel).
    let (ids, di_dvd, di_dvg, di_dvs, di_dvt) = match ty {
        MosType::Nmos => (m_ids, m_dvd, m_dvg, m_dvs, m_dvt),
        MosType::Pmos => (-m_ids, m_dvd, m_dvg, m_dvs, -m_dvt),
    };
    MosOp {
        ids,
        di_dvd,
        di_dvg,
        di_dvs,
        di_dvt,
        di_dbeta_rel: ids,
        gm_abs: gm_l.abs(),
        id_abs: id_l.abs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(ty: MosType, vd: f64, vg: f64, vs: f64) {
        let m = match ty {
            MosType::Nmos => MosModel::nmos_013(),
            MosType::Pmos => MosModel::pmos_013(),
        };
        let (w, l) = (2.0e-6, 0.13e-6);
        let op = eval_mosfet(ty, &m, w, l, 0.0, 1.0, vd, vg, vs);
        let h = 1e-7;
        let f = |vd: f64, vg: f64, vs: f64, dvt: f64, brel: f64| {
            eval_mosfet(ty, &m, w, l, dvt, 1.0 + brel, vd, vg, vs).ids
        };
        let num_dvd = (f(vd + h, vg, vs, 0.0, 0.0) - f(vd - h, vg, vs, 0.0, 0.0)) / (2.0 * h);
        let num_dvg = (f(vd, vg + h, vs, 0.0, 0.0) - f(vd, vg - h, vs, 0.0, 0.0)) / (2.0 * h);
        let num_dvs = (f(vd, vg, vs + h, 0.0, 0.0) - f(vd, vg, vs - h, 0.0, 0.0)) / (2.0 * h);
        let num_dvt = (f(vd, vg, vs, h, 0.0) - f(vd, vg, vs, -h, 0.0)) / (2.0 * h);
        let num_dbr = (f(vd, vg, vs, 0.0, h) - f(vd, vg, vs, 0.0, -h)) / (2.0 * h);
        let scale = op.di_dvd.abs().max(op.di_dvg.abs()).max(1e-9);
        let tol = 1e-4 * scale.max(1e-6);
        assert!(
            (op.di_dvd - num_dvd).abs() < tol,
            "{ty:?} dvd: {} vs {num_dvd}",
            op.di_dvd
        );
        assert!(
            (op.di_dvg - num_dvg).abs() < tol,
            "{ty:?} dvg: {} vs {num_dvg}",
            op.di_dvg
        );
        assert!(
            (op.di_dvs - num_dvs).abs() < tol,
            "{ty:?} dvs: {} vs {num_dvs}",
            op.di_dvs
        );
        assert!(
            (op.di_dvt - num_dvt).abs() < tol,
            "{ty:?} dvt: {} vs {num_dvt}",
            op.di_dvt
        );
        assert!(
            (op.di_dbeta_rel - num_dbr).abs() < 1e-4 * op.ids.abs().max(1e-9),
            "{ty:?} dbeta: {} vs {num_dbr}",
            op.di_dbeta_rel
        );
    }

    #[test]
    fn derivatives_match_finite_difference_nmos() {
        // saturation, triode, near-zero vds, reverse, subthreshold
        fd_check(MosType::Nmos, 1.2, 1.0, 0.0);
        fd_check(MosType::Nmos, 0.1, 1.0, 0.0);
        fd_check(MosType::Nmos, 0.001, 1.0, 0.0);
        fd_check(MosType::Nmos, 0.0, 1.0, 1.2); // swapped
        fd_check(MosType::Nmos, 1.2, 0.2, 0.0); // subthreshold
    }

    #[test]
    fn derivatives_match_finite_difference_pmos() {
        fd_check(MosType::Pmos, 0.0, 0.2, 1.2); // on, |vds| large
        fd_check(MosType::Pmos, 1.1, 0.2, 1.2); // triode
        fd_check(MosType::Pmos, 1.2, 0.2, 0.0); // swapped
        fd_check(MosType::Pmos, 0.0, 1.0, 1.2); // subthreshold
    }

    #[test]
    fn nmos_current_direction_and_magnitude() {
        let m = MosModel::nmos_013();
        let op = eval_mosfet(MosType::Nmos, &m, 2.0e-6, 0.13e-6, 0.0, 1.0, 1.2, 1.0, 0.0);
        assert!(op.ids > 0.0, "forward NMOS conducts d->s");
        // Square-law ballpark: β/2·vov² with vov ≈ 0.57 (softplus pulls it
        // slightly below vgs − vt0).
        let beta = m.kp * 2.0e-6 / 0.13e-6;
        let approx = 0.5 * beta * 0.57_f64.powi(2) * (1.0 + m.lambda * 1.2);
        assert!(
            op.ids > 0.5 * approx && op.ids < 1.5 * approx,
            "ids = {}",
            op.ids
        );
    }

    #[test]
    fn pmos_current_direction() {
        let m = MosModel::pmos_013();
        // Source at 1.2, gate low -> PMOS on; current flows source->drain,
        // so current *leaving* the drain is negative.
        let op = eval_mosfet(MosType::Pmos, &m, 2.0e-6, 0.13e-6, 0.0, 1.0, 0.0, 0.0, 1.2);
        assert!(op.ids < 0.0);
    }

    #[test]
    fn off_device_conducts_nothing() {
        let m = MosModel::nmos_013();
        let op = eval_mosfet(MosType::Nmos, &m, 1e-6, 0.13e-6, 0.0, 1.0, 1.2, 0.0, 0.0);
        assert!(op.ids < 1e-9, "off current {}", op.ids);
        assert!(op.ids > 0.0, "softplus leaves a smooth floor");
    }

    #[test]
    fn symmetry_at_vds_zero() {
        let m = MosModel::nmos_013();
        let op = eval_mosfet(MosType::Nmos, &m, 1e-6, 0.13e-6, 0.0, 1.0, 0.5, 1.0, 0.5);
        assert!(op.ids.abs() < 1e-12, "no current at vds=0");
        assert!(op.di_dvd > 0.0, "positive channel conductance");
    }

    #[test]
    fn vt_shift_reduces_nmos_current() {
        let m = MosModel::nmos_013();
        let base = eval_mosfet(MosType::Nmos, &m, 1e-6, 0.13e-6, 0.0, 1.0, 1.2, 1.0, 0.0);
        let shifted = eval_mosfet(MosType::Nmos, &m, 1e-6, 0.13e-6, 0.05, 1.0, 1.2, 1.0, 0.0);
        assert!(shifted.ids < base.ids);
        assert!(base.di_dvt < 0.0);
    }

    #[test]
    fn beta_scale_is_multiplicative() {
        let m = MosModel::nmos_013();
        let base = eval_mosfet(MosType::Nmos, &m, 1e-6, 0.13e-6, 0.0, 1.0, 1.2, 1.0, 0.0);
        let scaled = eval_mosfet(MosType::Nmos, &m, 1e-6, 0.13e-6, 0.0, 1.1, 1.2, 1.0, 0.0);
        assert!((scaled.ids / base.ids - 1.1).abs() < 1e-12);
    }

    #[test]
    fn gm_over_id_is_physical() {
        // In strong inversion gm/ID ≈ 2/vov; our smooth model should stay in
        // [2, 10] /V for vov ≈ 0.5 V.
        let m = MosModel::nmos_013();
        let op = eval_mosfet(MosType::Nmos, &m, 8.32e-6, 0.13e-6, 0.0, 1.0, 1.2, 1.0, 0.0);
        let gm_over_id = op.di_dvg / op.ids;
        assert!(
            gm_over_id > 2.0 && gm_over_id < 10.0,
            "gm/ID = {gm_over_id}"
        );
    }
}
