//! Independent-source waveforms.
//!
//! The LPTV flow requires every stimulus to be either constant or periodic
//! with the analysis period (paper Section IV-B: "apply periodic or constant
//! signals to all the inputs"); [`Waveform::period`] lets the PSS solver
//! verify that.

/// Time-dependent value of an independent voltage or current source.
#[derive(Clone, Debug, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// SPICE-style periodic trapezoidal pulse.
    Pulse(Pulse),
    /// Sinusoid `offset + ampl·sin(2πf(t−delay))`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Time shift in seconds.
        delay: f64,
    },
    /// Piecewise-linear `(time, value)` corners; clamps outside the range.
    Pwl(Vec<(f64, f64)>),
}

/// A periodic trapezoidal pulse (SPICE `PULSE` semantics).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pulse {
    /// Initial (and between-pulses) value.
    pub v0: f64,
    /// Pulsed value.
    pub v1: f64,
    /// Delay of the first edge within each period.
    pub delay: f64,
    /// Rise time (0 is replaced by 1 fs to stay well-posed).
    pub rise: f64,
    /// Fall time.
    pub fall: f64,
    /// Width of the pulsed phase (measured from end of rise).
    pub width: f64,
    /// Repetition period.
    pub period: f64,
}

impl Pulse {
    /// Value at time `t` (periodic in `period`).
    pub fn value(&self, t: f64) -> f64 {
        let period = self.period;
        let tp = if period > 0.0 {
            t.rem_euclid(period)
        } else {
            t
        };
        let rise = self.rise.max(1e-15);
        let fall = self.fall.max(1e-15);
        let t1 = self.delay;
        let t2 = t1 + rise;
        let t3 = t2 + self.width;
        let t4 = t3 + fall;
        if tp < t1 {
            self.v0
        } else if tp < t2 {
            self.v0 + (self.v1 - self.v0) * (tp - t1) / rise
        } else if tp < t3 {
            self.v1
        } else if tp < t4 {
            self.v1 + (self.v0 - self.v1) * (tp - t3) / fall
        } else {
            self.v0
        }
    }
}

impl Waveform {
    /// Constant-zero waveform.
    pub fn zero() -> Self {
        Waveform::Dc(0.0)
    }

    /// Value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse(p) => p.value(t),
            Waveform::Sin {
                offset,
                ampl,
                freq,
                delay,
            } => offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin(),
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        return if t1 > t0 {
                            v0 + (v1 - v0) * (t - t0) / (t1 - t0)
                        } else {
                            v1
                        };
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// Value at `t = 0` (used as the DC operating-point stimulus).
    pub fn dc_value(&self) -> f64 {
        self.value(0.0)
    }

    /// Appends every derivative discontinuity ("breakpoint") of the
    /// waveform inside the open interval `(t0, t1)` to `out`.
    ///
    /// Adaptive transient integration lands steps exactly on these corners:
    /// a step that *straddles* a corner has an `O(1)` local error no matter
    /// how small it is, so an LTE controller without breakpoints shrinks
    /// toward `h_min` before every pulse edge instead of stepping onto it.
    /// Smooth waveforms (DC, sinusoid) contribute none.
    pub fn breakpoints_in(&self, t0: f64, t1: f64, out: &mut Vec<f64>) {
        match self {
            Waveform::Dc(_) | Waveform::Sin { .. } => {}
            Waveform::Pulse(p) => {
                let rise = p.rise.max(1e-15);
                let fall = p.fall.max(1e-15);
                let corners = [
                    p.delay,
                    p.delay + rise,
                    p.delay + rise + p.width,
                    p.delay + rise + p.width + fall,
                ];
                if p.period > 0.0 {
                    let k0 = (t0 / p.period).floor() as i64;
                    let k1 = (t1 / p.period).ceil() as i64;
                    for k in k0..=k1 {
                        let base = k as f64 * p.period;
                        for c in corners {
                            let t = base + c;
                            if t > t0 && t < t1 {
                                out.push(t);
                            }
                        }
                    }
                } else {
                    for c in corners {
                        if c > t0 && c < t1 {
                            out.push(c);
                        }
                    }
                }
            }
            Waveform::Pwl(points) => {
                for &(t, _) in points {
                    if t > t0 && t < t1 {
                        out.push(t);
                    }
                }
            }
        }
    }

    /// Intrinsic period, if the waveform is periodic (`None` for DC/PWL;
    /// DC sources are compatible with *any* analysis period).
    pub fn period(&self) -> Option<f64> {
        match self {
            Waveform::Dc(_) => None,
            Waveform::Pulse(p) => Some(p.period),
            Waveform::Sin { freq, .. } => Some(1.0 / freq),
            Waveform::Pwl(_) => None,
        }
    }

    /// Returns `true` if this waveform repeats with period `t_period`
    /// (DC always qualifies; periodic sources must divide evenly).
    pub fn is_periodic_in(&self, t_period: f64) -> bool {
        match self.period() {
            None => matches!(self, Waveform::Dc(_)),
            Some(p) => {
                if p <= 0.0 {
                    return false;
                }
                let ratio = t_period / p;
                (ratio - ratio.round()).abs() < 1e-9 && ratio.round() >= 1.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(1.8);
        assert_eq!(w.value(0.0), 1.8);
        assert_eq!(w.value(1e-3), 1.8);
        assert!(w.is_periodic_in(1e-9));
    }

    #[test]
    fn pulse_shape() {
        let p = Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 1.0,
            rise: 1.0,
            fall: 1.0,
            width: 2.0,
            period: 10.0,
        };
        let w = Waveform::Pulse(p);
        assert_eq!(w.value(0.5), 0.0);
        assert!((w.value(1.5) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.value(3.0), 1.0); // high
        assert!((w.value(4.5) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.value(9.0), 0.0);
        // periodicity
        assert_eq!(w.value(13.0), 1.0);
        assert!(w.is_periodic_in(10.0));
        assert!(w.is_periodic_in(20.0));
        assert!(!w.is_periodic_in(15.0));
    }

    #[test]
    fn sine_value_and_period() {
        let w = Waveform::Sin {
            offset: 1.0,
            ampl: 2.0,
            freq: 50.0,
            delay: 0.0,
        };
        assert!((w.value(0.0) - 1.0).abs() < 1e-12);
        assert!((w.value(0.005) - 3.0).abs() < 1e-9); // quarter period
        assert_eq!(w.period(), Some(0.02));
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)]);
        assert_eq!(w.value(-1.0), 0.0);
        assert_eq!(w.value(0.5), 1.0);
        assert_eq!(w.value(2.0), 2.0);
        assert_eq!(w.value(9.0), 2.0);
        assert!(!w.is_periodic_in(1.0));
    }

    #[test]
    fn zero_width_rise_does_not_divide_by_zero() {
        let p = Pulse {
            v0: 0.0,
            v1: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
            period: 2.0,
        };
        assert!(p.value(0.5).is_finite());
        assert_eq!(p.value(0.5), 1.0);
    }
}
