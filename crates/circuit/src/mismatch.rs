//! Mismatch parameter descriptors (Pelgrom model and passive mismatch).
//!
//! Each parameter is an independent zero-mean Gaussian with standard
//! deviation `sigma`, attached to one device. The paper's pseudo-noise
//! sources carry PSD = σ² at 1 Hz (Section III); in this workspace the same
//! descriptor drives three consumers:
//!
//! 1. the LPTV pseudo-noise analysis (injection = `∂residual/∂p`),
//! 2. the Monte-Carlo sampler (perturbs the device by a Gaussian draw),
//! 3. the DC-match and transient-sensitivity baselines.

use crate::circuit::DeviceId;

/// What physical parameter of the attached device varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum MismatchKind {
    /// Additive MOSFET threshold-voltage mismatch δV_T (V); Pelgrom
    /// `σ = A_VT/√(WL)` (paper eq. 4).
    MosVt,
    /// Relative MOSFET current-factor mismatch δβ/β (dimensionless);
    /// Pelgrom `σ = A_β/√(WL)` (paper eq. 5).
    MosBetaRel,
    /// Absolute resistance mismatch δR (Ω) (paper Fig. 3).
    ResAbs,
    /// Absolute capacitance mismatch δC (F) (paper Fig. 3).
    CapAbs,
    /// Absolute inductance mismatch δL (H) (paper Fig. 3).
    IndAbs,
}

/// One independent mismatch random variable.
#[derive(Clone, Debug, PartialEq)]
pub struct MismatchParam {
    /// Human-readable name, e.g. `"M2.dVT"`.
    pub label: String,
    /// The device this parameter perturbs.
    pub device: DeviceId,
    /// Which physical quantity varies.
    pub kind: MismatchKind,
    /// Standard deviation in the parameter's natural unit.
    pub sigma: f64,
}

/// Pelgrom technology constants.
///
/// # Examples
///
/// ```
/// use tranvar_circuit::mismatch::Pelgrom;
/// // The paper's 0.13 µm process: AVT = 6.5 mV·µm, Aβ = 3.25 %·µm.
/// let p = Pelgrom::paper_013();
/// let (svt, sbeta) = p.sigmas(8.32e-6, 0.13e-6);
/// assert!((svt - 6.25e-3).abs() < 0.2e-3);
/// assert!((sbeta - 0.03125).abs() < 0.002);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pelgrom {
    /// Threshold-matching coefficient (V·m); paper quotes 6.5 mV·µm.
    pub avt: f64,
    /// Current-factor matching coefficient (·m); paper quotes 3.25 %·µm.
    pub abeta: f64,
}

impl Pelgrom {
    /// The constants quoted in Section VI of the paper
    /// (`AVT = 6.5 mV·µm`, `Aβ = 3.25 %·µm`).
    pub fn paper_013() -> Self {
        Pelgrom {
            avt: 6.5e-9,
            abeta: 3.25e-8,
        }
    }

    /// Returns `(σ_VT, σ_{δβ/β})` for a device of drawn `w × l` (meters).
    pub fn sigmas(&self, w: f64, l: f64) -> (f64, f64) {
        let s = (w * l).sqrt();
        (self.avt / s, self.abeta / s)
    }

    /// Scales both coefficients (used by the Fig. 11 mismatch sweep).
    pub fn scaled(&self, factor: f64) -> Self {
        Pelgrom {
            avt: self.avt * factor,
            abeta: self.abeta * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_scales_inverse_sqrt_area() {
        let p = Pelgrom::paper_013();
        let (s1, _) = p.sigmas(1e-6, 1e-6);
        let (s4, _) = p.sigmas(4e-6, 1e-6);
        assert!((s1 / s4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_multiplies_both() {
        let p = Pelgrom::paper_013().scaled(3.0);
        assert!((p.avt - 19.5e-9).abs() < 1e-15);
        assert!((p.abeta - 9.75e-8).abs() < 1e-15);
    }
}
