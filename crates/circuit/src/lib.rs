//! # tranvar-circuit
//!
//! Netlist representation, MNA device stamps, and mismatch/noise descriptors
//! for the `tranvar` workspace (reproduction of Kim/Jones/Horowitz,
//! *"Fast, Non-Monte-Carlo Estimation of Transient Performance Variation Due
//! to Device Mismatch"*).
//!
//! The crate models the substrate that the paper assumes from a SPICE-class
//! simulator plus Verilog-A:
//!
//! - [`Circuit`]: netlist builder and MNA assembly (`f`, `q`, `G`, `C`),
//! - [`mosfet`]: a smoothed square-law MOSFET with analytic derivatives,
//!   including the Pelgrom mismatch derivatives ∂I_D/∂V_T = −g_m and
//!   ∂I_D/∂(δβ/β) = I_D (paper Fig. 4),
//! - [`mismatch`]: Pelgrom descriptors (σ ∝ 1/√(WL), paper eqs. 4–5),
//! - [`noise`]: unified noise-source descriptors — physical thermal/flicker
//!   noise and the paper's mismatch *pseudo-noise* (PSD σ² at 1 Hz,
//!   bias-dependent injection, paper Section III),
//! - [`waveform`]: periodic/DC stimuli compatible with PSS analysis.
//!
//! # Examples
//!
//! Build a resistive divider with a mismatch annotation:
//!
//! ```
//! use tranvar_circuit::{Circuit, NodeId, Waveform};
//!
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let out = ckt.node("out");
//! ckt.add_vsource("V1", vin, NodeId::GROUND, Waveform::Dc(1.0));
//! let r1 = ckt.add_resistor("R1", vin, out, 10_000.0);
//! ckt.add_resistor("R2", out, NodeId::GROUND, 10_000.0);
//! ckt.annotate_resistor_mismatch(r1, 100.0); // σ_R = 100 Ω
//! assert_eq!(ckt.mismatch_params().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod circuit;
pub mod error;
pub mod mismatch;
pub mod mosfet;
pub mod noise;
pub mod waveform;

pub use circuit::{
    Assembly, Circuit, CircuitOverride, Device, DeviceId, Mosfet, NodeId, ParamDeriv,
};
pub use error::CircuitError;
pub use mismatch::{MismatchKind, MismatchParam, Pelgrom};
pub use mosfet::{MosModel, MosOp, MosType};
pub use noise::{NoiseKind, NoiseSource};
pub use waveform::{Pulse, Waveform};
