//! The bounded admission queue between the acceptor and the worker pool.
//!
//! Admission is non-blocking: [`Queue::try_push`] refuses immediately when
//! the queue is at capacity (the acceptor turns that into a typed 429 with
//! a `Retry-After` derived from the depth) so a burst degrades into fast,
//! explicit shedding instead of unbounded buffering. Workers block on
//! [`Queue::pop`]; closing the queue wakes them and lets them drain the
//! remaining jobs before exiting — the graceful-drain half of shutdown.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with non-blocking admission and draining close.
pub struct Queue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Queue<T> {
    /// Creates a queue that admits at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        Queue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Admits a job, or returns it when the queue is full or closed —
    /// the caller sheds.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut st = self.lock();
        if st.closed || st.items.len() >= self.capacity {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained (workers finish in-flight jobs before exiting).
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admission and wakes every blocked worker to drain and exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        // A poisoned queue lock only means a worker panicked between
        // push/pop bookkeeping; the state itself is always consistent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sheds_when_full_and_drains_after_close() {
        let q = Queue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.depth(), 2);
        q.close();
        assert_eq!(q.try_push(4), Err(4));
        // Closed but not yet drained: both jobs still come out.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(Queue::<u32>::new(4));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).unwrap();
        q.close();
        let got: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
        assert_eq!(got.iter().filter(|g| g.is_some()).count(), 1);
        assert_eq!(got.iter().filter(|g| g.is_none()).count(), 2);
    }

    #[test]
    fn zero_capacity_sheds_everything() {
        let q = Queue::new(0);
        assert_eq!(q.try_push(1), Err(1));
    }
}
