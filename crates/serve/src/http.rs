//! A deliberately small HTTP/1.1 subset over [`std::net::TcpStream`].
//!
//! One request per connection (`Connection: close`), bodies framed by
//! `Content-Length` only — exactly what the tranvar daemon and its clients
//! speak. Read timeouts bound how long a slow peer can hold the acceptor.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long a read may wait on a peer before the connection is dropped.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Requests larger than this are rejected with 413 before buffering.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed request: method, path, lower-cased headers, body.
#[derive(Debug)]
pub struct Request {
    /// `GET` / `POST` / ...
    pub method: String,
    /// Path without query split (the daemon's routes carry no queries).
    pub path: String,
    /// Header names lower-cased; values trimmed.
    pub headers: Vec<(String, String)>,
    /// The raw body (empty when no `Content-Length`).
    pub body: String,
}

impl Request {
    /// First header with the given (lower-case) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// What request parsing produced.
#[derive(Debug)]
pub enum Parsed {
    /// A complete request.
    Ok(Request),
    /// The peer disconnected before sending a request line.
    Eof,
    /// A malformed or oversized request; respond with this status and text.
    Bad(u16, &'static str),
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// Propagates socket errors (including read timeouts).
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Parsed> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(Parsed::Eof);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path)) = (parts.next(), parts.next()) else {
        return Ok(Parsed::Bad(400, "malformed request line"));
    };
    let method = method.to_string();
    let path = path.to_string();

    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            return Ok(Parsed::Bad(400, "truncated headers"));
        }
        let h = h.trim_end_matches(['\r', '\n']);
        if h.is_empty() {
            break;
        }
        let Some((name, value)) = h.split_once(':') else {
            return Ok(Parsed::Bad(400, "malformed header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            match value.parse::<usize>() {
                Ok(n) if n <= MAX_BODY_BYTES => content_length = n,
                Ok(_) => return Ok(Parsed::Bad(413, "body too large")),
                Err(_) => return Ok(Parsed::Bad(400, "bad content-length")),
            }
        }
        headers.push((name, value));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let Ok(body) = String::from_utf8(body) else {
        return Ok(Parsed::Bad(400, "body is not utf-8"));
    };
    Ok(Parsed::Ok(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// A response about to be written.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Length`, `Content-Type` and
    /// `Connection: close` are always emitted).
    pub headers: Vec<(String, String)>,
    /// UTF-8 body.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body,
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.headers.push((name.to_string(), value));
        self
    }
}

/// The standard reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes the response and flushes; errors are returned for accounting but
/// a dead peer is not fatal to the server.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status));
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("content-type: application/json\r\n");
    head.push_str(&format!("content-length: {}\r\n", resp.body.len()));
    head.push_str("connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &str) -> Parsed {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            // Keep the socket open until the server is done reading.
            let mut sink = Vec::new();
            let _ = s.read_to_end(&mut sink);
        });
        let (mut conn, _) = listener.accept().unwrap();
        let parsed = read_request(&mut conn).unwrap();
        drop(conn);
        client.join().unwrap();
        parsed
    }

    #[test]
    fn parses_a_post_with_body() {
        let parsed =
            round_trip("POST /analyze HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}");
        let Parsed::Ok(req) = parsed else {
            panic!("expected parse, got {parsed:?}");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/analyze");
        assert_eq!(req.body, "{\"a\":1}");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn flags_malformed_and_oversized_requests() {
        assert!(matches!(round_trip("garbage\r\n\r\n"), Parsed::Bad(400, _)));
        assert!(matches!(
            round_trip("POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"),
            Parsed::Bad(413, _)
        ));
        assert!(matches!(round_trip(""), Parsed::Eof));
    }
}
