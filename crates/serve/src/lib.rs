//! # tranvar-serve
//!
//! A std-only JSON-over-HTTP daemon serving tranvar variation analyses —
//! no async runtime, no serde, no registry dependencies. `TcpListener`
//! plus a worker-thread pool wrap the workspace's fault-tolerant solve
//! pipeline behind four routes:
//!
//! | Route | Purpose |
//! |---|---|
//! | `POST /analyze` | Run scenarios of a built-in deck ([`deck`]) — or, with `Content-Type: text/x-spice`, a raw SPICE deck in the body — through PSS → LPTV → variation reports |
//! | `GET /healthz` | Liveness (always `200` while the process runs) |
//! | `GET /readyz` | Readiness + counters (queue depth, worker liveness, shed/panic/cache stats) |
//! | `POST /shutdown` | Graceful drain: stop accepting, finish queued work, exit |
//!
//! Robustness properties (the reason this crate exists):
//!
//! - **Bounded admission** ([`queue`]): a full queue sheds with a typed
//!   `429` + `Retry-After` derived from depth, never unbounded buffering.
//! - **Deadlines** : a request's `deadline_ms` becomes a wall-clock
//!   [`SolveBudget`](tranvar::engine::SolveBudget) started at *admission*,
//!   so queue wait counts; expiry surfaces as the typed
//!   `engine.budget-exceeded` → `504`, and the deadline-aware retry ladder
//!   ([`tranvar::engine::retry`]) stops escalating the moment it expires.
//! - **Panic isolation** ([`server`]): worker panics are caught at the job
//!   boundary, answered as typed `500`s, and any session that was mid-solve
//!   is retired from the [`SessionPool`](tranvar::engine::SessionPool) —
//!   which never drops below its floor.
//! - **Solve caching** ([`cache`]): responses are assembled from
//!   circuit-hash-keyed cached PSS/LPTV solves, so σ-only request variants
//!   share one solve across requests (the paper's "no additional
//!   simulation cost" sharing, extended service-side) with bounded LRU
//!   eviction.
//! - **Byte-determinism** ([`wire`], [`json`]): the same request renders
//!   the same bytes for any worker count, equal to an in-process
//!   [`Campaign`](tranvar::core::Campaign) rendering.
//!
//! The chaos suite (`tests/chaos.rs`, `--features fault-inject`) drives
//! all of it through the deterministic server-side fault sites of
//! [`tranvar::engine::fault`].
//!
//! ## Quickstart
//!
//! ```no_run
//! use tranvar_serve::{Server, ServerConfig};
//! let server = Server::start(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.join(); // returns after POST /shutdown has drained the queue
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod deck;
pub mod http;
pub mod json;
pub mod queue;
pub mod server;
pub mod wire;

pub use cache::{solve_digest, ServeCache, SolveCache};
pub use json::Json;
pub use queue::Queue;
pub use server::{retry_after_secs, Server, ServerConfig};
pub use wire::{body_from_campaign, body_ok, error_body, AnalyzeRequest, WireError};
