//! The `tranvar-serve` daemon binary.
//!
//! ```text
//! tranvar-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!               [--cache-entries N] [--session-floor N]
//! ```
//!
//! With `--features fault-inject` the chaos flags arm the deterministic
//! server-side fault sites before the server starts:
//!
//! ```text
//!               [--fault SITE:INDEX:ACTION]...
//! ```
//!
//! where `SITE` is `request` | `solve` | `worker` and `ACTION` is
//! `panic` | `expire` | `stall` | `no-converge` | `singular` | `non-finite`.
//!
//! The process exits 0 after a graceful drain (`POST /shutdown`).

use tranvar_serve::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: tranvar-serve [--addr HOST:PORT] [--workers N] [--queue-depth N] \
         [--cache-entries N] [--session-floor N]{}",
        if cfg!(feature = "fault-inject") {
            " [--fault SITE:INDEX:ACTION]..."
        } else {
            ""
        }
    );
    std::process::exit(2);
}

fn parse_num(flag: &str, value: Option<String>) -> usize {
    match value.and_then(|v| v.parse().ok()) {
        Some(n) => n,
        None => {
            eprintln!("tranvar-serve: {flag} needs a non-negative integer");
            usage();
        }
    }
}

#[cfg(feature = "fault-inject")]
fn parse_fault(spec: &str) -> Option<(&'static str, usize, tranvar::engine::fault::FaultAction)> {
    use tranvar::engine::fault::{sites, FaultAction};
    let mut parts = spec.splitn(3, ':');
    let site = match parts.next()? {
        "request" => sites::SERVE_REQUEST,
        "solve" => sites::SERVE_SOLVE,
        "worker" => sites::SERVE_WORKER,
        _ => return None,
    };
    let index: usize = parts.next()?.parse().ok()?;
    let action = match parts.next()? {
        "panic" => FaultAction::Panic,
        "expire" => FaultAction::Expire,
        "stall" => FaultAction::Stall,
        "no-converge" => FaultAction::NoConverge,
        "singular" => FaultAction::Singular,
        "non-finite" => FaultAction::NonFinite,
        _ => return None,
    };
    Some((site, index, action))
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:8645".into(),
        ..ServerConfig::default()
    };
    #[cfg(feature = "fault-inject")]
    let mut faults = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => config.addr = a,
                None => usage(),
            },
            "--workers" => config.workers = parse_num("--workers", args.next()).max(1),
            "--queue-depth" => config.queue_depth = parse_num("--queue-depth", args.next()),
            "--cache-entries" => config.cache_entries = parse_num("--cache-entries", args.next()),
            "--session-floor" => config.session_floor = parse_num("--session-floor", args.next()),
            #[cfg(feature = "fault-inject")]
            "--fault" => {
                let Some(spec) = args.next().as_deref().and_then(parse_fault) else {
                    eprintln!("tranvar-serve: bad --fault spec (SITE:INDEX:ACTION)");
                    usage();
                };
                faults.push(spec);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("tranvar-serve: unknown flag '{other}'");
                usage();
            }
        }
    }

    // Arm the fault plan on this thread *before* Server::start so the
    // workers adopt it.
    #[cfg(feature = "fault-inject")]
    let _fault_guard = {
        let mut plan = tranvar::engine::fault::FaultPlan::new();
        for (site, index, action) in faults {
            plan = plan.fail(site, index, action);
        }
        plan.install()
    };

    let server = match Server::start(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("tranvar-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("tranvar-serve listening on {}", server.addr());
    let completed = server.join();
    println!("tranvar-serve drained after {completed} responses");
}
