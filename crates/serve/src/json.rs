//! A minimal, dependency-free JSON value: parse, serialize, access.
//!
//! The serving layer needs byte-deterministic bodies — the `serve_throughput`
//! bench asserts the daemon's response equals the in-process
//! [`Campaign`](tranvar::core::Campaign) rendering byte-for-byte — so
//! objects preserve insertion order and floats serialize through Rust's
//! shortest-roundtrip `Debug` formatting (the same bits always print the
//! same bytes). Non-finite floats serialize as `null` (JSON has no NaN).

use std::fmt::Write as _;

/// A JSON value with order-preserving objects.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved and serialized as inserted.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as usize)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Compact JSON serialization (no whitespace), deterministic: object key
/// order is insertion order and floats print their shortest round-trip form.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Shortest-roundtrip float formatting; non-finite becomes `null`.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        // Exactly-integral values (counters, step counts) print without
        // the trailing `.0` — still deterministic, re-parses identically.
        let _ = write!(out, "{}", v as i64);
    } else {
        // `{:?}` is Rust's shortest representation that round-trips the
        // exact bits — deterministic, and valid JSON for finite values.
        let _ = write!(out, "{v:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document (must consume the whole input).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our wire
                            // format; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = self
                        .bytes
                        .get(start..start + width)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or("invalid utf-8 in string")?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structured_values() {
        let src = r#"{"a":[1,2.5,-3e-6],"b":{"c":"x\"y","d":null},"e":true}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        // Serialization is deterministic and re-parses to the same value.
        let s = v.to_string();
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn floats_print_shortest_roundtrip_form() {
        assert_eq!(Json::Num(1e-6).to_string(), "1e-6");
        assert_eq!(Json::Num(0.005).to_string(), "0.005");
        assert_eq!(Json::Num(2.0).to_string(), "2");
        assert_eq!(Json::Num(-16.0).to_string(), "-16");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("+5").is_err());
    }

    #[test]
    fn parses_unicode_strings() {
        let v = parse(r#""café σ""#).unwrap();
        assert_eq!(v.as_str(), Some("café σ"));
    }
}
