//! The circuit-hash-keyed solve cache.
//!
//! The expensive part of a request is the PSS + LPTV solve of each unique
//! variant; mismatch σ enters only the cheap report assembly (the
//! campaign's "no additional simulation cost" sharing, see
//! [`tranvar::core::solve_groups`]). The daemon extends that sharing
//! *across requests*: solves are cached under a digest of everything the
//! solve reads — deck, period, step count, retry ladder, solve-affecting
//! overrides — so σ-only request variants (σ-level sweeps, re-polls) are
//! served from memory. Entries are `Arc`-shared and evicted
//! least-recently-used beyond a bounded capacity.
//!
//! Key stability: [`std::collections::hash_map::DefaultHasher`] (SipHash
//! with constant keys under `Default`) is deterministic within and across
//! processes of the same toolchain, which is all the cache needs — a
//! digest collision across *different* solves is the only correctness
//! hazard, and 64-bit SipHash over this few-field input makes that
//! negligible for a bounded cache.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use tranvar::circuit::CircuitOverride;
use tranvar::lptv::PeriodicResponse;
use tranvar::pss::PssSolution;

/// One cached unique solve: the PSS orbit plus unit-parameter responses.
pub type SolveData = (PssSolution, Vec<PeriodicResponse>);

/// Digest of everything a unique solve reads; the cache key.
pub fn solve_digest(
    deck: &str,
    period: f64,
    n_steps: usize,
    retry: bool,
    solve_overrides: &[CircuitOverride],
) -> u64 {
    let mut h = DefaultHasher::new();
    deck.hash(&mut h);
    period.to_bits().hash(&mut h);
    n_steps.hash(&mut h);
    retry.hash(&mut h);
    solve_overrides.len().hash(&mut h);
    for ov in solve_overrides {
        match ov {
            CircuitOverride::Resistance { device, ohms } => {
                (0u8, device.index(), ohms.to_bits()).hash(&mut h);
            }
            CircuitOverride::Capacitance { device, farads } => {
                (1u8, device.index(), farads.to_bits()).hash(&mut h);
            }
            CircuitOverride::Inductance { device, henries } => {
                (2u8, device.index(), henries.to_bits()).hash(&mut h);
            }
            CircuitOverride::SourceDc { device, value } => {
                (3u8, device.index(), value.to_bits()).hash(&mut h);
            }
            CircuitOverride::SourceScale { device, factor } => {
                (4u8, device.index(), factor.to_bits()).hash(&mut h);
            }
            CircuitOverride::MosWidth { device, width } => {
                (5u8, device.index(), width.to_bits()).hash(&mut h);
            }
            // Statistical-only overrides never reach a solve key
            // (`Scenario::solve_overrides` strips them), but hash them
            // anyway so the digest is total over the enum.
            CircuitOverride::SigmaScale { factor } => {
                (6u8, 0usize, factor.to_bits()).hash(&mut h);
            }
            CircuitOverride::SigmaSet { param, sigma } => {
                (7u8, *param, sigma.to_bits()).hash(&mut h);
            }
            // `CircuitOverride` is non-exhaustive; a future variant must
            // still land in the digest, so fall back to its debug form
            // (deterministic, if slower — update with a typed arm when one
            // appears).
            other => {
                (255u8, format!("{other:?}")).hash(&mut h);
            }
        }
    }
    h.finish()
}

struct Entry<V> {
    value: V,
    /// Monotone LRU stamp; refreshed on every hit.
    stamp: u64,
}

struct Lru<V> {
    map: HashMap<u64, Entry<V>>,
    tick: u64,
}

/// A bounded, thread-safe LRU cache keyed by [`solve_digest`]; the daemon
/// instantiates it with `Arc<SolveData>` values.
pub struct SolveCache<V> {
    inner: Mutex<Lru<V>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The daemon's concrete cache: `Arc`-shared successful solves.
pub type ServeCache = SolveCache<Arc<SolveData>>;

impl<V: Clone> SolveCache<V> {
    /// Creates a cache holding at most `capacity` solves (0 disables).
    pub fn new(capacity: usize) -> Self {
        SolveCache {
            inner: Mutex::new(Lru {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a solve, refreshing its LRU stamp and counting hit/miss.
    pub fn get(&self, key: u64) -> Option<V> {
        let mut lru = self.lock();
        lru.tick += 1;
        let tick = lru.tick;
        match lru.map.get_mut(&key) {
            Some(entry) => {
                entry.stamp = tick;
                let value = entry.value.clone();
                drop(lru);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                drop(lru);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a solve, evicting the least-recently-used entry when full.
    pub fn insert(&self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        let mut lru = self.lock();
        lru.tick += 1;
        let tick = lru.tick;
        if !lru.map.contains_key(&key) && lru.map.len() >= self.capacity {
            if let Some(oldest) = lru.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) {
                lru.map.remove(&oldest);
            }
        }
        lru.map.insert(key, Entry { value, stamp: tick });
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, Lru<V>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_separates_solve_inputs_but_not_sigma() {
        let base = solve_digest("divider", 1e-6, 16, false, &[]);
        assert_eq!(base, solve_digest("divider", 1e-6, 16, false, &[]));
        assert_ne!(base, solve_digest("divider", 2e-6, 16, false, &[]));
        assert_ne!(base, solve_digest("divider", 1e-6, 32, false, &[]));
        assert_ne!(base, solve_digest("divider", 1e-6, 16, true, &[]));
        assert_ne!(base, solve_digest("rc-lowpass", 1e-6, 16, false, &[]));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let c: SolveCache<u32> = SolveCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        assert_eq!(c.get(1), Some(10)); // 1 is now warmer than 2
        c.insert(3, 30); // evicts 2
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(10));
        assert_eq!(c.get(3), Some(30));
        assert_eq!(c.hits(), 3);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let c: SolveCache<u32> = SolveCache::new(0);
        c.insert(1, 1);
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }
}
