//! The daemon: acceptor thread + worker pool around the solve pipeline.
//!
//! Request lifecycle:
//!
//! 1. The **acceptor** parses one HTTP request per connection, answers the
//!    health routes inline, and *admits* `/analyze` jobs: the request is
//!    validated, its wall-clock deadline becomes a live
//!    [`tranvar::engine::SolveBudget`] at admission time (so
//!    queue wait charges the deadline), and the job enters the bounded
//!    [`Queue`]. A full queue sheds with a typed 429 whose `Retry-After`
//!    grows with queue depth.
//! 2. A **worker** pops the job, re-checks the deadline (a request that
//!    aged out in the queue 504s without touching a session), runs the
//!    campaign's own per-key solve path ([`tranvar::core::solve_unique`])
//!    against a checked-out [`SessionPool`] session for every cache-miss
//!    key, and assembles per-scenario reports. Worker panics are caught at
//!    the job boundary (PR-6 isolation) and answered as typed 500s;
//!    sessions that were mid-solve when a panic fired are retired, never
//!    reused.
//! 3. **Shutdown** (`POST /shutdown` or [`Server::shutdown`]) stops
//!    admission, lets workers drain the queue (each job still subject to
//!    its own deadline), and joins every thread — a clean exit.
//!
//! Under `--features fault-inject` the three serve sites
//! (`serve::request`, `serve::solve`, `serve::worker`) let the chaos suite
//! inject panics, deadline expiry and worker stalls deterministically; the
//! fault plan active on the constructing thread is adopted by every worker.

use crate::cache::{solve_digest, ServeCache, SolveData};
use crate::http::{read_request, write_response, Parsed, Request, Response};
use crate::queue::Queue;
use crate::wire::{self, AnalyzeRequest, WireError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tranvar::core::{scenario_reports, solve_groups, solve_unique, CoreError};
use tranvar::engine::fault::{self, sites};
use tranvar::engine::{
    BudgetLimits, RetryPolicy, SessionOptions, SessionPool, SessionStats, SolveBudget,
};
use tranvar::pss::PssOptions;
use tranvar::TranvarError;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads solving admitted jobs.
    pub workers: usize,
    /// Bounded admission-queue capacity; beyond it requests shed (429).
    pub queue_depth: usize,
    /// Bounded solve-cache capacity (entries; 0 disables caching).
    pub cache_entries: usize,
    /// Session-pool floor (pool never shrinks below this many live
    /// sessions even under panic storms).
    pub session_floor: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_depth: 32,
            cache_entries: 64,
            session_floor: 2,
        }
    }
}

/// An admitted job travelling from acceptor to worker.
struct Job {
    stream: TcpStream,
    req: AnalyzeRequest,
    /// Deadline clock started at admission.
    budget: SolveBudget,
    /// Admission ordinal (the `serve::request` fault index).
    request_index: usize,
}

struct State {
    queue: Queue<Job>,
    cache: ServeCache,
    pool: SessionPool,
    draining: AtomicBool,
    accepted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    panics: AtomicU64,
    write_errors: AtomicU64,
    workers_alive: AtomicUsize,
    workers_busy: AtomicUsize,
    request_counter: AtomicUsize,
    solve_counter: AtomicUsize,
    #[cfg(feature = "fault-inject")]
    plan: Option<fault::ActivePlan>,
}

/// A running daemon; dropping it without [`Server::join`] detaches the
/// threads (tests and the binary always join).
pub struct Server {
    addr: SocketAddr,
    state: Arc<State>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and `config.workers` workers, and
    /// returns immediately.
    ///
    /// Under `fault-inject`, the fault plan installed on the calling
    /// thread (if any) is captured here and adopted by every worker.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            queue: Queue::new(config.queue_depth),
            cache: ServeCache::new(config.cache_entries),
            pool: SessionPool::new(
                SessionOptions {
                    threads: 1,
                    ..SessionOptions::default()
                },
                config.session_floor,
            ),
            draining: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            workers_alive: AtomicUsize::new(config.workers),
            workers_busy: AtomicUsize::new(0),
            request_counter: AtomicUsize::new(0),
            solve_counter: AtomicUsize::new(0),
            #[cfg(feature = "fault-inject")]
            plan: fault::current(),
        });

        let workers = (0..config.workers)
            .map(|worker_index| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("tranvar-serve-worker-{worker_index}"))
                    .spawn(move || worker_loop(&state, worker_index))
            })
            .collect::<io::Result<Vec<_>>>()?;

        let acceptor = {
            let state = state.clone();
            std::thread::Builder::new()
                .name("tranvar-serve-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &state))?
        };

        Ok(Server {
            addr,
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves `:0` bindings).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Initiates a drain exactly like `POST /shutdown`: stop accepting,
    /// finish (or deadline-out) queued work, then every thread exits.
    pub fn shutdown(&self) {
        self.state.draining.store(true, Ordering::SeqCst);
        // Wake the acceptor with a throwaway connection so it observes the
        // flag even if no client ever connects again.
        let _ = TcpStream::connect(self.addr);
    }

    /// Blocks until the daemon has fully drained (acceptor and every
    /// worker exited). Returns the total number of completed responses.
    pub fn join(mut self) -> u64 {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.state.completed.load(Ordering::SeqCst)
    }
}

// ── Acceptor ──

fn acceptor_loop(listener: &TcpListener, state: &Arc<State>) {
    for conn in listener.incoming() {
        if let Ok(mut stream) = conn {
            serve_connection(&mut stream, state);
        }
        if state.draining.load(Ordering::SeqCst) {
            break;
        }
    }
    // Stop admission and let workers drain what's queued.
    state.queue.close();
}

fn respond(state: &State, stream: &mut TcpStream, resp: &Response) {
    match write_response(stream, resp) {
        Ok(()) => {
            state.completed.fetch_add(1, Ordering::SeqCst);
        }
        Err(_) => {
            state.write_errors.fetch_add(1, Ordering::SeqCst);
        }
    }
}

fn serve_connection(stream: &mut TcpStream, state: &Arc<State>) {
    let req = match read_request(stream) {
        Ok(Parsed::Ok(req)) => req,
        Ok(Parsed::Eof) | Err(_) => return,
        Ok(Parsed::Bad(status, why)) => {
            let resp = Response::json(status, wire::error_body("serve.bad-request", status, why));
            respond(state, stream, &resp);
            return;
        }
    };
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let resp = Response::json(200, "{\"status\":\"ok\"}".into());
            respond(state, stream, &resp);
        }
        ("GET", "/readyz") => {
            let resp = readyz(state);
            respond(state, stream, &resp);
        }
        ("POST", "/shutdown") => {
            state.draining.store(true, Ordering::SeqCst);
            let resp = Response::json(200, "{\"status\":\"draining\"}".into());
            respond(state, stream, &resp);
        }
        ("POST", "/analyze") => admit(stream, &req, state),
        (_, "/healthz" | "/readyz" | "/shutdown" | "/analyze") => {
            let resp = Response::json(
                405,
                wire::error_body("serve.method-not-allowed", 405, "method not allowed"),
            );
            respond(state, stream, &resp);
        }
        _ => {
            let resp = Response::json(
                404,
                wire::error_body("serve.not-found", 404, "unknown route"),
            );
            respond(state, stream, &resp);
        }
    }
}

fn admit(stream: &mut TcpStream, req: &Request, state: &Arc<State>) {
    if state.draining.load(Ordering::SeqCst) {
        let resp = Response::json(
            503,
            wire::error_body("serve.draining", 503, "server is draining"),
        );
        respond(state, stream, &resp);
        return;
    }
    // `Content-Type: text/x-spice` selects the raw-deck body parser; the
    // default stays the JSON wire format.
    let parsed = if is_spice(req) {
        crate::deck::from_spice(&req.body)
    } else {
        wire::parse_request(&req.body)
    };
    let parsed = match parsed {
        Ok(p) => p,
        Err(WireError {
            code,
            http,
            message,
        }) => {
            let resp = Response::json(http, wire::error_body(&code, http, &message));
            respond(state, stream, &resp);
            return;
        }
    };
    // The deadline clock starts *now*: time spent queued is time spent.
    let budget = match parsed.deadline_ms {
        Some(ms) => SolveBudget::new(BudgetLimits::default().deadline(Duration::from_millis(ms))),
        None => SolveBudget::unlimited(),
    };
    // The job carries its own handle to the socket; a clone failure means
    // the peer is already gone, so there is nobody to answer.
    let Ok(job_stream) = stream.try_clone() else {
        state.write_errors.fetch_add(1, Ordering::SeqCst);
        return;
    };
    let request_index = state.request_counter.fetch_add(1, Ordering::SeqCst);
    let job = Job {
        stream: job_stream,
        req: parsed,
        budget,
        request_index,
    };
    match state.queue.try_push(job) {
        Ok(()) => {
            state.accepted.fetch_add(1, Ordering::SeqCst);
        }
        Err(mut job) => {
            state.shed.fetch_add(1, Ordering::SeqCst);
            let depth = state.queue.depth();
            let retry_after = retry_after_secs(depth);
            let resp = Response::json(
                429,
                wire::error_body(
                    "serve.shed",
                    429,
                    &format!("admission queue full ({depth} pending); retry in {retry_after}s"),
                ),
            )
            .with_header("retry-after", retry_after.to_string());
            respond(state, &mut job.stream, &resp);
        }
    }
}

/// Whether the request body is a raw SPICE deck (by media type, ignoring
/// any `;charset=` parameter).
fn is_spice(req: &Request) -> bool {
    req.header("content-type")
        .and_then(|v| v.split(';').next())
        .is_some_and(|v| v.trim().eq_ignore_ascii_case("text/x-spice"))
}

/// `Retry-After` grows with queue depth: an empty-but-closed or barely
/// full queue asks for 1 s; each ~4 pending jobs add a second, capped at
/// 30 s.
pub fn retry_after_secs(depth: usize) -> u64 {
    (1 + depth as u64 / 4).min(30)
}

fn readyz(state: &State) -> Response {
    let draining = state.draining.load(Ordering::SeqCst);
    let status = if draining { "draining" } else { "ready" };
    let body = crate::json::Json::Obj(vec![
        ("status".into(), crate::json::Json::Str(status.into())),
        num(
            "workers_alive",
            state.workers_alive.load(Ordering::SeqCst) as f64,
        ),
        num(
            "workers_busy",
            state.workers_busy.load(Ordering::SeqCst) as f64,
        ),
        num("queue_depth", state.queue.depth() as f64),
        num("queue_capacity", state.queue.capacity() as f64),
        num("accepted", state.accepted.load(Ordering::SeqCst) as f64),
        num("completed", state.completed.load(Ordering::SeqCst) as f64),
        num("shed", state.shed.load(Ordering::SeqCst) as f64),
        num("panics", state.panics.load(Ordering::SeqCst) as f64),
        num(
            "write_errors",
            state.write_errors.load(Ordering::SeqCst) as f64,
        ),
        num("cache_entries", state.cache.len() as f64),
        num("cache_hits", state.cache.hits() as f64),
        num("cache_misses", state.cache.misses() as f64),
        num("sessions_live", state.pool.live() as f64),
        num("sessions_retired", state.pool.retired() as f64),
    ])
    .to_string();
    Response::json(if draining { 503 } else { 200 }, body)
}

fn num(key: &str, v: f64) -> (String, crate::json::Json) {
    (key.into(), crate::json::Json::Num(v))
}

// ── Workers ──

fn worker_loop(state: &Arc<State>, worker_index: usize) {
    // Workers adopt the fault plan that was active when the server was
    // constructed, so a chaos test arms sites once and every thread sees
    // them.
    #[cfg(feature = "fault-inject")]
    let _fault_guard = fault::adopt(state.plan.clone());

    while let Some(mut job) = state.queue.pop() {
        state.workers_busy.fetch_add(1, Ordering::SeqCst);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // The worker-keyed site: `Stall` parks this worker here (its
            // job waits with it); `Panic` exercises the isolation below.
            let _ = fault::request_fault(sites::SERVE_WORKER, worker_index);
            handle(state, &job)
        }));
        let resp = outcome.unwrap_or_else(|payload| {
            state.panics.fetch_add(1, Ordering::SeqCst);
            let err = TranvarError::from(CoreError::Panic {
                context: format!("serve request {}", job.request_index),
                message: panic_message(payload.as_ref()),
            });
            let ws = err.wire_status();
            Response::json(
                ws.http,
                wire::error_body(ws.code, ws.http, &err.to_string()),
            )
        });
        respond(state, &mut job.stream, &resp);
        state.workers_busy.fetch_sub(1, Ordering::SeqCst);
    }
    state.workers_alive.fetch_sub(1, Ordering::SeqCst);
}

fn typed_error_response(err: &TranvarError) -> Response {
    let ws = err.wire_status();
    Response::json(
        ws.http,
        wire::error_body(ws.code, ws.http, &err.to_string()),
    )
}

fn handle(state: &State, job: &Job) -> Response {
    let req = &job.req;
    // Request-level injection: panic at request i / synthetic typed errors.
    if let Some(e) = fault::request_fault(sites::SERVE_REQUEST, job.request_index) {
        return typed_error_response(&TranvarError::from(e));
    }
    // A request whose deadline was spent waiting in the queue 504s here
    // without ever touching a session.
    if job.budget.deadline_expired() {
        return typed_error_response(&TranvarError::from(
            job.budget.deadline_exceeded("serve admission queue"),
        ));
    }

    let config = pss_config(req, &job.budget);
    let policy = if req.retry {
        RetryPolicy::default()
    } else {
        RetryPolicy::none()
    };

    // ── Solve each unique variant (cache first). ──
    let (solve_keys, key_of_scenario) = solve_groups(&req.scenarios);
    let mut request_hits = 0u64;
    let mut solves: Vec<Result<Arc<SolveData>, CoreError>> = Vec::with_capacity(solve_keys.len());
    for key in &solve_keys {
        let digest = solve_digest(&req.deck, req.period, req.n_steps, req.retry, key);
        if let Some(data) = state.cache.get(digest) {
            request_hits += 1;
            solves.push(Ok(data));
            continue;
        }
        let solve_index = state.solve_counter.fetch_add(1, Ordering::SeqCst);
        if let Some(e) = fault::request_fault(sites::SERVE_SOLVE, solve_index) {
            solves.push(Err(CoreError::from(e)));
            continue;
        }
        let mut session = state.pool.checkout();
        let mut stats = SessionStats::default();
        let unique = solve_unique(
            &mut session,
            &req.circuit,
            key,
            &config,
            &policy,
            solve_index,
            &mut stats,
        );
        if unique.poisoned {
            // A caught panic may have left half-updated session caches.
            state.pool.retire(session);
        } else {
            state.pool.give_back(session);
        }
        match unique.outcome {
            Ok(data) => {
                let data = Arc::new(data);
                state.cache.insert(digest, data.clone());
                solves.push(Ok(data));
            }
            Err(e) => solves.push(Err(e)),
        }
    }

    // ── Assemble per-scenario reports against their own σ. ──
    let scenario_results: Vec<_> = req
        .scenarios
        .iter()
        .zip(&key_of_scenario)
        .map(|(sc, &key)| {
            let reports = match &solves[key] {
                Err(e) => Err(e.clone()),
                Ok(data) => scenario_reports(&req.circuit, sc, &data.0, &data.1, &req.metrics),
            };
            (sc.name.clone(), reports)
        })
        .collect();

    let (status, body) = wire::body_ok(&req.deck, solve_keys.len(), &scenario_results);
    Response::json(status, body)
        .with_header("x-tranvar-cache-hits", request_hits.to_string())
        .with_header(
            "x-tranvar-cache-misses",
            (solve_keys.len() as u64 - request_hits).to_string(),
        )
}

fn pss_config(req: &AnalyzeRequest, budget: &SolveBudget) -> tranvar::core::PssConfig {
    let mut opts = PssOptions::default();
    opts.n_steps = req.n_steps;
    // Deck-supplied tuning (`.pss warmup= tol= step_limit=`); the deck
    // name is a content hash of the text, so these are in the cache key.
    if let Some(w) = req.warmup_cycles {
        opts.warmup_cycles = w;
    }
    if let Some(t) = req.tol {
        opts.tol = t;
    }
    if let Some(s) = req.step_limit {
        opts.newton.step_limit = s;
    }
    opts.newton.budget = budget.clone();
    tranvar::core::PssConfig::Driven {
        period: req.period,
        opts,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_tracks_queue_depth() {
        assert_eq!(retry_after_secs(0), 1);
        assert_eq!(retry_after_secs(3), 1);
        assert_eq!(retry_after_secs(4), 2);
        assert_eq!(retry_after_secs(40), 11);
        assert_eq!(retry_after_secs(100_000), 30);
    }
}
