//! The daemon's wire format: request parsing and response rendering.
//!
//! Every failure carries the workspace's stable machine-readable code from
//! [`TranvarError::wire_status`] plus the mapped HTTP status; serve-level
//! conditions that never pass through a `TranvarError` (admission shed,
//! malformed JSON, drain) use `serve.*` codes. Success bodies are rendered
//! through [`crate::json`]'s deterministic serializer, and
//! [`body_from_campaign`] renders an in-process
//! [`Campaign`](tranvar::core::Campaign) result through the *same* code so
//! the two are comparable byte-for-byte.

use crate::json::{self, Json};
use tranvar::circuit::{Circuit, CircuitOverride};
use tranvar::core::{CampaignResult, CoreError, Metric, MetricSpec, Scenario, VariationReport};
use tranvar::TranvarError;

/// A fully validated analyze request.
#[derive(Debug)]
pub struct AnalyzeRequest {
    /// Built-in deck name (see [`crate::deck`]).
    pub deck: String,
    /// The deck circuit the request resolved against.
    pub circuit: Circuit,
    /// Drive period for the PSS solve (seconds).
    pub period: f64,
    /// Shooting steps per period.
    pub n_steps: usize,
    /// Warm-up cycles before shooting (deck `.pss warmup=`; JSON requests
    /// leave this `None` and take the solver default).
    pub warmup_cycles: Option<usize>,
    /// Shooting convergence tolerance (deck `.pss tol=`).
    pub tol: Option<f64>,
    /// Inner-Newton update clamp (deck `.pss step_limit=`).
    pub step_limit: Option<f64>,
    /// Escalate failing solves through the periodic retry ladder.
    pub retry: bool,
    /// Wall-clock deadline for the whole request, queue wait included.
    pub deadline_ms: Option<u64>,
    /// Metrics to evaluate.
    pub metrics: Vec<MetricSpec>,
    /// Named scenarios (override lists).
    pub scenarios: Vec<Scenario>,
}

/// A request-level failure: stable code, HTTP status, human message.
#[derive(Debug)]
pub struct WireError {
    /// Machine-readable code (`serve.*` or a `TranvarError` code).
    pub code: String,
    /// Mapped HTTP status.
    pub http: u16,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    fn bad(message: impl Into<String>) -> Self {
        WireError {
            code: "serve.bad-request".into(),
            http: 400,
            message: message.into(),
        }
    }
}

impl From<TranvarError> for WireError {
    fn from(e: TranvarError) -> Self {
        let ws = e.wire_status();
        WireError {
            code: ws.code.into(),
            http: ws.http,
            message: e.to_string(),
        }
    }
}

fn field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, WireError> {
    obj.get(key)
        .ok_or_else(|| WireError::bad(format!("{what}: missing field '{key}'")))
}

fn str_field(obj: &Json, key: &str, what: &str) -> Result<String, WireError> {
    field(obj, key, what)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| WireError::bad(format!("{what}: field '{key}' must be a string")))
}

fn num_field(obj: &Json, key: &str, what: &str) -> Result<f64, WireError> {
    field(obj, key, what)?
        .as_f64()
        .ok_or_else(|| WireError::bad(format!("{what}: field '{key}' must be a number")))
}

/// Parses and validates an analyze request body against its named deck.
///
/// # Errors
///
/// Structural problems map to `serve.bad-request` (400); unknown decks to
/// `serve.unknown-deck` (400); unknown node/device labels surface the
/// typed circuit error codes (400).
pub fn parse_request(body: &str) -> Result<AnalyzeRequest, WireError> {
    let root = json::parse(body)
        .map_err(|e| WireError::bad(format!("request body is not valid JSON: {e}")))?;

    let deck = str_field(&root, "deck", "request")?;
    let circuit = crate::deck::build(&deck).ok_or_else(|| WireError {
        code: "serve.unknown-deck".into(),
        http: 400,
        message: format!(
            "unknown deck '{deck}' (available: {})",
            crate::deck::DECKS.join(", ")
        ),
    })?;

    let period = num_field(&root, "period", "request")?;
    if !(period.is_finite() && period > 0.0) {
        return Err(WireError::bad(
            "request: 'period' must be finite and positive",
        ));
    }
    let n_steps = field(&root, "n_steps", "request")?
        .as_usize()
        .filter(|n| *n > 0)
        .ok_or_else(|| WireError::bad("request: 'n_steps' must be a positive integer"))?;
    let retry = match root.get("retry") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| WireError::bad("request: 'retry' must be a boolean"))?,
    };
    let deadline_ms =
        match root.get("deadline_ms") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_usize().filter(|ms| *ms > 0).ok_or_else(|| {
                WireError::bad("request: 'deadline_ms' must be a positive integer")
            })? as u64),
        };

    let metrics = field(&root, "metrics", "request")?
        .as_arr()
        .ok_or_else(|| WireError::bad("request: 'metrics' must be an array"))?
        .iter()
        .map(|m| parse_metric(m, &circuit))
        .collect::<Result<Vec<_>, _>>()?;
    if metrics.is_empty() {
        return Err(WireError::bad("request: 'metrics' must not be empty"));
    }

    let scenarios = field(&root, "scenarios", "request")?
        .as_arr()
        .ok_or_else(|| WireError::bad("request: 'scenarios' must be an array"))?
        .iter()
        .map(|s| parse_scenario(s, &circuit))
        .collect::<Result<Vec<_>, _>>()?;
    if scenarios.is_empty() {
        return Err(WireError::bad("request: 'scenarios' must not be empty"));
    }

    Ok(AnalyzeRequest {
        deck,
        circuit,
        period,
        n_steps,
        warmup_cycles: None,
        tol: None,
        step_limit: None,
        retry,
        deadline_ms,
        metrics,
        scenarios,
    })
}

fn parse_metric(m: &Json, ckt: &Circuit) -> Result<MetricSpec, WireError> {
    let name = str_field(m, "name", "metric")?;
    let kind = str_field(m, "kind", "metric")?;
    let metric = match kind.as_str() {
        "dc-average" => {
            let node = str_field(m, "node", "metric")?;
            let node = ckt
                .find_node(&node)
                .map_err(|e| WireError::from(TranvarError::from(e)))?;
            Metric::DcAverage { node }
        }
        "frequency" => Metric::Frequency,
        other => {
            return Err(WireError::bad(format!(
                "metric '{name}': unsupported kind '{other}' (use dc-average or frequency)"
            )))
        }
    };
    Ok(MetricSpec::new(&name, metric))
}

fn parse_scenario(s: &Json, ckt: &Circuit) -> Result<Scenario, WireError> {
    let name = str_field(s, "name", "scenario")?;
    let overrides = match s.get("overrides") {
        None => Vec::new(),
        Some(o) => o
            .as_arr()
            .ok_or_else(|| {
                WireError::bad(format!("scenario '{name}': 'overrides' must be an array"))
            })?
            .iter()
            .map(|ov| parse_override(ov, ckt))
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(Scenario { name, overrides })
}

fn parse_override(ov: &Json, ckt: &Circuit) -> Result<CircuitOverride, WireError> {
    let kind = str_field(ov, "kind", "override")?;
    let device = |ov: &Json| -> Result<_, WireError> {
        let label = str_field(ov, "device", "override")?;
        ckt.find_device(&label)
            .map_err(|e| WireError::from(TranvarError::from(e)))
    };
    match kind.as_str() {
        "resistance" => Ok(CircuitOverride::Resistance {
            device: device(ov)?,
            ohms: num_field(ov, "ohms", "override")?,
        }),
        "capacitance" => Ok(CircuitOverride::Capacitance {
            device: device(ov)?,
            farads: num_field(ov, "farads", "override")?,
        }),
        "inductance" => Ok(CircuitOverride::Inductance {
            device: device(ov)?,
            henries: num_field(ov, "henries", "override")?,
        }),
        "source-dc" => Ok(CircuitOverride::SourceDc {
            device: device(ov)?,
            value: num_field(ov, "value", "override")?,
        }),
        "source-scale" => Ok(CircuitOverride::SourceScale {
            device: device(ov)?,
            factor: num_field(ov, "factor", "override")?,
        }),
        "sigma-scale" => Ok(CircuitOverride::SigmaScale {
            factor: num_field(ov, "factor", "override")?,
        }),
        other => Err(WireError::bad(format!(
            "override: unsupported kind '{other}'"
        ))),
    }
}

// ── Response rendering ──

/// Renders a request-level error body (shed, parse failure, drain, queue
/// deadline): `{"status":"error","code":...,"http":...,"message":...}`.
pub fn error_body(code: &str, http: u16, message: &str) -> String {
    Json::Obj(vec![
        ("status".into(), Json::Str("error".into())),
        ("code".into(), Json::Str(code.into())),
        ("http".into(), Json::Num(f64::from(http))),
        ("message".into(), Json::Str(message.into())),
    ])
    .to_string()
}

fn report_json(r: &VariationReport) -> Json {
    Json::Obj(vec![
        ("metric".into(), Json::Str(r.metric.clone())),
        ("nominal".into(), Json::Num(r.nominal)),
        ("sigma".into(), Json::Num(r.sigma())),
        (
            "contributions".into(),
            Json::Arr(
                r.contributions
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("label".into(), Json::Str(c.label.clone())),
                            ("param_index".into(), Json::Num(c.param_index as f64)),
                            ("sensitivity".into(), Json::Num(c.sensitivity)),
                            ("sigma".into(), Json::Num(c.sigma)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn scenario_json(name: &str, result: &Result<Vec<VariationReport>, CoreError>) -> (u16, Json) {
    match result {
        Ok(reports) => (
            200,
            Json::Obj(vec![
                ("name".into(), Json::Str(name.into())),
                ("status".into(), Json::Str("ok".into())),
                (
                    "reports".into(),
                    Json::Arr(reports.iter().map(report_json).collect()),
                ),
            ]),
        ),
        Err(e) => {
            let err = TranvarError::from(e.clone());
            let ws = err.wire_status();
            (
                ws.http,
                Json::Obj(vec![
                    ("name".into(), Json::Str(name.into())),
                    ("status".into(), Json::Str("error".into())),
                    ("code".into(), Json::Str(ws.code.into())),
                    ("http".into(), Json::Num(f64::from(ws.http))),
                    ("message".into(), Json::Str(err.to_string())),
                ]),
            )
        }
    }
}

/// Renders the analyze response body from per-scenario report results.
///
/// Returns `(overall_status, body)`; the overall HTTP status is 200 when
/// every scenario succeeded, otherwise the numerically largest scenario
/// status (500 ≻ 504 ≻ 422 ≻ 400 severity order on this wire).
pub fn body_ok(
    deck: &str,
    n_unique_solves: usize,
    scenarios: &[(String, Result<Vec<VariationReport>, CoreError>)],
) -> (u16, String) {
    let mut status = 200u16;
    let mut rendered = Vec::with_capacity(scenarios.len());
    for (name, result) in scenarios {
        let (st, js) = scenario_json(name, result);
        status = status.max(st);
        rendered.push(js);
    }
    let body = Json::Obj(vec![
        ("deck".into(), Json::Str(deck.into())),
        ("n_unique_solves".into(), Json::Num(n_unique_solves as f64)),
        ("scenarios".into(), Json::Arr(rendered)),
    ])
    .to_string();
    (status, body)
}

/// Renders an in-process [`CampaignResult`] exactly as the daemon renders
/// the equivalent request — the byte-identity oracle for the serve tests
/// and the `serve_throughput` bench.
pub fn body_from_campaign(deck: &str, result: &CampaignResult) -> (u16, String) {
    let scenarios: Vec<_> = result
        .outcomes
        .iter()
        .map(|o| {
            let reports = o
                .result
                .as_ref()
                .map(|a| a.reports.clone())
                .map_err(|e| e.clone());
            (o.scenario.clone(), reports)
        })
        .collect();
    body_ok(deck, result.n_unique_solves, &scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_body() -> String {
        r#"{
            "deck": "divider",
            "period": 1e-6,
            "n_steps": 16,
            "metrics": [{"name": "vout", "kind": "dc-average", "node": "b"}],
            "scenarios": [
                {"name": "nominal"},
                {"name": "sigma2", "overrides": [{"kind": "sigma-scale", "factor": 2.0}]}
            ]
        }"#
        .into()
    }

    #[test]
    fn parses_a_full_request() {
        let req = parse_request(&valid_body()).unwrap();
        assert_eq!(req.deck, "divider");
        assert_eq!(req.n_steps, 16);
        assert_eq!(req.metrics.len(), 1);
        assert_eq!(req.scenarios.len(), 2);
        assert_eq!(req.scenarios[1].overrides.len(), 1);
        assert!(req.deadline_ms.is_none());
        assert!(!req.retry);
    }

    #[test]
    fn unknown_labels_surface_typed_circuit_codes() {
        let body = valid_body().replace("\"node\": \"b\"", "\"node\": \"zz\"");
        let err = parse_request(&body).unwrap_err();
        assert_eq!(err.http, 400);
        assert_eq!(err.code, "circuit.unknown-node");

        let body = valid_body().replace(
            r#"{"kind": "sigma-scale", "factor": 2.0}"#,
            r#"{"kind": "resistance", "device": "R9", "ohms": 1.0}"#,
        );
        let err = parse_request(&body).unwrap_err();
        assert_eq!(err.http, 400);
        assert_eq!(err.code, "circuit.unknown-device");
    }

    #[test]
    fn structural_problems_are_serve_bad_request() {
        for body in [
            "not json",
            r#"{"deck": "divider"}"#,
            &valid_body().replace("divider", "mystery"),
            &valid_body().replace("16", "0"),
            &valid_body().replace("1e-6", "-1.0"),
        ] {
            let err = parse_request(body).unwrap_err();
            assert_eq!(err.http, 400, "body: {body}");
        }
        assert_eq!(
            parse_request(&valid_body().replace("divider", "mystery"))
                .unwrap_err()
                .code,
            "serve.unknown-deck"
        );
    }

    #[test]
    fn overall_status_is_the_worst_scenario_status() {
        let ok: Result<Vec<VariationReport>, CoreError> = Ok(Vec::new());
        let bad: Result<Vec<VariationReport>, CoreError> = Err(CoreError::BadConfig("x".into()));
        let (st, _) = body_ok("divider", 1, &[("a".into(), ok), ("b".into(), bad)]);
        assert_eq!(st, 400);
        let (st, body) = body_ok("divider", 1, &[]);
        assert_eq!(st, 200);
        assert!(body.contains("\"n_unique_solves\":1"));
    }
}
