//! Built-in named decks the daemon serves.
//!
//! The wire format refers to circuits by deck name and to nodes/devices by
//! their labels; this module owns the name → [`Circuit`] mapping. Decks are
//! deliberately small driven testbenches with annotated mismatch so every
//! request exercises the paper's full PSS → LPTV → report pipeline.

use tranvar::circuit::{Circuit, NodeId, Waveform};

/// The deck names [`build`] accepts.
pub const DECKS: &[&str] = &["divider", "rc-lowpass"];

/// Builds a named deck, or `None` for an unknown name.
pub fn build(name: &str) -> Option<Circuit> {
    match name {
        "divider" => Some(divider()),
        "rc-lowpass" => Some(rc_lowpass()),
        _ => None,
    }
}

/// A 2 V resistive divider with mismatch on both resistors: the workspace's
/// canonical σ(vout) example (σ = |∂vout/∂R|·σ_R per resistor, RSS'd).
fn divider() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
    let r1 = ckt.add_resistor("R1", a, b, 1e3);
    let r2 = ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
    ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-12);
    ckt.annotate_resistor_mismatch(r1, 10.0);
    ckt.annotate_resistor_mismatch(r2, 10.0);
    ckt
}

/// A 1 V RC low-pass with mismatch on the series resistor.
fn rc_lowpass() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("in");
    let b = ckt.node("out");
    ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
    let r1 = ckt.add_resistor("R1", a, b, 1e3);
    ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
    ckt.annotate_resistor_mismatch(r1, 5.0);
    ckt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_deck_builds_with_mismatch_annotations() {
        for name in DECKS {
            let ckt = build(name).expect("listed deck must build");
            assert!(
                !ckt.mismatch_params().is_empty(),
                "deck {name} has no mismatch annotations"
            );
        }
        assert!(build("nope").is_none());
    }
}
