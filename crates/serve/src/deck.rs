//! Built-in named decks the daemon serves, plus the raw-SPICE request body.
//!
//! The JSON wire format refers to circuits by deck name and to
//! nodes/devices by their labels; this module owns the name → [`Circuit`]
//! mapping. Decks are deliberately small driven testbenches with annotated
//! mismatch so every request exercises the paper's full PSS → LPTV →
//! report pipeline.
//!
//! A `POST /analyze` body with `Content-Type: text/x-spice` bypasses the
//! name lookup entirely: [`from_spice`] elaborates the body through
//! [`tranvar::netlist`] into the same [`AnalyzeRequest`] the JSON path
//! produces, so a raw deck and its equivalent JSON request render
//! byte-identical responses. Spice requests are cached under a
//! content-addressed name ([`spice_name`]), so re-posting the same deck
//! text hits the solve cache.

use crate::wire::{AnalyzeRequest, WireError};
use tranvar::circuit::{Circuit, NodeId, Waveform};
use tranvar::netlist::{self, Analysis};
use tranvar::pss::PssOptions;
use tranvar::TranvarError;

/// The deck names [`build`] accepts.
pub const DECKS: &[&str] = &["divider", "rc-lowpass"];

/// Builds a named deck, or `None` for an unknown name.
pub fn build(name: &str) -> Option<Circuit> {
    match name {
        "divider" => Some(divider()),
        "rc-lowpass" => Some(rc_lowpass()),
        _ => None,
    }
}

/// A 2 V resistive divider with mismatch on both resistors: the workspace's
/// canonical σ(vout) example (σ = |∂vout/∂R|·σ_R per resistor, RSS'd).
fn divider() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
    let r1 = ckt.add_resistor("R1", a, b, 1e3);
    let r2 = ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
    ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-12);
    ckt.annotate_resistor_mismatch(r1, 10.0);
    ckt.annotate_resistor_mismatch(r2, 10.0);
    ckt
}

/// A 1 V RC low-pass with mismatch on the series resistor.
fn rc_lowpass() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("in");
    let b = ckt.node("out");
    ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
    let r1 = ckt.add_resistor("R1", a, b, 1e3);
    ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
    ckt.annotate_resistor_mismatch(r1, 5.0);
    ckt
}

// ── Raw SPICE request bodies ──

/// FNV-1a over the deck text; the content-addressed identity of a raw
/// SPICE request. Byte-identical decks share solve-cache entries, any
/// edit (even whitespace) gets a fresh key — exactly the granularity the
/// cache digest needs, since every solve input is in the text.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The deck name a raw SPICE body is served (and cached) under.
pub fn spice_name(source: &str) -> String {
    format!("spice:{:016x}", fnv64(source.as_bytes()))
}

/// A deck that parsed cleanly but asks for something the daemon cannot
/// serve (no driven `.pss`, no `.measure`): unprocessable, like the
/// `netlist.*` elaboration failures it sits alongside.
fn unservable(message: String) -> WireError {
    WireError {
        code: "serve.unservable-deck".into(),
        http: 422,
        message,
    }
}

/// Parses a raw SPICE deck (`Content-Type: text/x-spice`) into the same
/// [`AnalyzeRequest`] the JSON path produces.
///
/// The deck must carry a driven `.pss <period>` card (the daemon's solve
/// pipeline is the driven-PSS one) and at least one `.measure`; scenarios
/// come from its `.sweep` cards (a deck without sweeps runs the single
/// `nominal` scenario), `retry`/`deadline_ms` from `.option`.
///
/// # Errors
///
/// Parse and elaboration failures surface the typed, spanned `netlist.*`
/// codes at their mapped 422; decks without a servable analysis get
/// `serve.unservable-deck` (422).
pub fn from_spice(source: &str) -> Result<AnalyzeRequest, WireError> {
    let e = netlist::parse_and_elaborate(source)
        .map_err(|err| WireError::from(TranvarError::from(err)))?;
    let Some(analysis) = e.analysis else {
        return Err(unservable(
            "deck has no analysis card; the daemon needs a driven `.pss <period>`".into(),
        ));
    };
    let Analysis::PssDriven {
        period,
        n_steps,
        warmup_cycles,
        tol,
        step_limit,
    } = analysis
    else {
        return Err(unservable(
            "only driven `.pss <period>` decks are servable (`.tran` and `.pss osc` are not)"
                .into(),
        ));
    };
    if e.metrics.is_empty() {
        return Err(unservable(
            "deck has no `.measure` cards; nothing to report".into(),
        ));
    }
    Ok(AnalyzeRequest {
        deck: spice_name(source),
        circuit: e.circuit,
        period,
        n_steps: n_steps.unwrap_or_else(|| PssOptions::default().n_steps),
        warmup_cycles,
        tol,
        step_limit,
        retry: e.retry,
        deadline_ms: e.deadline_ms,
        metrics: e.metrics,
        scenarios: e.scenarios,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_deck_builds_with_mismatch_annotations() {
        for name in DECKS {
            let ckt = build(name).expect("listed deck must build");
            assert!(
                !ckt.mismatch_params().is_empty(),
                "deck {name} has no mismatch annotations"
            );
        }
        assert!(build("nope").is_none());
    }

    const DRIVEN: &str = "served divider\n\
        V1 a 0 2.0\n\
        R1 a b 1e3\n\
        R2 b 0 1e3\n\
        C1 b 0 1p\n\
        .sigma r R* sigma=10.0\n\
        .pss 1u steps=16 warmup=1\n\
        .measure vout avg b\n\
        .end\n";

    #[test]
    fn spice_body_becomes_a_full_request() {
        let req = from_spice(DRIVEN).unwrap();
        assert_eq!(req.deck, spice_name(DRIVEN));
        assert!(req.deck.starts_with("spice:"));
        assert_eq!(req.period, 1e-6);
        assert_eq!(req.n_steps, 16);
        assert_eq!(req.warmup_cycles, Some(1));
        assert_eq!(req.metrics.len(), 1);
        assert_eq!(req.scenarios.len(), 1); // no .sweep → nominal only
        assert!(!req.circuit.mismatch_params().is_empty());
        // Content-addressing: any text edit changes the cache identity.
        assert_ne!(spice_name(DRIVEN), spice_name(&DRIVEN.replace("1p", "2p")));
    }

    #[test]
    fn elaboration_failures_surface_spanned_netlist_codes() {
        let err = from_spice(&DRIVEN.replace("1e3", "'r0'")).unwrap_err();
        assert_eq!(err.http, 422);
        assert_eq!(err.code, "netlist.undefined-param");
        assert!(err.message.contains("line 3"), "{}", err.message);
    }

    #[test]
    fn unservable_decks_get_a_typed_422() {
        for (deck, why) in [
            (
                DRIVEN.replace(".pss 1u steps=16 warmup=1\n", ""),
                "no analysis",
            ),
            (DRIVEN.replace(".measure vout avg b\n", ""), "no measure"),
        ] {
            let err = from_spice(&deck).unwrap_err();
            assert_eq!(err.code, "serve.unservable-deck", "{why}");
            assert_eq!(err.http, 422, "{why}");
        }
    }
}
