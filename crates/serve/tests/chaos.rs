//! The chaos suite: the daemon under deterministic injected failure
//! (`--features fault-inject`).
//!
//! Each test installs a [`FaultPlan`] *before* starting its server so the
//! workers adopt it, then drives the failure surface over real sockets:
//! a concurrent request storm with an injected worker panic, deadline
//! expiry via the pinned mock clock, and a stalled worker that forces
//! queueing and load shedding. Throughout: every connection receives a
//! typed status (zero dropped connections), `/readyz` counters stay
//! accurate, the session pool never dips below its floor, and shutdown
//! drains cleanly.
#![cfg(feature = "fault-inject")]

mod common;

use common::{counter, get, post, Reply};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tranvar::engine::fault::{sites, FaultAction, FaultPlan};
use tranvar_serve::{Server, ServerConfig};

fn analyze_body(ohms: f64, deadline_ms: Option<u64>) -> String {
    let deadline = match deadline_ms {
        Some(ms) => format!("\"deadline_ms\": {ms},"),
        None => String::new(),
    };
    format!(
        r#"{{
            "deck": "divider",
            "period": 1e-6,
            "n_steps": 16,
            {deadline}
            "metrics": [{{"name": "vout", "kind": "dc-average", "node": "b"}}],
            "scenarios": [{{"name": "s", "overrides": [
                {{"kind": "resistance", "device": "R1", "ohms": {ohms}}}
            ]}}]
        }}"#
    )
}

/// Polls `/readyz` until `pred` holds (the counters are eventually
/// consistent with worker progress).
fn wait_ready(addr: SocketAddr, what: &str, pred: impl Fn(&Reply) -> bool) -> Reply {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = get(addr, "/readyz");
        if pred(&reply) {
            return reply;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last readyz: {}",
            reply.body
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Storm + injected request panic + injected deadline expiry, one server.
///
/// Fault indices are deterministic because the phases are sequenced: the
/// 8-request storm consumes admission ordinals 0..8 and (with unique
/// overrides) solve ordinals 0..8; the panic is armed at admission
/// ordinal 8, the clock expiry at solve ordinal 8.
#[test]
fn storm_panic_and_deadline_expiry_all_get_typed_statuses() {
    let guard = FaultPlan::new()
        .fail(sites::SERVE_REQUEST, 8, FaultAction::Panic)
        .fail(sites::SERVE_SOLVE, 8, FaultAction::Expire)
        .install();

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 3,
        queue_depth: 64,
        cache_entries: 16,
        session_floor: 2,
    })
    .unwrap();
    let addr = server.addr();

    // ── Phase A: ≥8 concurrent requests, all unique solves, all 200. ──
    let replies: Vec<Reply> = std::thread::scope(|sc| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                sc.spawn(move || post(addr, "/analyze", &analyze_body(1000.0 + i as f64, None)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, r) in replies.iter().enumerate() {
        assert_eq!(r.status, 200, "storm request {i}: {}", r.body);
    }
    let ready = wait_ready(addr, "storm drained", |r| {
        counter(r, "workers_busy") == 0 && counter(r, "queue_depth") == 0
    });
    assert_eq!(counter(&ready, "accepted"), 8);
    assert_eq!(counter(&ready, "shed"), 0);
    assert_eq!(counter(&ready, "panics"), 0);
    assert_eq!(counter(&ready, "write_errors"), 0, "dropped connections");
    assert_eq!(counter(&ready, "cache_misses"), 8);

    // ── Phase B: admission ordinal 8 panics inside the worker. ──
    let r = post(addr, "/analyze", &analyze_body(2000.0, None));
    assert_eq!(r.status, 500, "body: {}", r.body);
    assert!(r.body.contains("\"code\":\"core.panic\""), "{}", r.body);
    assert!(r.body.contains("injected panic"), "{}", r.body);
    let ready = get(addr, "/readyz");
    assert_eq!(counter(&ready, "panics"), 1);
    assert!(
        counter(&ready, "sessions_live") >= 2,
        "pool dipped below floor: {}",
        ready.body
    );

    // ── Phase C: solve ordinal 8 pins the clock; the deadline budget
    // surfaces the genuine BudgetExceeded path as a typed 504. ──
    let r = post(addr, "/analyze", &analyze_body(3000.0, Some(60_000)));
    assert_eq!(r.status, 504, "body: {}", r.body);
    assert!(
        r.body.contains("\"code\":\"engine.budget-exceeded\""),
        "{}",
        r.body
    );

    // ── Drain: every thread exits, nothing is lost. ──
    assert_eq!(post(addr, "/shutdown", "").status, 200);
    server.join();
    drop(guard);
}

/// A stalled worker parks with its job; the other worker keeps serving;
/// releasing the stall completes the parked request. With capacity 1 and a
/// single worker variant, the stall forces deterministic queueing and a
/// shed.
#[test]
fn stalled_worker_forces_queueing_shedding_and_recovers_on_release() {
    let guard = FaultPlan::new()
        .fail(sites::SERVE_WORKER, 0, FaultAction::Stall)
        .install();

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 1,
        cache_entries: 16,
        session_floor: 1,
    })
    .unwrap();
    let addr = server.addr();

    let done = Arc::new(AtomicUsize::new(0));
    let statuses = std::thread::scope(|sc| {
        // R1: picked up by the (only) worker, which immediately parks.
        let d = done.clone();
        let r1 = sc.spawn(move || {
            let r = post(addr, "/analyze", &analyze_body(1000.0, None));
            d.fetch_add(1, Ordering::SeqCst);
            r.status
        });
        wait_ready(addr, "worker parked on R1", |r| {
            counter(r, "workers_busy") == 1 && counter(r, "accepted") == 1
        });

        // R2: admitted into the (now otherwise empty) queue behind the
        // stalled worker.
        let d = done.clone();
        let r2 = sc.spawn(move || {
            let r = post(addr, "/analyze", &analyze_body(1001.0, None));
            d.fetch_add(1, Ordering::SeqCst);
            r.status
        });
        wait_ready(addr, "R2 queued", |r| counter(r, "queue_depth") == 1);

        // R3: the queue is full — typed shed with Retry-After.
        let r3 = post(addr, "/analyze", &analyze_body(1002.0, None));
        assert_eq!(r3.status, 429, "body: {}", r3.body);
        assert!(r3.header("retry-after").is_some());
        assert_eq!(done.load(Ordering::SeqCst), 0, "stall must hold R1 and R2");

        // Release: the parked worker finishes R1, then drains R2.
        guard.release_stalls();
        (r1.join().unwrap(), r2.join().unwrap())
    });
    assert_eq!(statuses, (200, 200));

    let ready = wait_ready(addr, "recovery", |r| {
        counter(r, "workers_busy") == 0 && counter(r, "queue_depth") == 0
    });
    assert_eq!(counter(&ready, "shed"), 1);
    assert_eq!(counter(&ready, "write_errors"), 0, "dropped connections");
    assert_eq!(counter(&ready, "workers_alive"), 1);

    assert_eq!(post(addr, "/shutdown", "").status, 200);
    server.join();
}

/// Synthetic solver-level failures injected at the solve site surface as
/// per-scenario typed errors, not 500s — and don't poison the cache.
#[test]
fn injected_solver_failures_stay_typed_and_uncached() {
    let guard = FaultPlan::new()
        .fail(sites::SERVE_SOLVE, 0, FaultAction::NoConverge)
        .install();

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 8,
        cache_entries: 16,
        session_floor: 1,
    })
    .unwrap();
    let addr = server.addr();

    // Solve ordinal 0 fails with the injected non-convergence: typed 422.
    let r = post(addr, "/analyze", &analyze_body(1000.0, None));
    assert_eq!(r.status, 422, "body: {}", r.body);
    assert!(
        r.body.contains("\"code\":\"engine.no-convergence\""),
        "{}",
        r.body
    );

    // Failures are not cached: the retry (solve ordinal 1, unarmed) works.
    let r = post(addr, "/analyze", &analyze_body(1000.0, None));
    assert_eq!(r.status, 200, "body: {}", r.body);
    let ready = get(addr, "/readyz");
    assert_eq!(counter(&ready, "cache_entries"), 1);

    assert_eq!(post(addr, "/shutdown", "").status, 200);
    server.join();
    drop(guard);
}
