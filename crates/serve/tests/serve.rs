//! End-to-end tests of the daemon over real sockets: routing, typed
//! failure statuses, shedding, caching, graceful drain, and byte-identity
//! of responses with an in-process [`Campaign`].

mod common;

use common::{counter, get, post, post_spice};
use std::net::TcpStream;
use tranvar::circuit::CircuitOverride;
use tranvar::core::{Campaign, Metric, MetricSpec, PssConfig, Scenario};
use tranvar::pss::PssOptions;
use tranvar_serve::{body_from_campaign, deck, Server, ServerConfig};

fn start(workers: usize, queue_depth: usize) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_depth,
        cache_entries: 16,
        session_floor: 1,
    })
    .expect("server must bind")
}

const ANALYZE: &str = r#"{
    "deck": "divider",
    "period": 1e-6,
    "n_steps": 16,
    "metrics": [{"name": "vout", "kind": "dc-average", "node": "b"}],
    "scenarios": [
        {"name": "nominal"},
        {"name": "sigma2", "overrides": [{"kind": "sigma-scale", "factor": 2.0}]},
        {"name": "hot", "overrides": [{"kind": "resistance", "device": "R1", "ohms": 1100.0}]}
    ]
}"#;

#[test]
fn health_routes_and_unknown_paths() {
    let server = start(1, 8);
    let addr = server.addr();

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");

    let ready = get(addr, "/readyz");
    assert_eq!(ready.status, 200);
    assert!(ready.body.contains("\"status\":\"ready\""));
    assert_eq!(counter(&ready, "workers_alive"), 1);
    assert_eq!(counter(&ready, "queue_capacity"), 8);

    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(get(addr, "/analyze").status, 405);

    server.shutdown();
    server.join();
}

#[test]
fn analyze_is_byte_identical_to_in_process_campaign_for_any_worker_count() {
    // The in-process oracle: the same deck, config, metrics and scenarios
    // through Campaign::run, rendered by the same serializer.
    let ckt = deck::build("divider").unwrap();
    let r1 = ckt.find_device("R1").unwrap();
    let b = ckt.find_node("b").unwrap();
    let mut opts = PssOptions::default();
    opts.n_steps = 16;
    let campaign = Campaign::new(
        PssConfig::Driven { period: 1e-6, opts },
        vec![MetricSpec::new("vout", Metric::DcAverage { node: b })],
    );
    let scenarios = [
        Scenario {
            name: "nominal".into(),
            overrides: vec![],
        },
        Scenario {
            name: "sigma2".into(),
            overrides: vec![CircuitOverride::SigmaScale { factor: 2.0 }],
        },
        Scenario {
            name: "hot".into(),
            overrides: vec![CircuitOverride::Resistance {
                device: r1,
                ohms: 1100.0,
            }],
        },
    ];
    let oracle = campaign.run(&ckt, &scenarios).unwrap();
    assert_eq!(oracle.n_unique_solves, 2); // sigma2 shares nominal's solve
    let (oracle_status, oracle_body) = body_from_campaign("divider", &oracle);
    assert_eq!(oracle_status, 200);

    for workers in [1, 4] {
        let server = start(workers, 16);
        let addr = server.addr();

        // Cold: every unique solve is a cache miss.
        let cold = post(addr, "/analyze", ANALYZE);
        assert_eq!(cold.status, 200, "body: {}", cold.body);
        assert_eq!(cold.body, oracle_body, "workers={workers}");
        assert_eq!(cold.header("x-tranvar-cache-hits"), Some("0"));
        assert_eq!(cold.header("x-tranvar-cache-misses"), Some("2"));

        // Warm: the σ-only variant and the re-poll hit the cache; the body
        // must not change by a byte.
        let warm = post(addr, "/analyze", ANALYZE);
        assert_eq!(warm.body, oracle_body);
        assert_eq!(warm.header("x-tranvar-cache-hits"), Some("2"));
        assert_eq!(warm.header("x-tranvar-cache-misses"), Some("0"));

        server.shutdown();
        server.join();
    }
}

/// A raw SPICE deck equivalent to the built-in divider testbench, with a
/// σ-doubling sweep so the response carries two scenarios off one solve.
const SPICE: &str = "served divider\n\
    V1 a 0 2.0\n\
    R1 a b 1e3\n\
    R2 b 0 1e3\n\
    C1 b 0 1p\n\
    .sigma r R* sigma=10.0\n\
    .sweep sigma 1.0 2.0\n\
    .pss 1u steps=16\n\
    .measure vout avg b\n\
    .end\n";

#[test]
fn raw_spice_decks_are_served_end_to_end() {
    // The in-process oracle: elaborate the same text, run the campaign,
    // render through the shared serializer. The daemon must match it
    // byte-for-byte under the deck's content-addressed name.
    let e = tranvar::netlist::parse_and_elaborate(SPICE).unwrap();
    let config = e.analysis.as_ref().unwrap().pss_config().unwrap();
    let oracle = Campaign::new(config, e.metrics.clone())
        .run(&e.circuit, &e.scenarios)
        .unwrap();
    assert_eq!(oracle.n_unique_solves, 1); // the σ sweep shares one solve
    let name = tranvar_serve::deck::spice_name(SPICE);
    let (oracle_status, oracle_body) = body_from_campaign(&name, &oracle);
    assert_eq!(oracle_status, 200);

    let server = start(2, 8);
    let addr = server.addr();

    let cold = post_spice(addr, "/analyze", SPICE);
    assert_eq!(cold.status, 200, "body: {}", cold.body);
    assert_eq!(cold.body, oracle_body);
    assert_eq!(cold.header("x-tranvar-cache-misses"), Some("1"));

    // Re-posting the identical text hits the content-addressed cache.
    let warm = post_spice(addr, "/analyze", SPICE);
    assert_eq!(warm.body, oracle_body);
    assert_eq!(warm.header("x-tranvar-cache-hits"), Some("1"));

    server.shutdown();
    server.join();
}

#[test]
fn malformed_spice_decks_get_spanned_422s() {
    let server = start(1, 8);
    let addr = server.addr();

    // An elaboration failure: the typed netlist code, 422, and the line.
    let r = post_spice(addr, "/analyze", &SPICE.replace("1e3", "'r0'"));
    assert_eq!(r.status, 422, "body: {}", r.body);
    assert!(
        r.body.contains("\"code\":\"netlist.undefined-param\""),
        "{}",
        r.body
    );
    assert!(r.body.contains("line 3"), "{}", r.body);

    // A lex failure: still typed, still 422.
    let r = post_spice(addr, "/analyze", "t\nR1 a b 'oops\n.end\n");
    assert_eq!(r.status, 422);
    assert!(r.body.contains("\"code\":\"netlist.syntax\""), "{}", r.body);

    // A deck with nothing to serve.
    let r = post_spice(addr, "/analyze", &SPICE.replace(".pss 1u steps=16\n", ""));
    assert_eq!(r.status, 422);
    assert!(
        r.body.contains("\"code\":\"serve.unservable-deck\""),
        "{}",
        r.body
    );

    // Without the content type, the same bytes are JSON — and rejected
    // as such, proving the dispatch is header-driven.
    let r = post(addr, "/analyze", SPICE);
    assert_eq!(r.status, 400);
    assert!(
        r.body.contains("\"code\":\"serve.bad-request\""),
        "{}",
        r.body
    );

    server.shutdown();
    server.join();
}

#[test]
fn bad_requests_get_typed_400s() {
    let server = start(1, 8);
    let addr = server.addr();

    let r = post(addr, "/analyze", "{not json");
    assert_eq!(r.status, 400);
    assert!(
        r.body.contains("\"code\":\"serve.bad-request\""),
        "{}",
        r.body
    );

    let r = post(addr, "/analyze", &ANALYZE.replace("divider", "mystery"));
    assert_eq!(r.status, 400);
    assert!(
        r.body.contains("\"code\":\"serve.unknown-deck\""),
        "{}",
        r.body
    );

    let r = post(
        addr,
        "/analyze",
        &ANALYZE.replace("\"node\": \"b\"", "\"node\": \"zz\""),
    );
    assert_eq!(r.status, 400);
    assert!(
        r.body.contains("\"code\":\"circuit.unknown-node\""),
        "{}",
        r.body
    );

    server.shutdown();
    server.join();
}

#[test]
fn scenario_failures_carry_typed_codes_and_drive_overall_status() {
    let server = start(2, 8);
    let addr = server.addr();

    // A negative resistance passes request validation (it names a real
    // device) but fails the solve-time revalue — a per-scenario typed 400
    // alongside a healthy scenario.
    let body = ANALYZE.replace("1100.0", "-5.0");
    let r = post(addr, "/analyze", &body);
    assert_eq!(r.status, 400, "body: {}", r.body);
    assert!(
        r.body.contains("\"name\":\"nominal\",\"status\":\"ok\""),
        "{}",
        r.body
    );
    assert!(
        r.body.contains("\"code\":\"circuit.invalid-parameter\""),
        "{}",
        r.body
    );

    server.shutdown();
    server.join();
}

#[test]
fn full_queue_sheds_with_retry_after() {
    // Capacity 0 makes every admission shed deterministically.
    let server = start(1, 0);
    let addr = server.addr();

    let r = post(addr, "/analyze", ANALYZE);
    assert_eq!(r.status, 429);
    assert!(r.body.contains("\"code\":\"serve.shed\""), "{}", r.body);
    let retry_after: u64 = r
        .header("retry-after")
        .expect("shed must carry Retry-After")
        .parse()
        .unwrap();
    assert!(retry_after >= 1);

    let ready = get(addr, "/readyz");
    assert_eq!(counter(&ready, "shed"), 1);
    assert_eq!(counter(&ready, "accepted"), 0);

    server.shutdown();
    server.join();
}

#[test]
fn graceful_drain_finishes_queued_work_and_exits() {
    let server = start(2, 16);
    let addr = server.addr();

    // Some real work first, so the drain has completed responses behind it.
    assert_eq!(post(addr, "/analyze", ANALYZE).status, 200);

    let bye = post(addr, "/shutdown", "");
    assert_eq!(bye.status, 200);
    assert!(bye.body.contains("draining"));

    let completed = server.join();
    assert!(
        completed >= 2,
        "analyze + shutdown responses, got {completed}"
    );

    // The listener is gone: new connections are refused (or reset).
    assert!(
        TcpStream::connect(addr).is_err() || get_safely(addr).is_none(),
        "daemon still serving after drain"
    );
}

/// A connect that tolerates the post-drain race: returns None when the
/// socket is dead.
fn get_safely(addr: std::net::SocketAddr) -> Option<u16> {
    use std::io::{Read, Write};
    let mut s = TcpStream::connect(addr).ok()?;
    s.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .ok()?;
    let mut buf = String::new();
    s.read_to_string(&mut buf).ok()?;
    buf.split_whitespace().nth(1)?.parse().ok()
}
