//! Minimal blocking HTTP client for the serve integration tests.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response.
pub struct Reply {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl Reply {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request and reads the full response (the daemon always
/// answers `Connection: close`, so EOF frames the body).
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Reply {
    request_typed(addr, method, path, None, body)
}

/// Like [`request`], with an explicit `Content-Type` header.
pub fn request_typed(
    addr: SocketAddr,
    method: &str,
    path: &str,
    content_type: Option<&str>,
    body: &str,
) -> Reply {
    let mut s = TcpStream::connect(addr).expect("connect to daemon");
    let ct = content_type.map_or(String::new(), |t| format!("content-type: {t}\r\n"));
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\n{ct}content-length: {}\r\n\r\n",
        body.len()
    );
    s.write_all(head.as_bytes()).unwrap();
    s.write_all(body.as_bytes()).unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    parse_reply(&raw)
}

pub fn get(addr: SocketAddr, path: &str) -> Reply {
    request(addr, "GET", path, "")
}

pub fn post(addr: SocketAddr, path: &str, body: &str) -> Reply {
    request(addr, "POST", path, body)
}

/// POSTs a raw SPICE deck (`Content-Type: text/x-spice`).
#[allow(dead_code)] // not every test binary posts decks
pub fn post_spice(addr: SocketAddr, path: &str, deck: &str) -> Reply {
    request_typed(addr, "POST", path, Some("text/x-spice"), deck)
}

fn parse_reply(raw: &str) -> Reply {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .expect("response must have a header/body split");
    let mut lines = head.lines();
    let status = lines
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Reply {
        status,
        headers,
        body: body.to_string(),
    }
}

/// A readyz counter (all counters are JSON integers on the wire).
pub fn counter(reply: &Reply, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = reply
        .body
        .find(&needle)
        .unwrap_or_else(|| panic!("readyz body missing {key}: {}", reply.body));
    let rest = &reply.body[at + needle.len()..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated {key}"));
    rest[..end]
        .trim()
        .parse::<f64>()
        .unwrap_or_else(|_| panic!("non-numeric {key}")) as u64
}
