//! Linear-solver selection and Jacobian construction shared by all analyses.
//!
//! Circuit Jacobians are assembled as sparse triplets; depending on
//! [`SolverKind`] they are factored densely (fast and simple for the
//! paper-scale benchmarks, tens of unknowns) or with the sparse
//! Gilbert–Peierls kernel (larger substrates such as long RC ladders and wide
//! ring oscillators). Both paths share one interface so the PSS/LPTV layers
//! can cache per-timestep factorizations regardless of backend.

use tranvar_circuit::Assembly;
use tranvar_num::{Csc, DMat, Lu, NumError, SparseLu, Triplets};

/// Which linear-algebra backend factors the MNA Jacobians.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Dense LU with partial pivoting (default; ideal below ~300 unknowns).
    #[default]
    Dense,
    /// Sparse left-looking LU (for larger circuits).
    Sparse,
}

/// A factored Jacobian, solvable for many right-hand sides.
#[derive(Clone, Debug)]
pub enum FactoredJacobian {
    /// Dense factorization.
    Dense(Lu<f64>),
    /// Sparse factorization.
    Sparse(SparseLu<f64>),
}

impl FactoredJacobian {
    /// Factors `alpha_g·G + alpha_c·C (+ gmin on node diagonals)`.
    ///
    /// `n_node_unknowns` bounds the rows that receive the `gmin` diagonal
    /// (branch-current rows must not be regularized).
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix errors from the factorization.
    pub fn factor(
        kind: SolverKind,
        asm: &Assembly,
        alpha_g: f64,
        alpha_c: f64,
        gmin: f64,
        n_node_unknowns: usize,
    ) -> Result<Self, NumError> {
        let csc = combine(asm, alpha_g, alpha_c, gmin, n_node_unknowns);
        match kind {
            SolverKind::Dense => Ok(FactoredJacobian::Dense(csc.to_dense().lu()?)),
            SolverKind::Sparse => Ok(FactoredJacobian::Sparse(csc.lu()?)),
        }
    }

    /// Solves `J·x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        match self {
            FactoredJacobian::Dense(lu) => lu.solve(b),
            FactoredJacobian::Sparse(lu) => lu.solve(b),
        }
    }

    /// System dimension.
    pub fn n(&self) -> usize {
        match self {
            FactoredJacobian::Dense(lu) => lu.n(),
            FactoredJacobian::Sparse(lu) => lu.n(),
        }
    }
}

/// Builds `alpha_g·G + alpha_c·C (+ gmin·I on node rows)` as CSC.
pub fn combine(
    asm: &Assembly,
    alpha_g: f64,
    alpha_c: f64,
    gmin: f64,
    n_node_unknowns: usize,
) -> Csc<f64> {
    let mut t = Triplets::new(asm.n, asm.n);
    if alpha_g != 0.0 {
        for &(r, c, v) in asm.g.iter() {
            t.push(r, c, alpha_g * v);
        }
    }
    if alpha_c != 0.0 {
        for &(r, c, v) in asm.c.iter() {
            t.push(r, c, alpha_c * v);
        }
    }
    if gmin != 0.0 {
        for i in 0..n_node_unknowns.min(asm.n) {
            t.push(i, i, gmin);
        }
    }
    t.to_csc()
}

/// Builds the same combination densely (monodromy assembly).
pub fn combine_dense(
    asm: &Assembly,
    alpha_g: f64,
    alpha_c: f64,
    gmin: f64,
    n_node_unknowns: usize,
) -> DMat<f64> {
    combine(asm, alpha_g, alpha_c, gmin, n_node_unknowns).to_dense()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::{Circuit, NodeId, Waveform};

    fn rc() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
        ckt
    }

    #[test]
    fn dense_and_sparse_agree() {
        let ckt = rc();
        let x = vec![1.0, 0.3, -7e-4];
        let asm = ckt.assemble(&x, 0.0);
        let nn = ckt.n_nodes() - 1;
        let b = vec![1.0, -2.0, 0.5];
        let xd = FactoredJacobian::factor(SolverKind::Dense, &asm, 1.0, 1e9, 1e-12, nn)
            .unwrap()
            .solve(&b);
        let xs = FactoredJacobian::factor(SolverKind::Sparse, &asm, 1.0, 1e9, 1e-12, nn)
            .unwrap()
            .solve(&b);
        for (u, v) in xd.iter().zip(xs.iter()) {
            assert!((u - v).abs() < 1e-9 * u.abs().max(1.0));
        }
    }

    #[test]
    fn gmin_applies_to_node_rows_only() {
        let ckt = rc();
        let x = vec![0.0; 3];
        let asm = ckt.assemble(&x, 0.0);
        let nn = ckt.n_nodes() - 1;
        let m = combine_dense(&asm, 0.0, 0.0, 1e-3, nn);
        assert_eq!(m[(0, 0)], 1e-3);
        assert_eq!(m[(1, 1)], 1e-3);
        assert_eq!(m[(2, 2)], 0.0); // branch row untouched
    }
}
