//! Linear-solver selection and Jacobian construction shared by all analyses.
//!
//! Circuit Jacobians are assembled as sparse triplets; depending on
//! [`SolverKind`] they are factored densely (fast and simple for the
//! paper-scale benchmarks, tens of unknowns) or with the sparse
//! Gilbert–Peierls kernel (larger substrates such as long RC ladders and wide
//! ring oscillators). Both paths share one interface so the PSS/LPTV layers
//! can cache per-timestep factorizations regardless of backend.
//!
//! # Choosing a backend
//!
//! The MNA pattern of a circuit is *fixed*: every timestep restamps the same
//! coordinates. [`JacobianWorkspace`] exploits that by caching the sparsity
//! structure, the symbolic elimination order, and every staging allocation
//! across factorizations, so per-timestep factors cost only the numeric
//! work. Heuristics for [`SolverKind`]:
//!
//! - **Dense** (default): best below [`SPARSE_CROSSOVER_N`] unknowns — the
//!   dense kernel has no indexing overhead, vectorizes, and the blocked
//!   [`FactoredJacobian::solve_multi`] amortizes each factor row over a
//!   whole block of right-hand sides. All paper benchmark circuits are in
//!   this regime.
//! - **Sparse**: the natural-column-order sparse backend; keeps bit-compat
//!   replay semantics and wins when the Jacobian is large *and* sparse —
//!   factor cost scales with fill-in rather than n³, and the symbolic split
//!   means the pivot search is paid once per circuit rather than once per
//!   timestep.
//! - **SparseOrdered**: sparse with a Markowitz fill-reducing pivot order;
//!   the least fill-in and the fastest replayed factorizations on ladder/
//!   mesh-like substrates. [`SolverKind::auto_for`] encodes the measured
//!   crossover.
//!
//! Wide multi-RHS solves (sensitivity and LPTV batches) should go through
//! [`FactoredJacobian::solve_multi_lanes`], which dispatches to
//! compile-time-width lane kernels and returns bit-for-bit the same results
//! as the runtime-width interleaved path.

use tranvar_circuit::Assembly;
use tranvar_num::{lanes_scratch_len, Csc, DMat, Lu, NumError, SparseLu, SparseSymbolic, Triplets};

/// Dense/sparse crossover for [`SolverKind::auto_for`]: measured with the
/// `lu_kernels` bench (steady-state refactor + multi-RHS lane solve on
/// MNA-like ladder patterns), the flattened sparse backend with a replayed
/// Markowitz ordering overtakes the dense kernel from this many unknowns —
/// ~1.7× ahead at n = 32 and two orders of magnitude at n = 192. The
/// one-off O(n³) ordering analysis is excluded: it is paid once per
/// sparsity pattern and amortized by [`JacobianWorkspace`] replays.
pub const SPARSE_CROSSOVER_N: usize = 32;

/// Density above which a matrix at the crossover size is treated as dense
/// regardless of dimension (fill-in would make the sparse factors no
/// cheaper than the dense ones).
const DENSE_FILL_FRACTION: f64 = 0.25;

/// Which linear-algebra backend factors the MNA Jacobians.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Dense LU with partial pivoting (default; ideal for the paper-scale
    /// benchmark circuits, below [`SPARSE_CROSSOVER_N`] unknowns).
    #[default]
    Dense,
    /// Sparse left-looking LU in natural column order (bit-compat replay
    /// path for larger circuits).
    Sparse,
    /// Sparse LU with a Markowitz fill-reducing pivot ordering (threshold
    /// pivoting). Lowest fill-in and fastest replays on large sparse
    /// substrates; solutions agree with [`SolverKind::Sparse`] to machine
    /// precision but not bit-for-bit.
    SparseOrdered,
}

impl SolverKind {
    /// Picks a backend from the system dimension and stamp count:
    /// [`SolverKind::Dense`] below [`SPARSE_CROSSOVER_N`] unknowns or when
    /// the matrix is too full to profit from sparsity, otherwise
    /// [`SolverKind::SparseOrdered`].
    pub fn auto_for(n: usize, nnz: usize) -> SolverKind {
        if n < SPARSE_CROSSOVER_N {
            return SolverKind::Dense;
        }
        let density = nnz as f64 / (n as f64 * n as f64);
        if density > DENSE_FILL_FRACTION {
            SolverKind::Dense
        } else {
            SolverKind::SparseOrdered
        }
    }
}

/// A factored Jacobian, solvable for many right-hand sides.
#[derive(Clone, Debug)]
pub enum FactoredJacobian {
    /// Dense factorization.
    Dense(Lu<f64>),
    /// Sparse factorization.
    Sparse(SparseLu<f64>),
}

impl FactoredJacobian {
    /// Factors `alpha_g·G + alpha_c·C (+ gmin on node diagonals)`.
    ///
    /// `n_node_unknowns` bounds the rows that receive the `gmin` diagonal
    /// (branch-current rows must not be regularized).
    ///
    /// For repeated factorizations of the same circuit prefer
    /// [`JacobianWorkspace`], which reuses the pattern analysis and staging
    /// buffers.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix errors from the factorization.
    pub fn factor(
        kind: SolverKind,
        asm: &Assembly,
        alpha_g: f64,
        alpha_c: f64,
        gmin: f64,
        n_node_unknowns: usize,
    ) -> Result<Self, NumError> {
        let csc = combine(asm, alpha_g, alpha_c, gmin, n_node_unknowns);
        match kind {
            SolverKind::Dense => Ok(FactoredJacobian::Dense(csc.to_dense().lu()?)),
            SolverKind::Sparse => Ok(FactoredJacobian::Sparse(csc.lu()?)),
            SolverKind::SparseOrdered => Ok(FactoredJacobian::Sparse(csc.lu_markowitz()?)),
        }
    }

    /// Solves `J·x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        match self {
            FactoredJacobian::Dense(lu) => lu.solve(b),
            FactoredJacobian::Sparse(lu) => lu.solve(b),
        }
    }

    /// Solves `J·x = b` into `out` with zero heap allocation; `scratch`
    /// must have length `self.n()` (used by the sparse backend, ignored by
    /// the dense one).
    pub fn solve_into(&self, b: &[f64], out: &mut [f64], scratch: &mut [f64]) {
        match self {
            FactoredJacobian::Dense(lu) => lu.solve_into(b, out),
            FactoredJacobian::Sparse(lu) => lu.solve_into(b, out, scratch),
        }
    }

    /// Solves `J·X = B` for a column-major block of `n_rhs` right-hand
    /// sides in place (`block[r + n·k]` is row `r` of RHS `k`); `scratch`
    /// must have length `self.n() * n_rhs`.
    ///
    /// The blocked sweeps read each factor row/column once per block rather
    /// than once per RHS, and per-column results are bit-for-bit identical
    /// to [`FactoredJacobian::solve`].
    pub fn solve_multi(&self, block: &mut [f64], n_rhs: usize, scratch: &mut [f64]) {
        if n_rhs == 0 {
            return;
        }
        match self {
            FactoredJacobian::Dense(lu) => {
                let n = lu.n();
                lu.solve_multi(block, n_rhs, &mut scratch[..n]);
            }
            FactoredJacobian::Sparse(lu) => lu.solve_multi(block, n_rhs, scratch),
        }
    }

    /// Solves `J·X = B` for an *interleaved* block of `n_rhs` right-hand
    /// sides in place (`block[r·n_rhs + k]` is row `r` of RHS `k`);
    /// `scratch` must have length `self.n() * n_rhs`.
    ///
    /// The interleaved layout turns every factor entry into a contiguous
    /// `n_rhs`-wide axpy — the fastest shape when the system is small and
    /// the batch is wide (tens of unknowns × tens of parameters). Per-RHS
    /// results are bit-for-bit identical to [`FactoredJacobian::solve`].
    /// Prefer [`FactoredJacobian::solve_multi_lanes`], whose compile-time
    /// lane kernels produce the same bits faster.
    ///
    /// Scratch contract: `scratch` must be a full `self.n() * n_rhs` shadow
    /// of the block (both backends stage through it); a shorter slice would
    /// read stale or out-of-range rows.
    pub fn solve_multi_interleaved(&self, block: &mut [f64], n_rhs: usize, scratch: &mut [f64]) {
        debug_assert!(
            scratch.len() >= self.n() * n_rhs,
            "interleaved scratch must cover the whole block"
        );
        match self {
            FactoredJacobian::Dense(lu) => lu.solve_multi_interleaved(block, n_rhs, scratch),
            FactoredJacobian::Sparse(lu) => lu.solve_multi_interleaved(block, n_rhs, scratch),
        }
    }

    /// Solves an RHS-interleaved block through the compile-time lane kernels
    /// (`solve_arr`), decomposing `n_rhs` into supported lane widths.
    ///
    /// `scratch` must hold at least
    /// [`tranvar_num::lanes_scratch_len`]`(self.n(), n_rhs)` elements — size
    /// caller buffers with that helper. Per-RHS results are bit-for-bit
    /// identical to [`FactoredJacobian::solve_multi_interleaved`] and
    /// [`FactoredJacobian::solve`].
    pub fn solve_multi_lanes(&self, block: &mut [f64], n_rhs: usize, scratch: &mut [f64]) {
        debug_assert!(
            scratch.len() >= lanes_scratch_len(self.n(), n_rhs),
            "lane scratch shorter than lanes_scratch_len"
        );
        match self {
            FactoredJacobian::Dense(lu) => lu.solve_multi_lanes(block, n_rhs, scratch),
            FactoredJacobian::Sparse(lu) => lu.solve_multi_lanes(block, n_rhs, scratch),
        }
    }

    /// Solves `J·X = B` for an `N`-lane RHS block in place (`block[i]` is
    /// row `i` of all `N` right-hand sides); `scratch` must hold `self.n()`
    /// lane blocks. Per-RHS results are bit-for-bit identical to
    /// [`FactoredJacobian::solve`].
    pub fn solve_arr<const N: usize>(&self, block: &mut [[f64; N]], scratch: &mut [[f64; N]]) {
        match self {
            FactoredJacobian::Dense(lu) => lu.solve_arr(block, scratch),
            FactoredJacobian::Sparse(lu) => lu.solve_arr(block, scratch),
        }
    }

    /// System dimension.
    pub fn n(&self) -> usize {
        match self {
            FactoredJacobian::Dense(lu) => lu.n(),
            FactoredJacobian::Sparse(lu) => lu.n(),
        }
    }
}

/// Reusable staging for repeated [`combine`]-style builds with a fixed
/// pattern: the triplet buffer is refilled in place and the CSC values are
/// updated without re-sorting (per-timestep coupling-matrix hot path).
#[derive(Debug)]
pub struct CombineStage {
    tr: Triplets<f64>,
    csc: Option<Csc<f64>>,
}

impl Default for CombineStage {
    fn default() -> Self {
        Self::new()
    }
}

impl CombineStage {
    /// Creates an empty stage.
    pub fn new() -> Self {
        CombineStage {
            tr: Triplets::new(0, 0),
            csc: None,
        }
    }

    /// Builds `alpha_g·G + alpha_c·C (+ gmin·I on node rows)` into the
    /// staged storage and returns a borrow of it. Equivalent to [`combine`]
    /// but allocation-free after the first same-pattern call.
    pub fn combine(
        &mut self,
        asm: &Assembly,
        alpha_g: f64,
        alpha_c: f64,
        gmin: f64,
        n_node_unknowns: usize,
    ) -> &Csc<f64> {
        combine_into(
            asm,
            alpha_g,
            alpha_c,
            gmin,
            n_node_unknowns,
            &mut self.tr,
            &mut self.csc,
        );
        self.csc.as_ref().expect("staged combine")
    }
}

/// Counters describing how much structural work a [`JacobianWorkspace`] has
/// actually performed — the observable behind the session layer's claim that
/// repeated solves replay one cached analysis instead of re-running it.
///
/// The counters distinguish the three cost tiers of a factorization:
///
/// - `pattern_builds`: the sparsity structure had to be (re)built — staging
///   a fresh CSC pattern (sparse) or (re)allocating the dense storage. Paid
///   once per distinct MNA pattern the workspace ever sees.
/// - `symbolic_analyses`: a full *analyzing* factorization ran — the sparse
///   pivot search, or the first dense factorization into fresh storage.
///   A warm workspace replays this analysis instead of repeating it.
/// - `numeric_factorizations`: value-level factorizations, including
///   replays; value-identical repeats are deduplicated and not counted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Sparsity-pattern (re)builds (once per distinct MNA pattern).
    pub pattern_builds: usize,
    /// Fresh analyzing factorizations (pivot search / storage build).
    pub symbolic_analyses: usize,
    /// Numeric factorizations actually performed (replays included,
    /// value-identical repeats deduplicated).
    pub numeric_factorizations: usize,
}

impl SolverStats {
    /// Component-wise sum of two counter sets.
    pub fn merged(self, other: SolverStats) -> SolverStats {
        SolverStats {
            pattern_builds: self.pattern_builds + other.pattern_builds,
            symbolic_analyses: self.symbolic_analyses + other.symbolic_analyses,
            numeric_factorizations: self.numeric_factorizations + other.numeric_factorizations,
        }
    }
}

/// Reusable factorization state for the per-timestep hot loops.
///
/// A circuit's MNA sparsity pattern never changes between timesteps or
/// Newton iterations, so this workspace:
///
/// - keeps the [`Triplets`]/[`Csc`] staging buffers alive and refills their
///   *values* in place,
/// - for the sparse backend, performs the symbolic pivot analysis once and
///   replays it on every subsequent factorization
///   ([`SparseLu::refactor`] / [`Csc::lu_with`]), falling back to a fresh
///   pivot search only if a replayed pivot goes numerically bad,
/// - for the dense backend, refactors into the same storage
///   ([`Lu::refactor`]) without cloning the matrix.
///
/// Use [`JacobianWorkspace::factor`] when the factor is consumed
/// immediately (Newton loops) and [`JacobianWorkspace::factor_owned`] when
/// the factor must be stored (PSS/LPTV step records, sensitivity windows).
#[derive(Debug)]
pub struct JacobianWorkspace {
    kind: SolverKind,
    tr: Triplets<f64>,
    csc: Option<Csc<f64>>,
    symbolic: Option<SparseSymbolic>,
    dense: Option<DMat<f64>>,
    cached: Option<FactoredJacobian>,
    /// Snapshot of the values the cached factorization was computed from.
    /// A step's accepted-point Jacobian and the next step's warm-started
    /// first Newton Jacobian share the same `G`/`C`, so the comparison
    /// routinely deduplicates one numeric factorization per timestep.
    snapshot: Vec<f64>,
    stats: SolverStats,
}

impl JacobianWorkspace {
    /// Creates an empty workspace for the given backend.
    pub fn new(kind: SolverKind) -> Self {
        JacobianWorkspace {
            kind,
            tr: Triplets::new(0, 0),
            csc: None,
            symbolic: None,
            dense: None,
            cached: None,
            snapshot: Vec::new(),
            stats: SolverStats::default(),
        }
    }

    /// The backend this workspace factors with.
    pub fn kind(&self) -> SolverKind {
        self.kind
    }

    /// Structural-work counters accumulated since creation.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Rebuilds the staged CSC values for the combination
    /// `alpha_g·G + alpha_c·C + gmin·I(node rows)`. Returns `true` if the
    /// pattern had to be rebuilt (first call or stamp-pattern change).
    fn stage_csc(
        &mut self,
        asm: &Assembly,
        alpha_g: f64,
        alpha_c: f64,
        gmin: f64,
        n_node_unknowns: usize,
    ) -> bool {
        fill_combined_triplets(&mut self.tr, asm, alpha_g, alpha_c, gmin, n_node_unknowns);
        if let Some(csc) = self.csc.as_mut() {
            if csc.refill_from(&self.tr).is_ok() {
                return false;
            }
        }
        self.csc = Some(self.tr.to_csc());
        true
    }

    /// Factors the combined Jacobian, reusing the cached structure and
    /// storage; returns a borrow of the cached factorization.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix errors.
    pub fn factor(
        &mut self,
        asm: &Assembly,
        alpha_g: f64,
        alpha_c: f64,
        gmin: f64,
        n_node_unknowns: usize,
    ) -> Result<&FactoredJacobian, NumError> {
        // Deterministic fault injection (no-op without the `fault-inject`
        // feature): lets tests force a singular/non-finite factorization at
        // an exact call ordinal.
        if let Some(e) = crate::fault::numeric_fault(crate::fault::sites::FACTOR) {
            return Err(e);
        }
        match self.kind {
            SolverKind::Dense => {
                if self.dense.as_ref().map(|d| d.rows()) != Some(asm.n) {
                    self.dense = None;
                    self.stats.pattern_builds += 1;
                }
                let dense = self.dense.get_or_insert_with(|| DMat::zeros(asm.n, asm.n));
                fill_combined_dense(dense, asm, alpha_g, alpha_c, gmin, n_node_unknowns);
                // When the values are unchanged the cached factorization is
                // exact (the warm-started first Newton iteration of a step
                // repeats the previous accepted-point Jacobian).
                let unchanged = self.cached.is_some() && self.snapshot == dense.as_slice();
                if !unchanged {
                    self.snapshot.clear();
                    self.snapshot.extend_from_slice(dense.as_slice());
                    self.stats.numeric_factorizations += 1;
                    match self.cached.as_mut() {
                        Some(FactoredJacobian::Dense(lu)) if lu.n() == asm.n => {
                            lu.refactor(dense)?
                        }
                        _ => {
                            self.stats.symbolic_analyses += 1;
                            self.cached = Some(FactoredJacobian::Dense(dense.clone().lu()?));
                        }
                    }
                }
            }
            SolverKind::Sparse | SolverKind::SparseOrdered => {
                let rebuilt = self.stage_csc(asm, alpha_g, alpha_c, gmin, n_node_unknowns);
                if rebuilt {
                    self.stats.pattern_builds += 1;
                }
                let Some(csc) = self.csc.as_ref() else {
                    return Err(NumError::Internal {
                        what: "csc staging missing after stage_csc",
                    });
                };
                let unchanged = !rebuilt && self.cached.is_some() && self.snapshot == csc.values();
                if !unchanged {
                    self.snapshot.clear();
                    self.snapshot.extend_from_slice(csc.values());
                    self.stats.numeric_factorizations += 1;
                    let refactored = match self.cached.as_mut() {
                        Some(FactoredJacobian::Sparse(lu)) if !rebuilt => lu.refactor(csc).is_ok(),
                        _ => false,
                    };
                    if !refactored {
                        // First factorization, pattern change, or stale
                        // pivots: run the analyzing factorization and
                        // refresh the symbolic record. The ordered backend
                        // analyzes with the Markowitz fill-reducing order;
                        // subsequent refactorizations replay it.
                        self.stats.symbolic_analyses += 1;
                        let lu = if self.kind == SolverKind::SparseOrdered {
                            csc.lu_markowitz()?
                        } else {
                            csc.lu()?
                        };
                        self.symbolic = Some(lu.symbolic());
                        self.cached = Some(FactoredJacobian::Sparse(lu));
                    }
                }
            }
        }
        self.cached.as_ref().ok_or(NumError::Internal {
            what: "factorization cache empty after factoring",
        })
    }

    /// Factors the combined Jacobian into an *owned* value (for step
    /// records that outlive the workspace), still reusing the staged
    /// structure and — for the sparse backend — the symbolic pivot order.
    ///
    /// # Errors
    ///
    /// Propagates singular-matrix errors.
    pub fn factor_owned(
        &mut self,
        asm: &Assembly,
        alpha_g: f64,
        alpha_c: f64,
        gmin: f64,
        n_node_unknowns: usize,
    ) -> Result<FactoredJacobian, NumError> {
        // One staging/replay implementation: the cached path does the work,
        // the owned copy is a memcpy of the factors — and the cache then
        // also serves a subsequent same-values `factor` call for free.
        Ok(self
            .factor(asm, alpha_g, alpha_c, gmin, n_node_unknowns)?
            .clone())
    }
}

/// Fills `tr` with `alpha_g·G + alpha_c·C (+ gmin·I on node rows)` triplets,
/// retaining its allocation.
fn fill_combined_triplets(
    tr: &mut Triplets<f64>,
    asm: &Assembly,
    alpha_g: f64,
    alpha_c: f64,
    gmin: f64,
    n_node_unknowns: usize,
) {
    if tr.rows() != asm.n || tr.cols() != asm.n {
        *tr = Triplets::new(asm.n, asm.n);
    }
    tr.clear();
    if alpha_g != 0.0 {
        for &(r, c, v) in asm.g.iter() {
            tr.push(r, c, alpha_g * v);
        }
    }
    if alpha_c != 0.0 {
        for &(r, c, v) in asm.c.iter() {
            tr.push(r, c, alpha_c * v);
        }
    }
    if gmin != 0.0 {
        for i in 0..n_node_unknowns.min(asm.n) {
            tr.push(i, i, gmin);
        }
    }
}

/// Fills a dense matrix with the same combination, retaining its allocation.
fn fill_combined_dense(
    m: &mut DMat<f64>,
    asm: &Assembly,
    alpha_g: f64,
    alpha_c: f64,
    gmin: f64,
    n_node_unknowns: usize,
) {
    m.fill_zero();
    if alpha_g != 0.0 {
        for &(r, c, v) in asm.g.iter() {
            m[(r, c)] += alpha_g * v;
        }
    }
    if alpha_c != 0.0 {
        for &(r, c, v) in asm.c.iter() {
            m[(r, c)] += alpha_c * v;
        }
    }
    if gmin != 0.0 {
        for i in 0..n_node_unknowns.min(asm.n) {
            m[(i, i)] += gmin;
        }
    }
}

/// Builds `alpha_g·G + alpha_c·C (+ gmin·I on node rows)` as CSC.
pub fn combine(
    asm: &Assembly,
    alpha_g: f64,
    alpha_c: f64,
    gmin: f64,
    n_node_unknowns: usize,
) -> Csc<f64> {
    let mut t = Triplets::new(asm.n, asm.n);
    fill_combined_triplets(&mut t, asm, alpha_g, alpha_c, gmin, n_node_unknowns);
    t.to_csc()
}

/// Builds the same combination into cached staging buffers: `tr` is refilled
/// in place and `out` is value-refilled when the pattern is unchanged,
/// rebuilt otherwise (per-timestep hot path for the coupling matrix `B`).
pub fn combine_into(
    asm: &Assembly,
    alpha_g: f64,
    alpha_c: f64,
    gmin: f64,
    n_node_unknowns: usize,
    tr: &mut Triplets<f64>,
    out: &mut Option<Csc<f64>>,
) {
    fill_combined_triplets(tr, asm, alpha_g, alpha_c, gmin, n_node_unknowns);
    if let Some(csc) = out.as_mut() {
        if csc.refill_from(tr).is_ok() {
            return;
        }
    }
    *out = Some(tr.to_csc());
}

/// Builds the same combination densely (monodromy assembly).
pub fn combine_dense(
    asm: &Assembly,
    alpha_g: f64,
    alpha_c: f64,
    gmin: f64,
    n_node_unknowns: usize,
) -> DMat<f64> {
    combine(asm, alpha_g, alpha_c, gmin, n_node_unknowns).to_dense()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::{Circuit, NodeId, Waveform};

    fn rc() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
        ckt
    }

    #[test]
    fn dense_and_sparse_agree() {
        let ckt = rc();
        let x = vec![1.0, 0.3, -7e-4];
        let asm = ckt.assemble(&x, 0.0);
        let nn = ckt.n_nodes() - 1;
        let b = vec![1.0, -2.0, 0.5];
        let xd = FactoredJacobian::factor(SolverKind::Dense, &asm, 1.0, 1e9, 1e-12, nn)
            .unwrap()
            .solve(&b);
        let xs = FactoredJacobian::factor(SolverKind::Sparse, &asm, 1.0, 1e9, 1e-12, nn)
            .unwrap()
            .solve(&b);
        for (u, v) in xd.iter().zip(xs.iter()) {
            assert!((u - v).abs() < 1e-9 * u.abs().max(1.0));
        }
    }

    #[test]
    fn gmin_applies_to_node_rows_only() {
        let ckt = rc();
        let x = vec![0.0; 3];
        let asm = ckt.assemble(&x, 0.0);
        let nn = ckt.n_nodes() - 1;
        let m = combine_dense(&asm, 0.0, 0.0, 1e-3, nn);
        assert_eq!(m[(0, 0)], 1e-3);
        assert_eq!(m[(1, 1)], 1e-3);
        assert_eq!(m[(2, 2)], 0.0); // branch row untouched
    }

    /// The workspace's cached/refactored solves must match one-shot
    /// factorization bit-for-bit, for both backends and across changing
    /// states (pattern fixed, values varying).
    #[test]
    fn workspace_matches_one_shot_factorization() {
        let ckt = rc();
        let nn = ckt.n_nodes() - 1;
        let b = vec![0.25, -1.5, 3.0];
        for kind in [SolverKind::Dense, SolverKind::Sparse] {
            let mut ws = JacobianWorkspace::new(kind);
            for trial in 0..4 {
                let x = vec![1.0 + trial as f64, 0.3 * trial as f64, -1e-4];
                let asm = ckt.assemble(&x, 0.0);
                let one_shot = FactoredJacobian::factor(kind, &asm, 1.0, 1e9, 1e-12, nn)
                    .unwrap()
                    .solve(&b);
                let cached = ws.factor(&asm, 1.0, 1e9, 1e-12, nn).unwrap().solve(&b);
                let owned = ws
                    .factor_owned(&asm, 1.0, 1e9, 1e-12, nn)
                    .unwrap()
                    .solve(&b);
                for i in 0..b.len() {
                    assert!(
                        cached[i].to_bits() == one_shot[i].to_bits(),
                        "{kind:?} trial {trial} cached row {i}: {} vs {}",
                        cached[i],
                        one_shot[i]
                    );
                    assert!(
                        owned[i].to_bits() == one_shot[i].to_bits(),
                        "{kind:?} trial {trial} owned row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn combine_into_refills_in_place() {
        let ckt = rc();
        let nn = ckt.n_nodes() - 1;
        let mut tr = Triplets::new(0, 0);
        let mut staged: Option<Csc<f64>> = None;
        for trial in 0..3 {
            let x = vec![0.1 * trial as f64, 0.2, -1e-3];
            let asm = ckt.assemble(&x, 0.0);
            combine_into(&asm, 1.0, 1e9, 1e-12, nn, &mut tr, &mut staged);
            let expect = combine(&asm, 1.0, 1e9, 1e-12, nn);
            assert_eq!(staged.as_ref().unwrap(), &expect, "trial {trial}");
        }
    }

    #[test]
    fn solve_multi_matches_per_column_for_both_backends() {
        let ckt = rc();
        let nn = ckt.n_nodes() - 1;
        let x = vec![1.0, 0.5, -2e-4];
        let asm = ckt.assemble(&x, 0.0);
        let n = asm.n;
        let n_rhs = 5;
        for kind in [SolverKind::Dense, SolverKind::Sparse] {
            let fac = FactoredJacobian::factor(kind, &asm, 1.0, 1e9, 1e-12, nn).unwrap();
            let mut block: Vec<f64> = (0..n * n_rhs)
                .map(|i| ((i * 7 % 11) as f64) * 0.4 - 1.0)
                .collect();
            let per_col: Vec<Vec<f64>> = (0..n_rhs)
                .map(|k| fac.solve(&block[k * n..(k + 1) * n]))
                .collect();
            let mut scratch = vec![0.0; n * n_rhs];
            fac.solve_multi(&mut block, n_rhs, &mut scratch);
            for k in 0..n_rhs {
                for i in 0..n {
                    assert!(
                        block[k * n + i].to_bits() == per_col[k][i].to_bits(),
                        "{kind:?} rhs {k} row {i}"
                    );
                }
            }
        }
    }
}
