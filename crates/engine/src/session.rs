//! Analysis sessions: shared solver state for many analyses on one circuit.
//!
//! Every analysis in this workspace bottoms out in the same two MNA
//! sparsity patterns — the *static* pattern `G + gmin·I` (operating points)
//! and the *dynamic* pattern `θ·G + C/h + gmin·I` (time stepping) — and
//! before this module every entry point (`dc_operating_point`, `transient`,
//! `transient_with_sensitivities`, the PSS shooting loops) rebuilt its own
//! staging buffers and re-ran the symbolic analysis per call. A [`Session`]
//! owns that state instead:
//!
//! - the **solver choice** ([`SolverKind`]), applied to every analysis run
//!   through the session (per-call `NewtonOptions::solver` is overridden),
//! - the **symbolic-analysis cache keyed by sparsity pattern**: one
//!   [`JacobianWorkspace`] per pattern class (static solves, dynamic
//!   integration), each retaining its staged structure, factor storage and
//!   — for the sparse backend — the replayed pivot analysis across calls,
//! - the **thread policy**: a default worker count inherited by analyses
//!   whose per-call options leave `threads` in automatic (`0`) mode,
//! - [`SessionStats`] counters proving the reuse (a warm session performs
//!   zero additional pattern builds or symbolic analyses per call).
//!
//! The existing free functions remain available as thin wrappers over a
//! fresh session and are bit-identical to their pre-session behavior on
//! the dense backend (the default, and the recommended choice for every
//! shipped circuit). The sparse backend replays a pivot order once found
//! for as long as it stays numerically acceptable, so wherever the session
//! introduces sharing that did not exist before — DC homotopy stages
//! within one call, an oscillator warm-up feeding the shooting loop, and
//! any *reused* session — sparse results may differ from a fresh pivot
//! analysis by a (equally valid) pivot order: identical to machine
//! precision, not necessarily to the last bit.
//!
//! Sessions are the unit of worker-thread state in the scenario-campaign
//! layer (`tranvar-core`): one session per worker, scenarios revalued onto
//! the same sparsity pattern, every solve after the first a pure replay.

use crate::dc::{dc_operating_point_traced, dc_operating_point_with, DcOptions};
use crate::error::EngineError;
use crate::retry::{self, Escalation, RetryPolicy, SolveDiagnostics};
use crate::solver::{JacobianWorkspace, SolverKind, SolverStats};
use crate::tran::{transient_with, CycleWorkspace, TranOptions, TranResult};
use crate::transens::{transient_with_sensitivities_with, SensInit, TranSensResult};
use tranvar_circuit::Circuit;

/// Construction options for a [`Session`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionOptions {
    /// Linear-solver backend used by every analysis in the session.
    /// [`SolverKind::auto_for`] picks one from the circuit size; the
    /// fill-reducing [`SolverKind::SparseOrdered`] backend is worthwhile for
    /// large sparse substrates.
    pub solver: SolverKind,
    /// Default worker-thread count for batched analyses run through the
    /// session, in the [`TranOptions::threads`] convention (`0` = all
    /// cores); applied whenever the per-call options leave `threads` at the
    /// automatic `0`. Explicit per-call values win. Within one session the
    /// batched analyses are bit-identical for any count; across *sessions*
    /// the dense backend is bit-identical too, while the sparse backend
    /// carries the pivot-replay caveat of the [module docs](self).
    pub threads: usize,
}

/// Aggregated structural-work counters of a session (see
/// [`SolverStats`]): summed over the session's per-pattern workspaces.
pub type SessionStats = SolverStats;

/// Shared solver state for repeated analyses: the solver choice, one
/// factorization workspace per MNA pattern class, and the thread policy.
///
/// See the [module docs](self) for the caching and determinism contract.
///
/// # Examples
///
/// Two transients on one circuit sharing all solver state:
///
/// ```
/// use tranvar_circuit::{Circuit, NodeId, Waveform};
/// use tranvar_engine::session::Session;
/// use tranvar_engine::tran::TranOptions;
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
/// ckt.add_resistor("R1", a, b, 1e3);
/// ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-6);
/// let mut session = Session::default();
/// let opts = TranOptions::new(1e-4, 1e-6);
/// let first = session.transient(&ckt, &opts)?;
/// let again = session.transient(&ckt, &opts)?; // replays, no re-analysis
/// assert_eq!(first.states, again.states);
/// # Ok::<(), tranvar_engine::EngineError>(())
/// ```
#[derive(Debug, Default)]
pub struct Session {
    solver: SolverKind,
    threads: usize,
    /// Workspace for the static pattern `G + gmin·I` (DC solves).
    static_ws: Option<JacobianWorkspace>,
    /// Workspace chain for the dynamic pattern `θ·G + C/h + gmin·I`
    /// (transient steps, cycle integrations, sensitivity windows).
    cycle: CycleWorkspace,
    /// Retry-escalation attempts beyond the first, summed over every
    /// resilient solve run through the session.
    retries: u64,
}

impl Session {
    /// Creates a session with the given options.
    pub fn new(opts: SessionOptions) -> Self {
        Session {
            solver: opts.solver,
            threads: opts.threads,
            static_ws: None,
            cycle: CycleWorkspace::new(),
            retries: 0,
        }
    }

    /// Creates a session with the given backend and automatic threading.
    pub fn with_solver(solver: SolverKind) -> Self {
        Session::new(SessionOptions { solver, threads: 0 })
    }

    /// The session's linear-solver backend.
    pub fn solver(&self) -> SolverKind {
        self.solver
    }

    /// The session's default worker-thread count (`0` = all cores).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Resolves a per-call `threads` request against the session policy:
    /// explicit nonzero requests win, automatic (`0`) requests inherit the
    /// session default.
    pub fn effective_threads(&self, requested: usize) -> usize {
        if requested != 0 {
            requested
        } else {
            self.threads
        }
    }

    /// The reusable cycle-integration workspace (dynamic MNA pattern), for
    /// analyses layered on top of the engine (PSS shooting loops).
    pub fn cycle_workspace(&mut self) -> &mut CycleWorkspace {
        &mut self.cycle
    }

    /// Structural-work counters summed over the session's workspaces. A
    /// warm session's counters stay constant across additional same-pattern
    /// solves — the observable behind the "one symbolic analysis per
    /// sparsity pattern" contract.
    pub fn stats(&self) -> SessionStats {
        let stat = self
            .static_ws
            .as_ref()
            .map(|w| w.stats())
            .unwrap_or_default();
        stat.merged(self.cycle.stats().unwrap_or_default())
    }

    fn static_workspace(&mut self) -> &mut JacobianWorkspace {
        let solver = self.solver;
        self.static_ws
            .get_or_insert_with(|| JacobianWorkspace::new(solver))
    }

    /// Rewrites per-call Newton options so the session's solver choice wins.
    fn newton_for(&self, opts: &crate::dc::NewtonOptions) -> crate::dc::NewtonOptions {
        crate::dc::NewtonOptions {
            solver: self.solver,
            ..opts.clone()
        }
    }

    /// DC operating point through the session's static-pattern workspace.
    ///
    /// # Errors
    ///
    /// See [`crate::dc::dc_operating_point`].
    pub fn dc_operating_point(
        &mut self,
        ckt: &Circuit,
        opts: &DcOptions,
    ) -> Result<Vec<f64>, EngineError> {
        let eff = DcOptions {
            newton: self.newton_for(&opts.newton),
            ..opts.clone()
        };
        let jws = self.static_workspace();
        dc_operating_point_with(ckt, &eff, jws)
    }

    /// Retry-escalation attempts beyond the first, summed over every
    /// resilient solve run through this session — the campaign-level
    /// companion counter to the per-solve [`SolveDiagnostics`] trail.
    pub fn retry_attempts(&self) -> u64 {
        self.retries
    }

    /// [`Session::dc_operating_point`] with retry/fallback escalation (see
    /// [`crate::retry`]); returns the result together with the full attempt
    /// trail.
    ///
    /// Non-backend-switching attempts run through the session's cached
    /// static workspace; the switch-backend rung uses a throwaway workspace
    /// of the other [`SolverKind`] so the session's replayed pivot state is
    /// never polluted by a rescue attempt.
    pub fn dc_operating_point_resilient(
        &mut self,
        ckt: &Circuit,
        opts: &DcOptions,
        policy: &RetryPolicy,
    ) -> (Result<Vec<f64>, EngineError>, SolveDiagnostics) {
        let mut diag = SolveDiagnostics::new();
        let mut cur = DcOptions {
            newton: self.newton_for(&opts.newton),
            ..opts.clone()
        };
        let ladder = retry::dc_ladder(policy);
        let budget = cur.newton.budget.clone();
        let res = retry::run_ladder(
            &ladder,
            policy.max_attempts,
            &budget,
            &mut diag,
            |esc, diag| {
                if !matches!(esc, Escalation::Initial) {
                    self.retries += 1;
                }
                retry::apply_dc(&mut cur, esc);
                if matches!(esc, Escalation::SwitchBackend) {
                    let mut ws = JacobianWorkspace::new(cur.newton.solver);
                    dc_operating_point_traced(ckt, &cur, Some(&mut ws), diag)
                } else {
                    dc_operating_point_traced(ckt, &cur, Some(self.static_workspace()), diag)
                }
            },
        );
        (res, diag)
    }

    /// [`Session::transient`] with retry/fallback escalation; returns the
    /// result together with the attempt trail. The switch-backend rung runs
    /// on a throwaway workspace chain, like
    /// [`Session::dc_operating_point_resilient`].
    pub fn transient_resilient(
        &mut self,
        ckt: &Circuit,
        opts: &TranOptions,
        policy: &RetryPolicy,
    ) -> (Result<TranResult, EngineError>, SolveDiagnostics) {
        let mut diag = SolveDiagnostics::new();
        let mut cur = opts.clone();
        let ladder = retry::tran_ladder(policy);
        let budget = cur.newton.budget.clone();
        let res = retry::run_ladder(
            &ladder,
            policy.max_attempts,
            &budget,
            &mut diag,
            |esc, _diag| {
                if !matches!(esc, Escalation::Initial) {
                    self.retries += 1;
                }
                retry::apply_tran(&mut cur, esc);
                if matches!(esc, Escalation::SwitchBackend) {
                    let mut fresh = Session::new(SessionOptions {
                        solver: cur.newton.solver,
                        threads: self.threads,
                    });
                    fresh.transient(ckt, &cur)
                } else {
                    self.transient(ckt, &cur)
                }
            },
        );
        (res, diag)
    }

    /// Transient analysis through the session's dynamic-pattern workspace.
    ///
    /// # Errors
    ///
    /// See [`crate::tran::transient`].
    pub fn transient(
        &mut self,
        ckt: &Circuit,
        opts: &TranOptions,
    ) -> Result<TranResult, EngineError> {
        let eff = self.tran_opts_with_x0(ckt, opts)?;
        transient_with(ckt, &mut self.cycle, &eff)
    }

    /// Transient forward-sensitivity analysis through the session.
    ///
    /// # Errors
    ///
    /// See [`crate::transens::transient_with_sensitivities`].
    pub fn transient_with_sensitivities(
        &mut self,
        ckt: &Circuit,
        opts: &TranOptions,
        init: SensInit,
    ) -> Result<TranSensResult, EngineError> {
        let eff = self.tran_opts_with_x0(ckt, opts)?;
        transient_with_sensitivities_with(ckt, &mut self.cycle, &eff, init)
    }

    fn tran_opts_for(&self, opts: &TranOptions) -> TranOptions {
        TranOptions {
            newton: self.newton_for(&opts.newton),
            threads: self.effective_threads(opts.threads),
            ..opts.clone()
        }
    }

    /// Per-call options with the session policy applied and the initial
    /// state resolved through the session's static workspace (mirroring the
    /// per-call DC fallback of [`crate::tran::transient`] exactly).
    fn tran_opts_with_x0(
        &mut self,
        ckt: &Circuit,
        opts: &TranOptions,
    ) -> Result<TranOptions, EngineError> {
        // Reject invalid step configs before spending a DC solve, with the
        // same error the per-call path raises.
        crate::tran::validate_step_config(opts)?;
        let mut eff = self.tran_opts_for(opts);
        if eff.x0.is_none() {
            let dc_opts = DcOptions {
                newton: eff.newton.clone(),
                ..DcOptions::default()
            };
            eff.x0 = Some(self.dc_operating_point(ckt, &dc_opts)?);
        }
        Ok(eff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::dc_operating_point;
    use crate::tran::transient;
    use crate::transens::transient_with_sensitivities;
    use tranvar_circuit::{NodeId, Pulse, Waveform};

    fn pulsed_rc(level: f64) -> Circuit {
        pulsed_rc_sized(level, 1e3)
    }

    fn pulsed_rc_sized(level: f64, r: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: level,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 4e-6,
                period: 10e-6,
            }),
        );
        let r1 = ckt.add_resistor("R1", a, b, r);
        let c1 = ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
        ckt.annotate_resistor_mismatch(r1, 10.0);
        ckt.annotate_capacitor_mismatch(c1, 1e-11);
        ckt
    }

    /// A warm session reproduces fresh per-call results bitwise (dense
    /// backend) across DC, transient and sensitivity analyses on varying
    /// circuit values.
    #[test]
    fn warm_session_matches_fresh_calls_bitwise() {
        let mut session = Session::default();
        for level in [1.0, 0.8, 1.2] {
            let ckt = pulsed_rc(level);
            let dc_fresh = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
            let dc_sess = session
                .dc_operating_point(&ckt, &DcOptions::default())
                .unwrap();
            assert_eq!(
                dc_fresh.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                dc_sess.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let opts = TranOptions::new(5e-6, 5e-8);
            let tr_fresh = transient(&ckt, &opts).unwrap();
            let tr_sess = session.transient(&ckt, &opts).unwrap();
            for (a, b) in tr_fresh.states.iter().zip(tr_sess.states.iter()) {
                for (x, y) in a.iter().zip(b.iter()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "level {level}");
                }
            }
            let ts_fresh = transient_with_sensitivities(&ckt, &opts, SensInit::FromDc).unwrap();
            let ts_sess = session
                .transient_with_sensitivities(&ckt, &opts, SensInit::FromDc)
                .unwrap();
            for (sa, sb) in ts_fresh.sens.iter().zip(ts_sess.sens.iter()) {
                for (a, b) in sa.iter().zip(sb.iter()) {
                    for (x, y) in a.iter().zip(b.iter()) {
                        assert_eq!(x.to_bits(), y.to_bits(), "level {level}");
                    }
                }
            }
        }
    }

    /// The session performs its structural work exactly once per pattern:
    /// further same-pattern analyses add numeric factorizations but no
    /// pattern builds or symbolic analyses.
    #[test]
    fn session_analyzes_each_pattern_once() {
        let mut session = Session::default();
        let opts = TranOptions::new(5e-6, 5e-8);
        session.transient(&pulsed_rc(1.0), &opts).unwrap();
        let warm = session.stats();
        // Static (DC) + dynamic (transient) pattern: one build+analysis each.
        assert_eq!(warm.pattern_builds, 2, "{warm:?}");
        assert_eq!(warm.symbolic_analyses, 2, "{warm:?}");
        // Value-only revaluations (same pattern, different R): the session
        // refactors numerically but never rebuilds or re-analyzes.
        for r in [0.9e3, 1.1e3, 1.3e3] {
            session.transient(&pulsed_rc_sized(1.0, r), &opts).unwrap();
        }
        let after = session.stats();
        assert_eq!(after.pattern_builds, warm.pattern_builds);
        assert_eq!(after.symbolic_analyses, warm.symbolic_analyses);
        assert!(after.numeric_factorizations > warm.numeric_factorizations);
    }

    /// Thread policy: explicit per-call requests win, automatic inherits.
    #[test]
    fn thread_policy_resolution() {
        let s = Session::new(SessionOptions {
            solver: SolverKind::Dense,
            threads: 3,
        });
        assert_eq!(s.effective_threads(0), 3);
        assert_eq!(s.effective_threads(2), 2);
        assert_eq!(Session::default().effective_threads(0), 0);
    }
}
