//! DC operating-point analysis: damped Newton–Raphson with gmin stepping and
//! a source-stepping homotopy fallback.
//!
//! This is the `.OP` every other analysis starts from — the transient needs
//! an initial state, the DC-match baseline linearizes here, and the PSS
//! shooting iteration seeds from a settled transient that itself starts here.

use crate::budget::SolveBudget;
use crate::error::EngineError;
use crate::fault;
use crate::retry::SolveDiagnostics;
use crate::solver::{JacobianWorkspace, SolverKind};
use tranvar_circuit::Circuit;
use tranvar_num::dense::vecops;

/// Newton iteration controls shared by DC and transient solves.
#[derive(Clone, Debug, PartialEq)]
pub struct NewtonOptions {
    /// Maximum Newton iterations per solve.
    pub max_iter: usize,
    /// Convergence tolerance on the update ∞-norm (V).
    pub vtol: f64,
    /// Convergence tolerance on the residual ∞-norm (A).
    pub itol: f64,
    /// Per-iteration clamp on the update ∞-norm (V); the whole update vector
    /// is scaled down to preserve the Newton direction.
    pub step_limit: f64,
    /// Linear-solver backend.
    pub solver: SolverKind,
    /// Cooperative work bound, checked once per Newton iteration. The
    /// default is unlimited; see [`crate::budget`].
    pub budget: SolveBudget,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iter: 100,
            vtol: 1e-9,
            itol: 1e-10,
            step_limit: 0.4,
            solver: SolverKind::Dense,
            budget: SolveBudget::default(),
        }
    }
}

/// DC analysis controls.
#[derive(Clone, Debug, PartialEq)]
pub struct DcOptions {
    /// Newton controls.
    pub newton: NewtonOptions,
    /// gmin-stepping schedule (S); the final entry is the residual gmin kept
    /// in place for the converged solve.
    pub gmin_schedule: Vec<f64>,
    /// Number of source-stepping points used if gmin stepping fails.
    pub source_steps: usize,
}

impl Default for DcOptions {
    fn default() -> Self {
        DcOptions {
            newton: NewtonOptions::default(),
            gmin_schedule: vec![1e-3, 1e-5, 1e-7, 1e-9, 1e-12],
            source_steps: 20,
        }
    }
}

/// One static Newton solve at time `t` with a fixed `gmin`.
///
/// # Errors
///
/// Returns [`EngineError::NoConvergence`] if the iteration stalls, or a
/// numerical error for a singular Jacobian.
pub fn solve_static(
    ckt: &Circuit,
    t: f64,
    gmin: f64,
    x0: &[f64],
    opts: &NewtonOptions,
) -> Result<Vec<f64>, EngineError> {
    solve_static_with(
        ckt,
        t,
        gmin,
        x0,
        opts,
        &mut JacobianWorkspace::new(opts.solver),
    )
}

/// [`solve_static`] with an explicit factorization workspace, so repeated
/// static solves (gmin stepping, source stepping, one-session scenario
/// sweeps) reuse the staged pattern and — for the sparse backend — the
/// symbolic pivot analysis. For the dense backend the results are
/// bit-identical to a fresh per-call solve.
///
/// # Errors
///
/// See [`solve_static`].
pub fn solve_static_with(
    ckt: &Circuit,
    t: f64,
    gmin: f64,
    x0: &[f64],
    opts: &NewtonOptions,
    jws: &mut JacobianWorkspace,
) -> Result<Vec<f64>, EngineError> {
    let n = ckt.n_unknowns();
    let n_node = ckt.n_nodes() - 1;
    let mut x = x0.to_vec();
    let mut asm = ckt.assemble(&x, t);
    let mut r = vec![0.0; n];
    let mut delta = vec![0.0; n];
    let mut scratch = vec![0.0; n];
    for _iter in 0..opts.max_iter {
        opts.budget.begin_iteration("dc newton")?;
        opts.budget.count_factorization();
        let lu = jws.factor(&asm, 1.0, 0.0, gmin, n_node)?;
        // Residual includes the gmin bleed so the Jacobian is consistent.
        r.copy_from_slice(&asm.f);
        for (i, ri) in r.iter_mut().enumerate().take(n_node) {
            *ri += gmin * x[i];
        }
        lu.solve_into(&r, &mut delta, &mut scratch);
        vecops::scale(&mut delta, -1.0);
        // Voltage limiting: scale the whole step.
        let dmax = vecops::norm_inf(&delta[..n_node.max(1).min(n)]);
        if dmax > opts.step_limit {
            let k = opts.step_limit / dmax;
            vecops::scale(&mut delta, k);
        }
        for (xi, di) in x.iter_mut().zip(delta.iter()) {
            *xi += di;
        }
        ckt.assemble_into(&x, t, &mut asm);
        // Converge on the *augmented* residual f + gmin·v — the system the
        // Jacobian corresponds to.
        let mut rnorm = 0.0f64;
        for (i, fi) in asm.f.iter().enumerate() {
            let aug = fi + if i < n_node { gmin * x[i] } else { 0.0 };
            rnorm = rnorm.max(aug.abs());
        }
        let mut dnorm = vecops::norm_inf(&delta);
        if fault::poison_nan(fault::sites::DC_RESIDUAL) {
            dnorm = f64::NAN;
        }
        // Fail fast on garbage: iterating further on a NaN/Inf residual or
        // update can never converge, it only burns the iteration budget.
        if !dnorm.is_finite() || !rnorm.is_finite() {
            return Err(EngineError::NonFinite {
                analysis: "dc newton".into(),
                detail: format!(
                    "residual |f|={rnorm:.3e}, update |dx|={dnorm:.3e} (gmin={gmin:.1e})"
                ),
            });
        }
        if dnorm < opts.vtol && rnorm < opts.itol {
            return Ok(x);
        }
    }
    Err(EngineError::NoConvergence {
        analysis: "newton".into(),
        detail: format!(
            "no convergence in {} iterations (gmin={gmin:.1e}, |f|={:.3e})",
            opts.max_iter,
            vecops::norm_inf(&asm.f)
        ),
    })
}

/// Computes the DC operating point (sources evaluated at `t = 0`).
///
/// Tries plain Newton first, then walks the gmin schedule, then falls back to
/// source stepping.
///
/// # Errors
///
/// Returns [`EngineError::NoConvergence`] if all homotopies fail.
///
/// # Examples
///
/// ```
/// use tranvar_circuit::{Circuit, NodeId, Waveform};
/// use tranvar_engine::dc::{dc_operating_point, DcOptions};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
/// ckt.add_resistor("R1", a, b, 1e3);
/// ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
/// let x = dc_operating_point(&ckt, &DcOptions::default())?;
/// assert!((ckt.voltage(&x, b) - 1.0).abs() < 1e-6);
/// # Ok::<(), tranvar_engine::EngineError>(())
/// ```
pub fn dc_operating_point(ckt: &Circuit, opts: &DcOptions) -> Result<Vec<f64>, EngineError> {
    // A fresh workspace per homotopy stage, exactly as before the session
    // refactor: on the sparse backend a shared workspace would replay the
    // first stage's pivot order into later stages, which is legitimate but
    // not bit-identical to the historical per-stage fresh analysis.
    dc_operating_point_impl(ckt, opts, None)
}

/// [`dc_operating_point`] with an explicit factorization workspace shared
/// across every homotopy stage (and across calls, for one-session scenario
/// sweeps). The static MNA pattern `G + gmin·I` is staged once and every
/// subsequent solve refactors in place; for the dense backend the results
/// are bit-identical to the per-call path, while the sparse backend replays
/// the first solve's pivot order (machine-precision identical).
///
/// # Errors
///
/// See [`dc_operating_point`].
pub fn dc_operating_point_with(
    ckt: &Circuit,
    opts: &DcOptions,
    jws: &mut JacobianWorkspace,
) -> Result<Vec<f64>, EngineError> {
    dc_operating_point_impl(ckt, opts, Some(jws))
}

/// [`dc_operating_point_with`] that also records one [`crate::retry::Attempt`]
/// per homotopy stage solve (direct, each gmin-schedule entry, each source
/// step) into `diag`, in the order they ran. This is the trail the
/// retry/escalation layer and campaign diagnostics report.
///
/// # Errors
///
/// See [`dc_operating_point`].
pub fn dc_operating_point_traced(
    ckt: &Circuit,
    opts: &DcOptions,
    jws: Option<&mut JacobianWorkspace>,
    diag: &mut SolveDiagnostics,
) -> Result<Vec<f64>, EngineError> {
    dc_operating_point_inner(ckt, opts, jws, Some(diag))
}

fn dc_operating_point_impl(
    ckt: &Circuit,
    opts: &DcOptions,
    jws: Option<&mut JacobianWorkspace>,
) -> Result<Vec<f64>, EngineError> {
    dc_operating_point_inner(ckt, opts, jws, None)
}

fn dc_operating_point_inner(
    ckt: &Circuit,
    opts: &DcOptions,
    mut jws: Option<&mut JacobianWorkspace>,
    mut diag: Option<&mut SolveDiagnostics>,
) -> Result<Vec<f64>, EngineError> {
    // Every homotopy stage funnels through here: the fault harness can fail
    // any stage by its attempt ordinal, and the outcome lands in the trail.
    let mut attempt_no = 0usize;
    let mut solve = |ckt: &Circuit,
                     gmin: f64,
                     x0: &[f64],
                     stage: &dyn Fn() -> String,
                     jws: &mut Option<&mut JacobianWorkspace>,
                     diag: &mut Option<&mut SolveDiagnostics>| {
        let idx = attempt_no;
        attempt_no += 1;
        let res = match fault::attempt_fault(fault::sites::DC_STAGE, idx) {
            Some(e) => Err(e),
            None => match jws.as_deref_mut() {
                Some(ws) => solve_static_with(ckt, 0.0, gmin, x0, &opts.newton, ws),
                None => solve_static(ckt, 0.0, gmin, x0, &opts.newton),
            },
        };
        if let Some(d) = diag.as_deref_mut() {
            d.record(stage(), res.as_ref().err().cloned());
        }
        res
    };
    let n = ckt.n_unknowns();
    let x0 = vec![0.0; n];
    let final_gmin = *opts.gmin_schedule.last().unwrap_or(&1e-12);

    // 1. Direct attempt at the target gmin.
    match solve(
        ckt,
        final_gmin,
        &x0,
        &|| "dc:direct".into(),
        &mut jws,
        &mut diag,
    ) {
        Ok(x) => return Ok(x),
        // A tripped budget is a global bound: further homotopy stages would
        // only re-trip it, so it propagates instead of escalating.
        Err(e @ EngineError::BudgetExceeded { .. }) => return Err(e),
        Err(_) => {}
    }
    // 2. gmin stepping.
    let mut x = x0.clone();
    let mut ok = true;
    for &g in &opts.gmin_schedule {
        match solve(
            ckt,
            g,
            &x,
            &|| format!("dc:gmin[{g:.1e}]"),
            &mut jws,
            &mut diag,
        ) {
            Ok(xs) => x = xs,
            Err(e @ EngineError::BudgetExceeded { .. }) => return Err(e),
            Err(_) => {
                ok = false;
                break;
            }
        }
    }
    if ok {
        return Ok(x);
    }
    // 3. Source stepping at the target gmin.
    let mut x = x0;
    for k in 1..=opts.source_steps {
        let alpha = k as f64 / opts.source_steps as f64;
        let scaled = ckt.scaled_sources(alpha);
        let steps = opts.source_steps;
        x = solve(
            &scaled,
            final_gmin,
            &x,
            &|| format!("dc:source[{k}/{steps}]"),
            &mut jws,
            &mut diag,
        )
        .map_err(|e| match e {
            e @ EngineError::BudgetExceeded { .. } => e,
            e => EngineError::NoConvergence {
                analysis: "dc".into(),
                detail: format!("source stepping failed at alpha={alpha:.2}: {e}"),
            },
        })?;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::{Circuit, MosModel, MosType, NodeId, Waveform};

    #[test]
    fn divider_op() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_resistor("R2", b, NodeId::GROUND, 3e3);
        let x = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        assert!((ckt.voltage(&x, b) - 1.5).abs() < 1e-6);
        assert!((ckt.voltage(&x, a) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn nmos_common_source_op() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(1.2));
        ckt.add_vsource("VG", g, NodeId::GROUND, Waveform::Dc(0.7));
        ckt.add_resistor("RD", vdd, d, 10e3);
        ckt.add_mosfet(
            "M1",
            d,
            g,
            NodeId::GROUND,
            MosType::Nmos,
            MosModel::nmos_013(),
            1e-6,
            0.13e-6,
        );
        let x = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let vd = ckt.voltage(&x, d);
        // The device conducts: the drain must sit well below VDD but above 0.
        assert!(vd > 0.01 && vd < 1.19, "vd = {vd}");
        // KCL: resistor current equals drain current.
        let asm = ckt.assemble(&x, 0.0);
        assert!(tranvar_num::dense::vecops::norm_inf(&asm.f) < 1e-9);
    }

    #[test]
    fn cmos_inverter_transfer_points() {
        // Inverter with input low -> output at VDD; input high -> output ~0.
        for (vin, lo, hi) in [(0.0, 1.15, 1.2001), (1.2, -0.0001, 0.05)] {
            let mut ckt = Circuit::new();
            let vdd = ckt.node("vdd");
            let vin_n = ckt.node("in");
            let out = ckt.node("out");
            ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(1.2));
            ckt.add_vsource("VIN", vin_n, NodeId::GROUND, Waveform::Dc(vin));
            ckt.add_mosfet(
                "MP",
                out,
                vin_n,
                vdd,
                MosType::Pmos,
                MosModel::pmos_013(),
                2e-6,
                0.13e-6,
            );
            ckt.add_mosfet(
                "MN",
                out,
                vin_n,
                NodeId::GROUND,
                MosType::Nmos,
                MosModel::nmos_013(),
                1e-6,
                0.13e-6,
            );
            let x = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
            let vout = ckt.voltage(&x, out);
            assert!(vout > lo && vout < hi, "vin={vin} -> vout={vout}");
        }
    }

    #[test]
    fn floating_node_is_held_by_gmin() {
        // A capacitor-only node has no DC path; gmin must keep the system
        // solvable and pull the node to ground.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_capacitor("C1", a, NodeId::GROUND, 1e-12);
        let x = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        assert!(ckt.voltage(&x, a).abs() < 1e-6);
    }
}
