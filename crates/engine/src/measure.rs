//! Waveform measurements on transient results: delays, periods, settled
//! values — the nonlinear measurements Monte-Carlo repeats per sample.

use crate::error::EngineError;
use crate::tran::TranResult;
use tranvar_circuit::{Circuit, NodeId};
use tranvar_num::interp::{crossings, first_crossing_after, Edge};

/// Measures the time of the first `edge` crossing of `threshold` on `node`
/// at or after `t_min`.
///
/// # Errors
///
/// Returns [`EngineError::Measurement`] when no crossing exists.
pub fn crossing_time(
    ckt: &Circuit,
    res: &TranResult,
    node: NodeId,
    threshold: f64,
    edge: Edge,
    t_min: f64,
) -> Result<f64, EngineError> {
    let w = res.node_waveform(ckt, node);
    first_crossing_after(&res.times, &w, threshold, edge, t_min).ok_or_else(|| {
        EngineError::Measurement(format!(
            "no {edge:?} crossing of {threshold} on `{}` after t={t_min:.3e}",
            ckt.node_name(node)
        ))
    })
}

/// Measures a delay as `crossing(out) − t_ref`.
///
/// # Errors
///
/// Returns [`EngineError::Measurement`] when no crossing exists after
/// `t_ref`.
pub fn delay_from(
    ckt: &Circuit,
    res: &TranResult,
    out: NodeId,
    threshold: f64,
    edge: Edge,
    t_ref: f64,
) -> Result<f64, EngineError> {
    Ok(crossing_time(ckt, res, out, threshold, edge, t_ref)? - t_ref)
}

/// Measures the average oscillation period on `node` using the last
/// `n_periods` same-direction crossings of `threshold` (discarding the
/// start-up transient automatically).
///
/// # Errors
///
/// Returns [`EngineError::Measurement`] if fewer than `n_periods + 1`
/// crossings exist.
pub fn average_period(
    ckt: &Circuit,
    res: &TranResult,
    node: NodeId,
    threshold: f64,
    n_periods: usize,
) -> Result<f64, EngineError> {
    let w = res.node_waveform(ckt, node);
    let rises = crossings(&res.times, &w, threshold, Edge::Rising);
    if rises.len() < n_periods + 1 {
        return Err(EngineError::Measurement(format!(
            "only {} rising crossings on `{}`, need {}",
            rises.len(),
            ckt.node_name(node),
            n_periods + 1
        )));
    }
    let last = rises.len() - 1;
    Ok((rises[last] - rises[last - n_periods]) / n_periods as f64)
}

/// Measures the average oscillation frequency (see [`average_period`]).
///
/// # Errors
///
/// See [`average_period`].
pub fn average_frequency(
    ckt: &Circuit,
    res: &TranResult,
    node: NodeId,
    threshold: f64,
    n_periods: usize,
) -> Result<f64, EngineError> {
    Ok(1.0 / average_period(ckt, res, node, threshold, n_periods)?)
}

/// Mean value of a node over the trailing `fraction` of the run (settled-DC
/// readout, e.g. the comparator testbench's offset node).
///
/// On a uniform grid the window is the trailing fraction of *samples* and
/// the mean is arithmetic — bit-identical to the historical fixed-step
/// behaviour. On an adaptive (non-uniform) grid the window is the trailing
/// fraction of *time* and the mean is time-weighted, so densely stepped
/// regions are not over-counted.
pub fn settled_mean(ckt: &Circuit, res: &TranResult, node: NodeId, fraction: f64) -> f64 {
    let w = res.node_waveform(ckt, node);
    let n = w.len();
    if tranvar_num::interp::is_uniform_grid(&res.times, 1e-9) {
        let start = ((1.0 - fraction.clamp(0.0, 1.0)) * n as f64) as usize;
        let tail = &w[start.min(n - 1)..];
        return tail.iter().sum::<f64>() / tail.len() as f64;
    }
    let t_end = res.times[n - 1];
    let span = t_end - res.times[0];
    let t_from = t_end - fraction.clamp(0.0, 1.0) * span;
    let start = res.times.partition_point(|&t| t < t_from).min(n - 1);
    tranvar_num::interp::time_weighted_mean(&res.times[start..], &w[start..])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tran::{transient, TranOptions};
    use tranvar_circuit::{Pulse, Waveform};

    fn pulsed_rc() -> (Circuit, NodeId, TranResult) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-6,
                rise: 1e-9,
                fall: 1e-9,
                width: 5e-6,
                period: 20e-6,
            }),
        );
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9); // tau = 1 us
        let res = transient(&ckt, &TranOptions::new(20e-6, 5e-9)).unwrap();
        (ckt, b, res)
    }

    #[test]
    fn rc_delay_is_ln2_tau() {
        let (ckt, b, res) = pulsed_rc();
        // Input edge at 1 us; output crosses 0.5 ln(2)·tau later.
        let d = delay_from(&ckt, &res, b, 0.5, Edge::Rising, 1e-6).unwrap();
        let expect = 1e-6 * std::f64::consts::LN_2;
        assert!((d - expect).abs() < 0.01 * expect, "{d} vs {expect}");
    }

    #[test]
    fn missing_crossing_is_error() {
        let (ckt, b, res) = pulsed_rc();
        assert!(crossing_time(&ckt, &res, b, 2.0, Edge::Rising, 0.0).is_err());
    }

    #[test]
    fn settled_mean_of_flat_tail() {
        let (ckt, b, res) = pulsed_rc();
        // Tail of the run: input back at 0, output discharged.
        let m = settled_mean(&ckt, &res, b, 0.1);
        assert!(m.abs() < 1e-2, "tail mean {m}");
    }

    #[test]
    fn settled_mean_on_adaptive_grid() {
        // Same pulsed RC measured on the LTE-controlled grid: the tail mean
        // must agree with the fixed-grid value even though the tail holds
        // far fewer (and unevenly spaced) samples.
        let (ckt, b, res) = pulsed_rc();
        let fixed = settled_mean(&ckt, &res, b, 0.1);
        let mut opts = TranOptions::adaptive(
            20e-6,
            5e-9,
            crate::tran::AdaptiveOptions {
                reltol: 1e-5,
                abstol: 1e-8,
                ..Default::default()
            },
        );
        opts.x0 = Some(vec![0.0; ckt.n_unknowns()]);
        let ares = transient(&ckt, &opts).unwrap();
        assert!(!tranvar_num::interp::is_uniform_grid(&ares.times, 1e-9));
        let adaptive = settled_mean(&ckt, &ares, b, 0.1);
        assert!(
            (adaptive - fixed).abs() < 1e-3,
            "adaptive {adaptive} vs fixed {fixed}"
        );
    }

    #[test]
    fn average_period_of_pulse_train() {
        // Drive a node directly with a pulse source; period = 20 us.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 9e-6,
                period: 20e-6,
            }),
        );
        ckt.add_resistor("R1", a, NodeId::GROUND, 1e3);
        let res = transient(&ckt, &TranOptions::new(100e-6, 1e-8)).unwrap();
        let p = average_period(&ckt, &res, a, 0.5, 3).unwrap();
        assert!((p - 20e-6).abs() < 1e-8, "period {p}");
        let f = average_frequency(&ckt, &res, a, 0.5, 3).unwrap();
        assert!((f - 5e4).abs() < 50.0);
    }
}
