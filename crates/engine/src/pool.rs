//! A thread-safe pool of reusable [`Session`]s with panic retirement.
//!
//! Long-running services amortize symbolic analyses by keeping warm
//! sessions around, but a caught worker panic leaves a session's caches in
//! an unknown state (PR-6 campaign isolation retires such sessions rather
//! than trust them). A [`SessionPool`] packages that policy behind a
//! checkout/return API shared by many worker threads:
//!
//! - [`SessionPool::checkout`] hands out an idle warm session, or a fresh
//!   one when none is idle — callers never block on each other's solves;
//! - [`SessionPool::give_back`] returns a healthy session for reuse;
//! - [`SessionPool::retire`] destroys a session whose solve panicked
//!   (merging its structural-work counters into the pool's retired total
//!   first) and, when the live count would fall below the configured
//!   floor, immediately replaces it with a fresh idle session — so a storm
//!   of injected panics can never drain the pool below its floor.
//!
//! The pool never observes the panic itself: callers wrap solves in
//! `catch_unwind` (as the campaign layer does) and decide `give_back` vs
//! `retire`. A session checked out when the caller panics *without*
//! retiring is simply dropped — the pool's live count is corrected on the
//! next checkout sweep, and the floor refill happens there too.

use crate::session::{Session, SessionOptions, SessionStats};
use std::sync::Mutex;

#[derive(Debug, Default)]
struct PoolInner {
    idle: Vec<Session>,
    /// Sessions currently checked out.
    out: usize,
    /// Sessions destroyed via [`SessionPool::retire`].
    retired: usize,
    /// Structural-work counters merged from retired sessions.
    retired_stats: SessionStats,
}

/// A thread-safe checkout/return pool of [`Session`]s; see the
/// [module docs](self).
#[derive(Debug)]
pub struct SessionPool {
    opts: SessionOptions,
    floor: usize,
    inner: Mutex<PoolInner>,
}

impl SessionPool {
    /// Creates a pool that starts with `floor` idle sessions and never lets
    /// the live count (idle + checked out) drop below `floor`.
    pub fn new(opts: SessionOptions, floor: usize) -> Self {
        let idle = (0..floor).map(|_| Session::new(opts)).collect();
        SessionPool {
            opts,
            floor,
            inner: Mutex::new(PoolInner {
                idle,
                ..PoolInner::default()
            }),
        }
    }

    /// The configured floor.
    pub fn floor(&self) -> usize {
        self.floor
    }

    /// Sessions alive right now: idle plus checked out. Never below
    /// [`SessionPool::floor`] between balanced checkout/return cycles.
    pub fn live(&self) -> usize {
        let inner = self.lock();
        inner.idle.len() + inner.out
    }

    /// How many sessions have been retired over the pool's lifetime.
    pub fn retired(&self) -> usize {
        self.lock().retired
    }

    /// Structural-work counters of every retired session, merged.
    pub fn retired_stats(&self) -> SessionStats {
        self.lock().retired_stats
    }

    /// Hands out an idle session, or a fresh one when none is idle.
    pub fn checkout(&self) -> Session {
        let mut inner = self.lock();
        inner.out += 1;
        match inner.idle.pop() {
            Some(s) => s,
            None => Session::new(self.opts),
        }
    }

    /// Returns a healthy session to the idle set.
    pub fn give_back(&self, session: Session) {
        let mut inner = self.lock();
        inner.out = inner.out.saturating_sub(1);
        inner.idle.push(session);
    }

    /// Destroys a session whose solve panicked, merging its stats, and
    /// refills the idle set if the live count fell below the floor.
    pub fn retire(&self, session: Session) {
        let mut inner = self.lock();
        inner.out = inner.out.saturating_sub(1);
        inner.retired += 1;
        inner.retired_stats = inner.retired_stats.merged(session.stats());
        drop(session);
        while inner.idle.len() + inner.out < self.floor {
            inner.idle.push(Session::new(self.opts));
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        // A poisoned pool lock only means another worker panicked while
        // touching the (always-consistent) counters; keep serving.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(floor: usize) -> SessionPool {
        SessionPool::new(SessionOptions::default(), floor)
    }

    #[test]
    fn checkout_reuses_idle_sessions_and_grows_past_floor() {
        let p = pool(2);
        assert_eq!(p.live(), 2);
        let a = p.checkout();
        let b = p.checkout();
        let c = p.checkout(); // beyond the floor: fresh session
        assert_eq!(p.live(), 3);
        p.give_back(a);
        p.give_back(b);
        p.give_back(c);
        assert_eq!(p.live(), 3);
    }

    #[test]
    fn retire_refills_to_floor_and_merges_stats() {
        use tranvar_circuit::{Circuit, NodeId, Waveform};
        let p = pool(2);
        let mut s = p.checkout();
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        ckt.add_resistor("R1", a, NodeId::GROUND, 1e3);
        s.dc_operating_point(&ckt, &Default::default()).unwrap();
        let worked = s.stats();
        assert!(worked.pattern_builds > 0);
        p.retire(s);
        // The retired session's structural work is preserved in the pool.
        assert_eq!(p.retired_stats(), worked);
        assert_eq!(p.retired(), 1);
        assert_eq!(p.live(), 2, "floor must be restored after retirement");
        // Beyond-floor sessions are not replaced on retirement.
        let a = p.checkout();
        let b = p.checkout();
        let c = p.checkout();
        p.give_back(a);
        p.give_back(b);
        p.retire(c);
        assert_eq!(p.live(), 2);
        assert_eq!(p.retired(), 2);
    }

    #[test]
    fn concurrent_checkout_return_with_panicking_workers_keeps_floor() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Arc;
        let p = Arc::new(pool(3));
        let workers = 8;
        std::thread::scope(|sc| {
            for w in 0..workers {
                let p = p.clone();
                sc.spawn(move || {
                    for i in 0..25 {
                        let session = p.checkout();
                        // Odd workers panic on every 5th solve; the panic is
                        // caught at the worker boundary exactly like the
                        // serve/campaign layers do.
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            if w % 2 == 1 && i % 5 == 0 {
                                panic!("injected worker panic");
                            }
                        }));
                        match r {
                            Ok(()) => p.give_back(session),
                            Err(_) => p.retire(session),
                        }
                        assert!(p.live() >= p.floor(), "pool shrank below floor");
                    }
                });
            }
        });
        assert!(p.live() >= 3);
        assert_eq!(p.retired(), 4 * 5); // 4 odd workers × 5 panics each
    }
}
