//! # tranvar-engine
//!
//! Circuit analyses for the `tranvar` workspace: the SPICE-class machinery
//! the paper assumes as its substrate.
//!
//! - [`dc`]: operating point via damped Newton with gmin/source stepping,
//! - [`tran`]: BE/trapezoidal transient on a fixed or LTE-controlled
//!   adaptive grid ([`tran::StepControl`]), plus the one-period integrator
//!   with per-step factorization records reused by PSS and LPTV,
//! - [`ac`]: small-signal analysis (the LTI limit the LPTV solver must
//!   reduce to),
//! - [`sens`]: DC sensitivities (`.SENS`, paper refs. \[20\],\[26\]) and the
//!   shared θ-method parameter RHS,
//! - [`transens`]: transient forward sensitivity — the expensive baseline
//!   of paper ref. \[23\] (cost ∝ #parameters, integrates through settling),
//! - [`mc`]: deterministic parallel Monte-Carlo driver (the paper's
//!   reference method, Table II),
//! - [`measure`]: delay/period/settled-value measurements shared by the
//!   Monte-Carlo and LPTV paths,
//! - [`session`]: shared solver state (pattern-keyed symbolic cache,
//!   workspace pools, thread policy) for running many analyses on one
//!   circuit without per-call setup — the substrate of the scenario
//!   campaigns in `tranvar-core`,
//! - [`par`]: the scoped worker-thread chunking shared by every batched
//!   analysis,
//! - [`budget`]: cooperative solve budgets (Newton iterations,
//!   factorizations, wall-clock deadline) checked once per Newton iteration,
//! - [`retry`]: bounded retry/fallback escalation (denser gmin → more
//!   source steps → halved timestep → the other solver backend) with a
//!   recorded attempt trail,
//! - [`fault`]: the deterministic fault-injection harness (behind the
//!   `fault-inject` feature) that makes every recovery path testable.

#![warn(missing_docs)]

pub mod ac;
pub mod budget;
pub mod dc;
pub mod error;
pub mod fault;
pub mod mc;
pub mod measure;
pub mod par;
pub mod pool;
pub mod retry;
pub mod sens;
pub mod session;
pub mod solver;
pub mod tran;
pub mod transens;

pub use budget::{BudgetKind, BudgetLimits, BudgetProgress, SolveBudget};
pub use dc::{dc_operating_point, DcOptions, NewtonOptions};
pub use error::EngineError;
pub use mc::{monte_carlo, monte_carlo_multi, McOptions, McResult};
pub use par::{chunk_ranges, map_scoped};
pub use pool::SessionPool;
pub use retry::{
    is_retryable, Attempt, Escalation, RetryPolicy, SolveDiagnostics, DEADLINE_SHORT_CIRCUIT,
};
pub use session::{Session, SessionOptions, SessionStats};
pub use solver::{FactoredJacobian, SolverKind, SolverStats};
pub use tran::{
    integrate_cycle, integrate_cycle_adaptive_with, integrate_cycle_with, transient,
    transient_with, AdaptiveOptions, CycleResult, CycleWorkspace, Integrator, StepControl,
    StepRecord, TranOptions, TranResult,
};
pub use transens::{effective_threads, effective_threads_for_work, MIN_WORK_PER_THREAD};
