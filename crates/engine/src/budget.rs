//! Cooperative solve budgets.
//!
//! A [`SolveBudget`] bounds how much work a solve pipeline may spend before
//! failing fast with [`EngineError::BudgetExceeded`]: total Newton
//! iterations, numeric factorization calls, and/or a wall-clock deadline.
//! The budget is *cooperative* — each engine checks it once per Newton
//! iteration (never per axpy), so a tripped budget surfaces at the next
//! iteration boundary rather than preempting mid-step. One budget can be
//! shared across an entire pipeline (DC seed → transient warmup → PSS
//! shooting → LPTV passes): it is a cheap `Arc` handle, and cloning it
//! shares the underlying counters.
//!
//! The default budget is unlimited and costs nothing on the hot path (a
//! single `Option` test per Newton iteration).
//!
//! ```
//! use tranvar_engine::budget::{BudgetLimits, SolveBudget};
//!
//! let budget = SolveBudget::new(BudgetLimits::default().max_newton_iters(500));
//! let mut opts = tranvar_engine::DcOptions::default();
//! opts.newton.budget = budget;
//! ```
//!
//! # Worked example: a budget tripping mid-transient
//!
//! A 1000-step transient of an RC needs at least one Newton iteration per
//! step, so a 20-iteration budget trips early — with a
//! [`BudgetProgress`] report saying how far the solve got and which limit
//! was exhausted:
//!
//! ```
//! use tranvar_circuit::{Circuit, NodeId, Waveform};
//! use tranvar_engine::budget::{BudgetKind, BudgetLimits, SolveBudget};
//! use tranvar_engine::tran::{transient, TranOptions};
//! use tranvar_engine::EngineError;
//!
//! let mut ckt = Circuit::new();
//! let a = ckt.node("a");
//! let b = ckt.node("b");
//! ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
//! ckt.add_resistor("R1", a, b, 1e3);
//! ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
//!
//! let mut opts = TranOptions::new(1e-6, 1e-9); // 1000 steps
//! opts.newton.budget = SolveBudget::new(BudgetLimits::default().max_newton_iters(20));
//! match transient(&ckt, &opts) {
//!     Err(EngineError::BudgetExceeded { progress, .. }) => {
//!         assert_eq!(progress.exhausted, BudgetKind::NewtonIters);
//!         assert!(progress.newton_iters > 20);
//!     }
//!     other => panic!("expected a tripped budget, got {other:?}"),
//! }
//! ```
//!
//! The same `SolveBudget` handle can be cloned into every stage of a
//! pipeline (DC seed, transient warm-up, PSS shooting, LPTV passes); the
//! counters are shared, so the *pipeline*, not each stage, is bounded.

use crate::error::EngineError;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The limits a [`SolveBudget`] enforces. All default to unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetLimits {
    /// Maximum total Newton iterations across every solve sharing the budget.
    pub max_newton_iters: Option<u64>,
    /// Maximum numeric factorization calls.
    pub max_factorizations: Option<u64>,
    /// Wall-clock deadline, measured from [`SolveBudget::new`].
    pub deadline: Option<Duration>,
}

impl BudgetLimits {
    /// Caps total Newton iterations.
    pub fn max_newton_iters(mut self, n: u64) -> Self {
        self.max_newton_iters = Some(n);
        self
    }

    /// Caps numeric factorization calls.
    pub fn max_factorizations(mut self, n: u64) -> Self {
        self.max_factorizations = Some(n);
        self
    }

    /// Sets a wall-clock deadline.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    fn is_unlimited(&self) -> bool {
        self.max_newton_iters.is_none()
            && self.max_factorizations.is_none()
            && self.deadline.is_none()
    }
}

/// Which [`BudgetLimits`] bound tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// `max_newton_iters` was reached.
    NewtonIters,
    /// `max_factorizations` was reached.
    Factorizations,
    /// The wall-clock deadline passed.
    Deadline,
}

/// Work completed when a budget ran out, carried by
/// [`EngineError::BudgetExceeded`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetProgress {
    /// Newton iterations spent across every solve sharing the budget.
    pub newton_iters: u64,
    /// Numeric factorization calls spent.
    pub factorizations: u64,
    /// Wall-clock time since the budget was created.
    pub elapsed: Duration,
    /// The limit that tripped.
    pub exhausted: BudgetKind,
}

impl fmt::Display for BudgetProgress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let which = match self.exhausted {
            BudgetKind::NewtonIters => "newton-iteration limit",
            BudgetKind::Factorizations => "factorization limit",
            BudgetKind::Deadline => "deadline",
        };
        write!(
            f,
            "{which} hit after {} newton iterations, {} factorizations, {:?}",
            self.newton_iters, self.factorizations, self.elapsed
        )
    }
}

#[derive(Debug)]
struct BudgetCore {
    limits: BudgetLimits,
    start: Instant,
    iters: AtomicU64,
    factors: AtomicU64,
}

/// A cooperative bound on solve work; see the [module docs](self).
///
/// Cloning shares the underlying counters; `SolveBudget::default()` is
/// unlimited. Equality compares the *configured limits* only (so options
/// structs holding a budget keep meaningful `PartialEq`), never the live
/// counters.
#[derive(Clone, Debug, Default)]
pub struct SolveBudget {
    core: Option<Arc<BudgetCore>>,
}

impl PartialEq for SolveBudget {
    fn eq(&self, other: &Self) -> bool {
        self.limits() == other.limits()
    }
}

impl SolveBudget {
    /// A budget with no limits; checks compile to a single `Option` test.
    pub fn unlimited() -> Self {
        SolveBudget::default()
    }

    /// Starts the clock on a budget with the given limits.
    ///
    /// Fully-default limits produce an unlimited budget (no counters kept).
    pub fn new(limits: BudgetLimits) -> Self {
        if limits.is_unlimited() {
            return SolveBudget::default();
        }
        SolveBudget {
            core: Some(Arc::new(BudgetCore {
                limits,
                start: Instant::now(),
                iters: AtomicU64::new(0),
                factors: AtomicU64::new(0),
            })),
        }
    }

    /// True when no limit is configured.
    pub fn is_unlimited(&self) -> bool {
        self.core.is_none()
    }

    /// The configured limits (all-`None` when unlimited).
    pub fn limits(&self) -> BudgetLimits {
        self.core.as_ref().map(|c| c.limits).unwrap_or_default()
    }

    /// Newton iterations spent so far (0 when unlimited).
    pub fn newton_iters(&self) -> u64 {
        self.core
            .as_ref()
            .map(|c| c.iters.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Numeric factorization calls spent so far (0 when unlimited).
    pub fn factorizations(&self) -> u64 {
        self.core
            .as_ref()
            .map(|c| c.factors.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Charges one Newton iteration and checks every limit.
    ///
    /// Engines call this at the top of each Newton (or shooting) iteration;
    /// `analysis` names the caller for the error message.
    #[inline]
    pub fn begin_iteration(&self, analysis: &str) -> Result<(), EngineError> {
        let Some(core) = self.core.as_deref() else {
            return Ok(());
        };
        core.iters.fetch_add(1, Ordering::Relaxed);
        Self::check(core, analysis)
    }

    /// Checks every limit without charging an iteration.
    ///
    /// Used at non-Newton checkpoints (e.g. per LPTV pass) so deadline and
    /// factorization limits still bound work that performs no Newton
    /// iterations of its own.
    #[inline]
    pub fn checkpoint(&self, analysis: &str) -> Result<(), EngineError> {
        let Some(core) = self.core.as_deref() else {
            return Ok(());
        };
        Self::check(core, analysis)
    }

    /// Charges one numeric factorization call.
    ///
    /// Counted next to the factor call; the limit is enforced at the next
    /// `begin_iteration`/`checkpoint` so the hot path stays branch-free.
    #[inline]
    pub fn count_factorization(&self) {
        if let Some(core) = self.core.as_deref() {
            core.factors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// True when a configured wall-clock deadline has already passed.
    ///
    /// Cheap enough to poll at coarse boundaries (retry-ladder rungs, queue
    /// admission): one `Option` test plus an `Instant::elapsed` when a
    /// deadline is configured. Always `false` without a deadline.
    pub fn deadline_expired(&self) -> bool {
        let Some(core) = self.core.as_deref() else {
            return false;
        };
        match core.limits.deadline {
            Some(d) => Self::elapsed(core) >= d,
            None => false,
        }
    }

    /// Time left until the deadline (`None` when no deadline is configured;
    /// `Some(ZERO)` once expired). Serving layers use this to derive
    /// `Retry-After` style hints and to refuse queueing doomed work.
    pub fn deadline_remaining(&self) -> Option<Duration> {
        let core = self.core.as_deref()?;
        let d = core.limits.deadline?;
        Some(d.saturating_sub(Self::elapsed(core)))
    }

    /// The [`EngineError::BudgetExceeded`] an expired deadline surfaces as,
    /// with live counter values attached. Used by callers that detect expiry
    /// at a coarse boundary (retry ladder, admission queue) rather than
    /// inside a Newton loop.
    pub fn deadline_exceeded(&self, analysis: &str) -> EngineError {
        match self.core.as_deref() {
            Some(core) => Self::exceeded(core, analysis, BudgetKind::Deadline),
            // An unlimited budget has no deadline to expire; synthesize an
            // empty progress report rather than panic if called anyway.
            None => EngineError::BudgetExceeded {
                analysis: analysis.to_string(),
                progress: BudgetProgress {
                    newton_iters: 0,
                    factorizations: 0,
                    elapsed: Duration::ZERO,
                    exhausted: BudgetKind::Deadline,
                },
            },
        }
    }

    fn elapsed(core: &BudgetCore) -> Duration {
        #[cfg(feature = "fault-inject")]
        if let Some(mocked) = crate::fault::mock_elapsed() {
            return mocked;
        }
        core.start.elapsed()
    }

    #[cold]
    fn exceeded(core: &BudgetCore, analysis: &str, exhausted: BudgetKind) -> EngineError {
        EngineError::BudgetExceeded {
            analysis: analysis.to_string(),
            progress: BudgetProgress {
                newton_iters: core.iters.load(Ordering::Relaxed),
                factorizations: core.factors.load(Ordering::Relaxed),
                elapsed: Self::elapsed(core),
                exhausted,
            },
        }
    }

    fn check(core: &BudgetCore, analysis: &str) -> Result<(), EngineError> {
        if let Some(max) = core.limits.max_newton_iters {
            if core.iters.load(Ordering::Relaxed) > max {
                return Err(Self::exceeded(core, analysis, BudgetKind::NewtonIters));
            }
        }
        if let Some(max) = core.limits.max_factorizations {
            if core.factors.load(Ordering::Relaxed) > max {
                return Err(Self::exceeded(core, analysis, BudgetKind::Factorizations));
            }
        }
        if let Some(deadline) = core.limits.deadline {
            if Self::elapsed(core) >= deadline {
                return Err(Self::exceeded(core, analysis, BudgetKind::Deadline));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = SolveBudget::unlimited();
        for _ in 0..10_000 {
            b.begin_iteration("test").unwrap();
            b.count_factorization();
        }
        assert!(b.is_unlimited());
        assert_eq!(b.newton_iters(), 0);
    }

    #[test]
    fn default_limits_are_unlimited() {
        assert!(SolveBudget::new(BudgetLimits::default()).is_unlimited());
    }

    #[test]
    fn newton_limit_trips_with_progress() {
        let b = SolveBudget::new(BudgetLimits::default().max_newton_iters(3));
        for _ in 0..3 {
            b.begin_iteration("dc").unwrap();
        }
        match b.begin_iteration("dc") {
            Err(EngineError::BudgetExceeded { analysis, progress }) => {
                assert_eq!(analysis, "dc");
                assert_eq!(progress.exhausted, BudgetKind::NewtonIters);
                assert_eq!(progress.newton_iters, 4);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn factorization_limit_trips_at_next_checkpoint() {
        let b = SolveBudget::new(BudgetLimits::default().max_factorizations(2));
        b.count_factorization();
        b.count_factorization();
        b.checkpoint("tran").unwrap();
        b.count_factorization();
        match b.checkpoint("tran") {
            Err(EngineError::BudgetExceeded { progress, .. }) => {
                assert_eq!(progress.exhausted, BudgetKind::Factorizations);
                assert_eq!(progress.factorizations, 3);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn clones_share_counters_and_compare_by_limits() {
        let a = SolveBudget::new(BudgetLimits::default().max_newton_iters(10));
        let b = a.clone();
        a.begin_iteration("x").unwrap();
        b.begin_iteration("x").unwrap();
        assert_eq!(a.newton_iters(), 2);
        // Same limits but separate counters still compare equal.
        let c = SolveBudget::new(BudgetLimits::default().max_newton_iters(10));
        assert_eq!(a, c);
        assert_ne!(a, SolveBudget::unlimited());
    }

    #[test]
    fn progress_displays_which_limit() {
        let p = BudgetProgress {
            newton_iters: 7,
            factorizations: 3,
            elapsed: Duration::from_millis(5),
            exhausted: BudgetKind::Deadline,
        };
        assert!(p.to_string().contains("deadline"));
        assert!(p.to_string().contains("7 newton iterations"));
    }
}
