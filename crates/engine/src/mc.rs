//! Parallel Monte-Carlo mismatch analysis — the reference method the paper
//! benchmarks against (Table II, Figs. 9/11/12).
//!
//! Each sample draws an independent Gaussian value for every registered
//! mismatch parameter (optionally through a correlation structure per paper
//! eq. 6), perturbs a clone of the circuit, and reruns the caller-provided
//! *nonlinear* measurement. The driver is deterministic for a fixed seed
//! regardless of thread count.

use crate::error::EngineError;
use std::sync::atomic::{AtomicUsize, Ordering};
use tranvar_circuit::Circuit;
use tranvar_num::rng::{standard_normal, CorrelatedNormal, Rng64};
use tranvar_num::stats::RunningStats;

/// Monte-Carlo controls.
#[derive(Clone, Debug)]
pub struct McOptions {
    /// Number of samples (the paper uses 1 000 and 10 000).
    pub n_samples: usize,
    /// RNG seed; fixed seed ⇒ fully reproducible sample set.
    pub seed: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Optional mixing matrix realizing correlated mismatch `Y = A·X`
    /// (paper eq. 6). `None` draws independent parameters.
    pub correlation: Option<CorrelatedNormal>,
}

impl McOptions {
    /// Independent-mismatch run with `n_samples` samples and a fixed seed.
    pub fn new(n_samples: usize, seed: u64) -> Self {
        McOptions {
            n_samples,
            seed,
            threads: 0,
            correlation: None,
        }
    }
}

/// Result of a scalar Monte-Carlo run.
#[derive(Clone, Debug)]
pub struct McResult {
    /// Per-sample measurements, in sample order (failed samples omitted).
    pub samples: Vec<f64>,
    /// Accumulated moments.
    pub stats: RunningStats,
    /// Number of samples whose measurement failed (non-convergence etc.).
    pub n_failed: usize,
}

/// Result of a vector-valued Monte-Carlo run (e.g. simultaneous delays at
/// two outputs for correlation extraction, Table I).
#[derive(Clone, Debug)]
pub struct McMultiResult {
    /// Per-sample measurement vectors, in sample order (failures omitted).
    pub samples: Vec<Vec<f64>>,
    /// Per-output accumulated moments.
    pub stats: Vec<RunningStats>,
    /// Number of failed samples.
    pub n_failed: usize,
}

/// Draws the full matrix of mismatch samples up front so results do not
/// depend on the thread count: `samples[i][k]` is parameter `k` of sample
/// `i`, already scaled by σ_k.
pub fn draw_samples(ckt: &Circuit, opts: &McOptions) -> Vec<Vec<f64>> {
    let sigmas = ckt.mismatch_sigmas();
    let mut rng = Rng64::seed_from(opts.seed);
    let mut out = Vec::with_capacity(opts.n_samples);
    for _ in 0..opts.n_samples {
        let deltas: Vec<f64> = match &opts.correlation {
            None => sigmas
                .iter()
                .map(|s| s * standard_normal(&mut rng))
                .collect(),
            Some(corr) => corr.sample(&mut rng),
        };
        out.push(deltas);
    }
    out
}

/// Runs a scalar-valued Monte-Carlo analysis.
///
/// `measure` receives a perturbed clone of the circuit and must return the
/// performance metric (it typically runs a DC/transient analysis internally).
///
/// # Examples
///
/// ```
/// use tranvar_circuit::{Circuit, NodeId, Waveform};
/// use tranvar_engine::mc::{monte_carlo, McOptions};
/// use tranvar_engine::dc::{dc_operating_point, DcOptions};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
/// let r1 = ckt.add_resistor("R1", a, b, 1e3);
/// ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
/// ckt.annotate_resistor_mismatch(r1, 10.0);
/// let res = monte_carlo(&ckt, &McOptions::new(200, 42), |c| {
///     let x = dc_operating_point(c, &DcOptions::default())?;
///     Ok(c.voltage(&x, c.find_node("b")?))
/// });
/// assert_eq!(res.samples.len(), 200);
/// assert!((res.stats.mean() - 0.5).abs() < 2e-3);
/// ```
pub fn monte_carlo<F>(ckt: &Circuit, opts: &McOptions, measure: F) -> McResult
where
    F: Fn(&Circuit) -> Result<f64, EngineError> + Sync,
{
    let multi = monte_carlo_multi(ckt, opts, |c| measure(c).map(|v| vec![v]));
    let mut stats = RunningStats::new();
    let samples: Vec<f64> = multi.samples.iter().map(|v| v[0]).collect();
    for &s in &samples {
        stats.push(s);
    }
    McResult {
        samples,
        stats,
        n_failed: multi.n_failed,
    }
}

/// Runs a vector-valued Monte-Carlo analysis (see [`monte_carlo`]).
pub fn monte_carlo_multi<F>(ckt: &Circuit, opts: &McOptions, measure: F) -> McMultiResult
where
    F: Fn(&Circuit) -> Result<Vec<f64>, EngineError> + Sync,
{
    let deltas = draw_samples(ckt, opts);
    let n = deltas.len();
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        opts.threads
    }
    .max(1);

    let next = AtomicUsize::new(0);
    let mut per_thread: Vec<Vec<(usize, Option<Vec<f64>>)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..threads {
            let next = &next;
            let deltas = &deltas;
            let measure = &measure;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut c = ckt.clone();
                    c.apply_mismatch(&deltas[i]);
                    local.push((i, measure(&c).ok()));
                }
                local
            }));
        }
        for h in handles {
            per_thread.push(h.join().expect("monte-carlo worker panicked"));
        }
    });

    let mut slots: Vec<Option<Vec<f64>>> = vec![None; n];
    for local in per_thread {
        for (i, r) in local {
            slots[i] = r;
        }
    }
    let mut samples = Vec::with_capacity(n);
    let mut n_failed = 0;
    for slot in slots {
        match slot {
            Some(v) => samples.push(v),
            None => n_failed += 1,
        }
    }
    let n_outputs = samples.first().map(|v| v.len()).unwrap_or(0);
    let mut stats = vec![RunningStats::new(); n_outputs];
    for s in &samples {
        for (j, v) in s.iter().enumerate() {
            stats[j].push(*v);
        }
    }
    McMultiResult {
        samples,
        stats,
        n_failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};
    use tranvar_circuit::{NodeId, Waveform};

    fn divider_with_mismatch() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        let r1 = ckt.add_resistor("R1", a, b, 1e3);
        let r2 = ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
        ckt.annotate_resistor_mismatch(r1, 10.0);
        ckt.annotate_resistor_mismatch(r2, 10.0);
        ckt
    }

    fn measure_b(c: &Circuit) -> Result<f64, EngineError> {
        let x = dc_operating_point(c, &DcOptions::default())?;
        Ok(c.voltage(&x, c.find_node("b")?))
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let ckt = divider_with_mismatch();
        let mut o1 = McOptions::new(64, 7);
        o1.threads = 1;
        let mut o4 = McOptions::new(64, 7);
        o4.threads = 4;
        let r1 = monte_carlo(&ckt, &o1, measure_b);
        let r4 = monte_carlo(&ckt, &o4, measure_b);
        assert_eq!(r1.samples, r4.samples);
    }

    #[test]
    fn divider_sigma_matches_linear_prediction() {
        let ckt = divider_with_mismatch();
        let res = monte_carlo(&ckt, &McOptions::new(4000, 11), measure_b);
        assert_eq!(res.n_failed, 0);
        // Linear: σ² = (|∂v/∂R1|·10)² + (|∂v/∂R2|·10)², |∂v/∂R| = 0.25 mV/Ω
        let s_lin = (2.0f64).sqrt() * 0.25e-3 * 10.0;
        let rel = (res.stats.std_dev() - s_lin) / s_lin;
        assert!(
            rel.abs() < 0.06,
            "sigma {} vs {}",
            res.stats.std_dev(),
            s_lin
        );
        assert!((res.stats.mean() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn multi_measurement_correlation() {
        // Measure (vb, -vb): perfectly anticorrelated.
        let ckt = divider_with_mismatch();
        let res = monte_carlo_multi(&ckt, &McOptions::new(500, 3), |c| {
            let v = measure_b(c)?;
            Ok(vec![v, -v])
        });
        let a: Vec<f64> = res.samples.iter().map(|s| s[0]).collect();
        let b: Vec<f64> = res.samples.iter().map(|s| s[1]).collect();
        let rho = tranvar_num::stats::pearson_correlation(&a, &b);
        assert!((rho + 1.0).abs() < 1e-12);
    }

    #[test]
    fn failures_are_counted_not_fatal() {
        let ckt = divider_with_mismatch();
        let res = monte_carlo(&ckt, &McOptions::new(10, 5), |c| {
            let v = measure_b(c)?;
            if v > 0.5 {
                Err(EngineError::Measurement("synthetic".into()))
            } else {
                Ok(v)
            }
        });
        assert_eq!(res.samples.len() + res.n_failed, 10);
        assert!(res.n_failed > 0);
    }
}
