//! Deterministic fault injection for exercising recovery paths.
//!
//! Every fault-tolerance mechanism in the workspace — non-finite guards,
//! budget deadlines, retry escalation, campaign panic isolation — has a
//! failure mode that is hard to provoke with a real circuit and impossible
//! to provoke *deterministically*. This module provides injectable failure
//! points so CI can drive each recovery path on demand, in the spirit of
//! the bit-identity property tests: same plan, same failures, every run.
//!
//! The harness is gated behind the `fault-inject` cargo feature. Without
//! the feature every hook is an `#[inline(always)]` no-op and the product
//! code paths compile exactly as before; with it, a `FaultPlan` installed
//! on the current thread (and propagated to [`crate::par::map_scoped`]
//! workers) arms specific *sites*:
//!
//! ```ignore
//! use tranvar_engine::fault::{sites, FaultAction, FaultPlan};
//!
//! // Make the 3rd factorization call return a NaN factor, and panic when
//! // campaign scenario 1 is solved.
//! let _guard = FaultPlan::new()
//!     .fail(sites::FACTOR, 2, FaultAction::NonFinite)
//!     .fail(sites::SCENARIO, 1, FaultAction::Panic)
//!     .install();
//! ```
//!
//! Two trigger styles exist: *counted* sites fire on the n-th call at that
//! site (per-plan call counter), *indexed* sites fire when the caller's own
//! index (attempt number, scenario ordinal) matches. A plan also carries an
//! optional mock clock consulted by [`crate::budget::SolveBudget`] deadline
//! checks, so deadline tests never sleep.
//!
//! # Worked example: forcing the retry ladder to climb
//!
//! With `fault-inject` enabled, an armed [`sites::RETRY_ATTEMPT`] makes
//! attempt 0 of a [`crate::retry`] solve fail with a synthetic
//! `NoConvergence`, so the ladder *must* climb to its first real rung —
//! deterministically, on a circuit that would otherwise solve first try
//! (the doctest body compiles away without the feature):
//!
//! ```
//! # #[cfg(feature = "fault-inject")] fn main() {
//! use tranvar_circuit::{Circuit, NodeId, Waveform};
//! use tranvar_engine::dc::DcOptions;
//! use tranvar_engine::fault::{sites, FaultAction, FaultPlan};
//! use tranvar_engine::retry::{dc_operating_point_resilient, RetryPolicy};
//!
//! let mut ckt = Circuit::new();
//! let a = ckt.node("a");
//! ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
//! ckt.add_resistor("R1", a, NodeId::GROUND, 1e3);
//!
//! let _guard = FaultPlan::new()
//!     .fail(sites::RETRY_ATTEMPT, 0, FaultAction::NoConverge)
//!     .install();
//! let (res, diag) =
//!     dc_operating_point_resilient(&ckt, &DcOptions::default(), &RetryPolicy::default());
//! assert!(res.is_ok());
//! assert_eq!(diag.succeeded_stage(), Some("retry[1]:denser-gmin"));
//! # }
//! # #[cfg(not(feature = "fault-inject"))] fn main() {}
//! ```

/// Site names for the injectable failure points.
///
/// Present (and referenced by product code) regardless of the feature so
/// call sites need no `cfg` — the hooks themselves compile to no-ops
/// without `fault-inject`.
pub mod sites {
    /// Counted: every `JacobianWorkspace::factor`/`factor_owned` call.
    pub const FACTOR: &str = "engine::solver::factor";
    /// Counted: the residual-norm check in each DC Newton iteration.
    pub const DC_RESIDUAL: &str = "engine::dc::residual";
    /// Counted: the update-norm check in each transient Newton iteration.
    pub const TRAN_UPDATE: &str = "engine::tran::update";
    /// Counted: the LTE error-norm evaluation of each adaptive-step verdict
    /// (poisoning it forces a rejection, so a range of hits simulates a
    /// rejected-step storm).
    pub const TRAN_LTE: &str = "engine::tran::lte";
    /// Indexed: one per DC homotopy stage solve (direct, gmin walk entries,
    /// source steps), in attempt order.
    pub const DC_STAGE: &str = "engine::dc::stage";
    /// Indexed: one per retry-escalation attempt.
    pub const RETRY_ATTEMPT: &str = "engine::retry::attempt";
    /// Indexed: one per unique campaign solve, in scenario order.
    pub const SCENARIO: &str = "core::campaign::scenario";
    /// Indexed: one per accepted server request, in admission order.
    pub const SERVE_REQUEST: &str = "serve::request";
    /// Indexed: one per unique server-side solve, in solve order.
    pub const SERVE_SOLVE: &str = "serve::solve";
    /// Indexed: one per server worker, by worker ordinal. Armed with
    /// [`FaultAction::Stall`](super::FaultAction::Stall) it parks that
    /// worker until `FaultGuard::release_stalls` (or guard drop).
    pub const SERVE_WORKER: &str = "serve::worker";
}

/// What an armed site does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Return `NumError::Singular` (counted sites) or the engine-level
    /// equivalent (indexed sites).
    Singular,
    /// Return `NumError::NonFinite` / `EngineError::NonFinite`.
    NonFinite,
    /// Poison a residual/update with NaN (counted guard sites only).
    PoisonNan,
    /// Return a synthetic `EngineError::NoConvergence` (indexed sites).
    NoConverge,
    /// Panic with an "injected panic" message.
    Panic,
    /// Expire the plan's mock clock: the first firing pins the mocked
    /// elapsed time far past any configured deadline, so every
    /// `SolveBudget` deadline check sharing the plan trips from then on.
    /// The real budget machinery surfaces the resulting `BudgetExceeded`,
    /// not the hook.
    Expire,
    /// Park the calling thread until `FaultGuard::release_stalls` runs
    /// (or the installing guard drops). Used to simulate a stuck worker;
    /// a 30 s safety cap prevents a forgotten release from hanging CI.
    Stall,
}

#[cfg(feature = "fault-inject")]
pub use enabled::*;

#[cfg(feature = "fault-inject")]
mod enabled {
    use super::FaultAction;
    use crate::error::EngineError;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;
    use tranvar_num::NumError;

    /// What [`FaultAction::Expire`] pins the mock clock to: far enough past
    /// any test deadline that every subsequent check trips.
    const EXPIRED_ELAPSED: Duration = Duration::from_secs(100 * 365 * 24 * 3600);

    /// Safety cap on an armed stall, so a forgotten
    /// [`FaultGuard::release_stalls`] fails a test instead of hanging CI.
    const STALL_CAP: Duration = Duration::from_secs(30);

    /// One armed failure point: fires when the trigger index at `site`
    /// falls in `[from, from + count)`.
    #[derive(Clone, Debug)]
    struct FaultSpec {
        site: &'static str,
        from: usize,
        count: usize,
        action: FaultAction,
    }

    #[derive(Debug)]
    struct PlanState {
        specs: Vec<FaultSpec>,
        mock_elapsed: Mutex<Option<Duration>>,
        counters: Mutex<HashMap<&'static str, usize>>,
        /// `true` once stalls have been released; armed stalls park until
        /// then (or until [`STALL_CAP`]).
        stalls_released: Mutex<bool>,
        stall_cv: Condvar,
    }

    impl PlanState {
        fn fresh(specs: Vec<FaultSpec>, mock_elapsed: Option<Duration>) -> Self {
            PlanState {
                specs,
                mock_elapsed: Mutex::new(mock_elapsed),
                counters: Mutex::new(HashMap::new()),
                stalls_released: Mutex::new(false),
                stall_cv: Condvar::new(),
            }
        }

        fn bump(&self, site: &'static str) -> usize {
            let mut c = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            let n = c.entry(site).or_insert(0);
            let prev = *n;
            *n += 1;
            prev
        }

        fn action_at(&self, site: &str, idx: usize) -> Option<FaultAction> {
            self.specs
                .iter()
                .find(|s| s.site == site && idx >= s.from && idx < s.from + s.count)
                .map(|s| s.action)
        }

        fn expire_clock(&self) {
            *self.mock_elapsed.lock().unwrap_or_else(|e| e.into_inner()) = Some(EXPIRED_ELAPSED);
        }

        fn stall(&self) {
            let released = self
                .stalls_released
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            let _ = self
                .stall_cv
                .wait_timeout_while(released, STALL_CAP, |r| !*r);
        }

        fn release_stalls(&self) {
            *self
                .stalls_released
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = true;
            self.stall_cv.notify_all();
        }
    }

    thread_local! {
        static ACTIVE: RefCell<Option<Arc<PlanState>>> = const { RefCell::new(None) };
    }

    /// A builder for a set of armed failure points.
    #[derive(Debug, Default)]
    pub struct FaultPlan {
        specs: Vec<FaultSpec>,
        mock_elapsed: Option<Duration>,
    }

    impl FaultPlan {
        /// An empty plan (no armed sites).
        pub fn new() -> Self {
            FaultPlan::default()
        }

        /// Arms `site` to perform `action` on trigger index `at` (the n-th
        /// call for counted sites, the caller-supplied index for indexed
        /// sites).
        pub fn fail(self, site: &'static str, at: usize, action: FaultAction) -> Self {
            self.fail_range(site, at, 1, action)
        }

        /// Arms `site` for `count` consecutive trigger indices starting at
        /// `from`.
        pub fn fail_range(
            mut self,
            site: &'static str,
            from: usize,
            count: usize,
            action: FaultAction,
        ) -> Self {
            self.specs.push(FaultSpec {
                site,
                from,
                count,
                action,
            });
            self
        }

        /// Fixes the elapsed time every `SolveBudget` deadline check sees.
        pub fn mock_elapsed(mut self, d: Duration) -> Self {
            self.mock_elapsed = Some(d);
            self
        }

        /// Installs the plan on the current thread, returning an RAII guard
        /// that restores the previous plan on drop.
        pub fn install(self) -> FaultGuard {
            let state = Arc::new(PlanState::fresh(self.specs, self.mock_elapsed));
            let prev = ACTIVE.with(|a| a.replace(Some(state.clone())));
            FaultGuard { prev, state }
        }
    }

    /// RAII handle for an installed [`FaultPlan`].
    #[derive(Debug)]
    pub struct FaultGuard {
        prev: Option<Arc<PlanState>>,
        state: Arc<PlanState>,
    }

    impl FaultGuard {
        /// How many times `site` has been triggered under this plan.
        pub fn hits(&self, site: &str) -> usize {
            self.state
                .counters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(site)
                .copied()
                .unwrap_or(0)
        }

        /// Re-fixes the mocked elapsed time (e.g. to advance past a
        /// deadline mid-test).
        pub fn set_mock_elapsed(&self, d: Duration) {
            *self
                .state
                .mock_elapsed
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(d);
        }

        /// Wakes every thread parked by an armed [`FaultAction::Stall`].
        /// Idempotent; also runs automatically when the guard drops.
        pub fn release_stalls(&self) {
            self.state.release_stalls();
        }
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            // Never leave a worker parked behind a dead plan.
            self.state.release_stalls();
            let prev = self.prev.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }

    /// A shareable handle to the thread's active plan, for propagating into
    /// worker threads (see [`crate::par::map_scoped`]).
    #[derive(Clone, Debug)]
    pub struct ActivePlan(Arc<PlanState>);

    /// The current thread's active plan, if any.
    pub fn current() -> Option<ActivePlan> {
        ACTIVE.with(|a| a.borrow().clone()).map(ActivePlan)
    }

    /// Installs a shared plan on this (worker) thread; the guard restores
    /// the previous plan on drop.
    pub fn adopt(plan: Option<ActivePlan>) -> FaultGuard {
        let state = match plan {
            Some(p) => p.0,
            None => Arc::new(PlanState::fresh(Vec::new(), None)),
        };
        let prev = ACTIVE.with(|a| a.replace(Some(state.clone())));
        FaultGuard { prev, state }
    }

    fn with_active<R>(f: impl FnOnce(&PlanState) -> R) -> Option<R> {
        ACTIVE.with(|a| a.borrow().clone()).map(|st| f(&st))
    }

    /// Counted hook: an injected factorization failure at `site`, if armed
    /// for this call ordinal.
    pub fn numeric_fault(site: &'static str) -> Option<NumError> {
        with_active(|st| {
            let idx = st.bump(site);
            match st.action_at(site, idx) {
                Some(FaultAction::Singular) => Some(NumError::Singular { col: 0 }),
                Some(FaultAction::NonFinite) => Some(NumError::NonFinite { col: 0 }),
                Some(FaultAction::Panic) => panic!("injected panic at {site}[{idx}]"),
                _ => None,
            }
        })
        .flatten()
    }

    /// Counted hook: true when `site` should poison the current value with
    /// NaN.
    pub fn poison_nan(site: &'static str) -> bool {
        with_active(|st| {
            let idx = st.bump(site);
            matches!(st.action_at(site, idx), Some(FaultAction::PoisonNan))
        })
        .unwrap_or(false)
    }

    /// Indexed hook: an injected engine error for attempt/stage `index` at
    /// `site`, if armed.
    pub fn attempt_fault(site: &'static str, index: usize) -> Option<EngineError> {
        with_active(|st| {
            st.bump(site);
            match st.action_at(site, index) {
                Some(FaultAction::NoConverge) => Some(EngineError::NoConvergence {
                    analysis: site.to_string(),
                    detail: format!("injected fault at attempt {index}"),
                }),
                Some(FaultAction::NonFinite) => Some(EngineError::NonFinite {
                    analysis: site.to_string(),
                    detail: format!("injected fault at attempt {index}"),
                }),
                Some(FaultAction::Singular) => {
                    Some(EngineError::Num(NumError::Singular { col: 0 }))
                }
                Some(FaultAction::Panic) => panic!("injected panic at {site}[{index}]"),
                _ => None,
            }
        })
        .flatten()
    }

    /// Indexed hook for server-side injection points
    /// ([`super::sites::SERVE_REQUEST`], [`super::sites::SERVE_SOLVE`],
    /// [`super::sites::SERVE_WORKER`]).
    ///
    /// Extends [`attempt_fault`] with the two server-shaped actions:
    /// [`FaultAction::Expire`] pins the plan's mock clock past every
    /// deadline and lets the real budget machinery produce the error;
    /// [`FaultAction::Stall`] parks the calling thread until
    /// [`FaultGuard::release_stalls`] and then proceeds normally. Both
    /// return `None` (no synthetic error of their own).
    pub fn request_fault(site: &'static str, index: usize) -> Option<EngineError> {
        with_active(|st| {
            st.bump(site);
            match st.action_at(site, index) {
                Some(FaultAction::NoConverge) => Some(EngineError::NoConvergence {
                    analysis: site.to_string(),
                    detail: format!("injected fault at request {index}"),
                }),
                Some(FaultAction::NonFinite) => Some(EngineError::NonFinite {
                    analysis: site.to_string(),
                    detail: format!("injected fault at request {index}"),
                }),
                Some(FaultAction::Singular) => {
                    Some(EngineError::Num(NumError::Singular { col: 0 }))
                }
                Some(FaultAction::Panic) => panic!("injected panic at {site}[{index}]"),
                Some(FaultAction::Expire) => {
                    st.expire_clock();
                    None
                }
                Some(FaultAction::Stall) => {
                    st.stall();
                    None
                }
                Some(FaultAction::PoisonNan) | None => None,
            }
        })
        .flatten()
    }

    /// Indexed hook: panics if `site` is armed with [`FaultAction::Panic`]
    /// for `index`.
    pub fn panic_at(site: &'static str, index: usize) {
        let fire = with_active(|st| {
            st.bump(site);
            matches!(st.action_at(site, index), Some(FaultAction::Panic))
        })
        .unwrap_or(false);
        if fire {
            panic!("injected panic at {site}[{index}]");
        }
    }

    /// The mocked elapsed time for budget deadline checks, if set.
    pub fn mock_elapsed() -> Option<Duration> {
        with_active(|st| *st.mock_elapsed.lock().unwrap_or_else(|e| e.into_inner())).flatten()
    }
}

#[cfg(not(feature = "fault-inject"))]
mod disabled {
    use crate::error::EngineError;
    use tranvar_num::NumError;

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn numeric_fault(_site: &str) -> Option<NumError> {
        None
    }

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn poison_nan(_site: &str) -> bool {
        false
    }

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn attempt_fault(_site: &str, _index: usize) -> Option<EngineError> {
        None
    }

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn request_fault(_site: &str, _index: usize) -> Option<EngineError> {
        None
    }

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn panic_at(_site: &str, _index: usize) {}
}

#[cfg(not(feature = "fault-inject"))]
pub use disabled::*;

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;
    use crate::EngineError;
    use std::time::Duration;
    use tranvar_num::NumError;

    #[test]
    fn counted_site_fires_on_exact_ordinal() {
        let guard = FaultPlan::new()
            .fail(sites::FACTOR, 2, FaultAction::Singular)
            .install();
        assert_eq!(numeric_fault(sites::FACTOR), None);
        assert_eq!(numeric_fault(sites::FACTOR), None);
        assert_eq!(
            numeric_fault(sites::FACTOR),
            Some(NumError::Singular { col: 0 })
        );
        assert_eq!(numeric_fault(sites::FACTOR), None);
        assert_eq!(guard.hits(sites::FACTOR), 4);
    }

    #[test]
    fn indexed_site_ignores_call_order() {
        let _guard = FaultPlan::new()
            .fail(sites::RETRY_ATTEMPT, 1, FaultAction::NoConverge)
            .install();
        assert!(attempt_fault(sites::RETRY_ATTEMPT, 0).is_none());
        assert!(matches!(
            attempt_fault(sites::RETRY_ATTEMPT, 1),
            Some(EngineError::NoConvergence { .. })
        ));
        assert!(attempt_fault(sites::RETRY_ATTEMPT, 2).is_none());
    }

    #[test]
    fn plans_nest_and_restore() {
        assert_eq!(numeric_fault(sites::FACTOR), None);
        {
            let _outer = FaultPlan::new()
                .fail(sites::FACTOR, 0, FaultAction::Singular)
                .install();
            assert!(numeric_fault(sites::FACTOR).is_some());
            {
                let _inner = FaultPlan::new().install();
                assert_eq!(numeric_fault(sites::FACTOR), None);
            }
        }
        assert_eq!(numeric_fault(sites::FACTOR), None);
    }

    #[test]
    fn mock_clock_is_settable() {
        let guard = FaultPlan::new()
            .mock_elapsed(Duration::from_secs(1))
            .install();
        assert_eq!(mock_elapsed(), Some(Duration::from_secs(1)));
        guard.set_mock_elapsed(Duration::from_secs(5));
        assert_eq!(mock_elapsed(), Some(Duration::from_secs(5)));
    }

    #[test]
    fn plan_propagates_to_adopting_thread() {
        let _guard = FaultPlan::new()
            .fail(sites::FACTOR, 0, FaultAction::NonFinite)
            .install();
        let plan = current();
        let got = std::thread::scope(|s| {
            s.spawn(move || {
                let _adopted = adopt(plan);
                numeric_fault(sites::FACTOR)
            })
            .join()
            .unwrap()
        });
        assert_eq!(got, Some(NumError::NonFinite { col: 0 }));
    }

    #[test]
    fn expire_action_pins_the_mock_clock_for_the_whole_plan() {
        let _guard = FaultPlan::new()
            .fail(sites::SERVE_SOLVE, 1, FaultAction::Expire)
            .install();
        assert!(request_fault(sites::SERVE_SOLVE, 0).is_none());
        assert_eq!(mock_elapsed(), None);
        // Firing at index 1 expires the clock; no synthetic error returned.
        assert!(request_fault(sites::SERVE_SOLVE, 1).is_none());
        assert!(mock_elapsed().unwrap() >= Duration::from_secs(3600));
        // Budget deadline checks now trip through the real machinery.
        use crate::budget::{BudgetLimits, SolveBudget};
        let b = SolveBudget::new(BudgetLimits::default().deadline(Duration::from_secs(1)));
        assert!(b.deadline_expired());
    }

    #[test]
    fn stall_parks_until_release() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let guard = FaultPlan::new()
            .fail(sites::SERVE_WORKER, 0, FaultAction::Stall)
            .install();
        let plan = current();
        let passed = Arc::new(AtomicBool::new(false));
        let passed2 = passed.clone();
        std::thread::scope(|s| {
            let h = s.spawn(move || {
                let _adopted = adopt(plan);
                assert!(request_fault(sites::SERVE_WORKER, 0).is_none());
                passed2.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(Duration::from_millis(50));
            assert!(!passed.load(Ordering::SeqCst), "worker must be parked");
            guard.release_stalls();
            h.join().unwrap();
        });
        assert!(passed.load(Ordering::SeqCst));
        // Released stalls stay released: a second armed hit passes through.
        assert!(request_fault(sites::SERVE_WORKER, 0).is_none());
    }

    #[test]
    fn poison_fires_once() {
        let _guard = FaultPlan::new()
            .fail(sites::DC_RESIDUAL, 0, FaultAction::PoisonNan)
            .install();
        assert!(poison_nan(sites::DC_RESIDUAL));
        assert!(!poison_nan(sites::DC_RESIDUAL));
    }
}
