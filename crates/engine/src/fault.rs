//! Deterministic fault injection for exercising recovery paths.
//!
//! Every fault-tolerance mechanism in the workspace — non-finite guards,
//! budget deadlines, retry escalation, campaign panic isolation — has a
//! failure mode that is hard to provoke with a real circuit and impossible
//! to provoke *deterministically*. This module provides injectable failure
//! points so CI can drive each recovery path on demand, in the spirit of
//! the bit-identity property tests: same plan, same failures, every run.
//!
//! The harness is gated behind the `fault-inject` cargo feature. Without
//! the feature every hook is an `#[inline(always)]` no-op and the product
//! code paths compile exactly as before; with it, a `FaultPlan` installed
//! on the current thread (and propagated to [`crate::par::map_scoped`]
//! workers) arms specific *sites*:
//!
//! ```ignore
//! use tranvar_engine::fault::{sites, FaultAction, FaultPlan};
//!
//! // Make the 3rd factorization call return a NaN factor, and panic when
//! // campaign scenario 1 is solved.
//! let _guard = FaultPlan::new()
//!     .fail(sites::FACTOR, 2, FaultAction::NonFinite)
//!     .fail(sites::SCENARIO, 1, FaultAction::Panic)
//!     .install();
//! ```
//!
//! Two trigger styles exist: *counted* sites fire on the n-th call at that
//! site (per-plan call counter), *indexed* sites fire when the caller's own
//! index (attempt number, scenario ordinal) matches. A plan also carries an
//! optional mock clock consulted by [`crate::budget::SolveBudget`] deadline
//! checks, so deadline tests never sleep.
//!
//! # Worked example: forcing the retry ladder to climb
//!
//! With `fault-inject` enabled, an armed [`sites::RETRY_ATTEMPT`] makes
//! attempt 0 of a [`crate::retry`] solve fail with a synthetic
//! `NoConvergence`, so the ladder *must* climb to its first real rung —
//! deterministically, on a circuit that would otherwise solve first try
//! (the doctest body compiles away without the feature):
//!
//! ```
//! # #[cfg(feature = "fault-inject")] fn main() {
//! use tranvar_circuit::{Circuit, NodeId, Waveform};
//! use tranvar_engine::dc::DcOptions;
//! use tranvar_engine::fault::{sites, FaultAction, FaultPlan};
//! use tranvar_engine::retry::{dc_operating_point_resilient, RetryPolicy};
//!
//! let mut ckt = Circuit::new();
//! let a = ckt.node("a");
//! ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
//! ckt.add_resistor("R1", a, NodeId::GROUND, 1e3);
//!
//! let _guard = FaultPlan::new()
//!     .fail(sites::RETRY_ATTEMPT, 0, FaultAction::NoConverge)
//!     .install();
//! let (res, diag) =
//!     dc_operating_point_resilient(&ckt, &DcOptions::default(), &RetryPolicy::default());
//! assert!(res.is_ok());
//! assert_eq!(diag.succeeded_stage(), Some("retry[1]:denser-gmin"));
//! # }
//! # #[cfg(not(feature = "fault-inject"))] fn main() {}
//! ```

/// Site names for the injectable failure points.
///
/// Present (and referenced by product code) regardless of the feature so
/// call sites need no `cfg` — the hooks themselves compile to no-ops
/// without `fault-inject`.
pub mod sites {
    /// Counted: every `JacobianWorkspace::factor`/`factor_owned` call.
    pub const FACTOR: &str = "engine::solver::factor";
    /// Counted: the residual-norm check in each DC Newton iteration.
    pub const DC_RESIDUAL: &str = "engine::dc::residual";
    /// Counted: the update-norm check in each transient Newton iteration.
    pub const TRAN_UPDATE: &str = "engine::tran::update";
    /// Counted: the LTE error-norm evaluation of each adaptive-step verdict
    /// (poisoning it forces a rejection, so a range of hits simulates a
    /// rejected-step storm).
    pub const TRAN_LTE: &str = "engine::tran::lte";
    /// Indexed: one per DC homotopy stage solve (direct, gmin walk entries,
    /// source steps), in attempt order.
    pub const DC_STAGE: &str = "engine::dc::stage";
    /// Indexed: one per retry-escalation attempt.
    pub const RETRY_ATTEMPT: &str = "engine::retry::attempt";
    /// Indexed: one per unique campaign solve, in scenario order.
    pub const SCENARIO: &str = "core::campaign::scenario";
}

/// What an armed site does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Return `NumError::Singular` (counted sites) or the engine-level
    /// equivalent (indexed sites).
    Singular,
    /// Return `NumError::NonFinite` / `EngineError::NonFinite`.
    NonFinite,
    /// Poison a residual/update with NaN (counted guard sites only).
    PoisonNan,
    /// Return a synthetic `EngineError::NoConvergence` (indexed sites).
    NoConverge,
    /// Panic with an "injected panic" message.
    Panic,
}

#[cfg(feature = "fault-inject")]
pub use enabled::*;

#[cfg(feature = "fault-inject")]
mod enabled {
    use super::FaultAction;
    use crate::error::EngineError;
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;
    use tranvar_num::NumError;

    /// One armed failure point: fires when the trigger index at `site`
    /// falls in `[from, from + count)`.
    #[derive(Clone, Debug)]
    struct FaultSpec {
        site: &'static str,
        from: usize,
        count: usize,
        action: FaultAction,
    }

    #[derive(Debug)]
    struct PlanState {
        specs: Vec<FaultSpec>,
        mock_elapsed: Mutex<Option<Duration>>,
        counters: Mutex<HashMap<&'static str, usize>>,
    }

    impl PlanState {
        fn bump(&self, site: &'static str) -> usize {
            let mut c = self.counters.lock().unwrap_or_else(|e| e.into_inner());
            let n = c.entry(site).or_insert(0);
            let prev = *n;
            *n += 1;
            prev
        }

        fn action_at(&self, site: &str, idx: usize) -> Option<FaultAction> {
            self.specs
                .iter()
                .find(|s| s.site == site && idx >= s.from && idx < s.from + s.count)
                .map(|s| s.action)
        }
    }

    thread_local! {
        static ACTIVE: RefCell<Option<Arc<PlanState>>> = const { RefCell::new(None) };
    }

    /// A builder for a set of armed failure points.
    #[derive(Debug, Default)]
    pub struct FaultPlan {
        specs: Vec<FaultSpec>,
        mock_elapsed: Option<Duration>,
    }

    impl FaultPlan {
        /// An empty plan (no armed sites).
        pub fn new() -> Self {
            FaultPlan::default()
        }

        /// Arms `site` to perform `action` on trigger index `at` (the n-th
        /// call for counted sites, the caller-supplied index for indexed
        /// sites).
        pub fn fail(self, site: &'static str, at: usize, action: FaultAction) -> Self {
            self.fail_range(site, at, 1, action)
        }

        /// Arms `site` for `count` consecutive trigger indices starting at
        /// `from`.
        pub fn fail_range(
            mut self,
            site: &'static str,
            from: usize,
            count: usize,
            action: FaultAction,
        ) -> Self {
            self.specs.push(FaultSpec {
                site,
                from,
                count,
                action,
            });
            self
        }

        /// Fixes the elapsed time every `SolveBudget` deadline check sees.
        pub fn mock_elapsed(mut self, d: Duration) -> Self {
            self.mock_elapsed = Some(d);
            self
        }

        /// Installs the plan on the current thread, returning an RAII guard
        /// that restores the previous plan on drop.
        pub fn install(self) -> FaultGuard {
            let state = Arc::new(PlanState {
                specs: self.specs,
                mock_elapsed: Mutex::new(self.mock_elapsed),
                counters: Mutex::new(HashMap::new()),
            });
            let prev = ACTIVE.with(|a| a.replace(Some(state.clone())));
            FaultGuard { prev, state }
        }
    }

    /// RAII handle for an installed [`FaultPlan`].
    #[derive(Debug)]
    pub struct FaultGuard {
        prev: Option<Arc<PlanState>>,
        state: Arc<PlanState>,
    }

    impl FaultGuard {
        /// How many times `site` has been triggered under this plan.
        pub fn hits(&self, site: &str) -> usize {
            self.state
                .counters
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .get(site)
                .copied()
                .unwrap_or(0)
        }

        /// Re-fixes the mocked elapsed time (e.g. to advance past a
        /// deadline mid-test).
        pub fn set_mock_elapsed(&self, d: Duration) {
            *self
                .state
                .mock_elapsed
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = Some(d);
        }
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            let prev = self.prev.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }

    /// A shareable handle to the thread's active plan, for propagating into
    /// worker threads (see [`crate::par::map_scoped`]).
    #[derive(Clone, Debug)]
    pub struct ActivePlan(Arc<PlanState>);

    /// The current thread's active plan, if any.
    pub fn current() -> Option<ActivePlan> {
        ACTIVE.with(|a| a.borrow().clone()).map(ActivePlan)
    }

    /// Installs a shared plan on this (worker) thread; the guard restores
    /// the previous plan on drop.
    pub fn adopt(plan: Option<ActivePlan>) -> FaultGuard {
        let state = match plan {
            Some(p) => p.0,
            None => Arc::new(PlanState {
                specs: Vec::new(),
                mock_elapsed: Mutex::new(None),
                counters: Mutex::new(HashMap::new()),
            }),
        };
        let prev = ACTIVE.with(|a| a.replace(Some(state.clone())));
        FaultGuard { prev, state }
    }

    fn with_active<R>(f: impl FnOnce(&PlanState) -> R) -> Option<R> {
        ACTIVE.with(|a| a.borrow().clone()).map(|st| f(&st))
    }

    /// Counted hook: an injected factorization failure at `site`, if armed
    /// for this call ordinal.
    pub fn numeric_fault(site: &'static str) -> Option<NumError> {
        with_active(|st| {
            let idx = st.bump(site);
            match st.action_at(site, idx) {
                Some(FaultAction::Singular) => Some(NumError::Singular { col: 0 }),
                Some(FaultAction::NonFinite) => Some(NumError::NonFinite { col: 0 }),
                Some(FaultAction::Panic) => panic!("injected panic at {site}[{idx}]"),
                _ => None,
            }
        })
        .flatten()
    }

    /// Counted hook: true when `site` should poison the current value with
    /// NaN.
    pub fn poison_nan(site: &'static str) -> bool {
        with_active(|st| {
            let idx = st.bump(site);
            matches!(st.action_at(site, idx), Some(FaultAction::PoisonNan))
        })
        .unwrap_or(false)
    }

    /// Indexed hook: an injected engine error for attempt/stage `index` at
    /// `site`, if armed.
    pub fn attempt_fault(site: &'static str, index: usize) -> Option<EngineError> {
        with_active(|st| {
            st.bump(site);
            match st.action_at(site, index) {
                Some(FaultAction::NoConverge) => Some(EngineError::NoConvergence {
                    analysis: site.to_string(),
                    detail: format!("injected fault at attempt {index}"),
                }),
                Some(FaultAction::NonFinite) => Some(EngineError::NonFinite {
                    analysis: site.to_string(),
                    detail: format!("injected fault at attempt {index}"),
                }),
                Some(FaultAction::Singular) => {
                    Some(EngineError::Num(NumError::Singular { col: 0 }))
                }
                Some(FaultAction::Panic) => panic!("injected panic at {site}[{index}]"),
                _ => None,
            }
        })
        .flatten()
    }

    /// Indexed hook: panics if `site` is armed with [`FaultAction::Panic`]
    /// for `index`.
    pub fn panic_at(site: &'static str, index: usize) {
        let fire = with_active(|st| {
            st.bump(site);
            matches!(st.action_at(site, index), Some(FaultAction::Panic))
        })
        .unwrap_or(false);
        if fire {
            panic!("injected panic at {site}[{index}]");
        }
    }

    /// The mocked elapsed time for budget deadline checks, if set.
    pub fn mock_elapsed() -> Option<Duration> {
        with_active(|st| *st.mock_elapsed.lock().unwrap_or_else(|e| e.into_inner())).flatten()
    }
}

#[cfg(not(feature = "fault-inject"))]
mod disabled {
    use crate::error::EngineError;
    use tranvar_num::NumError;

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn numeric_fault(_site: &str) -> Option<NumError> {
        None
    }

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn poison_nan(_site: &str) -> bool {
        false
    }

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn attempt_fault(_site: &str, _index: usize) -> Option<EngineError> {
        None
    }

    /// No-op without the `fault-inject` feature.
    #[inline(always)]
    pub fn panic_at(_site: &str, _index: usize) {}
}

#[cfg(not(feature = "fault-inject"))]
pub use disabled::*;

#[cfg(all(test, feature = "fault-inject"))]
mod tests {
    use super::*;
    use crate::EngineError;
    use std::time::Duration;
    use tranvar_num::NumError;

    #[test]
    fn counted_site_fires_on_exact_ordinal() {
        let guard = FaultPlan::new()
            .fail(sites::FACTOR, 2, FaultAction::Singular)
            .install();
        assert_eq!(numeric_fault(sites::FACTOR), None);
        assert_eq!(numeric_fault(sites::FACTOR), None);
        assert_eq!(
            numeric_fault(sites::FACTOR),
            Some(NumError::Singular { col: 0 })
        );
        assert_eq!(numeric_fault(sites::FACTOR), None);
        assert_eq!(guard.hits(sites::FACTOR), 4);
    }

    #[test]
    fn indexed_site_ignores_call_order() {
        let _guard = FaultPlan::new()
            .fail(sites::RETRY_ATTEMPT, 1, FaultAction::NoConverge)
            .install();
        assert!(attempt_fault(sites::RETRY_ATTEMPT, 0).is_none());
        assert!(matches!(
            attempt_fault(sites::RETRY_ATTEMPT, 1),
            Some(EngineError::NoConvergence { .. })
        ));
        assert!(attempt_fault(sites::RETRY_ATTEMPT, 2).is_none());
    }

    #[test]
    fn plans_nest_and_restore() {
        assert_eq!(numeric_fault(sites::FACTOR), None);
        {
            let _outer = FaultPlan::new()
                .fail(sites::FACTOR, 0, FaultAction::Singular)
                .install();
            assert!(numeric_fault(sites::FACTOR).is_some());
            {
                let _inner = FaultPlan::new().install();
                assert_eq!(numeric_fault(sites::FACTOR), None);
            }
        }
        assert_eq!(numeric_fault(sites::FACTOR), None);
    }

    #[test]
    fn mock_clock_is_settable() {
        let guard = FaultPlan::new()
            .mock_elapsed(Duration::from_secs(1))
            .install();
        assert_eq!(mock_elapsed(), Some(Duration::from_secs(1)));
        guard.set_mock_elapsed(Duration::from_secs(5));
        assert_eq!(mock_elapsed(), Some(Duration::from_secs(5)));
    }

    #[test]
    fn plan_propagates_to_adopting_thread() {
        let _guard = FaultPlan::new()
            .fail(sites::FACTOR, 0, FaultAction::NonFinite)
            .install();
        let plan = current();
        let got = std::thread::scope(|s| {
            s.spawn(move || {
                let _adopted = adopt(plan);
                numeric_fault(sites::FACTOR)
            })
            .join()
            .unwrap()
        });
        assert_eq!(got, Some(NumError::NonFinite { col: 0 }));
    }

    #[test]
    fn poison_fires_once() {
        let _guard = FaultPlan::new()
            .fail(sites::DC_RESIDUAL, 0, FaultAction::PoisonNan)
            .install();
        assert!(poison_nan(sites::DC_RESIDUAL));
        assert!(!poison_nan(sites::DC_RESIDUAL));
    }
}
