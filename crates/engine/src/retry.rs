//! Bounded retry/fallback escalation for failed solves.
//!
//! Yield-style campaigns push circuits into exactly the corners where a
//! solve is most likely to fail; a [`RetryPolicy`] gives those failures a
//! second (and third, ...) chance without unbounded work. On a retryable
//! failure — [`EngineError::NoConvergence`], [`EngineError::NonFinite`], a
//! singular/non-finite factorization — the solve escalates through a fixed
//! ladder of progressively more conservative configurations:
//!
//! 1. **denser gmin schedule** — geometric midpoints inserted between the
//!    configured gmin steps (DC),
//! 2. **more source steps** — 4× the source-stepping resolution (DC),
//! 3. **halved timestep** (transient) — under
//!    [`StepControl::Adaptive`](crate::tran::StepControl) this rung also
//!    tightens `reltol`/`abstol` 10×, since the LTE controller, not `dt`,
//!    owns the accepted step sizes there,
//! 4. **the other [`SolverKind`] backend** — a pivot order that breaks down
//!    in one elimination scheme may survive the other.
//!
//! Rungs that do not apply to an analysis are skipped; escalations are
//! cumulative (the denser gmin schedule stays in force while source steps
//! increase). A tripped [`EngineError::BudgetExceeded`] is *not* retried:
//! the budget is a global bound and every further attempt would re-trip it.
//!
//! Every attempt — including the homotopy stages inside a DC attempt — is
//! recorded in a [`SolveDiagnostics`] trail, so a campaign report can say
//! not just *that* a corner needed rescue but *which* rung rescued it.
//!
//! # Worked example
//!
//! ```
//! use tranvar_circuit::{Circuit, NodeId, Waveform};
//! use tranvar_engine::dc::DcOptions;
//! use tranvar_engine::retry::{dc_operating_point_resilient, RetryPolicy};
//!
//! let mut ckt = Circuit::new();
//! let a = ckt.node("a");
//! let b = ckt.node("b");
//! ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
//! ckt.add_resistor("R1", a, b, 1e3);
//! ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
//!
//! let (res, diag) =
//!     dc_operating_point_resilient(&ckt, &DcOptions::default(), &RetryPolicy::default());
//! let x = res.unwrap();
//! assert!((ckt.voltage(&x, b) - 1.0).abs() < 1e-6);
//! // A healthy solve needs no escalation; the trail still records the
//! // homotopy stage and the rung that succeeded.
//! assert_eq!(diag.stages(), vec!["dc:direct", "retry[0]:initial"]);
//! assert_eq!(diag.succeeded_stage(), Some("retry[0]:initial"));
//! ```
//!
//! Forcing the ladder to actually climb requires a failure on attempt 0 —
//! see [`crate::fault`] for the deterministic way to inject one.

use crate::budget::SolveBudget;
use crate::dc::{dc_operating_point_traced, DcOptions};
use crate::error::EngineError;
use crate::fault;
use crate::solver::SolverKind;
use crate::tran::{transient, TranOptions, TranResult};
use tranvar_circuit::Circuit;

/// Stage suffix recorded when the ladder stops because the shared budget's
/// wall-clock deadline has already expired (see `run_ladder`).
pub const DEADLINE_SHORT_CIRCUIT: &str = "deadline-short-circuit";

/// Bounds and enables the escalation ladder. The default enables every
/// rung with at most 5 total attempts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum total attempts, including the initial one.
    pub max_attempts: usize,
    /// Enable the denser-gmin-schedule rung (DC).
    pub denser_gmin: bool,
    /// Enable the more-source-steps rung (DC).
    pub more_source_steps: bool,
    /// Enable the halved-timestep rung (transient / periodic).
    pub halve_timestep: bool,
    /// Enable the other-backend rung.
    pub switch_backend: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            denser_gmin: true,
            more_source_steps: true,
            halve_timestep: true,
            switch_backend: true,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            denser_gmin: false,
            more_source_steps: false,
            halve_timestep: false,
            switch_backend: false,
        }
    }
}

/// One rung of the escalation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Escalation {
    /// The unmodified first attempt.
    Initial,
    /// Geometric midpoints inserted into the gmin schedule.
    DenserGmin,
    /// 4× source-stepping resolution.
    MoreSourceSteps,
    /// Halved integration timestep (doubled step count for periodic
    /// solves). On an adaptive-step transient the initial `dt` is halved
    /// *and* the LTE tolerances are tightened 10×, so the rung still forces
    /// a genuinely more conservative integration.
    HalveTimestep,
    /// The other linear-solver backend.
    SwitchBackend,
}

impl Escalation {
    /// Stable label used in [`Attempt::stage`] strings.
    pub fn label(self) -> &'static str {
        match self {
            Escalation::Initial => "initial",
            Escalation::DenserGmin => "denser-gmin",
            Escalation::MoreSourceSteps => "more-source-steps",
            Escalation::HalveTimestep => "halve-dt",
            Escalation::SwitchBackend => "switch-backend",
        }
    }
}

/// One recorded solve attempt: a homotopy stage or an escalation-ladder
/// rung.
#[derive(Clone, Debug, PartialEq)]
pub struct Attempt {
    /// What ran: `"dc:direct"`, `"dc:gmin[1.0e-5]"`, `"dc:source[3/20]"`,
    /// `"retry[1]:denser-gmin"`, ...
    pub stage: String,
    /// `None` if the attempt succeeded, otherwise the failure.
    pub error: Option<EngineError>,
}

/// The recorded attempt trail of one fault-tolerant solve.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveDiagnostics {
    /// Every attempt, in execution order.
    pub attempts: Vec<Attempt>,
}

impl SolveDiagnostics {
    /// An empty trail.
    pub fn new() -> Self {
        SolveDiagnostics::default()
    }

    /// Appends one attempt record.
    pub fn record(&mut self, stage: String, error: Option<EngineError>) {
        self.attempts.push(Attempt { stage, error });
    }

    /// The stage labels in execution order.
    pub fn stages(&self) -> Vec<&str> {
        self.attempts.iter().map(|a| a.stage.as_str()).collect()
    }

    /// The label of the last successful attempt, if any.
    pub fn succeeded_stage(&self) -> Option<&str> {
        self.attempts
            .iter()
            .rev()
            .find(|a| a.error.is_none())
            .map(|a| a.stage.as_str())
    }

    /// How many retry-ladder attempts were recorded (homotopy stages within
    /// an attempt are not counted).
    pub fn retry_attempts(&self) -> usize {
        self.attempts
            .iter()
            .filter(|a| a.stage.starts_with("retry["))
            .count()
    }

    /// Merges another trail's attempts onto this one.
    pub fn extend(&mut self, other: SolveDiagnostics) {
        self.attempts.extend(other.attempts);
    }
}

/// True when the retry ladder is allowed to re-attempt after `e`.
pub fn is_retryable(e: &EngineError) -> bool {
    use tranvar_num::NumError;
    matches!(
        e,
        EngineError::NoConvergence { .. }
            | EngineError::NonFinite { .. }
            | EngineError::Num(NumError::Singular { .. })
            | EngineError::Num(NumError::NonFinite { .. })
    )
}

fn flip(kind: SolverKind) -> SolverKind {
    match kind {
        SolverKind::Dense => SolverKind::Sparse,
        // Both sparse variants fall back to the dense kernel, whose fresh
        // full pivot search is the most robust escape from a bad pivot order.
        SolverKind::Sparse | SolverKind::SparseOrdered => SolverKind::Dense,
    }
}

/// Inserts a geometric midpoint between consecutive schedule entries.
fn densify_gmin(schedule: &[f64]) -> Vec<f64> {
    if schedule.is_empty() {
        return vec![1e-3, 1e-6, 1e-9, 1e-12];
    }
    let mut out = Vec::with_capacity(schedule.len() * 2);
    for w in schedule.windows(2) {
        out.push(w[0]);
        let mid = (w[0] * w[1]).sqrt();
        if mid.is_finite() && mid > 0.0 {
            out.push(mid);
        }
    }
    out.push(schedule[schedule.len() - 1]);
    out
}

/// The ladder for DC solves under `policy` (timestep rung skipped).
pub(crate) fn dc_ladder(policy: &RetryPolicy) -> Vec<Escalation> {
    let mut l = vec![Escalation::Initial];
    if policy.denser_gmin {
        l.push(Escalation::DenserGmin);
    }
    if policy.more_source_steps {
        l.push(Escalation::MoreSourceSteps);
    }
    if policy.switch_backend {
        l.push(Escalation::SwitchBackend);
    }
    l
}

/// The ladder for transient solves under `policy` (gmin/source rungs are
/// DC-seed concerns and skipped here).
pub(crate) fn tran_ladder(policy: &RetryPolicy) -> Vec<Escalation> {
    let mut l = vec![Escalation::Initial];
    if policy.halve_timestep {
        l.push(Escalation::HalveTimestep);
    }
    if policy.switch_backend {
        l.push(Escalation::SwitchBackend);
    }
    l
}

/// Applies one rung (cumulatively) to DC options.
pub(crate) fn apply_dc(opts: &mut DcOptions, esc: Escalation) {
    match esc {
        Escalation::Initial | Escalation::HalveTimestep => {}
        Escalation::DenserGmin => opts.gmin_schedule = densify_gmin(&opts.gmin_schedule),
        Escalation::MoreSourceSteps => opts.source_steps = (opts.source_steps * 4).max(4),
        Escalation::SwitchBackend => opts.newton.solver = flip(opts.newton.solver),
    }
}

/// Applies one rung (cumulatively) to transient options.
pub(crate) fn apply_tran(opts: &mut TranOptions, esc: Escalation) {
    use crate::tran::StepControl;
    match esc {
        Escalation::Initial | Escalation::DenserGmin | Escalation::MoreSourceSteps => {}
        Escalation::HalveTimestep => {
            opts.dt /= 2.0;
            // In adaptive mode dt only seeds the first step — the retry
            // must reach the LTE controller to change the accepted grid.
            if let StepControl::Adaptive(a) = &mut opts.step_control {
                a.reltol /= 10.0;
                a.abstol /= 10.0;
            }
        }
        Escalation::SwitchBackend => opts.newton.solver = flip(opts.newton.solver),
    }
}

/// Runs the escalation loop shared by every resilient entry point.
///
/// `solve_one(i, esc, diag)` performs attempt `i` at rung `esc`; the
/// fault-injection site [`fault::sites::RETRY_ATTEMPT`] can fail any
/// attempt by index before the real solve runs. Each attempt is recorded;
/// non-retryable errors (including budget exhaustion) end the loop
/// immediately.
///
/// The ladder is deadline-aware: before every rung (including the first) it
/// checks whether `budget`'s wall-clock deadline has already expired, and if
/// so stops without spending the attempt. An escalation rung is the most
/// expensive work a solve can re-spend (denser homotopy, 4× source steps,
/// halved timestep), so burning one against an already-dead deadline only
/// delays the typed [`EngineError::BudgetExceeded`] the caller is owed. The
/// short-circuit is recorded as `retry[i]:deadline-short-circuit` in the
/// trail so diagnostics distinguish "rung i never ran" from "rung i failed".
pub(crate) fn run_ladder<T>(
    ladder: &[Escalation],
    max_attempts: usize,
    budget: &SolveBudget,
    diag: &mut SolveDiagnostics,
    mut solve_one: impl FnMut(Escalation, &mut SolveDiagnostics) -> Result<T, EngineError>,
) -> Result<T, EngineError> {
    let n = ladder.len().min(max_attempts.max(1));
    let mut last_err = None;
    for (i, &esc) in ladder.iter().take(n).enumerate() {
        if budget.deadline_expired() {
            let e = budget.deadline_exceeded("retry ladder");
            diag.record(
                format!("retry[{i}]:{DEADLINE_SHORT_CIRCUIT}"),
                Some(e.clone()),
            );
            return Err(e);
        }
        let res = match fault::attempt_fault(fault::sites::RETRY_ATTEMPT, i) {
            Some(e) => Err(e),
            None => solve_one(esc, diag),
        };
        diag.record(
            format!("retry[{i}]:{}", esc.label()),
            res.as_ref().err().cloned(),
        );
        match res {
            Ok(x) => return Ok(x),
            Err(e) if is_retryable(&e) => last_err = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last_err.unwrap_or_else(|| EngineError::BadConfig("retry ladder ran no attempts".into())))
}

/// DC operating point with retry/fallback escalation; returns the result
/// together with the full attempt trail.
///
/// Uses fresh per-attempt solver workspaces so the backend-switch rung is
/// exact; for session-cached solves see
/// [`crate::session::Session::dc_operating_point_resilient`].
pub fn dc_operating_point_resilient(
    ckt: &Circuit,
    opts: &DcOptions,
    policy: &RetryPolicy,
) -> (Result<Vec<f64>, EngineError>, SolveDiagnostics) {
    let mut diag = SolveDiagnostics::new();
    let ladder = dc_ladder(policy);
    let budget = opts.newton.budget.clone();
    let mut cur = opts.clone();
    let res = run_ladder(
        &ladder,
        policy.max_attempts,
        &budget,
        &mut diag,
        |esc, diag| {
            apply_dc(&mut cur, esc);
            dc_operating_point_traced(ckt, &cur, None, diag)
        },
    );
    (res, diag)
}

/// Transient analysis with retry/fallback escalation; returns the result
/// together with the attempt trail.
pub fn transient_resilient(
    ckt: &Circuit,
    opts: &TranOptions,
    policy: &RetryPolicy,
) -> (Result<TranResult, EngineError>, SolveDiagnostics) {
    let mut diag = SolveDiagnostics::new();
    let ladder = tran_ladder(policy);
    let budget = opts.newton.budget.clone();
    let mut cur = opts.clone();
    let res = run_ladder(
        &ladder,
        policy.max_attempts,
        &budget,
        &mut diag,
        |esc, _diag| {
            apply_tran(&mut cur, esc);
            transient(ckt, &cur)
        },
    );
    (res, diag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densify_inserts_geometric_midpoints() {
        let d = densify_gmin(&[1e-3, 1e-5, 1e-7]);
        assert_eq!(d.len(), 5);
        assert!((d[1] - 1e-4).abs() < 1e-12);
        assert!((d[3] - 1e-6).abs() < 1e-14);
        assert_eq!(d[4], 1e-7);
    }

    #[test]
    fn ladders_respect_policy_switches() {
        let all = RetryPolicy::default();
        assert_eq!(dc_ladder(&all).len(), 4);
        assert_eq!(tran_ladder(&all).len(), 3);
        let none = RetryPolicy::none();
        assert_eq!(dc_ladder(&none), vec![Escalation::Initial]);
        assert_eq!(tran_ladder(&none), vec![Escalation::Initial]);
    }

    #[test]
    fn halve_dt_rung_tightens_adaptive_tolerances() {
        use crate::tran::{AdaptiveOptions, StepControl, TranOptions};
        // Fixed mode: only dt halves.
        let mut fixed = TranOptions::new(1e-6, 1e-9);
        apply_tran(&mut fixed, Escalation::HalveTimestep);
        assert_eq!(fixed.dt, 0.5e-9);
        assert_eq!(fixed.step_control, StepControl::Fixed);
        // Adaptive mode: dt halves and both LTE tolerances tighten 10×.
        let a = AdaptiveOptions {
            reltol: 1e-3,
            abstol: 1e-6,
            ..AdaptiveOptions::default()
        };
        let mut adaptive = TranOptions::adaptive(1e-6, 1e-9, a);
        apply_tran(&mut adaptive, Escalation::HalveTimestep);
        assert_eq!(adaptive.dt, 0.5e-9);
        match adaptive.step_control {
            StepControl::Adaptive(a) => {
                assert_eq!(a.reltol, 1e-4);
                assert_eq!(a.abstol, 1e-7);
            }
            StepControl::Fixed => panic!("mode must be preserved"),
        }
        // The rung label is unchanged — diagnostics stay comparable across
        // fixed and adaptive campaigns.
        assert_eq!(Escalation::HalveTimestep.label(), "halve-dt");
    }

    #[test]
    fn budget_errors_are_not_retryable() {
        use crate::budget::{BudgetKind, BudgetProgress};
        use std::time::Duration;
        let e = EngineError::BudgetExceeded {
            analysis: "dc".into(),
            progress: BudgetProgress {
                newton_iters: 1,
                factorizations: 1,
                elapsed: Duration::ZERO,
                exhausted: BudgetKind::NewtonIters,
            },
        };
        assert!(!is_retryable(&e));
        assert!(is_retryable(&EngineError::NoConvergence {
            analysis: "dc".into(),
            detail: String::new(),
        }));
        assert!(is_retryable(&EngineError::Num(
            tranvar_num::NumError::NonFinite { col: 0 }
        )));
        assert!(!is_retryable(&EngineError::BadConfig("x".into())));
    }

    #[test]
    fn ladder_short_circuits_when_deadline_expires_mid_ladder() {
        use crate::budget::{BudgetKind, BudgetLimits, SolveBudget};
        use std::time::Duration;
        // The deadline outlives attempt 0 but not the work attempt 0 does:
        // the ladder must refuse to start rung 1 and record why.
        let budget = SolveBudget::new(BudgetLimits::default().deadline(Duration::from_millis(20)));
        let ladder = [
            Escalation::Initial,
            Escalation::DenserGmin,
            Escalation::SwitchBackend,
        ];
        let mut diag = SolveDiagnostics::new();
        let mut attempts_run = 0usize;
        let res: Result<(), EngineError> = run_ladder(&ladder, 5, &budget, &mut diag, |_, _| {
            attempts_run += 1;
            std::thread::sleep(Duration::from_millis(30));
            Err(EngineError::NoConvergence {
                analysis: "test".into(),
                detail: "injected".into(),
            })
        });
        assert_eq!(attempts_run, 1, "escalation must stop at the dead deadline");
        match res {
            Err(EngineError::BudgetExceeded { progress, .. }) => {
                assert_eq!(progress.exhausted, BudgetKind::Deadline);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        assert_eq!(
            diag.stages(),
            vec!["retry[0]:initial", "retry[1]:deadline-short-circuit"]
        );
        // The short-circuit record carries the typed error, not a blank.
        assert!(matches!(
            diag.attempts[1].error,
            Some(EngineError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn ladder_without_deadline_never_short_circuits() {
        let budget = crate::budget::SolveBudget::unlimited();
        let ladder = [Escalation::Initial, Escalation::SwitchBackend];
        let mut diag = SolveDiagnostics::new();
        let res: Result<(), EngineError> = run_ladder(&ladder, 5, &budget, &mut diag, |_, _| {
            Err(EngineError::NoConvergence {
                analysis: "test".into(),
                detail: "injected".into(),
            })
        });
        assert!(matches!(res, Err(EngineError::NoConvergence { .. })));
        assert_eq!(diag.retry_attempts(), 2);
    }

    #[test]
    fn resilient_dc_succeeds_first_try_with_single_attempt_trail() {
        use tranvar_circuit::{Circuit, NodeId, Waveform};
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
        let (res, diag) =
            dc_operating_point_resilient(&ckt, &DcOptions::default(), &RetryPolicy::default());
        let x = res.unwrap();
        assert!((ckt.voltage(&x, b) - 1.0).abs() < 1e-6);
        assert_eq!(diag.stages(), vec!["dc:direct", "retry[0]:initial"]);
        assert_eq!(diag.succeeded_stage(), Some("retry[0]:initial"));
        assert_eq!(diag.retry_attempts(), 1);
    }
}
