//! Transient forward sensitivity analysis — the expensive baseline the paper
//! contrasts against (reference \[23\], Hocevar et al.).
//!
//! Propagates `S_k(t) = ∂x(t)/∂p_k` for every mismatch parameter alongside a
//! nonlinear transient. Each timestep costs one factorization plus one
//! back-substitution *per parameter*; unlike the LPTV route it also has to
//! integrate through the entire settling transient (paper Fig. 5a), which is
//! exactly the waste the PSS+LPTV flow avoids (Fig. 5b).
//!
//! # Hot-path structure
//!
//! Even the "expensive baseline" should be as fast as the hardware allows.
//! The propagation is organized as a **windowed two-phase pipeline**:
//!
//! 1. *Integrate-and-factor phase* (serial): a window of nominal timesteps
//!    is advanced with the shared integrator, which already assembles and
//!    factors the step Jacobian at every accepted state — the factored
//!    `J_k` and coupling matrix `B_k` are recorded as a byproduct
//!    ([`crate::tran::StepRecord`]), so the sensitivity pass re-assembles
//!    and re-factors *nothing*. The symbolic pivot analysis is replayed
//!    across all steps ([`crate::solver::JacobianWorkspace`]) because the
//!    MNA pattern never changes.
//! 2. *Propagate phase* (parallel): the mismatch parameters are split into
//!    contiguous chunks, one worker thread per chunk ([`TranOptions::threads`]).
//!    Each worker advances its chunk through the window with a single
//!    multi-RHS batched solve per step
//!    ([`crate::solver::FactoredJacobian::solve_multi`]) over preallocated
//!    column-major blocks — **zero heap allocation inside the per-step
//!    parameter loop**. Each state's parameter derivatives are evaluated
//!    once (not once per adjacent step), and same-device parameter pairs
//!    (Pelgrom V_T/β) share one model evaluation
//!    ([`tranvar_circuit::Circuit::d_residual_dparams_into`]).
//!
//! Because every parameter's arithmetic is independent of the partitioning,
//! the result is bit-for-bit independent of the thread count, and matches
//! the sequential reference implementation
//! ([`transient_with_sensitivities_seq`]) to machine precision (the two
//! paths may pick different pivot orders, nothing more).
//!
//! Both paths follow whatever grid the integrator accepts: each
//! [`crate::tran::StepRecord`] carries its own step size and θ, so
//! [`crate::tran::StepControl::Adaptive`] runs propagate on the non-uniform
//! accepted grid with the same windowed pipeline (the only difference is
//! that the window is filled by the LTE controller instead of a uniform
//! step count).

use crate::dc::{dc_operating_point, DcOptions};
use crate::error::EngineError;
use crate::sens::{dc_sensitivities, param_step_rhs};
use crate::solver::{combine, FactoredJacobian};
use crate::tran::{StepControl, StepRecord, TranOptions, TranResult};
use tranvar_circuit::{Circuit, ParamDeriv};
use tranvar_num::dense::vecops;

/// Steps per factor/propagate window: bounds the number of simultaneously
/// stored per-step factorizations (memory ∝ `WINDOW·n²` for the dense
/// backend) while amortizing the per-window thread spawn.
const WINDOW: usize = 64;

/// Result of a transient run with parameter sensitivities.
#[derive(Clone, Debug)]
pub struct TranSensResult {
    /// The nominal transient.
    pub tran: TranResult,
    /// `sens[k][step][unknown] = ∂x/∂p_k` at each recorded time.
    pub sens: Vec<Vec<Vec<f64>>>,
}

/// How the sensitivity state is initialized at `t_start`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SensInit {
    /// `S(0) = ∂x_op/∂p` — the parameter also shifts the initial DC point
    /// (the physically complete choice).
    #[default]
    FromDc,
    /// `S(0) = 0` — the initial state is frozen (useful when the initial
    /// condition is enforced externally).
    Zero,
}

/// Shared preamble: validates options and computes the initial state and
/// sensitivity.
fn initial_state_and_sens(
    ckt: &Circuit,
    opts: &TranOptions,
    init: SensInit,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), EngineError> {
    crate::tran::validate_step_config(opts)?;
    let n = ckt.n_unknowns();
    let n_params = ckt.mismatch_params().len();
    let x0 = match &opts.x0 {
        Some(x) => x.clone(),
        None => dc_operating_point(
            ckt,
            &DcOptions {
                newton: opts.newton.clone(),
                ..DcOptions::default()
            },
        )?,
    };
    let s0: Vec<Vec<f64>> = match init {
        SensInit::FromDc => dc_sensitivities(ckt, &x0, opts.newton.solver)?,
        SensInit::Zero => vec![vec![0.0; n]; n_params],
    };
    Ok((x0, s0))
}

/// Per-chunk worker state that persists across windows: the interleaved
/// sensitivity block, the batched RHS blocks, and the parameter derivatives
/// at the previous state (the `x₁` evaluations of one step are the `x₀`
/// evaluations of the next, so each state is evaluated exactly once per
/// chunk).
struct ChunkState {
    k0: usize,
    /// Current sensitivities, interleaved: `s_cur[i·p + kk]` is unknown `i`
    /// of chunk-parameter `kk`.
    s_cur: Vec<f64>,
    block: Vec<f64>,
    scratch: Vec<f64>,
    w: Vec<f64>,
    pd_prev: Vec<ParamDeriv>,
    pd_cur: Vec<ParamDeriv>,
}

/// Advances one parameter chunk through one window of recorded steps —
/// the propagate phase of the pipeline, shared verbatim by the fixed-grid
/// and adaptive paths (each record carries its own `h` and `θ`, so the
/// arithmetic is grid-agnostic). `window_start` is the global step index of
/// `records[0]`; `sens_chunk[kk]` must already have storage through
/// `window_start + records.len() - 1`.
fn propagate_window(
    ckt: &Circuit,
    cs: &mut ChunkState,
    sens_chunk: &mut [Vec<Vec<f64>>],
    records: &[StepRecord],
    states: &[Vec<f64>],
    window_start: usize,
    n: usize,
) -> Result<(), EngineError> {
    let p = sens_chunk.len();
    for (si, rec) in records.iter().enumerate() {
        let step = window_start + si;
        // No device evaluation at all: the MOSFET operating points
        // were captured by the accepted assembly of this step, so
        // the derivatives come straight from the record.
        ckt.d_residual_dparams_with_ops(cs.k0, &states[step], &rec.mos_ops, &mut cs.pd_cur)?;
        // Zero-allocation inner loop over an interleaved block:
        // every factor entry becomes a p-wide contiguous axpy.
        rec.b.mat_vec_interleaved(&cs.s_cur, &mut cs.block, p);
        for kk in 0..p {
            // w in the θ-method order of `param_step_rhs`.
            cs.w.iter_mut().for_each(|v| *v = 0.0);
            for &(i, v) in &cs.pd_cur[kk].df {
                cs.w[i] += rec.theta * v;
            }
            for &(i, v) in &cs.pd_prev[kk].df {
                cs.w[i] += (1.0 - rec.theta) * v;
            }
            for &(i, v) in &cs.pd_cur[kk].dq {
                cs.w[i] += v / rec.h;
            }
            for &(i, v) in &cs.pd_prev[kk].dq {
                cs.w[i] -= v / rec.h;
            }
            for (i, wi) in cs.w.iter().enumerate() {
                cs.block[i * p + kk] -= *wi;
            }
        }
        rec.lu.solve_multi_lanes(&mut cs.block, p, &mut cs.scratch);
        std::mem::swap(&mut cs.s_cur, &mut cs.block);
        for (kk, hist) in sens_chunk.iter_mut().enumerate() {
            let out = &mut hist[step];
            for i in 0..n {
                out[i] = cs.s_cur[i * p + kk];
            }
        }
        std::mem::swap(&mut cs.pd_prev, &mut cs.pd_cur);
    }
    Ok(())
}

/// Runs a transient with forward parameter sensitivities for every mismatch
/// parameter of the circuit.
///
/// This is the batched, parallel path (see the module docs); use
/// [`TranOptions::threads`] to control the worker count. For the
/// per-parameter reference implementation see
/// [`transient_with_sensitivities_seq`].
///
/// # Errors
///
/// Propagates DC and per-step Newton failures.
pub fn transient_with_sensitivities(
    ckt: &Circuit,
    opts: &TranOptions,
    init: SensInit,
) -> Result<TranSensResult, EngineError> {
    transient_with_sensitivities_with(ckt, &mut crate::tran::CycleWorkspace::new(), opts, init)
}

/// [`transient_with_sensitivities`] with an explicit reusable integration
/// workspace: repeated runs on one circuit (scenario campaigns) skip the
/// per-call buffer allocation and — for the sparse backend — the symbolic
/// pivot re-analysis. For the dense backend the results are bit-identical
/// to a fresh per-call run.
///
/// # Errors
///
/// See [`transient_with_sensitivities`].
pub fn transient_with_sensitivities_with(
    ckt: &Circuit,
    ws: &mut crate::tran::CycleWorkspace,
    opts: &TranOptions,
    init: SensInit,
) -> Result<TranSensResult, EngineError> {
    let (x0, s0) = initial_state_and_sens(ckt, opts, init)?;
    let n = ckt.n_unknowns();
    let n_node = ckt.n_nodes() - 1;
    let n_params = ckt.mismatch_params().len();
    let h = opts.dt;
    // Fixed mode: the exact step count. Adaptive mode: the accepted count is
    // unknown ahead of time, so this initial-dt estimate only sizes the
    // thread pool and the preallocation; adaptive storage grows per window.
    let n_steps = ((opts.t_stop - opts.t_start) / opts.dt).round() as usize;
    let want_records = n_params > 0;
    let fixed = matches!(opts.step_control, StepControl::Fixed);

    // Preallocate the entire output so the propagation loops never allocate
    // (fixed mode; adaptive extends it window by window).
    let prealloc_steps = if fixed { n_steps } else { 0 };
    let mut sens: Vec<Vec<Vec<f64>>> = (0..n_params)
        .map(|k| {
            let mut per_step = vec![vec![0.0; n]; prealloc_steps + 1];
            per_step[0].copy_from_slice(&s0[k]);
            per_step
        })
        .collect();

    // Auto mode stays single-threaded when the whole propagation is too
    // small to amortize the per-window thread spawns (work proxy: one
    // triangular sweep per step per parameter ≈ steps·n²·p flops).
    let threads = effective_threads_for_work(
        opts.threads,
        n_params,
        n_steps * n * n * n_params.max(1),
        MIN_WORK_PER_THREAD,
    );
    let chunk = n_params.div_ceil(threads.max(1)).max(1);
    let mut chunk_states: Vec<ChunkState> = sens
        .chunks(chunk)
        .enumerate()
        .map(|(ci, sc)| {
            let p = sc.len();
            let k0 = ci * chunk;
            let mut s_cur = vec![0.0; n * p];
            for (kk, _) in sc.iter().enumerate() {
                for i in 0..n {
                    s_cur[i * p + kk] = s0[k0 + kk][i];
                }
            }
            let mut cs = ChunkState {
                k0,
                s_cur,
                block: vec![0.0; n * p],
                scratch: vec![0.0; tranvar_num::lanes_scratch_len(n, p)],
                w: vec![0.0; n],
                pd_prev: vec![ParamDeriv::default(); p],
                pd_cur: vec![ParamDeriv::default(); p],
            };
            ckt.d_residual_dparams_into(cs.k0, &x0, &mut cs.pd_prev)?;
            Ok(cs)
        })
        .collect::<Result<_, tranvar_circuit::CircuitError>>()?;

    // Nominal integration state (mirrors `tran::transient`, but records the
    // accepted per-step factorization J and coupling B so the sensitivity
    // pass never has to re-assemble or re-factor anything).
    let mut times = Vec::with_capacity(n_steps + 1);
    let mut states = Vec::with_capacity(n_steps + 1);
    times.push(opts.t_start);
    states.push(x0.clone());
    let st = ws.state_for(ckt, opts.newton.solver, &x0, opts.t_start);
    let mut records: Vec<StepRecord> = Vec::with_capacity(WINDOW.min(n_steps.max(1)));

    if let StepControl::Adaptive(a) = opts.step_control {
        // ── Adaptive: the shared LTE controller (the same driver behind
        // `tran::transient`, so the nominal trajectory is bitwise identical)
        // fills each window with accepted steps; the sensitivity storage
        // grows with the accepted grid, window by window.
        let mut drv = crate::tran::AdaptiveDriver::new(
            ckt,
            st,
            x0,
            opts.t_start,
            opts.t_stop,
            opts.dt,
            opts.method,
            opts.gmin,
            &a,
            n_node,
        );
        loop {
            records.clear();
            let window_start = states.len();
            let mut new_steps = 0usize;
            while new_steps < WINDOW {
                match drv.advance(ckt, st, &opts.newton, opts.gmin, want_records)? {
                    Some(stp) => {
                        if let Some(r) = stp.record {
                            records.push(r);
                        }
                        times.push(stp.t1);
                        states.push(drv.x.clone());
                        new_steps += 1;
                    }
                    None => break,
                }
            }
            if new_steps == 0 {
                break;
            }
            if want_records {
                for hist in sens.iter_mut() {
                    hist.resize_with(hist.len() + new_steps, || vec![0.0; n]);
                }
                let records_ref = &records;
                let states_ref = &states;
                let jobs: Vec<(&mut ChunkState, &mut [Vec<Vec<f64>>])> = chunk_states
                    .iter_mut()
                    .zip(sens.chunks_mut(chunk))
                    .collect();
                for r in crate::par::map_scoped(jobs, |(cs, sens_chunk)| {
                    propagate_window(
                        ckt,
                        cs,
                        sens_chunk,
                        records_ref,
                        states_ref,
                        window_start,
                        n,
                    )
                }) {
                    r?;
                }
            }
        }
        return Ok(TranSensResult {
            tran: TranResult { times, states },
            sens,
        });
    }

    let mut f_aug = st.asm_prev.f.clone();
    for (i, fi) in f_aug.iter_mut().enumerate().take(n_node) {
        *fi += opts.gmin * x0[i];
    }
    let mut q = st.asm_prev.q.clone();
    let mut x = x0;

    let mut window_start = 1usize;
    while window_start <= n_steps {
        let window_end = (window_start + WINDOW - 1).min(n_steps);
        // ── Integrate-and-factor phase: the Newton solve of each step
        // already assembles and (re)factors at the accepted state, so the
        // record captures J and B for free.
        records.clear();
        for step_idx in window_start..=window_end {
            let t0 = opts.t_start + (step_idx - 1) as f64 * opts.dt;
            let t1 = opts.t_start + step_idx as f64 * opts.dt;
            let rec = crate::tran::step(
                ckt,
                st,
                &mut x,
                &mut f_aug,
                &mut q,
                t0,
                t1,
                h,
                opts.method,
                &opts.newton,
                opts.gmin,
                want_records,
            )?;
            if let Some(r) = rec {
                records.push(r);
            }
            times.push(t1);
            states.push(x.clone());
        }
        if !want_records {
            window_start = window_end + 1;
            continue;
        }
        // ── Propagate phase: parameter chunks in parallel. One scoped
        // worker per (state, sensitivity) chunk pair via the shared helper;
        // a single chunk runs inline.
        let records_ref = &records;
        let states_ref = &states;
        let jobs: Vec<(&mut ChunkState, &mut [Vec<Vec<f64>>])> = chunk_states
            .iter_mut()
            .zip(sens.chunks_mut(chunk))
            .collect();
        for r in crate::par::map_scoped(jobs, |(cs, sens_chunk)| {
            propagate_window(
                ckt,
                cs,
                sens_chunk,
                records_ref,
                states_ref,
                window_start,
                n,
            )
        }) {
            r?;
        }
        window_start = window_end + 1;
    }
    Ok(TranSensResult {
        tran: TranResult { times, states },
        sens,
    })
}

/// Sequential per-parameter reference implementation: one factorization per
/// step (fresh pivot search), one allocating solve per parameter — the
/// pre-batching behavior, kept for validation and as the benchmark baseline.
///
/// # Errors
///
/// Propagates DC and per-step Newton failures.
pub fn transient_with_sensitivities_seq(
    ckt: &Circuit,
    opts: &TranOptions,
    init: SensInit,
) -> Result<TranSensResult, EngineError> {
    let (x0, s0) = initial_state_and_sens(ckt, opts, init)?;
    // Fixed mode re-runs the plain transient; adaptive mode drives the same
    // LTE controller as the batched path (so the grids match bitwise) and
    // keeps the per-step θ, which BE startup and post-rejection BE retries
    // make state-dependent.
    let (res, step_thetas) = match opts.step_control {
        StepControl::Fixed => {
            let res = crate::tran::transient(
                ckt,
                &TranOptions {
                    x0: Some(x0),
                    ..opts.clone()
                },
            )?;
            (res, Vec::new())
        }
        StepControl::Adaptive(a) => crate::tran::transient_adaptive_detailed(
            ckt,
            &mut crate::tran::CycleWorkspace::new(),
            opts,
            &a,
            x0,
        )?,
    };
    let fixed = matches!(opts.step_control, StepControl::Fixed);
    let n_node = ckt.n_nodes() - 1;
    let n_params = ckt.mismatch_params().len();

    let mut sens: Vec<Vec<Vec<f64>>> = vec![Vec::with_capacity(res.states.len()); n_params];
    for (k, s) in s0.iter().enumerate() {
        sens[k].push(s.clone());
    }
    // Propagate: J·S₁ = B·S₀ − w.
    for step in 1..res.states.len() {
        let (h, theta) = if fixed {
            (opts.dt, opts.method.theta())
        } else {
            // The driver derives each h from the time difference, so this
            // reconstruction is bitwise exact.
            (res.times[step] - res.times[step - 1], step_thetas[step - 1])
        };
        let x_prev = &res.states[step - 1];
        let x_cur = &res.states[step];
        let asm0 = ckt.assemble(x_prev, res.times[step - 1]);
        let asm1 = ckt.assemble(x_cur, res.times[step]);
        let j = FactoredJacobian::factor(
            opts.newton.solver,
            &asm1,
            theta,
            1.0 / h,
            theta * opts.gmin,
            n_node,
        )?;
        let b = combine(
            &asm0,
            -(1.0 - theta),
            1.0 / h,
            -(1.0 - theta) * opts.gmin,
            n_node,
        );
        for k in 0..n_params {
            let w = param_step_rhs(ckt, k, x_cur, x_prev, h, theta)?;
            let prev = sens[k].last().ok_or(tranvar_num::NumError::Internal {
                what: "sensitivity history empty mid-propagation",
            })?;
            let mut rhs = b.mat_vec(prev);
            vecops::axpy(&mut rhs, -1.0, &w);
            sens[k].push(j.solve(&rhs));
        }
    }
    Ok(TranSensResult { tran: res, sens })
}

/// Resolves a worker-thread count in the [`TranOptions::threads`] convention
/// shared by every batched analysis (transient sensitivities, the PSS
/// monodromy accumulation, the LPTV parameter responses): `0` means all
/// available cores, and the count never exceeds `n_jobs` independent work
/// items (so no worker is ever spawned idle).
pub fn effective_threads(requested: usize, n_jobs: usize) -> usize {
    let t = if requested == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        requested
    };
    t.clamp(1, n_jobs.max(1))
}

/// Default `min_work_per_thread` for [`effective_threads_for_work`]: one
/// physical calibration shared by every batched analysis — a std scoped
/// thread costs tens of microseconds to spawn+join against roughly 10 ns
/// per flop-proxy unit, so a worker needs ~2^16 units before the spawn
/// amortizes.
pub const MIN_WORK_PER_THREAD: usize = 1 << 16;

/// [`effective_threads`] with a work-size guard for the *automatic* mode:
/// when `requested == 0`, the worker count is additionally capped so that
/// each spawned thread receives at least `min_work_per_thread` of
/// `total_work` (arbitrary cost units — callers use a flop-count proxy).
/// A std scoped thread costs tens of microseconds to spawn and join, so
/// auto-threading a sub-100 µs problem would make it *slower*; explicit
/// nonzero requests are honored unchanged.
pub fn effective_threads_for_work(
    requested: usize,
    n_jobs: usize,
    total_work: usize,
    min_work_per_thread: usize,
) -> usize {
    let t = effective_threads(requested, n_jobs);
    if requested != 0 {
        return t;
    }
    t.min((total_work / min_work_per_thread.max(1)).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::{NodeId, Waveform};

    fn rc_with_mismatch() -> Circuit {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        let r1 = ckt.add_resistor("R1", a, b, 1e3);
        let c1 = ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-6);
        ckt.annotate_resistor_mismatch(r1, 10.0);
        ckt.annotate_capacitor_mismatch(c1, 1e-8);
        ckt
    }

    /// RC charging with a resistor-mismatch parameter: compare the
    /// propagated sensitivity against finite-difference re-simulation.
    #[test]
    fn rc_sensitivity_matches_finite_difference() {
        let ckt = rc_with_mismatch();
        let b = ckt.find_node("b").unwrap();

        let mut opts = TranOptions::new(1.5e-3, 5e-6);
        opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
        let res = transient_with_sensitivities(&ckt, &opts, SensInit::Zero).unwrap();

        let ib = ckt.unknown_of_node(b).unwrap();
        // FD: rerun with perturbed R and C.
        for (k, h) in [(0usize, 1e-2), (1usize, 1e-10)] {
            let mut deltas = vec![0.0, 0.0];
            deltas[k] = h;
            let mut cp = ckt.clone();
            cp.apply_mismatch(&deltas);
            let rp = crate::tran::transient(&cp, &opts).unwrap();
            deltas[k] = -h;
            let mut cm = ckt.clone();
            cm.apply_mismatch(&deltas);
            let rm = crate::tran::transient(&cm, &opts).unwrap();
            // Compare at a few sample points.
            for step in [50usize, 150, 299] {
                let fd =
                    (cp.voltage(&rp.states[step], b) - cm.voltage(&rm.states[step], b)) / (2.0 * h);
                let got = res.sens[k][step][ib];
                assert!(
                    (got - fd).abs() < 5e-3 * fd.abs().max(1e-8),
                    "param {k} step {step}: {got} vs {fd}"
                );
            }
        }
    }

    /// The DC-initialized sensitivity of a static circuit stays at the DC
    /// sensitivity for all time.
    #[test]
    fn static_circuit_sensitivity_is_constant() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
        let r1 = ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
        ckt.annotate_resistor_mismatch(r1, 5.0);
        let opts = TranOptions::new(1e-6, 1e-8);
        let res = transient_with_sensitivities(&ckt, &opts, SensInit::FromDc).unwrap();
        let ib = ckt.unknown_of_node(b).unwrap();
        let s_first = res.sens[0][0][ib];
        let s_last = res.sens[0].last().unwrap()[ib];
        assert!(
            (s_first - s_last).abs() < 1e-6 * s_first.abs(),
            "{s_first} vs {s_last}"
        );
        // Analytic: ∂(V·R2/(R1+R2))/∂R1 = −V·R2/(R1+R2)² = −0.5 mV/Ω.
        assert!((s_first + 2.0 * 1e3 / 4e6).abs() < 1e-9);
    }

    /// The batched-parallel path and the sequential reference agree to
    /// machine precision, for every thread count.
    #[test]
    fn batched_matches_sequential_all_thread_counts() {
        let ckt = rc_with_mismatch();
        let mut base = TranOptions::new(4e-4, 2e-6);
        base.x0 = Some(vec![1.0, 0.0, -1e-3]);
        let seq = transient_with_sensitivities_seq(&ckt, &base, SensInit::FromDc).unwrap();
        for threads in [1usize, 2, 3, 8] {
            let mut opts = base.clone();
            opts.threads = threads;
            let par = transient_with_sensitivities(&ckt, &opts, SensInit::FromDc).unwrap();
            assert_eq!(par.sens.len(), seq.sens.len());
            let mut max_diff = 0.0f64;
            for (pk, sk) in par.sens.iter().zip(seq.sens.iter()) {
                assert_eq!(pk.len(), sk.len());
                for (ps, ss) in pk.iter().zip(sk.iter()) {
                    for (a, b) in ps.iter().zip(ss.iter()) {
                        max_diff = max_diff.max((a - b).abs());
                    }
                }
            }
            assert!(
                max_diff < 1e-12,
                "threads {threads}: max |batched - seq| = {max_diff:e}"
            );
        }
    }

    /// Property (c): on the adaptive non-uniform grid, the batched path
    /// matches the sequential reference for every thread count — and the
    /// dense backend makes the thread-count comparison exactly bitwise
    /// (chunk partitioning never touches any parameter's arithmetic).
    #[test]
    fn adaptive_batched_matches_sequential_all_thread_counts() {
        use crate::tran::AdaptiveOptions;
        let ckt = rc_with_mismatch();
        let mut base = TranOptions::adaptive(4e-4, 2e-6, AdaptiveOptions::default());
        base.x0 = Some(vec![1.0, 0.0, -1e-3]);
        base.method = crate::tran::Integrator::Trapezoidal;
        let seq = transient_with_sensitivities_seq(&ckt, &base, SensInit::FromDc).unwrap();
        let mut reference: Option<TranSensResult> = None;
        for threads in [1usize, 2, 3, 8] {
            let mut opts = base.clone();
            opts.threads = threads;
            let par = transient_with_sensitivities(&ckt, &opts, SensInit::FromDc).unwrap();
            // The nominal grids must agree bitwise: all paths drive the
            // same LTE controller.
            assert_eq!(par.tran.times.len(), seq.tran.times.len());
            for (a, b) in par.tran.times.iter().zip(seq.tran.times.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "grid mismatch");
            }
            // Batched vs sequential: machine precision (different pivot
            // handling), same contract as the fixed-grid test.
            let mut max_diff = 0.0f64;
            for (pk, sk) in par.sens.iter().zip(seq.sens.iter()) {
                assert_eq!(pk.len(), sk.len());
                for (ps, ss) in pk.iter().zip(sk.iter()) {
                    for (a, b) in ps.iter().zip(ss.iter()) {
                        max_diff = max_diff.max((a - b).abs());
                    }
                }
            }
            assert!(
                max_diff < 1e-12,
                "threads {threads}: max |batched - seq| = {max_diff:e}"
            );
            // Across thread counts: exactly bitwise.
            match &reference {
                None => reference = Some(par),
                Some(r) => {
                    for (pk, rk) in par.sens.iter().zip(r.sens.iter()) {
                        for (ps, rs) in pk.iter().zip(rk.iter()) {
                            for (a, b) in ps.iter().zip(rs.iter()) {
                                assert_eq!(
                                    a.to_bits(),
                                    b.to_bits(),
                                    "threads {threads} not bitwise vs 1"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Adaptive-grid sensitivities are still *correct*, not just
    /// self-consistent: compare against finite-difference re-simulation on
    /// the same accepted grid.
    #[test]
    fn adaptive_sensitivity_matches_finite_difference() {
        use crate::tran::AdaptiveOptions;
        let ckt = rc_with_mismatch();
        let b = ckt.find_node("b").unwrap();
        let mut a = AdaptiveOptions::default();
        a.reltol = 1e-4; // tight grid so FD of the perturbed runs stays fair
        let mut opts = TranOptions::adaptive(1.5e-3, 5e-6, a);
        opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
        let res = transient_with_sensitivities(&ckt, &opts, SensInit::Zero).unwrap();
        let ib = ckt.unknown_of_node(b).unwrap();
        let last = res.sens[0].len() - 1;
        for (k, h) in [(0usize, 1e-2), (1usize, 1e-10)] {
            let mut deltas = vec![0.0, 0.0];
            deltas[k] = h;
            let mut cp = ckt.clone();
            cp.apply_mismatch(&deltas);
            let rp = crate::tran::transient(&cp, &opts).unwrap();
            deltas[k] = -h;
            let mut cm = ckt.clone();
            cm.apply_mismatch(&deltas);
            let rm = crate::tran::transient(&cm, &opts).unwrap();
            // Compare at the end point via interpolation (the perturbed
            // runs accept their own grids).
            let wp = rp.node_waveform(&cp, b);
            let wm = rm.node_waveform(&cm, b);
            let fd = (wp.last().unwrap() - wm.last().unwrap()) / (2.0 * h);
            let got = res.sens[k][last][ib];
            assert!(
                (got - fd).abs() < 2e-2 * fd.abs().max(1e-8),
                "param {k}: {got} vs {fd}"
            );
        }
    }

    /// A circuit with no mismatch annotations must run cleanly (empty
    /// sensitivity set, nominal transient intact) — regression check for
    /// the zero-RHS batched-solve path.
    #[test]
    fn zero_parameters_is_clean() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-6);
        let opts = TranOptions::new(1e-4, 1e-6);
        for init in [SensInit::FromDc, SensInit::Zero] {
            let res = transient_with_sensitivities(&ckt, &opts, init).unwrap();
            assert!(res.sens.is_empty());
            assert_eq!(res.tran.states.len(), 101);
        }
    }

    /// Windowing must be seamless: a run longer than one window gives the
    /// same trajectory as the sequential path across the window boundary.
    #[test]
    fn window_boundaries_are_seamless() {
        let ckt = rc_with_mismatch();
        // 200 steps: crosses the 64-step window boundary three times.
        let mut opts = TranOptions::new(4e-4, 2e-6);
        opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
        opts.threads = 2;
        let par = transient_with_sensitivities(&ckt, &opts, SensInit::Zero).unwrap();
        let seq = transient_with_sensitivities_seq(&ckt, &opts, SensInit::Zero).unwrap();
        assert_eq!(par.sens[0].len(), 201);
        for step in [63usize, 64, 65, 127, 128, 129, 200] {
            for i in 0..3 {
                let a = par.sens[0][step][i];
                let b = seq.sens[0][step][i];
                assert!((a - b).abs() < 1e-12, "step {step} row {i}: {a} vs {b}");
            }
        }
    }
}
