//! Transient forward sensitivity analysis — the expensive baseline the paper
//! contrasts against (reference [23], Hocevar et al.).
//!
//! Propagates `S_k(t) = ∂x(t)/∂p_k` for every mismatch parameter alongside a
//! nonlinear transient. Each timestep costs one factorization plus one
//! back-substitution *per parameter*; unlike the LPTV route it also has to
//! integrate through the entire settling transient (paper Fig. 5a), which is
//! exactly the waste the PSS+LPTV flow avoids (Fig. 5b).

use crate::dc::{dc_operating_point, DcOptions};
use crate::error::EngineError;
use crate::sens::{dc_sensitivities, param_step_rhs};
use crate::solver::{combine, FactoredJacobian};
use crate::tran::{TranOptions, TranResult};
use tranvar_circuit::Circuit;
use tranvar_num::dense::vecops;

/// Result of a transient run with parameter sensitivities.
#[derive(Clone, Debug)]
pub struct TranSensResult {
    /// The nominal transient.
    pub tran: TranResult,
    /// `sens[k][step][unknown] = ∂x/∂p_k` at each recorded time.
    pub sens: Vec<Vec<Vec<f64>>>,
}

/// How the sensitivity state is initialized at `t_start`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SensInit {
    /// `S(0) = ∂x_op/∂p` — the parameter also shifts the initial DC point
    /// (the physically complete choice).
    #[default]
    FromDc,
    /// `S(0) = 0` — the initial state is frozen (useful when the initial
    /// condition is enforced externally).
    Zero,
}

/// Runs a transient with forward parameter sensitivities for every mismatch
/// parameter of the circuit.
///
/// # Errors
///
/// Propagates DC and per-step Newton failures.
pub fn transient_with_sensitivities(
    ckt: &Circuit,
    opts: &TranOptions,
    init: SensInit,
) -> Result<TranSensResult, EngineError> {
    if opts.dt <= 0.0 || opts.t_stop <= opts.t_start {
        return Err(EngineError::BadConfig(
            "transient needs dt > 0 and t_stop > t_start".into(),
        ));
    }
    let n = ckt.n_unknowns();
    let n_node = ckt.n_nodes() - 1;
    let n_params = ckt.mismatch_params().len();
    let theta = opts.method.theta();

    let x0 = match &opts.x0 {
        Some(x) => x.clone(),
        None => dc_operating_point(
            ckt,
            &DcOptions {
                newton: opts.newton,
                ..DcOptions::default()
            },
        )?,
    };
    let s0: Vec<Vec<f64>> = match init {
        SensInit::FromDc => dc_sensitivities(ckt, &x0, opts.newton.solver)?,
        SensInit::Zero => vec![vec![0.0; n]; n_params],
    };

    // Nominal transient via the shared integrator, recording every state.
    let res = crate::tran::transient(ckt, &TranOptions {
        x0: Some(x0.clone()),
        ..opts.clone()
    })?;

    let mut sens: Vec<Vec<Vec<f64>>> = vec![Vec::with_capacity(res.states.len()); n_params];
    for (k, s) in s0.iter().enumerate() {
        sens[k].push(s.clone());
    }
    // Propagate: J·S₁ = B·S₀ − w.
    let h = opts.dt;
    for step in 1..res.states.len() {
        let x_prev = &res.states[step - 1];
        let x_cur = &res.states[step];
        let asm0 = ckt.assemble(x_prev, res.times[step - 1]);
        let asm1 = ckt.assemble(x_cur, res.times[step]);
        let j = FactoredJacobian::factor(opts.newton.solver, &asm1, theta, 1.0 / h, theta * opts.gmin, n_node)?;
        let b = combine(&asm0, -(1.0 - theta), 1.0 / h, -(1.0 - theta) * opts.gmin, n_node);
        for k in 0..n_params {
            let w = param_step_rhs(ckt, k, x_cur, x_prev, h, theta)?;
            let mut rhs = b.mat_vec(sens[k].last().expect("sensitivity history"));
            vecops::axpy(&mut rhs, -1.0, &w);
            sens[k].push(j.solve(&rhs));
        }
    }
    Ok(TranSensResult { tran: res, sens })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::{NodeId, Waveform};

    /// RC charging with a resistor-mismatch parameter: compare the
    /// propagated sensitivity against finite-difference re-simulation.
    #[test]
    fn rc_sensitivity_matches_finite_difference() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        let r1 = ckt.add_resistor("R1", a, b, 1e3);
        let c1 = ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-6);
        ckt.annotate_resistor_mismatch(r1, 10.0);
        ckt.annotate_capacitor_mismatch(c1, 1e-8);

        let mut opts = TranOptions::new(1.5e-3, 5e-6);
        opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
        let res = transient_with_sensitivities(&ckt, &opts, SensInit::Zero).unwrap();

        let ib = ckt.unknown_of_node(b).unwrap();
        // FD: rerun with perturbed R and C.
        for (k, h) in [(0usize, 1e-2), (1usize, 1e-10)] {
            let mut deltas = vec![0.0, 0.0];
            deltas[k] = h;
            let mut cp = ckt.clone();
            cp.apply_mismatch(&deltas);
            let rp = crate::tran::transient(&cp, &opts).unwrap();
            deltas[k] = -h;
            let mut cm = ckt.clone();
            cm.apply_mismatch(&deltas);
            let rm = crate::tran::transient(&cm, &opts).unwrap();
            // Compare at a few sample points.
            for step in [50usize, 150, 299] {
                let fd = (cp.voltage(&rp.states[step], b) - cm.voltage(&rm.states[step], b))
                    / (2.0 * h);
                let got = res.sens[k][step][ib];
                assert!(
                    (got - fd).abs() < 5e-3 * fd.abs().max(1e-8),
                    "param {k} step {step}: {got} vs {fd}"
                );
            }
        }
    }

    /// The DC-initialized sensitivity of a static circuit stays at the DC
    /// sensitivity for all time.
    #[test]
    fn static_circuit_sensitivity_is_constant() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
        let r1 = ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
        ckt.annotate_resistor_mismatch(r1, 5.0);
        let opts = TranOptions::new(1e-6, 1e-8);
        let res = transient_with_sensitivities(&ckt, &opts, SensInit::FromDc).unwrap();
        let ib = ckt.unknown_of_node(b).unwrap();
        let s_first = res.sens[0][0][ib];
        let s_last = res.sens[0].last().unwrap()[ib];
        assert!(
            (s_first - s_last).abs() < 1e-6 * s_first.abs(),
            "{s_first} vs {s_last}"
        );
        // Analytic: ∂(V·R2/(R1+R2))/∂R1 = −V·R2/(R1+R2)² = −0.5 mV/Ω.
        assert!((s_first + 2.0 * 1e3 / 4e6).abs() < 1e-9);
    }
}
