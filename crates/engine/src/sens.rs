//! DC sensitivity analysis (`.SENS`) — the classic linear-perturbation
//! computation the paper's references \[8\],\[9\],\[20\],\[26\] build on, and the
//! shared right-hand-side helper used by both the transient-sensitivity
//! baseline and the LPTV periodic solver.

use crate::error::EngineError;
use crate::solver::{FactoredJacobian, SolverKind};
use tranvar_circuit::{Circuit, ParamDeriv};

/// DC sensitivities `dx/dp_k` of the operating point with respect to every
/// registered mismatch parameter.
///
/// Implements the adjoint-free direct method: `G·(dx/dp) = −∂f/∂p`, factoring
/// `G` once and back-substituting per parameter — the DC special case of the
/// reuse that makes the paper's method cheap.
///
/// # Errors
///
/// Returns a numerical error if `G` is singular at the operating point.
pub fn dc_sensitivities(
    ckt: &Circuit,
    x_op: &[f64],
    solver: SolverKind,
) -> Result<Vec<Vec<f64>>, EngineError> {
    let n_params = ckt.mismatch_params().len();
    if n_params == 0 {
        return Ok(Vec::new());
    }
    let asm = ckt.assemble(x_op, 0.0);
    let n_node = ckt.n_nodes() - 1;
    let lu = FactoredJacobian::factor(solver, &asm, 1.0, 0.0, 1e-12, n_node)?;
    let n = asm.n;
    // Stage every parameter's RHS in one column-major block and solve them
    // with a single batched sweep — the factor is traversed once per block
    // rather than once per parameter.
    let mut block = vec![0.0; n * n_params];
    let mut pd = ParamDeriv::default();
    for k in 0..n_params {
        ckt.d_residual_dparam_into(k, x_op, &mut pd)?;
        let col = &mut block[k * n..(k + 1) * n];
        for &(i, v) in &pd.df {
            col[i] -= v;
        }
        // ∂q/∂p does not influence the DC solution.
    }
    let mut scratch = vec![0.0; n * n_params];
    lu.solve_multi(&mut block, n_params, &mut scratch);
    Ok((0..n_params)
        .map(|k| block[k * n..(k + 1) * n].to_vec())
        .collect())
}

/// The θ-method step right-hand side for parameter `k`:
/// `w_k = θ·∂f/∂p(x₁) + (1−θ)·∂f/∂p(x₀) + (∂q/∂p(x₁) − ∂q/∂p(x₀))/h`.
///
/// With the step Jacobian `J` and coupling `B` from
/// [`crate::tran::StepRecord`], the parameter sensitivity propagates as
/// `J·S₁ = B·S₀ − w`. The same `w` is the periodic-BVP source term in the
/// LPTV mismatch analysis (pseudo-noise injection integrated over a step).
///
/// # Errors
///
/// Propagates unknown-parameter errors.
pub fn param_step_rhs(
    ckt: &Circuit,
    k: usize,
    x1: &[f64],
    x0: &[f64],
    h: f64,
    theta: f64,
) -> Result<Vec<f64>, EngineError> {
    let mut w = vec![0.0; ckt.n_unknowns()];
    let mut scratch = ParamDerivPair::default();
    param_step_rhs_into(ckt, k, x1, x0, h, theta, &mut w, &mut scratch)?;
    Ok(w)
}

/// Reusable derivative buffers for [`param_step_rhs_into`] — one pair per
/// worker thread keeps the per-step parameter loop allocation-free.
#[derive(Clone, Debug, Default)]
pub struct ParamDerivPair {
    pd1: ParamDeriv,
    pd0: ParamDeriv,
}

/// Allocation-free variant of [`param_step_rhs`]: writes `w_k` into `out`
/// (which must have length `n_unknowns`), reusing `scratch`'s buffers.
///
/// # Errors
///
/// Propagates unknown-parameter errors.
#[allow(clippy::too_many_arguments)]
pub fn param_step_rhs_into(
    ckt: &Circuit,
    k: usize,
    x1: &[f64],
    x0: &[f64],
    h: f64,
    theta: f64,
    out: &mut [f64],
    scratch: &mut ParamDerivPair,
) -> Result<(), EngineError> {
    ckt.d_residual_dparam_into(k, x1, &mut scratch.pd1)?;
    ckt.d_residual_dparam_into(k, x0, &mut scratch.pd0)?;
    out.iter_mut().for_each(|v| *v = 0.0);
    for &(i, v) in &scratch.pd1.df {
        out[i] += theta * v;
    }
    for &(i, v) in &scratch.pd0.df {
        out[i] += (1.0 - theta) * v;
    }
    for &(i, v) in &scratch.pd1.dq {
        out[i] += v / h;
    }
    for &(i, v) in &scratch.pd0.dq {
        out[i] -= v / h;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};
    use tranvar_circuit::{Circuit, NodeId, Waveform};

    /// Divider sensitivity has a closed form: vout = V·R2/(R1+R2),
    /// ∂vout/∂R1 = −V·R2/(R1+R2)², ∂vout/∂R2 = V·R1/(R1+R2)².
    #[test]
    fn divider_sensitivities_match_analytic() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
        let r1 = ckt.add_resistor("R1", a, b, 1e3);
        let r2 = ckt.add_resistor("R2", b, NodeId::GROUND, 3e3);
        ckt.annotate_resistor_mismatch(r1, 10.0);
        ckt.annotate_resistor_mismatch(r2, 10.0);
        let x = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let sens = dc_sensitivities(&ckt, &x, SolverKind::Dense).unwrap();
        let ib = ckt.unknown_of_node(b).unwrap();
        let s1 = sens[0][ib];
        let s2 = sens[1][ib];
        let expect1 = -2.0 * 3e3 / (4e3_f64.powi(2));
        let expect2 = 2.0 * 1e3 / (4e3_f64.powi(2));
        assert!(
            (s1 - expect1).abs() < 1e-6 * expect1.abs(),
            "{s1} vs {expect1}"
        );
        assert!(
            (s2 - expect2).abs() < 1e-6 * expect2.abs(),
            "{s2} vs {expect2}"
        );
    }

    #[test]
    fn sensitivities_match_finite_difference_mos() {
        use tranvar_circuit::{MosModel, MosType};
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let g = ckt.node("g");
        let d = ckt.node("d");
        ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(1.2));
        ckt.add_vsource("VG", g, NodeId::GROUND, Waveform::Dc(0.8));
        ckt.add_resistor("RD", vdd, d, 5e3);
        let m1 = ckt.add_mosfet(
            "M1",
            d,
            g,
            NodeId::GROUND,
            MosType::Nmos,
            MosModel::nmos_013(),
            2e-6,
            0.13e-6,
        );
        ckt.annotate_pelgrom(m1, 6.5e-9, 3.25e-8);
        let x = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let sens = dc_sensitivities(&ckt, &x, SolverKind::Dense).unwrap();
        let id = ckt.unknown_of_node(d).unwrap();
        // FD re-solve.
        for (k, h) in [(0usize, 1e-6), (1usize, 1e-6)] {
            let mut deltas = vec![0.0; 2];
            deltas[k] = h;
            let mut cp = ckt.clone();
            cp.apply_mismatch(&deltas);
            let xp = dc_operating_point(&cp, &DcOptions::default()).unwrap();
            deltas[k] = -h;
            let mut cm = ckt.clone();
            cm.apply_mismatch(&deltas);
            let xm = dc_operating_point(&cm, &DcOptions::default()).unwrap();
            let fd = (cp.voltage(&xp, d) - cm.voltage(&xm, d)) / (2.0 * h);
            let got = sens[k][id];
            assert!(
                (got - fd).abs() < 2e-3 * fd.abs().max(1e-3),
                "param {k}: {got} vs fd {fd}"
            );
        }
    }
}
