//! Shared worker-thread chunking for the batched analyses.
//!
//! Every parallel path in the workspace follows the same shape: split a set
//! of independent jobs into contiguous chunks, spawn one std scoped worker
//! per chunk, and join in order. Before this module each call site carried
//! its own copy of that boilerplate (`transens`, the PSS monodromy
//! accumulation, the LPTV parameter responses); they now share
//! [`chunk_ranges`] + [`map_scoped`], as does the scenario-campaign runner
//! in `tranvar-core`.
//!
//! Determinism contract: job construction and result placement are
//! position-based, so as long as each job's arithmetic is independent of the
//! partitioning (true for all callers — each chunk owns disjoint data), the
//! combined result is bit-identical for any thread count. A single job runs
//! inline on the calling thread with no scope at all.

/// Splits `0..n_items` into contiguous `(start, len)` chunks of at most
/// `chunk` items (the last chunk may be shorter). Returns no chunks for
/// zero items.
///
/// # Panics
///
/// Panics if `chunk == 0` with nonzero `n_items`.
pub fn chunk_ranges(n_items: usize, chunk: usize) -> Vec<(usize, usize)> {
    assert!(
        chunk > 0 || n_items == 0,
        "chunk_ranges needs a nonzero chunk size for {n_items} items"
    );
    let mut out = Vec::new();
    let mut start = 0;
    while start < n_items {
        let len = chunk.min(n_items - start);
        out.push((start, len));
        start += len;
    }
    out
}

/// Runs `f` over every job on std scoped worker threads — one worker per
/// job — and returns the outputs in job order.
///
/// A single job is run inline on the calling thread (no scope, no spawn),
/// which keeps the `threads == 1` paths of the batched analyses free of any
/// threading overhead and makes the single- and multi-thread code paths one
/// implementation.
///
/// # Panics
///
/// Propagates worker panics.
pub fn map_scoped<J, T, F>(jobs: Vec<J>, f: F) -> Vec<T>
where
    J: Send,
    T: Send,
    F: Fn(J) -> T + Sync,
{
    if jobs.len() <= 1 {
        return jobs.into_iter().map(f).collect();
    }
    // Under the `fault-inject` feature the caller's thread-local fault plan
    // follows the jobs onto the workers, so injected failures fire
    // regardless of which worker a scenario lands on.
    #[cfg(feature = "fault-inject")]
    let fault_plan = crate::fault::current();
    std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|job| {
                let f = &f;
                #[cfg(feature = "fault-inject")]
                let fault_plan = fault_plan.clone();
                scope.spawn(move || {
                    #[cfg(feature = "fault-inject")]
                    let _fault = crate::fault::adopt(fault_plan);
                    f(job)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chunk worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly() {
        assert_eq!(chunk_ranges(0, 4), vec![]);
        assert_eq!(chunk_ranges(3, 4), vec![(0, 3)]);
        assert_eq!(chunk_ranges(8, 3), vec![(0, 3), (3, 3), (6, 2)]);
        for (n, c) in [(1usize, 1usize), (7, 2), (16, 4), (5, 5)] {
            let ranges = chunk_ranges(n, c);
            let total: usize = ranges.iter().map(|&(_, l)| l).sum();
            assert_eq!(total, n);
            let mut expect = 0;
            for &(s, l) in &ranges {
                assert_eq!(s, expect);
                assert!(l >= 1 && l <= c);
                expect += l;
            }
        }
    }

    #[test]
    #[should_panic(expected = "nonzero chunk size")]
    fn chunk_ranges_rejects_zero_chunk() {
        let _ = chunk_ranges(5, 0);
    }

    #[test]
    fn map_scoped_preserves_order_and_runs_inline_for_one_job() {
        let out = map_scoped(vec![3usize], |x| x * 2);
        assert_eq!(out, vec![6]);
        let jobs: Vec<usize> = (0..13).collect();
        let out = map_scoped(jobs, |x| x * x);
        assert_eq!(out, (0..13).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn map_scoped_supports_mutable_chunks() {
        let mut data = [0u64; 10];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(3).collect();
        let jobs: Vec<(usize, &mut [u64])> = chunks.into_iter().enumerate().collect();
        map_scoped(jobs, |(ci, chunk)| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (ci * 100 + i) as u64;
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[4], 101);
        assert_eq!(data[9], 300);
    }
}
