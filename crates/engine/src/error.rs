//! Error types for circuit analyses.

use crate::budget::BudgetProgress;
use std::error::Error;
use std::fmt;
use tranvar_circuit::CircuitError;
use tranvar_num::{FailureClass, NumError, WireFault};

/// Errors produced by the analysis engines.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum EngineError {
    /// An iterative solve (Newton, gmin/source stepping, shooting) failed to
    /// converge.
    NoConvergence {
        /// Which analysis failed.
        analysis: String,
        /// Diagnostic detail (iterations, final residual, ...).
        detail: String,
    },
    /// A residual, Newton update or factorization produced NaN/Inf.
    ///
    /// Distinct from a singular system ([`tranvar_num::NumError::Singular`]
    /// wrapped in [`EngineError::Num`]): non-finite values mean the model
    /// evaluation itself blew up, so burning further Newton iterations on
    /// them is pointless and the solve fails fast instead.
    NonFinite {
        /// Which analysis detected the non-finite value.
        analysis: String,
        /// Where it was seen (residual, update, factor, ...).
        detail: String,
    },
    /// A cooperative [`crate::budget::SolveBudget`] limit was exhausted.
    BudgetExceeded {
        /// Which analysis hit the limit.
        analysis: String,
        /// Work completed when the budget ran out, and which limit tripped.
        progress: BudgetProgress,
    },
    /// A numerical kernel failed (singular matrix, ...).
    Num(NumError),
    /// Circuit construction or lookup failed.
    Circuit(CircuitError),
    /// A waveform measurement could not be taken (no crossing found, ...).
    Measurement(String),
    /// Invalid analysis configuration.
    BadConfig(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoConvergence { analysis, detail } => {
                write!(f, "{analysis} failed to converge: {detail}")
            }
            EngineError::NonFinite { analysis, detail } => {
                write!(f, "{analysis} produced a non-finite value: {detail}")
            }
            EngineError::BudgetExceeded { analysis, progress } => {
                write!(f, "{analysis} exceeded its solve budget: {progress}")
            }
            EngineError::Num(e) => write!(f, "numerical failure: {e}"),
            EngineError::Circuit(e) => write!(f, "circuit error: {e}"),
            EngineError::Measurement(msg) => write!(f, "measurement failed: {msg}"),
            EngineError::BadConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl EngineError {
    /// The stable wire identity of this failure (see
    /// [`tranvar_num::WireFault`]); exhaustive so new variants must be
    /// classified. Wrapped layers delegate to their own classification.
    pub fn wire_fault(&self) -> WireFault {
        use FailureClass::*;
        match self {
            EngineError::NoConvergence { .. } => WireFault::new("engine.no-convergence", Unstable),
            EngineError::NonFinite { .. } => WireFault::new("engine.non-finite", Unstable),
            EngineError::BudgetExceeded { .. } => {
                WireFault::new("engine.budget-exceeded", Exhausted)
            }
            EngineError::Measurement(_) => WireFault::new("engine.measurement", Unstable),
            EngineError::BadConfig(_) => WireFault::new("engine.bad-config", BadInput),
            EngineError::Num(e) => e.wire_fault(),
            EngineError::Circuit(e) => e.wire_fault(),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Num(e) => Some(e),
            EngineError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for EngineError {
    fn from(e: NumError) -> Self {
        EngineError::Num(e)
    }
}

impl From<CircuitError> for EngineError {
    fn from(e: CircuitError) -> Self {
        EngineError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = EngineError::from(NumError::Singular { col: 2 });
        assert!(e.to_string().contains("singular"));
        assert!(e.source().is_some());
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
