//! Transient analysis: fixed-step backward-Euler / trapezoidal integration
//! with per-step Newton solves.
//!
//! Besides the ordinary [`transient`] entry point (used by Monte-Carlo
//! re-simulation), the module exposes [`integrate_cycle`], which integrates
//! exactly one period and optionally records, per accepted step, the factored
//! Jacobian `J_k` and the coupling matrix `B_k` with `∂x_k/∂x_{k−1} =
//! J_k⁻¹·B_k`. Those records are the raw material of both the shooting-Newton
//! monodromy matrix and the LPTV periodic solver — their reuse across all
//! noise sources is where the paper's 100–1000× speedup over Monte-Carlo
//! comes from.

use crate::dc::{dc_operating_point, DcOptions, NewtonOptions};
use crate::error::EngineError;
use crate::solver::{CombineStage, FactoredJacobian, JacobianWorkspace};
use tranvar_circuit::{Circuit, NodeId};
use tranvar_num::dense::vecops;
use tranvar_num::Csc;

/// Time-integration scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Integrator {
    /// Backward Euler (L-stable; damps switching artifacts — default for
    /// strongly clocked circuits).
    #[default]
    BackwardEuler,
    /// Trapezoidal rule (A-stable, second order, no numerical damping —
    /// preferred for oscillators where period accuracy matters).
    Trapezoidal,
}

impl Integrator {
    /// The implicitness weight θ (1 for BE, ½ for trapezoidal).
    pub fn theta(self) -> f64 {
        match self {
            Integrator::BackwardEuler => 1.0,
            Integrator::Trapezoidal => 0.5,
        }
    }
}

/// Transient analysis controls.
#[derive(Clone, Debug, PartialEq)]
pub struct TranOptions {
    /// Stop time (s).
    pub t_stop: f64,
    /// Fixed step size (s).
    pub dt: f64,
    /// Start time (s).
    pub t_start: f64,
    /// Integration scheme.
    pub method: Integrator,
    /// Newton controls for each step.
    pub newton: NewtonOptions,
    /// Shunt gmin on node rows (kept consistently in residual and Jacobian).
    pub gmin: f64,
    /// Initial state; `None` computes the DC operating point at `t_start`.
    pub x0: Option<Vec<f64>>,
    /// Worker threads for the batched sensitivity propagation
    /// (`transient_with_sensitivities`): `0` uses all available cores, `1`
    /// runs single-threaded. Results are identical for any thread count —
    /// each parameter's arithmetic is independent of the partitioning.
    pub threads: usize,
}

impl TranOptions {
    /// Reasonable defaults for a run to `t_stop` with step `dt`.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        TranOptions {
            t_stop,
            dt,
            t_start: 0.0,
            method: Integrator::BackwardEuler,
            newton: NewtonOptions::default(),
            gmin: 1e-12,
            x0: None,
            threads: 0,
        }
    }
}

/// Result of a transient run: uniformly sampled states.
#[derive(Clone, Debug, Default)]
pub struct TranResult {
    /// Sample times.
    pub times: Vec<f64>,
    /// State vectors per sample.
    pub states: Vec<Vec<f64>>,
}

impl TranResult {
    /// Extracts one node's voltage waveform.
    pub fn node_waveform(&self, ckt: &Circuit, node: NodeId) -> Vec<f64> {
        self.states.iter().map(|x| ckt.voltage(x, node)).collect()
    }

    /// The final state.
    ///
    /// # Panics
    ///
    /// Panics if the run is empty.
    pub fn last(&self) -> &[f64] {
        self.states.last().expect("empty transient result")
    }
}

/// Shared validation for every transient-style run (plain, sensitivity,
/// session): one copy of the config check and its error message.
pub(crate) fn validate_step_config(opts: &TranOptions) -> Result<(), EngineError> {
    if opts.dt <= 0.0 || opts.t_stop <= opts.t_start {
        return Err(EngineError::BadConfig(
            "transient needs dt > 0 and t_stop > t_start".into(),
        ));
    }
    Ok(())
}

/// Record of one accepted timestep for PSS/LPTV reuse.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// End time of the step.
    pub t1: f64,
    /// Step size.
    pub h: f64,
    /// Implicitness weight θ actually used for this step (the first step of a
    /// cycle is always backward Euler; see [`integrate_cycle`]).
    pub theta: f64,
    /// Factored step Jacobian `J = C₁/h + θ·G₁`.
    pub lu: FactoredJacobian,
    /// Coupling to the previous state: `B = C₀/h − (1−θ)·G₀`, so that
    /// `∂x₁/∂x₀ = J⁻¹·B`.
    pub b: Csc<f64>,
    /// MOSFET operating points at the accepted state (device-indexed),
    /// captured from the final assembly so sensitivity sources can be built
    /// without re-evaluating any device model
    /// ([`tranvar_circuit::Circuit::d_residual_dparams_with_ops`]).
    pub mos_ops: Vec<tranvar_circuit::mosfet::MosOp>,
}

/// Result of a one-period integration with step records.
#[derive(Clone, Debug)]
pub struct CycleResult {
    /// `n_steps + 1` sample times (including both endpoints).
    pub times: Vec<f64>,
    /// `n_steps + 1` states; `states[0]` is the initial state.
    pub states: Vec<Vec<f64>>,
    /// Per-step records (empty unless requested).
    pub records: Vec<StepRecord>,
}

/// Reusable per-run buffers for the transient step loop: the assembly
/// double-buffer, the Newton vectors, the factorization workspace and the
/// coupling-matrix stage. One instance lives for a whole run, so the inner
/// loop performs no repeated allocation.
pub(crate) struct StepState {
    pub(crate) jws: JacobianWorkspace,
    bstage: CombineStage,
    /// Assembly at the previous accepted state `(x0, t0)`.
    pub(crate) asm_prev: tranvar_circuit::Assembly,
    /// Assembly buffer for the current step (swapped with `asm_prev`).
    asm_cur: tranvar_circuit::Assembly,
    r: Vec<f64>,
    delta: Vec<f64>,
    scratch: Vec<f64>,
}

impl StepState {
    /// Initializes the step state at `(x0, t0)`.
    pub(crate) fn new(ckt: &Circuit, kind: crate::solver::SolverKind, x0: &[f64], t0: f64) -> Self {
        let n = ckt.n_unknowns();
        let asm_prev = ckt.assemble(x0, t0);
        let asm_cur = ckt.assemble(x0, t0);
        StepState {
            jws: JacobianWorkspace::new(kind),
            bstage: CombineStage::new(),
            asm_prev,
            asm_cur,
            r: vec![0.0; n],
            delta: vec![0.0; n],
            scratch: vec![0.0; n],
        }
    }

    /// Re-anchors the state at a new `(x0, t0)` without releasing any
    /// buffer: only the previous-accepted assembly is re-evaluated (the
    /// current-step assembly is overwritten by the first Newton iteration,
    /// and the factorization/staging workspaces carry over unchanged).
    pub(crate) fn reset(&mut self, ckt: &Circuit, x0: &[f64], t0: f64) {
        ckt.assemble_into(x0, t0, &mut self.asm_prev);
    }
}

/// Reusable buffers for repeated [`integrate_cycle_with`] calls on one
/// circuit: the assembly double-buffer, Newton vectors, factorization
/// workspace (staged CSC/dense storage plus the sparse symbolic pivot
/// analysis) and coupling-matrix stage all survive between cycles.
///
/// A shooting-Newton loop integrates the same one-period problem dozens of
/// times; with a shared workspace every round after the first performs no
/// allocation and no symbolic re-analysis in the step loop.
#[derive(Default)]
pub struct CycleWorkspace {
    st: Option<StepState>,
    /// Counters of step states this workspace has already retired (a
    /// backend or system-size change rebuilds the state), so
    /// [`CycleWorkspace::stats`] never undercounts structural work.
    retired: crate::solver::SolverStats,
}

impl CycleWorkspace {
    /// Creates an empty workspace; buffers are built lazily on first use.
    pub fn new() -> Self {
        CycleWorkspace::default()
    }

    /// Structural-work counters accumulated over the workspace's lifetime
    /// (including retired step states), or `None` if it was never used.
    pub fn stats(&self) -> Option<crate::solver::SolverStats> {
        self.st
            .as_ref()
            .map(|st| self.retired.merged(st.jws.stats()))
    }

    /// Returns the step state re-anchored at `(x0, t0)`, reusing every
    /// retained buffer when the backend and system size still match, and
    /// rebuilding from scratch otherwise.
    pub(crate) fn state_for(
        &mut self,
        ckt: &Circuit,
        kind: crate::solver::SolverKind,
        x0: &[f64],
        t0: f64,
    ) -> &mut StepState {
        let st = match self.st.take() {
            Some(mut st) if st.jws.kind() == kind && st.r.len() == ckt.n_unknowns() => {
                st.reset(ckt, x0, t0);
                st
            }
            old => {
                if let Some(old) = old {
                    self.retired = self.retired.merged(old.jws.stats());
                }
                StepState::new(ckt, kind, x0, t0)
            }
        };
        self.st.insert(st)
    }
}

impl std::fmt::Debug for CycleWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleWorkspace")
            .field("initialized", &self.st.is_some())
            .finish()
    }
}

/// One Newton-corrected implicit step from `(x, t0)` to `t1 = t0 + h`,
/// advancing `x`, `f_aug` and `q` in place (on entry they hold the previous
/// accepted state; on success they hold the new one).
///
/// The Newton iteration warm-starts from the previous accepted assembly
/// (retimed to `t1` with a handful of waveform evaluations instead of a
/// full device re-evaluation) and reuses every buffer in `st`. On request
/// the step record is returned; the accepted assembly is left in
/// `st.asm_prev` for the next step.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step(
    ckt: &Circuit,
    st: &mut StepState,
    x: &mut [f64],
    f_aug: &mut [f64],
    q: &mut [f64],
    t0: f64,
    t1: f64,
    h: f64,
    method: Integrator,
    newton: &NewtonOptions,
    gmin: f64,
    want_record: bool,
) -> Result<Option<StepRecord>, EngineError> {
    let n = ckt.n_unknowns();
    let n_node = ckt.n_nodes() - 1;
    let theta = method.theta();
    // Warm start: device stamps of the previous accepted assembly are valid
    // at (x, t1); only the independent sources move with time.
    st.asm_cur.copy_from(&st.asm_prev);
    ckt.retime_sources(&mut st.asm_cur, t0, t1);
    let mut converged = false;
    for _ in 0..newton.max_iter {
        newton.budget.begin_iteration("transient step")?;
        let asm1 = &st.asm_cur;
        // Residual r = (q1 − q0)/h + θ f1_aug + (1−θ) f0_aug.
        for i in 0..n {
            let f1_aug = asm1.f[i] + if i < n_node { gmin * x[i] } else { 0.0 };
            st.r[i] = (asm1.q[i] - q[i]) / h + theta * f1_aug + (1.0 - theta) * f_aug[i];
        }
        // The MNA pattern is fixed across iterations and steps, so the
        // workspace replays its symbolic analysis and refactors in place —
        // and skips the numeric work entirely when the values are unchanged
        // (the warm-started first iteration repeats the previous accepted
        // Jacobian).
        newton.budget.count_factorization();
        let lu = st.jws.factor(asm1, theta, 1.0 / h, theta * gmin, n_node)?;
        lu.solve_into(&st.r, &mut st.delta, &mut st.scratch);
        vecops::scale(&mut st.delta, -1.0);
        let mut dmax = vecops::norm_inf(&st.delta);
        if crate::fault::poison_nan(crate::fault::sites::TRAN_UPDATE) {
            dmax = f64::NAN;
        }
        // Non-finite guard, once per Newton iteration: a NaN/Inf update can
        // never satisfy the `< vtol` check, so without this the loop would
        // burn `max_iter` iterations and report a misleading NoConvergence.
        if !dmax.is_finite() {
            return Err(EngineError::NonFinite {
                analysis: "transient step".into(),
                detail: format!("update |dx|={dmax:.3e} at t={t1:.3e} (h={h:.3e})"),
            });
        }
        if dmax > newton.step_limit {
            let k = newton.step_limit / dmax;
            vecops::scale(&mut st.delta, k);
        }
        for (xi, di) in x.iter_mut().zip(st.delta.iter()) {
            *xi += di;
        }
        ckt.assemble_into(x, t1, &mut st.asm_cur);
        if vecops::norm_inf(&st.delta) < newton.vtol {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(EngineError::NoConvergence {
            analysis: "transient step".into(),
            detail: format!("at t={t1:.3e} with h={h:.3e}"),
        });
    }
    let record = if want_record {
        // Factor at the accepted point so the record matches x1 exactly;
        // the workspace keeps this factorization cached, so the next step's
        // warm-started first iteration (same G/C) reuses it for free.
        let lu = st
            .jws
            .factor(&st.asm_cur, theta, 1.0 / h, theta * gmin, n_node)?
            .clone();
        // B = C0/h − (1−θ)·(G0 + gmin)
        let b = st
            .bstage
            .combine(
                &st.asm_prev,
                -(1.0 - theta),
                1.0 / h,
                -(1.0 - theta) * gmin,
                n_node,
            )
            .clone();
        Some(StepRecord {
            t1,
            h,
            theta,
            lu,
            b,
            mos_ops: st.asm_cur.mos_ops.clone(),
        })
    } else {
        None
    };
    // New f_aug and q for the next step.
    f_aug.copy_from_slice(&st.asm_cur.f);
    for (i, fi) in f_aug.iter_mut().enumerate().take(n_node) {
        *fi += gmin * x[i];
    }
    q.copy_from_slice(&st.asm_cur.q);
    // The accepted assembly becomes the previous assembly of the next step.
    std::mem::swap(&mut st.asm_prev, &mut st.asm_cur);
    Ok(record)
}

/// Runs a fixed-step transient analysis.
///
/// # Errors
///
/// Propagates DC and per-step Newton failures.
///
/// # Examples
///
/// RC charging curve:
///
/// ```
/// use tranvar_circuit::{Circuit, NodeId, Waveform, Pulse};
/// use tranvar_engine::tran::{transient, TranOptions};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
/// ckt.add_resistor("R1", a, b, 1e3);
/// ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-6);
/// // Start the capacitor discharged and watch it charge toward 1 V.
/// let mut opts = TranOptions::new(5e-3, 1e-5);
/// opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
/// let res = transient(&ckt, &opts)?;
/// let v_end = ckt.voltage(res.last(), b);
/// assert!((v_end - 1.0).abs() < 1e-2);
/// # Ok::<(), tranvar_engine::EngineError>(())
/// ```
pub fn transient(ckt: &Circuit, opts: &TranOptions) -> Result<TranResult, EngineError> {
    transient_with(ckt, &mut CycleWorkspace::new(), opts)
}

/// [`transient`] with an explicit reusable workspace: repeated runs on one
/// circuit (scenario campaigns, Monte-Carlo-style re-simulation loops) skip
/// the per-call buffer allocation and — for the sparse backend — the
/// symbolic pivot re-analysis, exactly like
/// [`integrate_cycle_with`] does for cycle integrations. For the dense
/// backend the results are bit-identical to a fresh per-call run.
///
/// # Errors
///
/// Propagates DC and per-step Newton failures.
pub fn transient_with(
    ckt: &Circuit,
    ws: &mut CycleWorkspace,
    opts: &TranOptions,
) -> Result<TranResult, EngineError> {
    validate_step_config(opts)?;
    let n_node = ckt.n_nodes() - 1;
    let x0 = match &opts.x0 {
        Some(x) => x.clone(),
        None => dc_operating_point(
            ckt,
            &DcOptions {
                newton: opts.newton.clone(),
                ..DcOptions::default()
            },
        )?,
    };
    let n_steps = ((opts.t_stop - opts.t_start) / opts.dt).round() as usize;
    let mut times = Vec::with_capacity(n_steps + 1);
    let mut states = Vec::with_capacity(n_steps + 1);
    times.push(opts.t_start);
    states.push(x0.clone());

    let st = ws.state_for(ckt, opts.newton.solver, &x0, opts.t_start);
    let mut f_aug = st.asm_prev.f.clone();
    for (i, fi) in f_aug.iter_mut().enumerate().take(n_node) {
        *fi += opts.gmin * x0[i];
    }
    let mut q = st.asm_prev.q.clone();
    let mut x = x0;
    for k in 1..=n_steps {
        let t0 = opts.t_start + (k - 1) as f64 * opts.dt;
        let t1 = opts.t_start + k as f64 * opts.dt;
        step(
            ckt,
            st,
            &mut x,
            &mut f_aug,
            &mut q,
            t0,
            t1,
            opts.dt,
            opts.method,
            &opts.newton,
            opts.gmin,
            false,
        )?;
        times.push(t1);
        states.push(x.clone());
    }
    Ok(TranResult { times, states })
}

/// Integrates exactly one period of length `period` from `x0` at `t0`,
/// optionally recording per-step factorizations for PSS/LPTV reuse.
///
/// Allocates a fresh [`CycleWorkspace`] per call; shooting loops that
/// integrate many cycles of the same circuit should hold one workspace and
/// call [`integrate_cycle_with`] instead.
///
/// # Errors
///
/// Propagates per-step Newton failures.
#[allow(clippy::too_many_arguments)]
pub fn integrate_cycle(
    ckt: &Circuit,
    x0: &[f64],
    t0: f64,
    period: f64,
    n_steps: usize,
    method: Integrator,
    newton: &NewtonOptions,
    gmin: f64,
    record: bool,
) -> Result<CycleResult, EngineError> {
    let mut ws = CycleWorkspace::new();
    integrate_cycle_with(
        ckt, &mut ws, x0, t0, period, n_steps, method, newton, gmin, record,
    )
}

/// [`integrate_cycle`] with an explicit reusable workspace: repeated calls
/// (shooting-Newton rounds, warm-up cycles, period-perturbed re-integrations)
/// skip the per-call buffer allocation and — for the sparse backend — the
/// symbolic pivot re-analysis.
///
/// For the dense backend the results are bit-identical to
/// [`integrate_cycle`] (refactorization recomputes its pivots from the
/// values). The sparse backend replays the pivot order found on the first
/// cycle for as long as it stays numerically acceptable, exactly as it
/// already does between the timesteps of one cycle, so a reused workspace
/// may legitimately factor with a different (equally valid) pivot order
/// than a fresh one — identical to machine precision, not necessarily to
/// the last bit.
///
/// # Errors
///
/// Propagates per-step Newton failures.
#[allow(clippy::too_many_arguments)]
pub fn integrate_cycle_with(
    ckt: &Circuit,
    ws: &mut CycleWorkspace,
    x0: &[f64],
    t0: f64,
    period: f64,
    n_steps: usize,
    method: Integrator,
    newton: &NewtonOptions,
    gmin: f64,
    record: bool,
) -> Result<CycleResult, EngineError> {
    if n_steps == 0 || period <= 0.0 {
        return Err(EngineError::BadConfig(
            "cycle integration needs n_steps > 0 and period > 0".into(),
        ));
    }
    let n_node = ckt.n_nodes() - 1;
    let h = period / n_steps as f64;
    let mut times = Vec::with_capacity(n_steps + 1);
    let mut states = Vec::with_capacity(n_steps + 1);
    let mut records = Vec::with_capacity(if record { n_steps } else { 0 });
    times.push(t0);
    states.push(x0.to_vec());

    let st = ws.state_for(ckt, newton.solver, x0, t0);
    let mut f_aug = st.asm_prev.f.clone();
    for (i, fi) in f_aug.iter_mut().enumerate().take(n_node) {
        *fi += gmin * x0[i];
    }
    let mut q = st.asm_prev.q.clone();
    let mut x = x0.to_vec();
    for k in 1..=n_steps {
        let tk0 = t0 + period * (k - 1) as f64 / n_steps as f64;
        let t1 = t0 + period * k as f64 / n_steps as f64;
        // The first step of every cycle uses backward Euler: the trapezoidal
        // rule carries algebraic (non-dynamic) perturbations with eigenvalue
        // −1, which would make the cycle monodromy have unit eigenvalues on
        // V-source branch rows and render the shooting system singular. One
        // L-stable step annihilates those modes at O(h²) cost to the orbit.
        let step_method = if k == 1 {
            Integrator::BackwardEuler
        } else {
            method
        };
        let rec = step(
            ckt,
            st,
            &mut x,
            &mut f_aug,
            &mut q,
            tk0,
            t1,
            h,
            step_method,
            newton,
            gmin,
            record,
        )?;
        if let Some(r) = rec {
            records.push(r);
        }
        times.push(t1);
        states.push(x.clone());
    }
    Ok(CycleResult {
        times,
        states,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::{Pulse, Waveform};

    fn rc_circuit(tau_r: f64, tau_c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        ckt.add_resistor("R1", a, b, tau_r);
        ckt.add_capacitor("C1", b, NodeId::GROUND, tau_c);
        (ckt, b)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (ckt, b) = rc_circuit(1e3, 1e-6); // tau = 1 ms
        let mut opts = TranOptions::new(2e-3, 2e-6);
        opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
        opts.method = Integrator::Trapezoidal;
        let res = transient(&ckt, &opts).unwrap();
        for (t, x) in res.times.iter().zip(res.states.iter()) {
            let expect = 1.0 - (-t / 1e-3).exp();
            let got = ckt.voltage(x, b);
            assert!((got - expect).abs() < 2e-3, "t={t:.2e}: {got} vs {expect}");
        }
    }

    #[test]
    fn be_is_more_damped_than_trap() {
        // LC-ish tank via R-L-C: BE loses amplitude, trapezoidal conserves.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_capacitor("C1", a, NodeId::GROUND, 1e-9);
        ckt.add_inductor("L1", a, NodeId::GROUND, 1e-3);
        // start with 1 V on the cap: x = [v_a, i_L]
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3_f64 * 1e-9).sqrt());
        let t_end = 3.0 / f0;
        let dt = 1.0 / (200.0 * f0);
        let run = |method| {
            let mut opts = TranOptions::new(t_end, dt);
            opts.method = method;
            opts.x0 = Some(vec![1.0, 0.0]);
            let res = transient(&ckt, &opts).unwrap();
            res.node_waveform(&ckt, a)
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let be_peak_late = {
            let mut opts = TranOptions::new(t_end, dt);
            opts.method = Integrator::BackwardEuler;
            opts.x0 = Some(vec![1.0, 0.0]);
            let res = transient(&ckt, &opts).unwrap();
            let w = res.node_waveform(&ckt, a);
            w[w.len() - w.len() / 3..]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let trap_peak = run(Integrator::Trapezoidal);
        assert!(
            trap_peak > 0.95,
            "trapezoidal conserves amplitude: {trap_peak}"
        );
        assert!(be_peak_late < 0.9, "BE damps the tank: {be_peak_late}");
    }

    #[test]
    fn pulse_drives_rc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 4e-6,
                period: 10e-6,
            }),
        );
        ckt.add_resistor("R1", a, b, 100.0);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9); // tau = 100 ns
        let res = transient(&ckt, &TranOptions::new(10e-6, 1e-8)).unwrap();
        let w = res.node_waveform(&ckt, b);
        let t = &res.times;
        // By 3 us (20 tau after the edge) the output is ~1.
        let i3 = tranvar_num::interp::nearest_index(t, 3e-6);
        assert!((w[i3] - 1.0).abs() < 1e-3);
        // After the falling edge it returns to ~0 by 8 us.
        let i8 = tranvar_num::interp::nearest_index(t, 8e-6);
        assert!(w[i8].abs() < 1e-2);
    }

    #[test]
    fn cycle_records_propagate_sensitivity() {
        // Check J⁻¹B against finite differences of the flow map for a linear
        // RC: dx1/dx0 computed both ways.
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        let x0 = vec![1.0, 0.2, -0.8e-3];
        let n = 3;
        let period = 1e-4;
        let cyc = integrate_cycle(
            &ckt,
            &x0,
            0.0,
            period,
            8,
            Integrator::BackwardEuler,
            &NewtonOptions::default(),
            1e-12,
            true,
        )
        .unwrap();
        assert_eq!(cyc.records.len(), 8);
        // Monodromy via records.
        let mut m = tranvar_num::DMat::<f64>::identity(n);
        for rec in &cyc.records {
            let bm = rec.b.to_dense();
            let mut cols = Vec::new();
            for j in 0..n {
                let col: Vec<f64> = (0..n).map(|i| bm[(i, j)]).collect();
                cols.push(rec.lu.solve(&col));
            }
            let mut a = tranvar_num::DMat::<f64>::zeros(n, n);
            for (j, col) in cols.iter().enumerate() {
                for i in 0..n {
                    a[(i, j)] = col[i];
                }
            }
            m = a.mat_mul(&m);
        }
        // FD of the flow.
        let flow = |x0: &[f64]| {
            integrate_cycle(
                &ckt,
                x0,
                0.0,
                period,
                8,
                Integrator::BackwardEuler,
                &NewtonOptions::default(),
                1e-12,
                false,
            )
            .unwrap()
            .states
            .last()
            .unwrap()
            .clone()
        };
        let h = 1e-6;
        for j in 0..n {
            let mut xp = x0.clone();
            xp[j] += h;
            let mut xm = x0.clone();
            xm[j] -= h;
            let fp = flow(&xp);
            let fm = flow(&xm);
            for i in 0..n {
                let fd = (fp[i] - fm[i]) / (2.0 * h);
                assert!(
                    (m[(i, j)] - fd).abs() < 1e-5 * fd.abs().max(1e-3),
                    "M[{i}][{j}] = {} vs fd {fd}",
                    m[(i, j)]
                );
            }
        }
    }

    /// Reusing one `CycleWorkspace` across cycles must reproduce the fresh
    /// per-call path exactly (dense backend: refactorization recomputes its
    /// pivots, so the workspace carries storage, not state).
    #[test]
    fn cycle_workspace_reuse_is_bit_identical() {
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        let period = 1e-4;
        let newton = NewtonOptions::default();
        let mut ws = CycleWorkspace::new();
        let starts = [
            vec![1.0, 0.2, -0.8e-3],
            vec![1.0, 0.7, -0.3e-3],
            vec![1.0, 0.2, -0.8e-3], // repeat the first start after other work
        ];
        for (round, x0) in starts.iter().enumerate() {
            let fresh = integrate_cycle(
                &ckt,
                x0,
                0.0,
                period,
                8,
                Integrator::Trapezoidal,
                &newton,
                1e-12,
                true,
            )
            .unwrap();
            let reused = integrate_cycle_with(
                &ckt,
                &mut ws,
                x0,
                0.0,
                period,
                8,
                Integrator::Trapezoidal,
                &newton,
                1e-12,
                true,
            )
            .unwrap();
            assert_eq!(fresh.states.len(), reused.states.len());
            for (sf, sr) in fresh.states.iter().zip(reused.states.iter()) {
                for (a, b) in sf.iter().zip(sr.iter()) {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "round {round}: fresh {a} vs reused {b}"
                    );
                }
            }
            assert_eq!(fresh.records.len(), reused.records.len());
            for (rf, rr) in fresh.records.iter().zip(reused.records.iter()) {
                let probe = vec![1.0, -0.5, 0.25];
                let xf = rf.lu.solve(&probe);
                let xr = rr.lu.solve(&probe);
                for (a, b) in xf.iter().zip(xr.iter()) {
                    assert!(a.to_bits() == b.to_bits(), "round {round}: record solve");
                }
            }
        }
    }

    /// Sparse-backend workspace reuse replays the first cycle's pivot order,
    /// so results match a fresh workspace to machine precision (the pivot
    /// order, not the arithmetic, is the only state that carries over).
    #[test]
    fn sparse_cycle_workspace_reuse_matches_fresh() {
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        let period = 1e-4;
        let mut newton = NewtonOptions::default();
        newton.solver = crate::solver::SolverKind::Sparse;
        let mut ws = CycleWorkspace::new();
        let starts = [
            vec![1.0, 0.2, -0.8e-3],
            vec![1.0, 0.7, -0.3e-3],
            vec![1.0, 0.4, -0.6e-3],
        ];
        for (round, x0) in starts.iter().enumerate() {
            // Alternate the period like autonomous shooting does.
            let per = period * (1.0 + 1e-6 * round as f64);
            let fresh = integrate_cycle(
                &ckt,
                x0,
                0.0,
                per,
                8,
                Integrator::Trapezoidal,
                &newton,
                1e-12,
                false,
            )
            .unwrap();
            let reused = integrate_cycle_with(
                &ckt,
                &mut ws,
                x0,
                0.0,
                per,
                8,
                Integrator::Trapezoidal,
                &newton,
                1e-12,
                false,
            )
            .unwrap();
            for (sf, sr) in fresh.states.iter().zip(reused.states.iter()) {
                for (a, b) in sf.iter().zip(sr.iter()) {
                    assert!(
                        (a - b).abs() < 1e-12 * a.abs().max(1.0),
                        "round {round}: fresh {a} vs reused {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_bad_config() {
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        assert!(transient(&ckt, &TranOptions::new(-1.0, 1e-6)).is_err());
        assert!(matches!(
            integrate_cycle(
                &ckt,
                &[0.0; 3],
                0.0,
                1.0,
                0,
                Integrator::BackwardEuler,
                &NewtonOptions::default(),
                0.0,
                false
            ),
            Err(EngineError::BadConfig(_))
        ));
    }
}
