//! Transient analysis: backward-Euler / trapezoidal integration with
//! per-step Newton solves, on either a fixed uniform grid or an
//! LTE-controlled adaptive grid.
//!
//! # Step control
//!
//! [`TranOptions::step_control`] selects between two modes:
//!
//! * [`StepControl::Fixed`] (the default) integrates on the uniform grid
//!   `t_k = t_start + k·dt`. This is the bit-identical reference path: its
//!   arithmetic is untouched by the adaptive machinery.
//! * [`StepControl::Adaptive`] estimates the local truncation error (LTE)
//!   of every step with a predictor/corrector device (Milne's device on the
//!   non-uniform history) and accepts, shrinks or grows the step to hold
//!   the weighted error at 1:
//!
//!   - after each converged step, the corrector result `x₁` is compared
//!     against a polynomial predictor extrapolated through the accepted
//!     history; the gap `d = x₁ − x_pred` is mapped to the LTE by the
//!     method's error constant (backward Euler with a linear predictor:
//!     `|τ| = |d|·h/(2h+h₁)`; trapezoidal with a quadratic predictor:
//!     `|τ| = |d|·(h³/12)/(h³/12 + h(h+h₁)(h+h₁+h₂)/6)`, where `h₁`, `h₂`
//!     are the previous accepted step sizes),
//!   - the error norm is a weighted RMS with per-component weight
//!     `abstol + reltol·max(|x₁ᵢ|, |x₀ᵢ|)` ([`AdaptiveOptions`]); a step
//!     is accepted iff the norm is finite and ≤ 1,
//!   - the next step is `h·clamp(safety·err^(−1/(order+1)), min_shrink,
//!     max_growth)`, clamped into `[h_min, h_max]`; a rejected step is
//!     additionally capped at half its size, re-anchors the integrator at
//!     the last accepted state, and is retried with backward Euler,
//!   - the run starts with backward Euler at `dt` until two steps of
//!     history exist (the quadratic predictor needs three points), then
//!     switches to the configured method; the first two steps cannot be
//!     error-tested and are always accepted,
//!   - every rejected step is charged against the step's
//!     [`crate::budget::SolveBudget`] (one extra iteration tick on top of
//!     the Newton iterations the attempt consumed), so a rejection storm
//!     trips [`crate::error::EngineError::BudgetExceeded`] instead of
//!     spinning; at `h = h_min` a finite over-tolerance step is accepted
//!     (the controller can do no better) and a non-finite one fails with
//!     [`crate::error::EngineError::NonFinite`].
//!
//!   The accepted grid is monotone with every interior step in
//!   `[h_min, 1.05·h_max]` (a step that would leave a sliver shorter than
//!   5 % of itself is stretched to land exactly on `t_stop`; the final
//!   step may be shorter than `h_min` when only a sliver remains).
//!
//!   Steps additionally land *exactly* on every source-waveform corner
//!   ([`tranvar_circuit::Circuit::source_breakpoints`]): a step straddling
//!   a pulse edge has an `O(1)` local error however small it is, so
//!   without breakpoints the controller would Zeno-shrink toward `h_min`
//!   in front of every edge instead of stepping onto it. Each breakpoint
//!   behaves like a mini-`t_stop` (same 5 % stretch rule, same possible
//!   sub-`h_min` sliver just before it); corners closer than `2·h_min` to
//!   each other or to the run endpoints are merged.
//!
//! Besides the ordinary [`transient`] entry point (used by Monte-Carlo
//! re-simulation), the module exposes [`integrate_cycle`], which integrates
//! exactly one period and optionally records, per accepted step, the factored
//! Jacobian `J_k` and the coupling matrix `B_k` with `∂x_k/∂x_{k−1} =
//! J_k⁻¹·B_k`. Those records are the raw material of both the shooting-Newton
//! monodromy matrix and the LPTV periodic solver — their reuse across all
//! noise sources is where the paper's 100–1000× speedup over Monte-Carlo
//! comes from. Each record carries its own step size and θ
//! ([`StepRecord::h`], [`StepRecord::theta`]), so downstream consumers
//! (sensitivity propagation, monodromy accumulation, LPTV) follow the
//! accepted grid whether it is uniform or adaptive
//! ([`integrate_cycle_adaptive_with`]).

use crate::dc::{dc_operating_point, DcOptions, NewtonOptions};
use crate::error::EngineError;
use crate::solver::{CombineStage, FactoredJacobian, JacobianWorkspace};
use tranvar_circuit::{Circuit, NodeId};
use tranvar_num::dense::vecops;
use tranvar_num::Csc;

/// Time-integration scheme.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Integrator {
    /// Backward Euler (L-stable; damps switching artifacts — default for
    /// strongly clocked circuits).
    #[default]
    BackwardEuler,
    /// Trapezoidal rule (A-stable, second order, no numerical damping —
    /// preferred for oscillators where period accuracy matters).
    Trapezoidal,
}

impl Integrator {
    /// The implicitness weight θ (1 for BE, ½ for trapezoidal).
    pub fn theta(self) -> f64 {
        match self {
            Integrator::BackwardEuler => 1.0,
            Integrator::Trapezoidal => 0.5,
        }
    }
}

/// Tolerances and step bounds for LTE-controlled adaptive stepping
/// ([`StepControl::Adaptive`]).
///
/// The per-component error weight is `abstol + reltol·max(|x₁ᵢ|, |x₀ᵢ|)`;
/// a step is accepted when the weighted RMS of the LTE estimate is ≤ 1.
/// See the [module docs](self) for the full controller contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveOptions {
    /// Relative tolerance on the per-step local truncation error.
    pub reltol: f64,
    /// Absolute tolerance floor (same units as the unknowns; keeps the
    /// weight positive when a component passes through zero).
    pub abstol: f64,
    /// Smallest allowed step (s); `0.0` resolves to `span × 1e-12`. At
    /// `h_min` a finite over-tolerance step is accepted rather than
    /// retried forever.
    pub h_min: f64,
    /// Largest allowed step (s); `0.0` resolves to `span / 8`.
    pub h_max: f64,
    /// Upper clamp on the per-step growth factor.
    pub max_growth: f64,
    /// Lower clamp on the per-step shrink factor.
    pub min_shrink: f64,
    /// Safety factor applied to the optimal-step estimate (< 1 biases the
    /// controller toward acceptance on the next attempt).
    pub safety: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            reltol: 1e-3,
            abstol: 1e-6,
            h_min: 0.0,
            h_max: 0.0,
            max_growth: 2.0,
            min_shrink: 0.25,
            safety: 0.9,
        }
    }
}

impl AdaptiveOptions {
    /// Resolves the `0.0 = auto` step bounds against the run span,
    /// returning the effective `(h_min, h_max)` the controller will clamp
    /// to (`span × 1e-12` and `span / 8` by default).
    pub fn resolve_bounds(&self, span: f64) -> (f64, f64) {
        let h_min = if self.h_min > 0.0 {
            self.h_min
        } else {
            span * 1e-12
        };
        let h_max = if self.h_max > 0.0 {
            self.h_max
        } else {
            span / 8.0
        };
        (h_min, h_max.max(h_min))
    }

    fn validate(&self) -> Result<(), EngineError> {
        let ok = self.reltol > 0.0
            && self.reltol.is_finite()
            && self.abstol > 0.0
            && self.abstol.is_finite()
            && self.h_min >= 0.0
            && self.h_max >= 0.0
            && (self.h_min == 0.0 || self.h_max == 0.0 || self.h_min <= self.h_max)
            && self.max_growth >= 1.0
            && self.min_shrink > 0.0
            && self.min_shrink < 1.0
            && self.safety > 0.0
            && self.safety <= 1.0;
        if !ok {
            return Err(EngineError::BadConfig(
                "adaptive stepping needs reltol > 0, abstol > 0, 0 <= h_min <= h_max, \
                 max_growth >= 1, 0 < min_shrink < 1 and 0 < safety <= 1"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Time-grid selection for transient-style runs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum StepControl {
    /// Uniform grid `t_k = t_start + k·dt` — the bit-identical reference
    /// path (results are unchanged from before adaptive stepping existed).
    #[default]
    Fixed,
    /// LTE-controlled accept/shrink/grow stepping starting from `dt`; see
    /// the [module docs](self).
    Adaptive(AdaptiveOptions),
}

/// Transient analysis controls.
#[derive(Clone, Debug, PartialEq)]
pub struct TranOptions {
    /// Stop time (s).
    pub t_stop: f64,
    /// Step size (s): the fixed step in [`StepControl::Fixed`] mode, the
    /// initial step in [`StepControl::Adaptive`] mode.
    pub dt: f64,
    /// Start time (s).
    pub t_start: f64,
    /// Integration scheme.
    pub method: Integrator,
    /// Newton controls for each step.
    pub newton: NewtonOptions,
    /// Shunt gmin on node rows (kept consistently in residual and Jacobian).
    pub gmin: f64,
    /// Initial state; `None` computes the DC operating point at `t_start`.
    pub x0: Option<Vec<f64>>,
    /// Worker threads for the batched sensitivity propagation
    /// (`transient_with_sensitivities`): `0` uses all available cores, `1`
    /// runs single-threaded. Results are identical for any thread count —
    /// each parameter's arithmetic is independent of the partitioning.
    pub threads: usize,
    /// Fixed-grid vs LTE-controlled adaptive stepping.
    pub step_control: StepControl,
}

impl TranOptions {
    /// Reasonable defaults for a run to `t_stop` with step `dt`.
    pub fn new(t_stop: f64, dt: f64) -> Self {
        TranOptions {
            t_stop,
            dt,
            t_start: 0.0,
            method: Integrator::BackwardEuler,
            newton: NewtonOptions::default(),
            gmin: 1e-12,
            x0: None,
            threads: 0,
            step_control: StepControl::Fixed,
        }
    }

    /// [`TranOptions::new`] with LTE-controlled adaptive stepping enabled:
    /// `dt` becomes the initial step and `adaptive` sets the tolerances.
    pub fn adaptive(t_stop: f64, dt: f64, adaptive: AdaptiveOptions) -> Self {
        TranOptions {
            step_control: StepControl::Adaptive(adaptive),
            ..TranOptions::new(t_stop, dt)
        }
    }
}

/// Result of a transient run: states on the sample grid (uniform in
/// [`StepControl::Fixed`] mode, the accepted non-uniform grid in
/// [`StepControl::Adaptive`] mode — consult [`TranResult::times`], and see
/// [`tranvar_num::interp::is_uniform_grid`] for a cheap uniformity check).
#[derive(Clone, Debug, Default)]
pub struct TranResult {
    /// Sample times.
    pub times: Vec<f64>,
    /// State vectors per sample.
    pub states: Vec<Vec<f64>>,
}

impl TranResult {
    /// Extracts one node's voltage waveform.
    pub fn node_waveform(&self, ckt: &Circuit, node: NodeId) -> Vec<f64> {
        self.states.iter().map(|x| ckt.voltage(x, node)).collect()
    }

    /// The final state.
    ///
    /// # Panics
    ///
    /// Panics if the run is empty.
    pub fn last(&self) -> &[f64] {
        self.states.last().expect("empty transient result")
    }
}

/// Shared validation for every transient-style run (plain, sensitivity,
/// session): one copy of the config check and its error message.
///
/// Fixed mode additionally requires the rounded step count
/// `((t_stop − t_start)/dt).round()` to be at least 1: a `dt` larger than
/// twice the span used to *silently* produce a zero-step run (initial state
/// only), which is never what the caller meant.
pub(crate) fn validate_step_config(opts: &TranOptions) -> Result<(), EngineError> {
    if opts.dt <= 0.0 || opts.t_stop <= opts.t_start {
        return Err(EngineError::BadConfig(
            "transient needs dt > 0 and t_stop > t_start".into(),
        ));
    }
    match &opts.step_control {
        StepControl::Fixed => {
            if ((opts.t_stop - opts.t_start) / opts.dt).round() < 1.0 {
                return Err(EngineError::BadConfig(format!(
                    "fixed-step transient rounds to zero steps: dt = {:.3e} exceeds \
                     the span t_stop - t_start = {:.3e} (need ((t_stop - t_start)/dt)\
                     .round() >= 1)",
                    opts.dt,
                    opts.t_stop - opts.t_start
                )));
            }
        }
        StepControl::Adaptive(a) => a.validate()?,
    }
    Ok(())
}

/// Record of one accepted timestep for PSS/LPTV reuse.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// End time of the step.
    pub t1: f64,
    /// Step size.
    pub h: f64,
    /// Implicitness weight θ actually used for this step (the first step of a
    /// cycle is always backward Euler; see [`integrate_cycle`]).
    pub theta: f64,
    /// Factored step Jacobian `J = C₁/h + θ·G₁`.
    pub lu: FactoredJacobian,
    /// Coupling to the previous state: `B = C₀/h − (1−θ)·G₀`, so that
    /// `∂x₁/∂x₀ = J⁻¹·B`.
    pub b: Csc<f64>,
    /// MOSFET operating points at the accepted state (device-indexed),
    /// captured from the final assembly so sensitivity sources can be built
    /// without re-evaluating any device model
    /// ([`tranvar_circuit::Circuit::d_residual_dparams_with_ops`]).
    pub mos_ops: Vec<tranvar_circuit::mosfet::MosOp>,
}

/// Result of a one-period integration with step records.
#[derive(Clone, Debug)]
pub struct CycleResult {
    /// `n_steps + 1` sample times (including both endpoints).
    pub times: Vec<f64>,
    /// `n_steps + 1` states; `states[0]` is the initial state.
    pub states: Vec<Vec<f64>>,
    /// Per-step records (empty unless requested).
    pub records: Vec<StepRecord>,
}

/// Reusable per-run buffers for the transient step loop: the assembly
/// double-buffer, the Newton vectors, the factorization workspace and the
/// coupling-matrix stage. One instance lives for a whole run, so the inner
/// loop performs no repeated allocation.
pub(crate) struct StepState {
    pub(crate) jws: JacobianWorkspace,
    bstage: CombineStage,
    /// Assembly at the previous accepted state `(x0, t0)`.
    pub(crate) asm_prev: tranvar_circuit::Assembly,
    /// Assembly buffer for the current step (swapped with `asm_prev`).
    asm_cur: tranvar_circuit::Assembly,
    r: Vec<f64>,
    delta: Vec<f64>,
    scratch: Vec<f64>,
}

impl StepState {
    /// Initializes the step state at `(x0, t0)`.
    pub(crate) fn new(ckt: &Circuit, kind: crate::solver::SolverKind, x0: &[f64], t0: f64) -> Self {
        let n = ckt.n_unknowns();
        let asm_prev = ckt.assemble(x0, t0);
        let asm_cur = ckt.assemble(x0, t0);
        StepState {
            jws: JacobianWorkspace::new(kind),
            bstage: CombineStage::new(),
            asm_prev,
            asm_cur,
            r: vec![0.0; n],
            delta: vec![0.0; n],
            scratch: vec![0.0; n],
        }
    }

    /// Re-anchors the state at a new `(x0, t0)` without releasing any
    /// buffer: only the previous-accepted assembly is re-evaluated (the
    /// current-step assembly is overwritten by the first Newton iteration,
    /// and the factorization/staging workspaces carry over unchanged).
    pub(crate) fn reset(&mut self, ckt: &Circuit, x0: &[f64], t0: f64) {
        ckt.assemble_into(x0, t0, &mut self.asm_prev);
    }
}

/// Reusable buffers for repeated [`integrate_cycle_with`] calls on one
/// circuit: the assembly double-buffer, Newton vectors, factorization
/// workspace (staged CSC/dense storage plus the sparse symbolic pivot
/// analysis) and coupling-matrix stage all survive between cycles.
///
/// A shooting-Newton loop integrates the same one-period problem dozens of
/// times; with a shared workspace every round after the first performs no
/// allocation and no symbolic re-analysis in the step loop.
#[derive(Default)]
pub struct CycleWorkspace {
    st: Option<StepState>,
    /// Counters of step states this workspace has already retired (a
    /// backend or system-size change rebuilds the state), so
    /// [`CycleWorkspace::stats`] never undercounts structural work.
    retired: crate::solver::SolverStats,
}

impl CycleWorkspace {
    /// Creates an empty workspace; buffers are built lazily on first use.
    pub fn new() -> Self {
        CycleWorkspace::default()
    }

    /// Structural-work counters accumulated over the workspace's lifetime
    /// (including retired step states), or `None` if it was never used.
    pub fn stats(&self) -> Option<crate::solver::SolverStats> {
        self.st
            .as_ref()
            .map(|st| self.retired.merged(st.jws.stats()))
    }

    /// Returns the step state re-anchored at `(x0, t0)`, reusing every
    /// retained buffer when the backend and system size still match, and
    /// rebuilding from scratch otherwise.
    pub(crate) fn state_for(
        &mut self,
        ckt: &Circuit,
        kind: crate::solver::SolverKind,
        x0: &[f64],
        t0: f64,
    ) -> &mut StepState {
        let st = match self.st.take() {
            Some(mut st) if st.jws.kind() == kind && st.r.len() == ckt.n_unknowns() => {
                st.reset(ckt, x0, t0);
                st
            }
            old => {
                if let Some(old) = old {
                    self.retired = self.retired.merged(old.jws.stats());
                }
                StepState::new(ckt, kind, x0, t0)
            }
        };
        self.st.insert(st)
    }
}

impl std::fmt::Debug for CycleWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CycleWorkspace")
            .field("initialized", &self.st.is_some())
            .finish()
    }
}

/// One Newton-corrected implicit step from `(x, t0)` to `t1 = t0 + h`,
/// advancing `x`, `f_aug` and `q` in place (on entry they hold the previous
/// accepted state; on success they hold the new one).
///
/// The Newton iteration warm-starts from the previous accepted assembly
/// (retimed to `t1` with a handful of waveform evaluations instead of a
/// full device re-evaluation) and reuses every buffer in `st`. On request
/// the step record is returned; the accepted assembly is left in
/// `st.asm_prev` for the next step.
#[allow(clippy::too_many_arguments)]
pub(crate) fn step(
    ckt: &Circuit,
    st: &mut StepState,
    x: &mut [f64],
    f_aug: &mut [f64],
    q: &mut [f64],
    t0: f64,
    t1: f64,
    h: f64,
    method: Integrator,
    newton: &NewtonOptions,
    gmin: f64,
    want_record: bool,
) -> Result<Option<StepRecord>, EngineError> {
    let n = ckt.n_unknowns();
    let n_node = ckt.n_nodes() - 1;
    let theta = method.theta();
    // Warm start: device stamps of the previous accepted assembly are valid
    // at (x, t1); only the independent sources move with time.
    st.asm_cur.copy_from(&st.asm_prev);
    ckt.retime_sources(&mut st.asm_cur, t0, t1);
    let mut converged = false;
    for _ in 0..newton.max_iter {
        newton.budget.begin_iteration("transient step")?;
        let asm1 = &st.asm_cur;
        // Residual r = (q1 − q0)/h + θ f1_aug + (1−θ) f0_aug.
        for i in 0..n {
            let f1_aug = asm1.f[i] + if i < n_node { gmin * x[i] } else { 0.0 };
            st.r[i] = (asm1.q[i] - q[i]) / h + theta * f1_aug + (1.0 - theta) * f_aug[i];
        }
        // The MNA pattern is fixed across iterations and steps, so the
        // workspace replays its symbolic analysis and refactors in place —
        // and skips the numeric work entirely when the values are unchanged
        // (the warm-started first iteration repeats the previous accepted
        // Jacobian).
        newton.budget.count_factorization();
        let lu = st.jws.factor(asm1, theta, 1.0 / h, theta * gmin, n_node)?;
        lu.solve_into(&st.r, &mut st.delta, &mut st.scratch);
        vecops::scale(&mut st.delta, -1.0);
        let mut dmax = vecops::norm_inf(&st.delta);
        if crate::fault::poison_nan(crate::fault::sites::TRAN_UPDATE) {
            dmax = f64::NAN;
        }
        // Non-finite guard, once per Newton iteration: a NaN/Inf update can
        // never satisfy the `< vtol` check, so without this the loop would
        // burn `max_iter` iterations and report a misleading NoConvergence.
        if !dmax.is_finite() {
            return Err(EngineError::NonFinite {
                analysis: "transient step".into(),
                detail: format!("update |dx|={dmax:.3e} at t={t1:.3e} (h={h:.3e})"),
            });
        }
        if dmax > newton.step_limit {
            let k = newton.step_limit / dmax;
            vecops::scale(&mut st.delta, k);
        }
        for (xi, di) in x.iter_mut().zip(st.delta.iter()) {
            *xi += di;
        }
        ckt.assemble_into(x, t1, &mut st.asm_cur);
        if vecops::norm_inf(&st.delta) < newton.vtol {
            converged = true;
            break;
        }
    }
    if !converged {
        return Err(EngineError::NoConvergence {
            analysis: "transient step".into(),
            detail: format!("at t={t1:.3e} with h={h:.3e}"),
        });
    }
    let record = if want_record {
        // Factor at the accepted point so the record matches x1 exactly;
        // the workspace keeps this factorization cached, so the next step's
        // warm-started first iteration (same G/C) reuses it for free.
        let lu = st
            .jws
            .factor(&st.asm_cur, theta, 1.0 / h, theta * gmin, n_node)?
            .clone();
        // B = C0/h − (1−θ)·(G0 + gmin)
        let b = st
            .bstage
            .combine(
                &st.asm_prev,
                -(1.0 - theta),
                1.0 / h,
                -(1.0 - theta) * gmin,
                n_node,
            )
            .clone();
        Some(StepRecord {
            t1,
            h,
            theta,
            lu,
            b,
            mos_ops: st.asm_cur.mos_ops.clone(),
        })
    } else {
        None
    };
    // New f_aug and q for the next step.
    f_aug.copy_from_slice(&st.asm_cur.f);
    for (i, fi) in f_aug.iter_mut().enumerate().take(n_node) {
        *fi += gmin * x[i];
    }
    q.copy_from_slice(&st.asm_cur.q);
    // The accepted assembly becomes the previous assembly of the next step.
    std::mem::swap(&mut st.asm_prev, &mut st.asm_cur);
    Ok(record)
}

/// One accepted adaptive step, as reported by [`AdaptiveDriver::advance`].
pub(crate) struct AdaptiveStep {
    /// End time of the accepted step.
    pub(crate) t1: f64,
    /// Implicitness weight actually used (BE during startup and on
    /// post-rejection retries, the configured method otherwise).
    pub(crate) theta: f64,
    /// Step record, when requested.
    pub(crate) record: Option<StepRecord>,
}

/// Does shrinking the step plausibly cure this step failure? Newton
/// divergence and numerical blow-ups usually mean the step was too big;
/// budget exhaustion and config errors never get better with a smaller `h`.
fn shrink_can_help(e: &EngineError) -> bool {
    matches!(
        e,
        EngineError::NoConvergence { .. } | EngineError::NonFinite { .. } | EngineError::Num(_)
    )
}

/// The LTE-controlled stepping loop shared by [`transient_with`], the
/// adaptive sensitivity propagation ([`crate::transens`]) and
/// [`integrate_cycle_adaptive_with`]: owns the integration state (`x`,
/// `f_aug`, `q`), the accepted-state snapshots used to roll back rejected
/// steps, and the predictor history. All users drive the *same* loop, so
/// the nominal trajectory is bitwise identical across entry points.
pub(crate) struct AdaptiveDriver {
    t_stop: f64,
    method: Integrator,
    reltol: f64,
    abstol: f64,
    h_min: f64,
    h_max: f64,
    max_growth: f64,
    min_shrink: f64,
    safety: f64,
    /// Last accepted time.
    t: f64,
    /// Working state vector; equals the accepted state between
    /// [`AdaptiveDriver::advance`] calls.
    pub(crate) x: Vec<f64>,
    f_aug: Vec<f64>,
    q: Vec<f64>,
    // Accepted-state snapshots: `step()` commits f_aug/q and swaps the
    // assembly double-buffer before the LTE verdict exists, so a rejection
    // restores from these and re-anchors the assembly with `StepState::reset`.
    x_acc: Vec<f64>,
    f_acc: Vec<f64>,
    q_acc: Vec<f64>,
    x_pred: Vec<f64>,
    /// Previous accepted step sizes (`h1` most recent) and states, the
    /// predictor history.
    h1: f64,
    h2: f64,
    x_prev1: Vec<f64>,
    x_prev2: Vec<f64>,
    n_accepted: usize,
    /// Proposed size of the next step.
    h_next: f64,
    /// Retry a rejected step with backward Euler (L-stable damping beats
    /// second-order accuracy right after the controller found trouble).
    retry_be: bool,
    /// Source-waveform derivative discontinuities inside the run, sorted;
    /// steps land on these exactly. A step that *straddles* a corner has an
    /// `O(1)` local error however small it is, so without these the
    /// controller Zeno-shrinks toward `h_min` before every pulse edge.
    breakpoints: Vec<f64>,
    /// First entry of `breakpoints` not yet passed.
    next_bp: usize,
}

impl AdaptiveDriver {
    /// Builds a driver anchored at `(x0, t_start)`; `st` must already be
    /// anchored there (it supplies the initial `f_aug`/`q`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ckt: &Circuit,
        st: &StepState,
        x0: Vec<f64>,
        t_start: f64,
        t_stop: f64,
        dt: f64,
        method: Integrator,
        gmin: f64,
        a: &AdaptiveOptions,
        n_node: usize,
    ) -> Self {
        let (h_min, h_max) = a.resolve_bounds(t_stop - t_start);
        // Merge corners closer than 2·h_min to each other (or to the run
        // endpoints): landing on both would force sub-h_min steps.
        let mut breakpoints = Vec::new();
        for bp in ckt.source_breakpoints(t_start, t_stop) {
            let prev = *breakpoints.last().unwrap_or(&t_start);
            if bp - prev >= 2.0 * h_min && t_stop - bp >= 2.0 * h_min {
                breakpoints.push(bp);
            }
        }
        let mut f_aug = st.asm_prev.f.clone();
        for (i, fi) in f_aug.iter_mut().enumerate().take(n_node) {
            *fi += gmin * x0[i];
        }
        let q = st.asm_prev.q.clone();
        let n = x0.len();
        AdaptiveDriver {
            t_stop,
            method,
            reltol: a.reltol,
            abstol: a.abstol,
            h_min,
            h_max,
            max_growth: a.max_growth,
            min_shrink: a.min_shrink,
            safety: a.safety,
            t: t_start,
            x_acc: x0.clone(),
            f_acc: f_aug.clone(),
            q_acc: q.clone(),
            x_pred: vec![0.0; n],
            x: x0,
            f_aug,
            q,
            h1: 0.0,
            h2: 0.0,
            x_prev1: vec![0.0; n],
            x_prev2: vec![0.0; n],
            n_accepted: 0,
            h_next: dt.min(h_max).max(h_min),
            retry_be: false,
            breakpoints,
            next_bp: 0,
        }
    }

    /// Weighted-RMS LTE norm of the corrector−predictor gap: `coeff` is the
    /// method's error constant, the weight is
    /// `abstol + reltol·max(|x₁ᵢ|, |x₀ᵢ|)`. Accept iff finite and ≤ 1.
    fn lte_norm(&self, coeff: f64) -> f64 {
        let n = self.x.len();
        let mut sum = 0.0;
        for i in 0..n {
            let d = self.x[i] - self.x_pred[i];
            let w = self.abstol + self.reltol * self.x[i].abs().max(self.x_acc[i].abs());
            let e = d / w;
            sum += e * e;
        }
        let mut err = coeff * (sum / n.max(1) as f64).sqrt();
        if crate::fault::poison_nan(crate::fault::sites::TRAN_LTE) {
            err = f64::NAN;
        }
        err
    }

    /// Attempts steps (shrinking on Newton failure or LTE rejection) until
    /// one is accepted, and returns it; `Ok(None)` once `t_stop` is reached.
    ///
    /// Termination: every rejection multiplies the step by at most
    /// `max(min_shrink, ½)` down to `h_min`, where a finite over-tolerance
    /// step is accepted and a non-finite one errors out — and each
    /// rejection charges one budget iteration, so a budgeted run trips
    /// [`EngineError::BudgetExceeded`] long before `h_min` on a genuine
    /// rejection storm.
    pub(crate) fn advance(
        &mut self,
        ckt: &Circuit,
        st: &mut StepState,
        newton: &NewtonOptions,
        gmin: f64,
        want_record: bool,
    ) -> Result<Option<AdaptiveStep>, EngineError> {
        if self.t >= self.t_stop {
            return Ok(None);
        }
        while self.next_bp < self.breakpoints.len() && self.breakpoints[self.next_bp] <= self.t {
            self.next_bp += 1;
        }
        loop {
            let h_prop = self.h_next.clamp(self.h_min, self.h_max);
            // The local stop is the next source breakpoint (or t_stop):
            // steps land on waveform corners exactly, never straddle them.
            let stop = self
                .breakpoints
                .get(self.next_bp)
                .copied()
                .unwrap_or(self.t_stop);
            // Stretch to the stop: a step that would leave a sliver shorter
            // than 5 % of itself lands exactly on it instead.
            let t1 = if self.t + 1.05 * h_prop >= stop {
                stop
            } else {
                self.t + h_prop
            };
            // Derive h from the time difference so the step size and the
            // sample grid are bitwise consistent (downstream consumers
            // reconstruct h as times[k] − times[k−1]).
            let h = t1 - self.t;
            // "Cannot shrink further" is judged on the *proposal*: the
            // realized h carries the rounding of (t + h_prop) − t, which
            // can exceed any fixed relative margin when h_prop ≪ t.
            let at_h_min = h_prop <= self.h_min * (1.0 + 1e-12);
            let startup = self.n_accepted < 2;
            let step_method = if startup || self.retry_be {
                Integrator::BackwardEuler
            } else {
                self.method
            };
            let attempt = step(
                ckt,
                st,
                &mut self.x,
                &mut self.f_aug,
                &mut self.q,
                self.t,
                t1,
                h,
                step_method,
                newton,
                gmin,
                want_record,
            );
            let record = match attempt {
                Ok(record) => record,
                Err(e) if shrink_can_help(&e) && !at_h_min => {
                    // Newton failed: x may be half-updated, but nothing was
                    // committed (f_aug/q and the assembly double-buffer are
                    // only touched on success), so restoring x suffices.
                    newton.budget.begin_iteration("transient step control")?;
                    self.x.copy_from_slice(&self.x_acc);
                    self.h_next = (h * self.min_shrink).max(self.h_min);
                    self.retry_be = true;
                    continue;
                }
                Err(e) => return Err(e),
            };
            // LTE verdict. The first accepted step has no predictor history
            // and is always accepted at the initial dt; the controller
            // engages from the second step on.
            let mut growth = self.max_growth;
            let accept = if self.n_accepted == 0 {
                true
            } else {
                let n = self.x.len();
                let second_order = step_method == Integrator::Trapezoidal && self.n_accepted >= 2;
                if second_order {
                    // Quadratic predictor through (t−h1−h2, t−h1, t) by
                    // Newton divided differences, extrapolated to t+h.
                    let d2 = 1.0 / self.h1;
                    let d1 = 1.0 / self.h2;
                    let dd = 1.0 / (self.h1 + self.h2);
                    for i in 0..n {
                        let s2 = (self.x_acc[i] - self.x_prev1[i]) * d2;
                        let s1 = (self.x_prev1[i] - self.x_prev2[i]) * d1;
                        let curv = (s2 - s1) * dd;
                        self.x_pred[i] = self.x_acc[i] + h * (s2 + curv * (h + self.h1));
                    }
                } else {
                    // Linear predictor through (t−h1, t).
                    let slope = h / self.h1;
                    for i in 0..n {
                        self.x_pred[i] = self.x_acc[i] + slope * (self.x_acc[i] - self.x_prev1[i]);
                    }
                }
                let coeff = if second_order {
                    let b = h * h * h / 12.0;
                    let a = h * (h + self.h1) * (h + self.h1 + self.h2) / 6.0;
                    b / (a + b)
                } else {
                    h / (2.0 * h + self.h1)
                };
                let err = self.lte_norm(coeff);
                if err.is_finite() {
                    let order = if second_order { 2.0 } else { 1.0 };
                    growth = (self.safety * err.powf(-1.0 / (order + 1.0)))
                        .clamp(self.min_shrink, self.max_growth);
                    err <= 1.0 || at_h_min
                } else if at_h_min {
                    return Err(EngineError::NonFinite {
                        analysis: "transient step control".into(),
                        detail: format!(
                            "LTE estimate non-finite at t={t1:.3e} with h={h:.3e} = h_min"
                        ),
                    });
                } else {
                    growth = self.min_shrink;
                    false
                }
            };
            if accept {
                self.h2 = self.h1;
                self.h1 = h;
                std::mem::swap(&mut self.x_prev2, &mut self.x_prev1);
                self.x_prev1.copy_from_slice(&self.x_acc);
                self.x_acc.copy_from_slice(&self.x);
                self.f_acc.copy_from_slice(&self.f_aug);
                self.q_acc.copy_from_slice(&self.q);
                self.t = t1;
                self.n_accepted += 1;
                self.retry_be = false;
                self.h_next = (h * growth).clamp(self.h_min, self.h_max);
                return Ok(Some(AdaptiveStep {
                    t1,
                    theta: step_method.theta(),
                    record,
                }));
            }
            // Rejected on LTE: the step already committed (f_aug/q were
            // overwritten and the assembly double-buffer swapped), so roll
            // everything back to the accepted state, charge the budget, and
            // retry smaller with backward Euler.
            newton.budget.begin_iteration("transient step control")?;
            self.x.copy_from_slice(&self.x_acc);
            self.f_aug.copy_from_slice(&self.f_acc);
            self.q.copy_from_slice(&self.q_acc);
            st.reset(ckt, &self.x_acc, self.t);
            self.h_next = (h * growth.min(0.5)).max(self.h_min);
            self.retry_be = true;
        }
    }
}

/// Runs a transient analysis (fixed-grid by default; see
/// [`TranOptions::step_control`]).
///
/// # Errors
///
/// Propagates DC and per-step Newton failures.
///
/// # Examples
///
/// RC charging curve:
///
/// ```
/// use tranvar_circuit::{Circuit, NodeId, Waveform, Pulse};
/// use tranvar_engine::tran::{transient, TranOptions};
///
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let b = ckt.node("b");
/// ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
/// ckt.add_resistor("R1", a, b, 1e3);
/// ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-6);
/// // Start the capacitor discharged and watch it charge toward 1 V.
/// let mut opts = TranOptions::new(5e-3, 1e-5);
/// opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
/// let res = transient(&ckt, &opts)?;
/// let v_end = ckt.voltage(res.last(), b);
/// assert!((v_end - 1.0).abs() < 1e-2);
/// # Ok::<(), tranvar_engine::EngineError>(())
/// ```
pub fn transient(ckt: &Circuit, opts: &TranOptions) -> Result<TranResult, EngineError> {
    transient_with(ckt, &mut CycleWorkspace::new(), opts)
}

/// [`transient`] with an explicit reusable workspace: repeated runs on one
/// circuit (scenario campaigns, Monte-Carlo-style re-simulation loops) skip
/// the per-call buffer allocation and — for the sparse backend — the
/// symbolic pivot re-analysis, exactly like
/// [`integrate_cycle_with`] does for cycle integrations. For the dense
/// backend the results are bit-identical to a fresh per-call run.
///
/// # Errors
///
/// Propagates DC and per-step Newton failures.
pub fn transient_with(
    ckt: &Circuit,
    ws: &mut CycleWorkspace,
    opts: &TranOptions,
) -> Result<TranResult, EngineError> {
    validate_step_config(opts)?;
    let n_node = ckt.n_nodes() - 1;
    let x0 = match &opts.x0 {
        Some(x) => x.clone(),
        None => dc_operating_point(
            ckt,
            &DcOptions {
                newton: opts.newton.clone(),
                ..DcOptions::default()
            },
        )?,
    };
    if let StepControl::Adaptive(a) = opts.step_control {
        return transient_adaptive_detailed(ckt, ws, opts, &a, x0).map(|(res, _)| res);
    }
    let n_steps = ((opts.t_stop - opts.t_start) / opts.dt).round() as usize;
    let mut times = Vec::with_capacity(n_steps + 1);
    let mut states = Vec::with_capacity(n_steps + 1);
    times.push(opts.t_start);
    states.push(x0.clone());

    let st = ws.state_for(ckt, opts.newton.solver, &x0, opts.t_start);
    let mut f_aug = st.asm_prev.f.clone();
    for (i, fi) in f_aug.iter_mut().enumerate().take(n_node) {
        *fi += opts.gmin * x0[i];
    }
    let mut q = st.asm_prev.q.clone();
    let mut x = x0;
    for k in 1..=n_steps {
        let t0 = opts.t_start + (k - 1) as f64 * opts.dt;
        let t1 = opts.t_start + k as f64 * opts.dt;
        step(
            ckt,
            st,
            &mut x,
            &mut f_aug,
            &mut q,
            t0,
            t1,
            opts.dt,
            opts.method,
            &opts.newton,
            opts.gmin,
            false,
        )?;
        times.push(t1);
        states.push(x.clone());
    }
    Ok(TranResult { times, states })
}

/// The adaptive transient loop, also reporting the per-step θ actually used
/// (BE startup and post-rejection retries mix methods, so θ cannot be
/// reconstructed from [`TranOptions::method`] alone). The sequential
/// sensitivity reference needs those θ values to re-derive each step's
/// propagation operators independently.
///
/// Expects `opts` to be validated and `x0` resolved by the caller.
pub(crate) fn transient_adaptive_detailed(
    ckt: &Circuit,
    ws: &mut CycleWorkspace,
    opts: &TranOptions,
    a: &AdaptiveOptions,
    x0: Vec<f64>,
) -> Result<(TranResult, Vec<f64>), EngineError> {
    let n_node = ckt.n_nodes() - 1;
    let st = ws.state_for(ckt, opts.newton.solver, &x0, opts.t_start);
    let mut drv = AdaptiveDriver::new(
        ckt,
        st,
        x0.clone(),
        opts.t_start,
        opts.t_stop,
        opts.dt,
        opts.method,
        opts.gmin,
        a,
        n_node,
    );
    let mut times = vec![opts.t_start];
    let mut states = vec![x0];
    let mut thetas = Vec::new();
    while let Some(stp) = drv.advance(ckt, st, &opts.newton, opts.gmin, false)? {
        times.push(stp.t1);
        states.push(drv.x.clone());
        thetas.push(stp.theta);
    }
    Ok((TranResult { times, states }, thetas))
}

/// Integrates exactly one period of length `period` from `x0` at `t0`,
/// optionally recording per-step factorizations for PSS/LPTV reuse.
///
/// Allocates a fresh [`CycleWorkspace`] per call; shooting loops that
/// integrate many cycles of the same circuit should hold one workspace and
/// call [`integrate_cycle_with`] instead.
///
/// # Errors
///
/// Propagates per-step Newton failures.
#[allow(clippy::too_many_arguments)]
pub fn integrate_cycle(
    ckt: &Circuit,
    x0: &[f64],
    t0: f64,
    period: f64,
    n_steps: usize,
    method: Integrator,
    newton: &NewtonOptions,
    gmin: f64,
    record: bool,
) -> Result<CycleResult, EngineError> {
    let mut ws = CycleWorkspace::new();
    integrate_cycle_with(
        ckt, &mut ws, x0, t0, period, n_steps, method, newton, gmin, record,
    )
}

/// [`integrate_cycle`] with an explicit reusable workspace: repeated calls
/// (shooting-Newton rounds, warm-up cycles, period-perturbed re-integrations)
/// skip the per-call buffer allocation and — for the sparse backend — the
/// symbolic pivot re-analysis.
///
/// For the dense backend the results are bit-identical to
/// [`integrate_cycle`] (refactorization recomputes its pivots from the
/// values). The sparse backend replays the pivot order found on the first
/// cycle for as long as it stays numerically acceptable, exactly as it
/// already does between the timesteps of one cycle, so a reused workspace
/// may legitimately factor with a different (equally valid) pivot order
/// than a fresh one — identical to machine precision, not necessarily to
/// the last bit.
///
/// # Errors
///
/// Propagates per-step Newton failures.
#[allow(clippy::too_many_arguments)]
pub fn integrate_cycle_with(
    ckt: &Circuit,
    ws: &mut CycleWorkspace,
    x0: &[f64],
    t0: f64,
    period: f64,
    n_steps: usize,
    method: Integrator,
    newton: &NewtonOptions,
    gmin: f64,
    record: bool,
) -> Result<CycleResult, EngineError> {
    if n_steps == 0 || period <= 0.0 {
        return Err(EngineError::BadConfig(
            "cycle integration needs n_steps > 0 and period > 0".into(),
        ));
    }
    let n_node = ckt.n_nodes() - 1;
    let h = period / n_steps as f64;
    let mut times = Vec::with_capacity(n_steps + 1);
    let mut states = Vec::with_capacity(n_steps + 1);
    let mut records = Vec::with_capacity(if record { n_steps } else { 0 });
    times.push(t0);
    states.push(x0.to_vec());

    let st = ws.state_for(ckt, newton.solver, x0, t0);
    let mut f_aug = st.asm_prev.f.clone();
    for (i, fi) in f_aug.iter_mut().enumerate().take(n_node) {
        *fi += gmin * x0[i];
    }
    let mut q = st.asm_prev.q.clone();
    let mut x = x0.to_vec();
    for k in 1..=n_steps {
        let tk0 = t0 + period * (k - 1) as f64 / n_steps as f64;
        let t1 = t0 + period * k as f64 / n_steps as f64;
        // The first step of every cycle uses backward Euler: the trapezoidal
        // rule carries algebraic (non-dynamic) perturbations with eigenvalue
        // −1, which would make the cycle monodromy have unit eigenvalues on
        // V-source branch rows and render the shooting system singular. One
        // L-stable step annihilates those modes at O(h²) cost to the orbit.
        let step_method = if k == 1 {
            Integrator::BackwardEuler
        } else {
            method
        };
        let rec = step(
            ckt,
            st,
            &mut x,
            &mut f_aug,
            &mut q,
            tk0,
            t1,
            h,
            step_method,
            newton,
            gmin,
            record,
        )?;
        if let Some(r) = rec {
            records.push(r);
        }
        times.push(t1);
        states.push(x.clone());
    }
    Ok(CycleResult {
        times,
        states,
        records,
    })
}

/// [`integrate_cycle_with`] on an LTE-controlled adaptive grid: integrates
/// exactly one period starting from step size `initial_dt`, accepting,
/// shrinking and growing steps per `adaptive`, and lands exactly on
/// `t0 + period` (the final step is stretched or shortened to the endpoint).
///
/// The first accepted steps are backward Euler (the adaptive startup — at
/// least the first step, which the fixed-grid cycle also forces to BE so
/// the monodromy stays free of unit algebraic eigenvalues; see
/// [`integrate_cycle_with`]). Each [`StepRecord`] carries its own `h` and
/// `θ`, so monodromy accumulation and the LPTV solver consume the
/// non-uniform record grid unchanged.
///
/// # Errors
///
/// Propagates per-step Newton failures and budget exhaustion.
#[allow(clippy::too_many_arguments)]
pub fn integrate_cycle_adaptive_with(
    ckt: &Circuit,
    ws: &mut CycleWorkspace,
    x0: &[f64],
    t0: f64,
    period: f64,
    initial_dt: f64,
    adaptive: &AdaptiveOptions,
    method: Integrator,
    newton: &NewtonOptions,
    gmin: f64,
    record: bool,
) -> Result<CycleResult, EngineError> {
    if period <= 0.0 || initial_dt <= 0.0 {
        return Err(EngineError::BadConfig(
            "adaptive cycle integration needs period > 0 and initial_dt > 0".into(),
        ));
    }
    adaptive.validate()?;
    let n_node = ckt.n_nodes() - 1;
    let st = ws.state_for(ckt, newton.solver, x0, t0);
    let mut drv = AdaptiveDriver::new(
        ckt,
        st,
        x0.to_vec(),
        t0,
        t0 + period,
        initial_dt,
        method,
        gmin,
        adaptive,
        n_node,
    );
    let mut times = vec![t0];
    let mut states = vec![x0.to_vec()];
    let mut records = Vec::new();
    while let Some(stp) = drv.advance(ckt, st, newton, gmin, record)? {
        if let Some(r) = stp.record {
            records.push(r);
        }
        times.push(stp.t1);
        states.push(drv.x.clone());
    }
    Ok(CycleResult {
        times,
        states,
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tranvar_circuit::{Pulse, Waveform};

    fn rc_circuit(tau_r: f64, tau_c: f64) -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
        ckt.add_resistor("R1", a, b, tau_r);
        ckt.add_capacitor("C1", b, NodeId::GROUND, tau_c);
        (ckt, b)
    }

    #[test]
    fn rc_step_response_matches_analytic() {
        let (ckt, b) = rc_circuit(1e3, 1e-6); // tau = 1 ms
        let mut opts = TranOptions::new(2e-3, 2e-6);
        opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
        opts.method = Integrator::Trapezoidal;
        let res = transient(&ckt, &opts).unwrap();
        for (t, x) in res.times.iter().zip(res.states.iter()) {
            let expect = 1.0 - (-t / 1e-3).exp();
            let got = ckt.voltage(x, b);
            assert!((got - expect).abs() < 2e-3, "t={t:.2e}: {got} vs {expect}");
        }
    }

    #[test]
    fn be_is_more_damped_than_trap() {
        // LC-ish tank via R-L-C: BE loses amplitude, trapezoidal conserves.
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.add_capacitor("C1", a, NodeId::GROUND, 1e-9);
        ckt.add_inductor("L1", a, NodeId::GROUND, 1e-3);
        // start with 1 V on the cap: x = [v_a, i_L]
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3_f64 * 1e-9).sqrt());
        let t_end = 3.0 / f0;
        let dt = 1.0 / (200.0 * f0);
        let run = |method| {
            let mut opts = TranOptions::new(t_end, dt);
            opts.method = method;
            opts.x0 = Some(vec![1.0, 0.0]);
            let res = transient(&ckt, &opts).unwrap();
            res.node_waveform(&ckt, a)
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let be_peak_late = {
            let mut opts = TranOptions::new(t_end, dt);
            opts.method = Integrator::BackwardEuler;
            opts.x0 = Some(vec![1.0, 0.0]);
            let res = transient(&ckt, &opts).unwrap();
            let w = res.node_waveform(&ckt, a);
            w[w.len() - w.len() / 3..]
                .iter()
                .fold(0.0f64, |m, v| m.max(v.abs()))
        };
        let trap_peak = run(Integrator::Trapezoidal);
        assert!(
            trap_peak > 0.95,
            "trapezoidal conserves amplitude: {trap_peak}"
        );
        assert!(be_peak_late < 0.9, "BE damps the tank: {be_peak_late}");
    }

    #[test]
    fn pulse_drives_rc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 4e-6,
                period: 10e-6,
            }),
        );
        ckt.add_resistor("R1", a, b, 100.0);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9); // tau = 100 ns
        let res = transient(&ckt, &TranOptions::new(10e-6, 1e-8)).unwrap();
        let w = res.node_waveform(&ckt, b);
        let t = &res.times;
        // By 3 us (20 tau after the edge) the output is ~1.
        let i3 = tranvar_num::interp::nearest_index(t, 3e-6);
        assert!((w[i3] - 1.0).abs() < 1e-3);
        // After the falling edge it returns to ~0 by 8 us.
        let i8 = tranvar_num::interp::nearest_index(t, 8e-6);
        assert!(w[i8].abs() < 1e-2);
    }

    #[test]
    fn cycle_records_propagate_sensitivity() {
        // Check J⁻¹B against finite differences of the flow map for a linear
        // RC: dx1/dx0 computed both ways.
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        let x0 = vec![1.0, 0.2, -0.8e-3];
        let n = 3;
        let period = 1e-4;
        let cyc = integrate_cycle(
            &ckt,
            &x0,
            0.0,
            period,
            8,
            Integrator::BackwardEuler,
            &NewtonOptions::default(),
            1e-12,
            true,
        )
        .unwrap();
        assert_eq!(cyc.records.len(), 8);
        // Monodromy via records.
        let mut m = tranvar_num::DMat::<f64>::identity(n);
        for rec in &cyc.records {
            let bm = rec.b.to_dense();
            let mut cols = Vec::new();
            for j in 0..n {
                let col: Vec<f64> = (0..n).map(|i| bm[(i, j)]).collect();
                cols.push(rec.lu.solve(&col));
            }
            let mut a = tranvar_num::DMat::<f64>::zeros(n, n);
            for (j, col) in cols.iter().enumerate() {
                for i in 0..n {
                    a[(i, j)] = col[i];
                }
            }
            m = a.mat_mul(&m);
        }
        // FD of the flow.
        let flow = |x0: &[f64]| {
            integrate_cycle(
                &ckt,
                x0,
                0.0,
                period,
                8,
                Integrator::BackwardEuler,
                &NewtonOptions::default(),
                1e-12,
                false,
            )
            .unwrap()
            .states
            .last()
            .unwrap()
            .clone()
        };
        let h = 1e-6;
        for j in 0..n {
            let mut xp = x0.clone();
            xp[j] += h;
            let mut xm = x0.clone();
            xm[j] -= h;
            let fp = flow(&xp);
            let fm = flow(&xm);
            for i in 0..n {
                let fd = (fp[i] - fm[i]) / (2.0 * h);
                assert!(
                    (m[(i, j)] - fd).abs() < 1e-5 * fd.abs().max(1e-3),
                    "M[{i}][{j}] = {} vs fd {fd}",
                    m[(i, j)]
                );
            }
        }
    }

    /// Reusing one `CycleWorkspace` across cycles must reproduce the fresh
    /// per-call path exactly (dense backend: refactorization recomputes its
    /// pivots, so the workspace carries storage, not state).
    #[test]
    fn cycle_workspace_reuse_is_bit_identical() {
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        let period = 1e-4;
        let newton = NewtonOptions::default();
        let mut ws = CycleWorkspace::new();
        let starts = [
            vec![1.0, 0.2, -0.8e-3],
            vec![1.0, 0.7, -0.3e-3],
            vec![1.0, 0.2, -0.8e-3], // repeat the first start after other work
        ];
        for (round, x0) in starts.iter().enumerate() {
            let fresh = integrate_cycle(
                &ckt,
                x0,
                0.0,
                period,
                8,
                Integrator::Trapezoidal,
                &newton,
                1e-12,
                true,
            )
            .unwrap();
            let reused = integrate_cycle_with(
                &ckt,
                &mut ws,
                x0,
                0.0,
                period,
                8,
                Integrator::Trapezoidal,
                &newton,
                1e-12,
                true,
            )
            .unwrap();
            assert_eq!(fresh.states.len(), reused.states.len());
            for (sf, sr) in fresh.states.iter().zip(reused.states.iter()) {
                for (a, b) in sf.iter().zip(sr.iter()) {
                    assert!(
                        a.to_bits() == b.to_bits(),
                        "round {round}: fresh {a} vs reused {b}"
                    );
                }
            }
            assert_eq!(fresh.records.len(), reused.records.len());
            for (rf, rr) in fresh.records.iter().zip(reused.records.iter()) {
                let probe = vec![1.0, -0.5, 0.25];
                let xf = rf.lu.solve(&probe);
                let xr = rr.lu.solve(&probe);
                for (a, b) in xf.iter().zip(xr.iter()) {
                    assert!(a.to_bits() == b.to_bits(), "round {round}: record solve");
                }
            }
        }
    }

    /// Sparse-backend workspace reuse replays the first cycle's pivot order,
    /// so results match a fresh workspace to machine precision (the pivot
    /// order, not the arithmetic, is the only state that carries over).
    #[test]
    fn sparse_cycle_workspace_reuse_matches_fresh() {
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        let period = 1e-4;
        let mut newton = NewtonOptions::default();
        newton.solver = crate::solver::SolverKind::Sparse;
        let mut ws = CycleWorkspace::new();
        let starts = [
            vec![1.0, 0.2, -0.8e-3],
            vec![1.0, 0.7, -0.3e-3],
            vec![1.0, 0.4, -0.6e-3],
        ];
        for (round, x0) in starts.iter().enumerate() {
            // Alternate the period like autonomous shooting does.
            let per = period * (1.0 + 1e-6 * round as f64);
            let fresh = integrate_cycle(
                &ckt,
                x0,
                0.0,
                per,
                8,
                Integrator::Trapezoidal,
                &newton,
                1e-12,
                false,
            )
            .unwrap();
            let reused = integrate_cycle_with(
                &ckt,
                &mut ws,
                x0,
                0.0,
                per,
                8,
                Integrator::Trapezoidal,
                &newton,
                1e-12,
                false,
            )
            .unwrap();
            for (sf, sr) in fresh.states.iter().zip(reused.states.iter()) {
                for (a, b) in sf.iter().zip(sr.iter()) {
                    assert!(
                        (a - b).abs() < 1e-12 * a.abs().max(1.0),
                        "round {round}: fresh {a} vs reused {b}"
                    );
                }
            }
        }
    }

    /// The controller's accepted grid covers `[t_start, t_stop]` monotonically
    /// with every interior step inside `[h_min, 1.05·h_max]` (the final step
    /// may be a shorter sliver) — property (b) of the adaptive contract.
    fn assert_grid_contract(times: &[f64], t_start: f64, t_stop: f64, a: &AdaptiveOptions) {
        let (h_min, h_max) = a.resolve_bounds(t_stop - t_start);
        assert_eq!(times[0], t_start);
        assert_eq!(*times.last().unwrap(), t_stop);
        for (k, w) in times.windows(2).enumerate() {
            let h = w[1] - w[0];
            assert!(
                h > 0.0,
                "step {k}: non-monotone grid ({} -> {})",
                w[0],
                w[1]
            );
            assert!(
                h <= 1.05 * h_max * (1.0 + 1e-9),
                "step {k}: h={h:.3e} exceeds 1.05*h_max={:.3e}",
                1.05 * h_max
            );
            if k + 2 < times.len() {
                assert!(
                    h >= h_min * (1.0 - 1e-9),
                    "interior step {k}: h={h:.3e} below h_min={h_min:.3e}"
                );
            }
        }
    }

    /// Adaptive stepping on a smooth RC charging curve needs far fewer steps
    /// than the fine fixed grid while staying inside the 10×reltol band.
    #[test]
    fn adaptive_rc_matches_fixed_with_fewer_steps() {
        let (ckt, b) = rc_circuit(1e3, 1e-6); // tau = 1 ms
        let x0 = Some(vec![1.0, 0.0, -1e-3]);
        let mut fixed = TranOptions::new(5e-3, 1e-6);
        fixed.x0 = x0.clone();
        fixed.method = Integrator::Trapezoidal;
        let rf = transient(&ckt, &fixed).unwrap();

        let a = AdaptiveOptions::default();
        let mut adpt = TranOptions::adaptive(5e-3, 1e-6, a);
        adpt.x0 = x0;
        adpt.method = Integrator::Trapezoidal;
        let ra = transient(&ckt, &adpt).unwrap();

        let fixed_steps = rf.states.len() - 1;
        let adaptive_steps = ra.states.len() - 1;
        assert!(
            adaptive_steps * 5 <= fixed_steps,
            "adaptive took {adaptive_steps} steps vs {fixed_steps} fixed"
        );
        assert_grid_contract(&ra.times, 0.0, 5e-3, &a);
        let vf = ckt.voltage(rf.last(), b);
        let va = ckt.voltage(ra.last(), b);
        assert!(
            (va - vf).abs() <= 10.0 * (a.abstol + a.reltol * vf.abs()),
            "adaptive end {va} vs fixed end {vf}"
        );
        // And against the analytic solution everywhere on the accepted grid.
        for (t, x) in ra.times.iter().zip(ra.states.iter()) {
            let expect = 1.0 - (-t / 1e-3).exp();
            let got = ckt.voltage(x, b);
            assert!(
                (got - expect).abs() <= 10.0 * (a.abstol + a.reltol * expect.abs().max(0.1)),
                "t={t:.3e}: {got} vs {expect}"
            );
        }
    }

    /// The adaptive controller reacts to a mid-run transient: steps shrink
    /// at the pulse edges of a driven RC and grow back on the flats.
    #[test]
    fn adaptive_shrinks_at_pulse_edges() {
        let mut ckt = Circuit::new();
        let a_node = ckt.node("a");
        let b = ckt.node("b");
        ckt.add_vsource(
            "V1",
            a_node,
            NodeId::GROUND,
            Waveform::Pulse(Pulse {
                v0: 0.0,
                v1: 1.0,
                delay: 1e-6,
                rise: 1e-8,
                fall: 1e-8,
                width: 4e-6,
                period: 10e-6,
            }),
        );
        ckt.add_resistor("R1", a_node, b, 100.0);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9); // tau = 100 ns
        let a = AdaptiveOptions::default();
        let opts = TranOptions::adaptive(10e-6, 1e-8, a);
        let res = transient(&ckt, &opts).unwrap();
        assert_grid_contract(&res.times, 0.0, 10e-6, &a);
        // Accuracy at the sampled plateaus, like the fixed-grid test.
        let w = res.node_waveform(&ckt, b);
        let t = &res.times;
        let i3 = tranvar_num::interp::nearest_index(t, 3e-6);
        assert!((w[i3] - 1.0).abs() < 2e-2, "plateau: {}", w[i3]);
        let i8 = tranvar_num::interp::nearest_index(t, 8e-6);
        assert!(w[i8].abs() < 3e-2, "tail: {}", w[i8]);
        // The grid is genuinely non-uniform: the largest accepted step is
        // much bigger than the smallest.
        let mut hs: Vec<f64> = t.windows(2).map(|w| w[1] - w[0]).collect();
        hs.pop(); // final sliver is exempt from the bounds
        let h_lo = hs.iter().cloned().fold(f64::INFINITY, f64::min);
        let h_hi = hs.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            h_hi > 4.0 * h_lo,
            "grid stayed uniform: {h_lo:.3e}..{h_hi:.3e}"
        );
    }

    /// Adaptive cycle integration lands exactly on `t0 + period`, starts
    /// with a backward-Euler step, and records every accepted step.
    #[test]
    fn adaptive_cycle_lands_on_period() {
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        let x0 = vec![1.0, 0.2, -0.8e-3];
        let period = 1e-4;
        let a = AdaptiveOptions::default();
        let mut ws = CycleWorkspace::new();
        let cyc = integrate_cycle_adaptive_with(
            &ckt,
            &mut ws,
            &x0,
            0.0,
            period,
            period / 32.0,
            &a,
            Integrator::Trapezoidal,
            &NewtonOptions::default(),
            1e-12,
            true,
        )
        .unwrap();
        assert_eq!(*cyc.times.last().unwrap(), period);
        assert_eq!(cyc.records.len(), cyc.states.len() - 1);
        assert_eq!(cyc.records[0].theta, 1.0, "first cycle step must be BE");
        for (rec, w) in cyc.records.iter().zip(cyc.times.windows(2)) {
            assert_eq!(rec.t1, w[1]);
            assert_eq!(rec.h, w[1] - w[0], "record h must match the grid");
        }
    }

    /// Enabling adaptive mode must not perturb the fixed path: the fixed
    /// result is byte-for-byte the same whether or not the adaptive code is
    /// compiled in, so here we only pin the invariant that `StepControl::Fixed`
    /// (the default) reproduces the documented uniform grid exactly.
    #[test]
    fn fixed_mode_grid_is_uniform() {
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        let mut opts = TranOptions::new(1e-3, 1e-5);
        opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
        assert_eq!(opts.step_control, StepControl::Fixed);
        let res = transient(&ckt, &opts).unwrap();
        assert_eq!(res.times.len(), 101);
        for (k, t) in res.times.iter().enumerate() {
            assert_eq!(*t, k as f64 * 1e-5);
        }
    }

    /// Regression for the silent zero-step run: `dt` rounding the step count
    /// to zero is now a configuration error, while spans that round up to
    /// one step keep working.
    #[test]
    fn fixed_rejects_dt_larger_than_span() {
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        // round(1e-3 / 3e-3) == 0: used to return just the initial state.
        assert!(matches!(
            transient(&ckt, &TranOptions::new(1e-3, 3e-3)),
            Err(EngineError::BadConfig(_))
        ));
        // round(1e-3 / 1.5e-3) == 1: one step covering the span.
        let mut opts = TranOptions::new(1e-3, 1.5e-3);
        opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
        let res = transient(&ckt, &opts).unwrap();
        assert_eq!(res.states.len(), 2);
    }

    #[test]
    fn rejects_bad_adaptive_config() {
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        for bad in [
            AdaptiveOptions {
                reltol: 0.0,
                ..AdaptiveOptions::default()
            },
            AdaptiveOptions {
                abstol: -1.0,
                ..AdaptiveOptions::default()
            },
            AdaptiveOptions {
                h_min: 1e-3,
                h_max: 1e-6,
                ..AdaptiveOptions::default()
            },
            AdaptiveOptions {
                min_shrink: 1.5,
                ..AdaptiveOptions::default()
            },
            AdaptiveOptions {
                safety: 0.0,
                ..AdaptiveOptions::default()
            },
        ] {
            assert!(
                matches!(
                    transient(&ckt, &TranOptions::adaptive(1e-3, 1e-6, bad)),
                    Err(EngineError::BadConfig(_))
                ),
                "accepted bad adaptive config {bad:?}"
            );
        }
    }

    /// Property (d): a fault-injected rejection storm (every LTE estimate
    /// poisoned to NaN) must trip the solve budget instead of spinning, and
    /// without a budget must fail fast with `NonFinite` once the controller
    /// bottoms out at `h_min`.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn lte_rejection_storm_trips_budget() {
        use crate::budget::{BudgetLimits, SolveBudget};
        use crate::fault::{sites, FaultAction, FaultPlan};

        let (ckt, _) = rc_circuit(1e3, 1e-6);
        let mut opts = TranOptions::adaptive(1e-3, 1e-6, AdaptiveOptions::default());
        opts.x0 = Some(vec![1.0, 0.0, -1e-3]);
        // Tight enough to trip inside the storm: the controller only gets
        // ~15 rejections (h: 1e-6 → h_min at ×0.25 each) before bottoming
        // out, and each rejection costs a couple of Newton iterations plus
        // the rejection charge itself.
        opts.newton.budget = SolveBudget::new(BudgetLimits::default().max_newton_iters(20));
        {
            let _guard = FaultPlan::new()
                .fail_range(sites::TRAN_LTE, 0, 1_000_000, FaultAction::PoisonNan)
                .install();
            match transient(&ckt, &opts) {
                Err(EngineError::BudgetExceeded { .. }) => {}
                other => panic!("expected BudgetExceeded, got {other:?}"),
            }
        }
        // Without a budget the storm still terminates: the step bottoms out
        // at h_min and the non-finite LTE becomes a hard error.
        opts.newton.budget = SolveBudget::unlimited();
        let _guard = FaultPlan::new()
            .fail_range(sites::TRAN_LTE, 0, 1_000_000, FaultAction::PoisonNan)
            .install();
        match transient(&ckt, &opts) {
            Err(EngineError::NonFinite { .. }) => {}
            other => panic!("expected NonFinite at h_min, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_config() {
        let (ckt, _) = rc_circuit(1e3, 1e-6);
        assert!(transient(&ckt, &TranOptions::new(-1.0, 1e-6)).is_err());
        assert!(matches!(
            integrate_cycle(
                &ckt,
                &[0.0; 3],
                0.0,
                1.0,
                0,
                Integrator::BackwardEuler,
                &NewtonOptions::default(),
                0.0,
                false
            ),
            Err(EngineError::BadConfig(_))
        ));
    }
}
