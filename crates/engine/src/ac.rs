//! Small-signal AC analysis around a DC operating point.
//!
//! Solves `(G + jωC)·δx = −(∂f/∂p + jω·∂q/∂p)` for a unit perturbation of a
//! parameter or source. Besides being a useful analysis in its own right, it
//! is the LTI special case the LPTV machinery must reduce to (a key
//! validation: for a circuit with a *constant* steady state, PNOISE at
//! sideband 0 equals `.NOISE`/`.AC`).

use crate::error::EngineError;
use tranvar_circuit::{Circuit, Device, DeviceId, ParamDeriv};
use tranvar_num::{Complex, DMat};

/// Dense complex system `(G + jωC)` at the operating point `x_op`.
fn complex_system(ckt: &Circuit, x_op: &[f64], omega: f64, gmin: f64) -> DMat<Complex> {
    let asm = ckt.assemble(x_op, 0.0);
    let n = asm.n;
    let n_node = ckt.n_nodes() - 1;
    let mut m = DMat::<Complex>::zeros(n, n);
    for &(r, c, v) in asm.g.iter() {
        m[(r, c)] += Complex::new(v, 0.0);
    }
    for &(r, c, v) in asm.c.iter() {
        m[(r, c)] += Complex::new(0.0, omega * v);
    }
    for i in 0..n_node {
        m[(i, i)] += Complex::new(gmin, 0.0);
    }
    m
}

/// Solves the AC response to a unit sinusoidal injection described by a
/// [`ParamDeriv`] (the same injection format used by the noise analyses).
///
/// Returns the complex phasor of every unknown.
///
/// # Errors
///
/// Returns a numerical error if the small-signal matrix is singular.
pub fn ac_solve(
    ckt: &Circuit,
    x_op: &[f64],
    freq: f64,
    injection: &ParamDeriv,
) -> Result<Vec<Complex>, EngineError> {
    let omega = 2.0 * std::f64::consts::PI * freq;
    let m = complex_system(ckt, x_op, omega, 1e-12);
    let n = m.rows();
    let mut rhs = vec![Complex::ZERO; n];
    for &(i, v) in &injection.df {
        rhs[i] -= Complex::new(v, 0.0);
    }
    for &(i, v) in &injection.dq {
        rhs[i] -= Complex::new(0.0, omega * v);
    }
    Ok(m.lu()?.solve(&rhs))
}

/// Injection vector for a unit AC magnitude on an independent voltage source
/// (`∂residual/∂V = −1` on its branch row).
///
/// # Errors
///
/// Returns an error if the device is not a voltage source.
pub fn vsource_injection(ckt: &Circuit, dev: DeviceId) -> Result<ParamDeriv, EngineError> {
    match ckt.device(dev) {
        Device::Vsource { branch, .. } => {
            let row = ckt.unknown_of_branch(*branch);
            Ok(ParamDeriv {
                df: vec![(row, -1.0)],
                dq: vec![],
            })
        }
        other => Err(EngineError::BadConfig(format!(
            "vsource_injection on non-vsource {other:?}"
        ))),
    }
}

/// Injection vector for a unit AC magnitude on an independent current source.
///
/// # Errors
///
/// Returns an error if the device is not a current source.
pub fn isource_injection(ckt: &Circuit, dev: DeviceId) -> Result<ParamDeriv, EngineError> {
    match ckt.device(dev) {
        Device::Isource { p, n, .. } => {
            let mut df = Vec::new();
            if let Some(ip) = ckt.unknown_of_node(*p) {
                df.push((ip, 1.0));
            }
            if let Some(inn) = ckt.unknown_of_node(*n) {
                df.push((inn, -1.0));
            }
            Ok(ParamDeriv { df, dq: vec![] })
        }
        other => Err(EngineError::BadConfig(format!(
            "isource_injection on non-isource {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dc::{dc_operating_point, DcOptions};
    use tranvar_circuit::{NodeId, Waveform};

    #[test]
    fn rc_lowpass_transfer() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        let v1 = ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(0.0));
        ckt.add_resistor("R1", a, b, 1e3);
        ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
        let x_op = dc_operating_point(&ckt, &DcOptions::default()).unwrap();
        let inj = vsource_injection(&ckt, v1).unwrap();
        let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        for (f, mag_expect) in [(fc / 100.0, 0.99995), (fc, 1.0 / 2.0_f64.sqrt())] {
            let resp = ac_solve(&ckt, &x_op, f, &inj).unwrap();
            let out = resp[ckt.unknown_of_node(b).unwrap()];
            let expect = 1.0 / (1.0 + (f / fc).powi(2)).sqrt();
            assert!(
                (out.abs() - expect).abs() < 1e-3,
                "f={f}: |H|={} vs {expect} ({mag_expect})",
                out.abs()
            );
        }
        // Phase at the corner is −45°.
        let resp = ac_solve(&ckt, &x_op, fc, &inj).unwrap();
        let out = resp[ckt.unknown_of_node(b).unwrap()];
        assert!((out.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-3);
    }

    #[test]
    fn isource_into_parallel_rc() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let i1 = ckt.add_isource("I1", NodeId::GROUND, a, Waveform::Dc(0.0));
        ckt.add_resistor("R1", a, NodeId::GROUND, 2e3);
        ckt.add_capacitor("C1", a, NodeId::GROUND, 1e-9);
        let x_op = vec![0.0];
        let inj = isource_injection(&ckt, i1).unwrap();
        // At DC-ish frequency the impedance is R.
        let resp = ac_solve(&ckt, &x_op, 1.0, &inj).unwrap();
        // Unit current out of ground into a -> v_a = +R·I.
        assert!((resp[0].re - 2e3).abs() < 1.0, "got {}", resp[0]);
    }

    #[test]
    fn rejects_wrong_device_kind() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let r = ckt.add_resistor("R1", a, NodeId::GROUND, 1.0);
        assert!(vsource_injection(&ckt, r).is_err());
        assert!(isource_injection(&ckt, r).is_err());
    }
}
