//! Deterministic recovery-path coverage via the fault-injection harness.
//!
//! Every recovery path in the engine — each DC homotopy stage, each retry
//! escalation rung, budget exhaustion (including the mocked deadline), and
//! the non-finite fail-fast guards — is driven on demand here and asserted
//! through the recorded [`SolveDiagnostics`] attempt trail. Runs only with
//! `--features fault-inject`.
#![cfg(feature = "fault-inject")]

use std::time::Duration;
use tranvar_circuit::{Circuit, MosModel, MosType, NodeId, Waveform};
use tranvar_engine::dc::{dc_operating_point, dc_operating_point_traced, DcOptions};
use tranvar_engine::fault::{sites, FaultAction, FaultPlan};
use tranvar_engine::retry::{dc_operating_point_resilient, transient_resilient};
use tranvar_engine::tran::transient;
use tranvar_engine::{
    BudgetKind, BudgetLimits, EngineError, RetryPolicy, SolveBudget, SolveDiagnostics, TranOptions,
};
use tranvar_num::NumError;

fn divider() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
    ckt.add_resistor("R1", a, b, 1e3);
    ckt.add_resistor("R2", b, NodeId::GROUND, 1e3);
    ckt
}

fn rc_lowpass() -> Circuit {
    let mut ckt = Circuit::new();
    let a = ckt.node("a");
    let b = ckt.node("b");
    ckt.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(1.0));
    ckt.add_resistor("R1", a, b, 1e3);
    ckt.add_capacitor("C1", b, NodeId::GROUND, 1e-9);
    ckt
}

fn common_source() -> Circuit {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let d = ckt.node("d");
    ckt.add_vsource("VDD", vdd, NodeId::GROUND, Waveform::Dc(1.2));
    ckt.add_vsource("VG", g, NodeId::GROUND, Waveform::Dc(0.7));
    ckt.add_resistor("RD", vdd, d, 10e3);
    ckt.add_mosfet(
        "M1",
        d,
        g,
        NodeId::GROUND,
        MosType::Nmos,
        MosModel::nmos_013(),
        1e-6,
        0.13e-6,
    );
    ckt
}

// ── Homotopy-stage coverage: force each stage to be the one that converges ──

#[test]
fn direct_stage_converges_with_single_attempt_trail() {
    let ckt = divider();
    let mut diag = SolveDiagnostics::new();
    let x = dc_operating_point_traced(&ckt, &DcOptions::default(), None, &mut diag).unwrap();
    let b = ckt.find_node("b").unwrap();
    assert!((ckt.voltage(&x, b) - 1.0).abs() < 1e-6);
    assert_eq!(diag.stages(), vec!["dc:direct"]);
    assert_eq!(diag.succeeded_stage(), Some("dc:direct"));
}

#[test]
fn gmin_stepping_rescues_failed_direct_stage() {
    let ckt = divider();
    let _guard = FaultPlan::new()
        .fail(sites::DC_STAGE, 0, FaultAction::NoConverge)
        .install();
    let mut diag = SolveDiagnostics::new();
    let opts = DcOptions::default();
    let x = dc_operating_point_traced(&ckt, &opts, None, &mut diag).unwrap();
    let b = ckt.find_node("b").unwrap();
    assert!((ckt.voltage(&x, b) - 1.0).abs() < 1e-6);
    let stages = diag.stages();
    assert_eq!(stages[0], "dc:direct");
    assert!(diag.attempts[0].error.is_some());
    // The full gmin walk ran and converged; source stepping never started.
    assert_eq!(stages.len(), 1 + opts.gmin_schedule.len());
    assert!(stages[1..].iter().all(|s| s.starts_with("dc:gmin[")));
    assert!(diag.succeeded_stage().unwrap().starts_with("dc:gmin["));
}

#[test]
fn source_stepping_rescues_failed_gmin_walk() {
    let ckt = divider();
    // Index 0 = direct attempt, index 1 = first gmin-schedule entry; failing
    // both aborts the gmin walk and hands over to source stepping.
    let _guard = FaultPlan::new()
        .fail_range(sites::DC_STAGE, 0, 2, FaultAction::NoConverge)
        .install();
    let mut diag = SolveDiagnostics::new();
    let opts = DcOptions::default();
    let x = dc_operating_point_traced(&ckt, &opts, None, &mut diag).unwrap();
    let b = ckt.find_node("b").unwrap();
    assert!((ckt.voltage(&x, b) - 1.0).abs() < 1e-6);
    let stages = diag.stages();
    assert_eq!(stages[0], "dc:direct");
    assert!(stages[1].starts_with("dc:gmin["));
    assert!(diag.attempts[1].error.is_some());
    // All 20 source steps ran to full bias.
    assert_eq!(stages.len(), 2 + opts.source_steps);
    assert_eq!(diag.succeeded_stage(), Some("dc:source[20/20]"));
}

// ── Injected factorization failures propagate as the right typed error ──

#[test]
fn injected_singular_factor_is_rescued_by_homotopy() {
    let ckt = divider();
    let _guard = FaultPlan::new()
        .fail(sites::FACTOR, 0, FaultAction::Singular)
        .install();
    let mut diag = SolveDiagnostics::new();
    let x = dc_operating_point_traced(&ckt, &DcOptions::default(), None, &mut diag).unwrap();
    let b = ckt.find_node("b").unwrap();
    assert!((ckt.voltage(&x, b) - 1.0).abs() < 1e-6);
    assert!(matches!(
        diag.attempts[0].error,
        Some(EngineError::Num(NumError::Singular { .. }))
    ));
}

#[test]
fn injected_non_finite_factor_is_distinct_from_singular() {
    let ckt = divider();
    let _guard = FaultPlan::new()
        .fail(sites::FACTOR, 0, FaultAction::NonFinite)
        .install();
    let mut diag = SolveDiagnostics::new();
    let _ = dc_operating_point_traced(&ckt, &DcOptions::default(), None, &mut diag).unwrap();
    assert!(matches!(
        diag.attempts[0].error,
        Some(EngineError::Num(NumError::NonFinite { .. }))
    ));
}

// ── Non-finite guards fail fast instead of burning the iteration budget ──

#[test]
fn poisoned_dc_update_bails_on_first_iteration() {
    let ckt = divider();
    let guard = FaultPlan::new()
        .fail(sites::DC_RESIDUAL, 0, FaultAction::PoisonNan)
        .install();
    let res = tranvar_engine::dc::solve_static(
        &ckt,
        0.0,
        1e-12,
        &vec![0.0; ckt.n_unknowns()],
        &Default::default(),
    );
    assert!(matches!(res, Err(EngineError::NonFinite { .. })), "{res:?}");
    // Exactly one iteration ran: the guard fired once, not max_iter times.
    assert_eq!(guard.hits(sites::DC_RESIDUAL), 1);
}

#[test]
fn poisoned_direct_stage_is_rescued_by_gmin_walk() {
    let ckt = divider();
    // Only the very first Newton iteration is poisoned: the direct stage
    // dies NonFinite and the gmin walk (fresh, unpoisoned calls) rescues.
    let _guard = FaultPlan::new()
        .fail(sites::DC_RESIDUAL, 0, FaultAction::PoisonNan)
        .install();
    let mut diag = SolveDiagnostics::new();
    let x = dc_operating_point_traced(&ckt, &DcOptions::default(), None, &mut diag).unwrap();
    let b = ckt.find_node("b").unwrap();
    assert!((ckt.voltage(&x, b) - 1.0).abs() < 1e-6);
    assert!(matches!(
        diag.attempts[0].error,
        Some(EngineError::NonFinite { .. })
    ));
}

#[test]
fn poisoned_transient_update_fails_fast_and_typed() {
    let ckt = rc_lowpass();
    let guard = FaultPlan::new()
        .fail(sites::TRAN_UPDATE, 0, FaultAction::PoisonNan)
        .install();
    let res = transient(&ckt, &TranOptions::new(1e-6, 1e-8));
    match res {
        Err(EngineError::NonFinite { analysis, .. }) => {
            assert_eq!(analysis, "transient step");
        }
        other => panic!("expected NonFinite, got {other:?}"),
    }
    assert_eq!(guard.hits(sites::TRAN_UPDATE), 1);
}

// ── Budget exhaustion: iteration, factorization, and mocked deadline ──

#[test]
fn newton_budget_trips_with_progress_counts() {
    let ckt = common_source();
    let mut opts = DcOptions::default();
    opts.newton.budget = SolveBudget::new(BudgetLimits::default().max_newton_iters(3));
    let err = dc_operating_point(&ckt, &opts).unwrap_err();
    match err {
        EngineError::BudgetExceeded { analysis, progress } => {
            assert_eq!(analysis, "dc newton");
            assert_eq!(progress.exhausted, BudgetKind::NewtonIters);
            assert_eq!(progress.newton_iters, 4);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn factorization_budget_trips_at_next_checkpoint() {
    let ckt = common_source();
    let mut opts = DcOptions::default();
    opts.newton.budget = SolveBudget::new(BudgetLimits::default().max_factorizations(2));
    let err = dc_operating_point(&ckt, &opts).unwrap_err();
    assert!(
        matches!(
            &err,
            EngineError::BudgetExceeded { progress, .. }
                if progress.exhausted == BudgetKind::Factorizations
        ),
        "{err:?}"
    );
}

#[test]
fn deadline_budget_trips_via_mock_clock_without_sleeping() {
    let ckt = divider();
    let guard = FaultPlan::new()
        .mock_elapsed(Duration::from_millis(10))
        .install();
    let mut opts = DcOptions::default();
    opts.newton.budget = SolveBudget::new(BudgetLimits::default().deadline(Duration::from_secs(1)));
    // Mocked clock below the deadline: the solve completes.
    dc_operating_point(&ckt, &opts).unwrap();
    // Advance the mock past the deadline: the very next iteration trips.
    guard.set_mock_elapsed(Duration::from_secs(2));
    opts.newton.budget = SolveBudget::new(BudgetLimits::default().deadline(Duration::from_secs(1)));
    let err = dc_operating_point(&ckt, &opts).unwrap_err();
    match err {
        EngineError::BudgetExceeded { progress, .. } => {
            assert_eq!(progress.exhausted, BudgetKind::Deadline);
            assert_eq!(progress.elapsed, Duration::from_secs(2));
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

// ── Retry-ladder coverage: every rung deterministically reachable ──

#[test]
fn dc_retry_reaches_every_rung_in_order() {
    let ckt = divider();
    // Fail the first three ladder attempts; only switch-backend may solve.
    let _guard = FaultPlan::new()
        .fail_range(sites::RETRY_ATTEMPT, 0, 3, FaultAction::NoConverge)
        .install();
    let (res, diag) =
        dc_operating_point_resilient(&ckt, &DcOptions::default(), &RetryPolicy::default());
    let x = res.unwrap();
    let b = ckt.find_node("b").unwrap();
    assert!((ckt.voltage(&x, b) - 1.0).abs() < 1e-6);
    let retry_stages: Vec<&str> = diag
        .stages()
        .into_iter()
        .filter(|s| s.starts_with("retry["))
        .collect();
    assert_eq!(
        retry_stages,
        vec![
            "retry[0]:initial",
            "retry[1]:denser-gmin",
            "retry[2]:more-source-steps",
            "retry[3]:switch-backend",
        ]
    );
    assert_eq!(diag.succeeded_stage(), Some("retry[3]:switch-backend"));
    assert_eq!(diag.retry_attempts(), 4);
}

#[test]
fn tran_retry_reaches_switch_backend() {
    let ckt = rc_lowpass();
    let _guard = FaultPlan::new()
        .fail_range(sites::RETRY_ATTEMPT, 0, 2, FaultAction::NoConverge)
        .install();
    let (res, diag) =
        transient_resilient(&ckt, &TranOptions::new(1e-7, 1e-9), &RetryPolicy::default());
    assert!(res.is_ok(), "{:?}", res.err());
    assert_eq!(
        diag.stages(),
        vec![
            "retry[0]:initial",
            "retry[1]:halve-dt",
            "retry[2]:switch-backend",
        ]
    );
}

#[test]
fn max_attempts_bounds_the_ladder() {
    let ckt = divider();
    let _guard = FaultPlan::new()
        .fail_range(sites::RETRY_ATTEMPT, 0, 4, FaultAction::NoConverge)
        .install();
    let policy = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    let (res, diag) = dc_operating_point_resilient(&ckt, &DcOptions::default(), &policy);
    assert!(matches!(res, Err(EngineError::NoConvergence { .. })));
    assert_eq!(diag.retry_attempts(), 2);
}

#[test]
fn expired_deadline_short_circuits_the_ladder_before_any_attempt() {
    let ckt = divider();
    // The mocked clock is already past the deadline when the resilient
    // entry point is called (a request that sat in a queue too long): the
    // ladder spends zero attempts and surfaces the typed deadline error.
    let _guard = FaultPlan::new()
        .mock_elapsed(Duration::from_secs(2))
        .install();
    let mut opts = DcOptions::default();
    opts.newton.budget = SolveBudget::new(BudgetLimits::default().deadline(Duration::from_secs(1)));
    let (res, diag) = dc_operating_point_resilient(&ckt, &opts, &RetryPolicy::default());
    match res {
        Err(EngineError::BudgetExceeded { progress, .. }) => {
            assert_eq!(progress.exhausted, BudgetKind::Deadline);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
    assert_eq!(diag.stages(), vec!["retry[0]:deadline-short-circuit"]);
}

#[test]
fn budget_exhaustion_is_never_retried() {
    let ckt = common_source();
    let mut opts = DcOptions::default();
    opts.newton.budget = SolveBudget::new(BudgetLimits::default().max_newton_iters(1));
    let (res, diag) = dc_operating_point_resilient(&ckt, &opts, &RetryPolicy::default());
    assert!(matches!(res, Err(EngineError::BudgetExceeded { .. })));
    // One homotopy stage record plus one ladder record — no escalation ran.
    assert_eq!(diag.stages(), vec!["dc:direct", "retry[0]:initial"]);
}
