//! Cholesky factorization of symmetric positive (semi-)definite matrices.
//!
//! Used to realize correlated mismatch: the paper (Section III-C) constructs
//! correlated noise sources `Y = A·X` from independent unit-variance sources
//! `X`, with covariance `C = A·Aᵀ` (eq. 6). `A` is obtained here as the
//! Cholesky factor of the requested covariance.

use crate::dense::DMat;
use crate::error::NumError;

/// Computes the lower-triangular Cholesky factor `L` with `C = L·Lᵀ`.
///
/// A small non-negative `ridge` can be supplied to tolerate semi-definite
/// covariances arising from rank-deficient correlation structures.
///
/// # Errors
///
/// Returns [`NumError::NotSquare`] for non-square input and
/// [`NumError::NotPositiveDefinite`] when a diagonal pivot falls below
/// `-1e-12·max|C|` (true indefiniteness rather than roundoff).
///
/// # Examples
///
/// ```
/// use tranvar_num::{cholesky::cholesky, DMat};
/// let c = DMat::from_vec(2, 2, vec![4.0, 2.0, 2.0, 5.0]);
/// let l = cholesky(&c, 0.0)?;
/// let back = l.mat_mul(&l.transpose());
/// assert!((back[(0, 1)] - 2.0).abs() < 1e-12);
/// # Ok::<(), tranvar_num::NumError>(())
/// ```
pub fn cholesky(c: &DMat<f64>, ridge: f64) -> Result<DMat<f64>, NumError> {
    if !c.is_square() {
        return Err(NumError::NotSquare {
            rows: c.rows(),
            cols: c.cols(),
        });
    }
    let n = c.rows();
    let scale = c.max_abs().max(1.0);
    let tol = -1e-12 * scale;
    let mut l = DMat::<f64>::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = c[(i, j)] + if i == j { ridge } else { 0.0 };
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum < tol {
                    return Err(NumError::NotPositiveDefinite { index: i });
                }
                l[(i, i)] = sum.max(0.0).sqrt();
            } else {
                let d = l[(j, j)];
                l[(i, j)] = if d > 0.0 { sum / d } else { 0.0 };
            }
        }
    }
    Ok(l)
}

/// Builds a covariance matrix from per-variable standard deviations and a
/// correlation matrix: `C[i][j] = ρ[i][j]·σ[i]·σ[j]`.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn covariance_from_correlation(sigmas: &[f64], rho: &DMat<f64>) -> DMat<f64> {
    assert_eq!(rho.rows(), sigmas.len());
    assert_eq!(rho.cols(), sigmas.len());
    DMat::from_fn(sigmas.len(), sigmas.len(), |i, j| {
        rho[(i, j)] * sigmas[i] * sigmas[j]
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_reconstructs() {
        let c = DMat::from_vec(3, 3, vec![4.0, 2.0, 0.6, 2.0, 5.0, 1.0, 0.6, 1.0, 3.0]);
        let l = cholesky(&c, 0.0).unwrap();
        let back = l.mat_mul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert!((back[(i, j)] - c[(i, j)]).abs() < 1e-12);
            }
        }
        // Lower triangular.
        assert_eq!(l[(0, 1)], 0.0);
        assert_eq!(l[(0, 2)], 0.0);
        assert_eq!(l[(1, 2)], 0.0);
    }

    #[test]
    fn rejects_indefinite() {
        let c = DMat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]);
        assert!(matches!(
            cholesky(&c, 0.0),
            Err(NumError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn tolerates_semidefinite() {
        // Rank-1 covariance: perfectly correlated pair.
        let c = DMat::from_vec(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let l = cholesky(&c, 0.0).unwrap();
        let back = l.mat_mul(&l.transpose());
        for i in 0..2 {
            for j in 0..2 {
                assert!((back[(i, j)] - c[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn covariance_from_correlation_diag() {
        let rho = DMat::identity(2);
        let c = covariance_from_correlation(&[2.0, 3.0], &rho);
        assert_eq!(c[(0, 0)], 4.0);
        assert_eq!(c[(1, 1)], 9.0);
        assert_eq!(c[(0, 1)], 0.0);
    }
}
