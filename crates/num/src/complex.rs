//! Minimal double-precision complex arithmetic.
//!
//! The workspace deliberately avoids external linear-algebra crates, so the
//! complex number type used by the AC/LPTV analyses lives here. Only the
//! operations the simulator needs are provided.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Examples
///
/// ```
/// use tranvar_num::Complex;
/// let a = Complex::new(1.0, 2.0);
/// let b = Complex::new(3.0, -1.0);
/// assert_eq!((a * b).re, 5.0);
/// assert_eq!((a * b).im, 5.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// `e^{jθ}` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (uses `hypot` for robustness near overflow/underflow).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase) in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse.
    ///
    /// Uses Smith's algorithm to avoid overflow for large components.
    #[inline]
    pub fn recip(self) -> Self {
        if self.re.abs() >= self.im.abs() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            Complex::new(1.0 / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            Complex::new(r / d, -1.0 / d)
        }
    }

    /// Complex exponential.
    #[inline]
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Complex::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

/// Field of scalars the linear-algebra kernels are generic over.
///
/// Implemented for [`f64`] and [`Complex`]. The `magnitude` method is used for
/// pivot selection in LU factorization.
///
/// This trait is sealed: it is not meant to be implemented outside this crate.
pub trait Scalar:
    Copy
    + fmt::Debug
    + Default
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + Send
    + Sync
    + private::Sealed
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Magnitude used for pivoting (absolute value / modulus).
    fn magnitude(self) -> f64;
    /// Embeds a real number into the field.
    fn from_f64(x: f64) -> Self;
    /// Returns `true` if any component is NaN.
    fn is_nan(self) -> bool;
}

mod private {
    pub trait Sealed {}
    impl Sealed for f64 {}
    impl Sealed for super::Complex {}
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn is_nan(self) -> bool {
        f64::is_nan(self)
    }
}

impl Scalar for Complex {
    #[inline]
    fn zero() -> Self {
        Complex::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex::ONE
    }
    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Complex::from_real(x)
    }
    #[inline]
    fn is_nan(self) -> bool {
        Complex::is_nan(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic_identities() {
        let a = Complex::new(2.0, -3.0);
        assert_eq!(a + Complex::ZERO, a);
        assert_eq!(a * Complex::ONE, a);
        assert!(close(a * a.recip(), Complex::ONE, 1e-14));
        assert_eq!(-(-a), a);
        assert_eq!(a - a, Complex::ZERO);
    }

    #[test]
    fn division_matches_multiplication_by_inverse() {
        let a = Complex::new(1.5, 2.5);
        let b = Complex::new(-0.5, 4.0);
        let q = a / b;
        assert!(close(q * b, a, 1e-12));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn exp_of_imaginary_is_on_unit_circle() {
        let z = Complex::new(0.0, std::f64::consts::PI / 3.0).exp();
        assert!((z.abs() - 1.0).abs() < 1e-14);
        assert!((z.re - 0.5).abs() < 1e-14);
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!(close(r * r, z, 1e-12));
    }

    #[test]
    fn conj_flips_imaginary() {
        let z = Complex::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex::new(1.0, -2.0));
        assert!((z * z.conj()).im.abs() < 1e-15);
        assert!(((z * z.conj()).re - z.norm_sqr()).abs() < 1e-15);
    }

    #[test]
    fn recip_is_robust_to_large_components() {
        let z = Complex::new(1e300, 1e300);
        let r = z.recip();
        assert!(r.is_finite());
        assert!(close(r * z, Complex::ONE, 1e-12));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex::new(1.0, 2.0).to_string(), "1+2j");
        assert_eq!(Complex::new(1.0, -2.0).to_string(), "1-2j");
    }

    #[test]
    fn sum_accumulates() {
        let s: Complex = (0..4).map(|k| Complex::new(k as f64, 1.0)).sum();
        assert_eq!(s, Complex::new(6.0, 4.0));
    }
}
