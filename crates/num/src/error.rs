//! Error types for the numerical kernels.

use std::error::Error;
use std::fmt;

/// Coarse classification of a failure for wire boundaries (HTTP statuses,
/// exit codes, alerting severities).
///
/// Every error enum in the workspace maps itself onto a [`WireFault`] via an
/// exhaustive `match` in its own crate (`wire_fault()`), so adding a variant
/// without classifying it is a compile error there — the serving layer never
/// has to stringify or guess. The facade's `TranvarError::wire_status`
/// turns the class into an HTTP status:
///
/// - [`FailureClass::BadInput`] → 400 (bad request envelope, bad
///   configuration),
/// - [`FailureClass::Unprocessable`] → 422 (the request envelope was valid
///   but the document it carried — e.g. a submitted SPICE deck — could not
///   be parsed or elaborated),
/// - [`FailureClass::Unstable`] → 422 (the deck parsed but the solve failed:
///   non-convergence, singular/non-finite systems, missing crossings),
/// - [`FailureClass::Exhausted`] → 504 (a cooperative budget/deadline
///   tripped; retrying with the same budget would trip it again),
/// - [`FailureClass::Internal`] → 500 (violated invariants, caught panics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureClass {
    /// The request/configuration itself is invalid.
    BadInput,
    /// The request envelope was valid but the enclosed document (a netlist
    /// deck) could not be parsed or elaborated.
    Unprocessable,
    /// The input was well-formed but the numerics failed on it.
    Unstable,
    /// A cooperative work bound (budget, deadline) was exhausted.
    Exhausted,
    /// An internal invariant was violated (bug, caught panic).
    Internal,
}

/// A machine-readable failure identity: a stable dotted code (stable across
/// releases; safe to match on in clients) plus its [`FailureClass`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireFault {
    /// Stable machine-readable code, `"<crate>.<variant>"` in kebab-case.
    pub code: &'static str,
    /// Coarse class deciding the wire status.
    pub class: FailureClass,
}

impl WireFault {
    /// Convenience constructor used by the per-crate `wire_fault()` impls.
    pub const fn new(code: &'static str, class: FailureClass) -> Self {
        WireFault { code, class }
    }
}

/// Errors produced by the linear-algebra and transform kernels.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NumError {
    /// A factorization encountered a numerically zero pivot.
    Singular {
        /// Column at which elimination broke down.
        col: usize,
    },
    /// A factorization encountered a NaN or infinite value.
    ///
    /// Distinct from [`NumError::Singular`]: a zero pivot means the matrix
    /// (at its current values) has no usable pivot in that column, while a
    /// non-finite entry means garbage — typically an overflowed or
    /// ill-posed model evaluation — entered the kernel. Retry policies
    /// treat the two differently: a singular system may be rescued by
    /// regularization (gmin), whereas non-finite input needs the operands
    /// themselves repaired.
    NonFinite {
        /// Column at which the first non-finite value was detected.
        col: usize,
    },
    /// A square-matrix operation was invoked on a non-square matrix.
    NotSquare {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// A Cholesky factorization was attempted on a matrix that is not
    /// positive semi-definite (within tolerance).
    NotPositiveDefinite {
        /// Row/column at which a negative pivot appeared.
        index: usize,
    },
    /// An FFT was requested with a length that is not a power of two.
    FftLength {
        /// The offending length.
        len: usize,
    },
    /// Generic dimension mismatch between operands.
    DimensionMismatch {
        /// Expected size.
        expected: usize,
        /// Actual size.
        actual: usize,
    },
    /// A numeric-only update was attempted on a matrix whose sparsity
    /// pattern differs from the one the structure was built for.
    PatternMismatch,
    /// An internal workspace invariant was violated (e.g. staged storage or
    /// a cached factorization missing where one must exist). Indicates a
    /// kernel bug, surfaced as a typed error instead of a panic so solve
    /// pipelines can isolate and report it.
    Internal {
        /// The violated invariant.
        what: &'static str,
    },
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::Singular { col } => {
                write!(f, "matrix is singular (zero pivot at column {col})")
            }
            NumError::NonFinite { col } => {
                write!(f, "matrix contains a non-finite value (column {col})")
            }
            NumError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            NumError::NotPositiveDefinite { index } => {
                write!(f, "matrix is not positive definite (row {index})")
            }
            NumError::FftLength { len } => {
                write!(f, "fft length {len} is not a power of two")
            }
            NumError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            NumError::PatternMismatch => {
                write!(f, "sparsity pattern differs from the analyzed structure")
            }
            NumError::Internal { what } => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl NumError {
    /// The stable wire identity of this failure (see [`WireFault`]).
    ///
    /// The match is exhaustive on purpose: adding a `NumError` variant
    /// without classifying it for the wire boundary must not compile.
    pub fn wire_fault(&self) -> WireFault {
        use FailureClass::*;
        match self {
            NumError::Singular { .. } => WireFault::new("num.singular", Unstable),
            NumError::NonFinite { .. } => WireFault::new("num.non-finite", Unstable),
            NumError::NotPositiveDefinite { .. } => {
                WireFault::new("num.not-positive-definite", Unstable)
            }
            // Shape/usage violations are caller bugs, not data-dependent
            // solve failures: surface them as internal.
            NumError::NotSquare { .. } => WireFault::new("num.not-square", Internal),
            NumError::FftLength { .. } => WireFault::new("num.fft-length", Internal),
            NumError::DimensionMismatch { .. } => {
                WireFault::new("num.dimension-mismatch", Internal)
            }
            NumError::PatternMismatch => WireFault::new("num.pattern-mismatch", Internal),
            NumError::Internal { .. } => WireFault::new("num.internal", Internal),
        }
    }
}

impl Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NumError::Singular { col: 3 },
            NumError::NonFinite { col: 3 },
            NumError::NotSquare { rows: 2, cols: 3 },
            NumError::NotPositiveDefinite { index: 1 },
            NumError::FftLength { len: 12 },
            NumError::DimensionMismatch {
                expected: 4,
                actual: 5,
            },
            NumError::PatternMismatch,
            NumError::Internal { what: "test" },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumError>();
    }
}
