//! Streaming statistics, histograms and distribution helpers.
//!
//! Monte-Carlo runs accumulate mean/σ/skewness here; the paper's Figs. 9, 11
//! and 12 compare MC histograms against the Gaussian PDF predicted by the
//! pseudo-noise analysis, and quote the normalized skewness `μ₃^{1/3}/σ` and
//! the 95% confidence interval of an n-point MC σ estimate.

/// Streaming accumulator of the first three central moments.
///
/// Uses the numerically stable one-pass update formulas (Welford extended to
/// the third moment).
///
/// # Examples
///
/// ```
/// use tranvar_num::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert!((s.variance() - 5.0 / 3.0).abs() < 1e-12); // sample variance
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    m3: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an accumulator pre-loaded with samples.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut s = Self::new();
        for x in samples {
            s.push(x);
        }
        s
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        let delta = x - self.mean;
        let delta_n = delta / n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Third central moment `E[(X−μ)³]` (population form).
    pub fn third_central_moment(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m3 / self.n as f64
        }
    }

    /// Conventional dimensionless skewness `μ₃/σ³`.
    pub fn skewness(&self) -> f64 {
        let sd = ((self.m2 / self.n.max(1) as f64).max(0.0)).sqrt();
        if sd == 0.0 {
            0.0
        } else {
            self.third_central_moment() / (sd * sd * sd)
        }
    }

    /// `sign(μ₃)·|μ₃|^{1/3}/σ` — cube-root skewness normalized by σ.
    pub fn normalized_skewness_cuberoot(&self) -> f64 {
        let sd = self.std_dev();
        if sd == 0.0 {
            0.0
        } else {
            let m3 = self.third_central_moment();
            m3.signum() * m3.abs().cbrt() / sd
        }
    }

    /// The paper's "normalized skewness" `μ₃^{1/3}/μ` (Section VIII defines
    /// it with μ the *mean* of the distribution — suitable for inherently
    /// positive metrics like an oscillation frequency).
    pub fn normalized_skewness_paper(&self) -> f64 {
        let mu = self.mean();
        if mu == 0.0 {
            0.0
        } else {
            let m3 = self.third_central_moment();
            m3.signum() * m3.abs().cbrt() / mu
        }
    }

    /// Merges another accumulator into this one (parallel MC reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * nb / n;
        let m2 = self.m2 + other.m2 + delta * delta * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta.powi(3) * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.m3 = m3;
    }
}

/// Relative half-width of the 95% confidence interval of a standard-deviation
/// estimate from `n` Gaussian samples: `1.96/√(2n)`.
///
/// The paper quotes ±4.5% for n=1000 and ±1.4% for n=10 000; this reproduces
/// both (4.38% and 1.39% before their rounding).
pub fn sigma_rel_ci95(n: usize) -> f64 {
    1.96 / (2.0 * n as f64).sqrt()
}

/// Standard normal probability density.
pub fn gaussian_pdf(x: f64, mean: f64, sigma: f64) -> f64 {
    let z = (x - mean) / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}

/// A fixed-bin histogram over `[lo, hi]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Creates a histogram sized to cover `mean ± k·sigma`.
    pub fn around(mean: f64, sigma: f64, k: f64, bins: usize) -> Self {
        Self::new(mean - k * sigma, mean + k * sigma, bins)
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Center abscissa of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.bin_width()
    }

    /// Raw count in bin `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total samples pushed (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin value normalized as a probability density (so it is directly
    /// comparable with [`gaussian_pdf`]).
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / (self.total as f64 * self.bin_width())
        }
    }

    /// Iterates over `(bin_center, density)` pairs.
    pub fn densities(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        (0..self.bins()).map(|i| (self.bin_center(i), self.density(i)))
    }
}

/// Pearson correlation coefficient of two equal-length sample sets.
///
/// # Panics
///
/// Panics if lengths differ or fewer than two samples are given.
pub fn pearson_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation needs paired samples");
    assert!(a.len() >= 2, "correlation needs at least two samples");
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut sab = 0.0;
    let mut saa = 0.0;
    let mut sbb = 0.0;
    for (&x, &y) in a.iter().zip(b.iter()) {
        sab += (x - ma) * (y - mb);
        saa += (x - ma) * (x - ma);
        sbb += (y - mb) * (y - mb);
    }
    if saa == 0.0 || sbb == 0.0 {
        0.0
    } else {
        sab / (saa * sbb).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_match_two_pass() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let s = RunningStats::from_samples(data.iter().copied());
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance 4.0 -> sample variance 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        let mu3: f64 = data.iter().map(|x| (x - 5.0f64).powi(3)).sum::<f64>() / 8.0;
        assert!((s.third_central_moment() - mu3).abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64 * 0.77).sin() * 3.0).collect();
        let b: Vec<f64> = (0..37)
            .map(|i| (i as f64 * 0.31).cos() * 2.0 + 1.0)
            .collect();
        let mut s1 = RunningStats::from_samples(a.iter().copied());
        let s2 = RunningStats::from_samples(b.iter().copied());
        s1.merge(&s2);
        let all = RunningStats::from_samples(a.iter().chain(b.iter()).copied());
        assert_eq!(s1.count(), all.count());
        assert!((s1.mean() - all.mean()).abs() < 1e-12);
        assert!((s1.variance() - all.variance()).abs() < 1e-10);
        assert!((s1.third_central_moment() - all.third_central_moment()).abs() < 1e-9);
    }

    #[test]
    fn symmetric_data_has_zero_skew() {
        let s = RunningStats::from_samples([-2.0, -1.0, 0.0, 1.0, 2.0]);
        assert!(s.skewness().abs() < 1e-12);
        assert!(s.normalized_skewness_cuberoot().abs() < 1e-12);
    }

    #[test]
    fn paper_skewness_normalizes_by_mean() {
        // Right-skewed data around a positive mean.
        let s = RunningStats::from_samples([1.0, 1.0, 1.0, 1.0, 3.0]);
        let m3 = s.third_central_moment();
        let expect = m3.cbrt() / s.mean();
        assert!((s.normalized_skewness_paper() - expect).abs() < 1e-12);
        assert!(s.normalized_skewness_paper() > 0.0);
    }

    #[test]
    fn paper_confidence_intervals() {
        // Paper Section VI/VIII: ±4.5% at n=1000, ±1.4% at n=10000.
        assert!((sigma_rel_ci95(1000) - 0.045).abs() < 0.002);
        assert!((sigma_rel_ci95(10_000) - 0.014).abs() < 0.001);
        // And ±14% at n=100 (Section VIII).
        assert!((sigma_rel_ci95(100) - 0.14).abs() < 0.002);
    }

    #[test]
    fn histogram_densities_integrate_to_one() {
        let mut h = Histogram::new(-3.0, 3.0, 30);
        for i in 0..3000 {
            // triangle-ish deterministic data inside range
            let x = -2.9 + 5.8 * ((i as f64 * 0.618).fract());
            h.push(x);
        }
        let integral: f64 = (0..h.bins()).map(|i| h.density(i) * h.bin_width()).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_out_of_range_counted() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-1.0);
        h.push(2.0);
        h.push(0.5);
        assert_eq!(h.total(), 3);
        assert_eq!(h.count(2), 1);
    }

    #[test]
    fn gaussian_pdf_peak_value() {
        let p = gaussian_pdf(0.0, 0.0, 2.0);
        assert!((p - 1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-14);
    }

    #[test]
    fn correlation_of_identical_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson_correlation(&a, &a) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = a.iter().map(|x| -x).collect();
        assert!((pearson_correlation(&a, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn correlation_of_orthogonal_is_zero() {
        let a = [1.0, -1.0, 1.0, -1.0];
        let b = [1.0, 1.0, -1.0, -1.0];
        assert!(pearson_correlation(&a, &b).abs() < 1e-12);
    }
}
