//! # tranvar-num
//!
//! Self-contained numerical kernels for the `tranvar` workspace — the
//! reproduction of Kim, Jones & Horowitz, *"Fast, Non-Monte-Carlo Estimation
//! of Transient Performance Variation Due to Device Mismatch"* (DAC 2007 /
//! TCAS-I 2010).
//!
//! The workspace deliberately avoids external linear-algebra, FFT and
//! distribution crates (the available sparse-solver ecosystem is thin and the
//! kernels needed by a circuit simulator are small), so everything numerical
//! lives here:
//!
//! - [`Complex`] arithmetic and the [`Scalar`] field abstraction,
//! - dense LU ([`DMat`], [`Lu`]) for monodromy/shooting systems,
//! - sparse CSC LU ([`sparse`]) for per-timestep MNA Jacobians,
//! - const-generic lane kernels ([`lanes`]) for wide multi-RHS solves,
//! - [`cholesky`] for correlated-mismatch construction (paper eq. 6),
//! - [`fft`] and Fourier-series coefficients (paper Section V),
//! - [`rng`] normal / correlated-normal sampling for Monte-Carlo,
//! - [`stats`] running moments, histograms, skewness and MC confidence
//!   intervals (paper Figs. 9/11/12 and the ±4.5%/±1.4% CI claims),
//! - [`interp`] threshold-crossing measurement shared by all delay paths.
//!
//! # Examples
//!
//! ```
//! use tranvar_num::{DMat, Complex};
//!
//! // Solve a small complex system (an AC analysis does exactly this).
//! let a = DMat::from_vec(1, 1, vec![Complex::new(0.0, 2.0)]);
//! let x = a.solve(&[Complex::ONE])?;
//! assert!((x[0] - Complex::new(0.0, -0.5)).abs() < 1e-15);
//! # Ok::<(), tranvar_num::NumError>(())
//! ```

#![warn(missing_docs)]

pub mod cholesky;
pub mod complex;
pub mod dense;
pub mod error;
pub mod fft;
pub mod interp;
pub mod lanes;
pub mod rng;
pub mod sparse;
pub mod stats;

pub use complex::{Complex, Scalar};
pub use dense::{DMat, Lu};
pub use error::{FailureClass, NumError, WireFault};
pub use lanes::{lanes_scratch_len, LaneSolver};
pub use sparse::{Csc, SparseLu, SparseSymbolic, Triplets};
