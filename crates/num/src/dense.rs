//! Dense matrices and LU factorization with partial pivoting.
//!
//! Circuit MNA systems in this workspace are small-to-medium (tens to a few
//! hundred unknowns), so a cache-friendly row-major dense kernel is the
//! workhorse for monodromy matrices and shooting-Newton updates. Larger
//! per-timestep Jacobians can use the sparse kernels in [`crate::sparse`].

use crate::complex::Scalar;
use crate::error::NumError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix over a [`Scalar`] field.
///
/// # Examples
///
/// ```
/// use tranvar_num::DMat;
/// let mut m = DMat::<f64>::zeros(2, 2);
/// m[(0, 0)] = 2.0;
/// m[(1, 1)] = 3.0;
/// let y = m.mat_vec(&[1.0, 1.0]);
/// assert_eq!(y, vec![2.0, 3.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct DMat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Scalar> DMat<T> {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMat {
            rows,
            cols,
            data: vec![T::zero(); rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::one();
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), rows * cols, "dense matrix data length mismatch");
        DMat { rows, cols, data }
    }

    /// Creates a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DMat { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Borrows one row as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows one row as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Sets every entry to zero, retaining the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = T::zero());
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        let mut y = vec![T::zero(); self.rows];
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = T::zero();
            for (a, b) in row.iter().zip(x.iter()) {
                acc += *a * *b;
            }
            y[i] = acc;
        }
        y
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != b.rows()`.
    pub fn mat_mul(&self, b: &DMat<T>) -> DMat<T> {
        assert_eq!(self.cols, b.rows, "mat_mul dimension mismatch");
        let mut c = DMat::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.row(i)[k];
                if aik == T::zero() {
                    continue;
                }
                let brow = b.row(k);
                let crow = c.row_mut(i);
                for j in 0..b.cols {
                    crow[j] += aik * brow[j];
                }
            }
        }
        c
    }

    /// Transpose.
    pub fn transpose(&self) -> DMat<T> {
        DMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Adds `k·B` to `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, k: T, b: &DMat<T>) {
        assert_eq!(self.rows, b.rows);
        assert_eq!(self.cols, b.cols);
        for (d, s) in self.data.iter_mut().zip(b.data.iter()) {
            *d += k * *s;
        }
    }

    /// Maximum entry magnitude (∞-like norm over all entries).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|v| v.magnitude()).fold(0.0, f64::max)
    }

    /// Factorizes the matrix as `P·A = L·U` with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] when a pivot column is numerically zero,
    /// and [`NumError::NotSquare`] for non-square inputs.
    pub fn lu(&self) -> Result<Lu<T>, NumError> {
        Lu::factor(self.clone())
    }

    /// Solves `A·x = b` via a fresh LU factorization.
    ///
    /// # Errors
    ///
    /// Propagates factorization errors; see [`DMat::lu`].
    pub fn solve(&self, b: &[T]) -> Result<Vec<T>, NumError> {
        Ok(self.lu()?.solve(b))
    }
}

impl<T: Scalar> Index<(usize, usize)> for DMat<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for DMat<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl<T: fmt::Debug> fmt::Debug for DMat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", &self.data[i * self.cols..(i + 1) * self.cols])?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

/// An LU factorization `P·A = L·U` with partial pivoting.
///
/// Produced by [`DMat::lu`]; solves many right-hand sides cheaply, which the
/// LPTV analysis exploits heavily (one factorization per timestep, one pair of
/// triangular solves per noise source).
#[derive(Clone, Debug)]
pub struct Lu<T> {
    /// Combined L (unit lower, below diagonal) and U (upper) factors.
    lu: DMat<T>,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
    /// Parity of the permutation (+1/-1), used by `det`.
    sign: f64,
}

impl<T: Scalar> Lu<T> {
    /// Factorizes `a` in place (consumes the matrix).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`] if `a` is not square and
    /// [`NumError::Singular`] if a zero pivot is encountered.
    pub fn factor(a: DMat<T>) -> Result<Self, NumError> {
        let mut lu = Lu {
            lu: a,
            perm: Vec::new(),
            sign: 1.0,
        };
        lu.factor_in_place()?;
        Ok(lu)
    }

    /// Refactors `a` in place, reusing this factorization's storage (the
    /// per-timestep hot path: no matrix clone, no fresh allocation beyond
    /// growing to a larger dimension).
    ///
    /// # Errors
    ///
    /// Same as [`Lu::factor`]. On error the contents are unspecified.
    pub fn refactor(&mut self, a: &DMat<T>) -> Result<(), NumError> {
        if self.lu.rows == a.rows && self.lu.cols == a.cols {
            self.lu.data.copy_from_slice(&a.data);
        } else {
            self.lu = a.clone();
        }
        self.factor_in_place()
    }

    fn factor_in_place(&mut self) -> Result<(), NumError> {
        let a = &mut self.lu;
        if !a.is_square() {
            return Err(NumError::NotSquare {
                rows: a.rows,
                cols: a.cols,
            });
        }
        let n = a.rows;
        self.perm.clear();
        self.perm.extend(0..n);
        let perm = &mut self.perm;
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot: largest magnitude in column k at or below the diagonal.
            // A NaN would lose every `>` comparison and hide behind a finite
            // pivot, so finiteness is checked per candidate, not just on the
            // winner.
            let mut p = k;
            let mut pmag = a[(k, k)].magnitude();
            if !pmag.is_finite() {
                return Err(NumError::NonFinite { col: k });
            }
            for i in (k + 1)..n {
                let m = a[(i, k)].magnitude();
                if !m.is_finite() {
                    return Err(NumError::NonFinite { col: k });
                }
                if m > pmag {
                    p = i;
                    pmag = m;
                }
            }
            if pmag == 0.0 {
                return Err(NumError::Singular { col: k });
            }
            if p != k {
                perm.swap(k, p);
                sign = -sign;
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = tmp;
                }
            }
            let pivot = a[(k, k)];
            for i in (k + 1)..n {
                let m = a[(i, k)] / pivot;
                a[(i, k)] = m;
                if m == T::zero() {
                    continue;
                }
                // Row update uses split_at_mut to satisfy the borrow checker
                // while staying on the fast slice path.
                let (top, bottom) = a.data.split_at_mut(i * n);
                let krow = &top[k * n..k * n + n];
                let irow = &mut bottom[..n];
                for j in (k + 1)..n {
                    let d = m * krow[j];
                    irow[j] -= d;
                }
            }
        }
        self.sign = sign;
        Ok(())
    }

    /// Dimension of the factored system.
    #[inline]
    pub fn n(&self) -> usize {
        self.lu.rows
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.n()`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut x: Vec<T> = self.perm.iter().map(|&p| b[p]).collect();
        self.solve_permuted_in_place(&mut x);
        x
    }

    /// Solves `A·x = b`, overwriting `x` (which must already hold `b`).
    pub fn solve_in_place(&self, x: &mut [T]) {
        let b: Vec<T> = self.perm.iter().map(|&p| x[p]).collect();
        x.copy_from_slice(&b);
        self.solve_permuted_in_place(x);
    }

    /// Solves `A·x = b` into `out` with zero heap allocation — the
    /// per-timestep hot path.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.n()` or `out.len() != self.n()`.
    pub fn solve_into(&self, b: &[T], out: &mut [T]) {
        let n = self.n();
        assert_eq!(b.len(), n, "rhs length mismatch");
        assert_eq!(out.len(), n, "out length mismatch");
        for (o, &p) in out.iter_mut().zip(self.perm.iter()) {
            *o = b[p];
        }
        self.solve_permuted_in_place(out);
    }

    /// Solves `A·X = B` for a column-major block of `n_rhs` right-hand sides
    /// in place (`block[r + n·k]` is row `r` of RHS `k`); `scratch` must
    /// have length `self.n()`.
    ///
    /// The triangular sweeps run with the factor row as the outer loop so
    /// each row of `L`/`U` is read once per block instead of once per RHS —
    /// for sensitivity batches this turns a memory-bound loop into an
    /// arithmetic one. Per-column results are bit-for-bit identical to
    /// [`Lu::solve`].
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != self.n() * n_rhs` or
    /// `scratch.len() != self.n()`.
    pub fn solve_multi(&self, block: &mut [T], n_rhs: usize, scratch: &mut [T]) {
        let n = self.n();
        assert_eq!(block.len(), n * n_rhs, "block length mismatch");
        assert_eq!(scratch.len(), n, "scratch length mismatch");
        // Apply the row permutation column by column.
        for k in 0..n_rhs {
            let col = &mut block[k * n..(k + 1) * n];
            scratch.copy_from_slice(col);
            for (o, &p) in col.iter_mut().zip(self.perm.iter()) {
                *o = scratch[p];
            }
        }
        // Forward substitution with unit lower factor, row-outer so the
        // factor row is loaded once per block.
        for i in 1..n {
            let row = self.lu.row(i);
            for k in 0..n_rhs {
                let col = &mut block[k * n..(k + 1) * n];
                let mut acc = col[i];
                for j in 0..i {
                    acc -= row[j] * col[j];
                }
                col[i] = acc;
            }
        }
        // Back substitution with upper factor.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            for k in 0..n_rhs {
                let col = &mut block[k * n..(k + 1) * n];
                let mut acc = col[i];
                for j in (i + 1)..n {
                    acc -= row[j] * col[j];
                }
                col[i] = acc / row[i];
            }
        }
    }

    fn solve_permuted_in_place(&self, x: &mut [T]) {
        let n = self.n();
        assert_eq!(x.len(), n, "rhs length mismatch");
        // Forward substitution with unit lower factor.
        for i in 1..n {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for j in 0..i {
                acc -= row[j] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with upper factor.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= row[j] * x[j];
            }
            x[i] = acc / row[i];
        }
    }

    /// Solves `A·X = B` for an *interleaved* block of `n_rhs` right-hand
    /// sides in place: `block[i·n_rhs + k]` is row `i` of RHS `k`, so the
    /// values of all RHS for one unknown are contiguous. `scratch` must be
    /// another `n·n_rhs` buffer.
    ///
    /// Every triangular update becomes a contiguous `n_rhs`-wide axpy, which
    /// vectorizes far better than the column-major [`Lu::solve_multi`] when
    /// the system is small and the batch is wide (the transient-sensitivity
    /// shape: tens of unknowns, tens of parameters). Per-RHS results are
    /// bit-for-bit identical to [`Lu::solve`]. Prefer
    /// [`Lu::solve_multi_lanes`] when the width is fixed across calls: its
    /// compile-time lane kernels solve the same block faster with the same
    /// bits.
    ///
    /// Scratch contract: `scratch` is a full shadow of the block — exactly
    /// `self.n() * n_rhs` elements — used to stage the row permutation. A
    /// shorter slice would permute from stale or out-of-range rows.
    ///
    /// # Panics
    ///
    /// Panics if `block.len()` or `scratch.len()` differ from
    /// `self.n() * n_rhs`.
    pub fn solve_multi_interleaved(&self, block: &mut [T], n_rhs: usize, scratch: &mut [T]) {
        let n = self.n();
        assert_eq!(block.len(), n * n_rhs, "block length mismatch");
        assert_eq!(scratch.len(), n * n_rhs, "scratch length mismatch");
        debug_assert!(
            scratch.len() >= block.len(),
            "interleaved scratch must cover the whole block"
        );
        if n_rhs == 0 {
            return;
        }
        // Row permutation.
        scratch.copy_from_slice(block);
        for (i, &p) in self.perm.iter().enumerate() {
            block[i * n_rhs..(i + 1) * n_rhs].copy_from_slice(&scratch[p * n_rhs..(p + 1) * n_rhs]);
        }
        // Forward substitution with unit lower factor: row i accumulates
        // -L[i][j]·x_j for j < i, each a contiguous axpy.
        for i in 1..n {
            let row = self.lu.row(i);
            let (lo, hi) = block.split_at_mut(i * n_rhs);
            let xi = &mut hi[..n_rhs];
            for (j, &lij) in row.iter().enumerate().take(i) {
                if lij == T::zero() {
                    continue;
                }
                let xj = &lo[j * n_rhs..(j + 1) * n_rhs];
                for (a, b) in xi.iter_mut().zip(xj.iter()) {
                    *a -= lij * *b;
                }
            }
        }
        // Back substitution with upper factor.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let (lo, hi) = block.split_at_mut((i + 1) * n_rhs);
            let xi = &mut lo[i * n_rhs..];
            for (j, &uij) in row.iter().enumerate().skip(i + 1) {
                if uij == T::zero() {
                    continue;
                }
                let xj = &hi[(j - i - 1) * n_rhs..(j - i) * n_rhs];
                for (a, b) in xi.iter_mut().zip(xj.iter()) {
                    *a -= uij * *b;
                }
            }
            let diag = row[i];
            for a in xi.iter_mut() {
                *a = *a / diag;
            }
        }
    }

    /// Solves `A·X = B` for an `N`-lane RHS block in place: `block[i]` holds
    /// row `i` of all `N` right-hand sides. `scratch` must also hold
    /// `self.n()` lane blocks.
    ///
    /// This is the compile-time-width variant of
    /// [`Lu::solve_multi_interleaved`]: every inner axpy is a fixed-`N` loop
    /// the compiler unrolls into straight-line SIMD. Per-RHS results are
    /// bit-for-bit identical to [`Lu::solve_into`].
    ///
    /// # Panics
    ///
    /// Panics if `block.len()` or `scratch.len()` differ from `self.n()`.
    pub fn solve_arr<const N: usize>(&self, block: &mut [[T; N]], scratch: &mut [[T; N]]) {
        let n = self.n();
        assert_eq!(block.len(), n, "lane block length mismatch");
        assert_eq!(scratch.len(), n, "lane scratch length mismatch");
        // Ping-pong between the two buffers instead of staging the row
        // permutation with a full-block copy: the forward sweep gathers input
        // row `perm[i]` straight from `block` and writes `y` into `scratch`;
        // the back sweep reads `y` from `scratch` and writes solutions into
        // `block` (every input row has been consumed by then). Per-RHS
        // operation order matches `solve_permuted_in_place` exactly
        // (ascending j, zero-skip is a bitwise no-op for finite values), and
        // the accumulator row lives in a local `[T; N]` so all `N` lanes stay
        // in registers across the whole dot-product sweep.
        for i in 0..n {
            let row = self.lu.row(i);
            let mut acc = block[self.perm[i]];
            for (j, &lij) in row.iter().enumerate().take(i) {
                if lij == T::zero() {
                    continue;
                }
                let yj = &scratch[j];
                for (a, b) in acc.iter_mut().zip(yj.iter()) {
                    *a -= lij * *b;
                }
            }
            scratch[i] = acc;
        }
        // Back substitution with upper factor, same register-resident
        // accumulator shape; solutions land back in `block`.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let mut acc = scratch[i];
            for (j, &uij) in row.iter().enumerate().skip(i + 1) {
                if uij == T::zero() {
                    continue;
                }
                let xj = &block[j];
                for (a, b) in acc.iter_mut().zip(xj.iter()) {
                    *a -= uij * *b;
                }
            }
            let diag = row[i];
            for a in acc.iter_mut() {
                *a = *a / diag;
            }
            block[i] = acc;
        }
    }

    /// Solves an RHS-interleaved block through the compile-time lane kernels
    /// ([`Lu::solve_arr`]), decomposing `n_rhs` into supported lane widths.
    ///
    /// `scratch` must hold at least
    /// [`crate::lanes::lanes_scratch_len`]`(self.n(), n_rhs)` elements.
    /// Per-RHS results are bit-for-bit identical to
    /// [`Lu::solve_multi_interleaved`] and [`Lu::solve_into`].
    pub fn solve_multi_lanes(&self, block: &mut [T], n_rhs: usize, scratch: &mut [T]) {
        crate::lanes::solve_lanes_dispatch(self, self.n(), block, n_rhs, scratch);
    }

    /// Solves `Aᵀ·x = b` (useful for adjoint sensitivity analysis).
    pub fn solve_transposed(&self, b: &[T]) -> Vec<T> {
        let n = self.n();
        assert_eq!(b.len(), n, "rhs length mismatch");
        let mut x = b.to_vec();
        // Uᵀ is lower triangular: forward substitution.
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu[(j, i)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        // Lᵀ is unit upper triangular: back substitution.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(j, i)] * x[j];
            }
            x[i] = acc;
        }
        // Undo the permutation: Aᵀ = Uᵀ Lᵀ P, so x_orig[perm[i]] = x[i].
        let mut out = vec![T::zero(); n];
        for (i, &p) in self.perm.iter().enumerate() {
            out[p] = x[i];
        }
        out
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> T {
        let mut d = T::from_f64(self.sign);
        for i in 0..self.n() {
            d = d * self.lu[(i, i)];
        }
        d
    }

    /// Solves for each column of `B`, returning `A⁻¹·B` (blocked multi-RHS
    /// sweep under the hood).
    pub fn solve_mat(&self, b: &DMat<T>) -> DMat<T> {
        let n = self.n();
        assert_eq!(b.rows(), n);
        let n_rhs = b.cols();
        // Column-major staging block for the batched solve.
        let mut block = vec![T::zero(); n * n_rhs];
        for j in 0..n_rhs {
            for i in 0..n {
                block[j * n + i] = b[(i, j)];
            }
        }
        let mut scratch = vec![T::zero(); n];
        self.solve_multi(&mut block, n_rhs, &mut scratch);
        let mut out = DMat::zeros(n, n_rhs);
        for j in 0..n_rhs {
            for i in 0..n {
                out[(i, j)] = block[j * n + i];
            }
        }
        out
    }
}

impl<T: Scalar> crate::lanes::LaneSolver<T> for Lu<T> {
    fn solve_lane<const N: usize>(&self, block: &mut [[T; N]], scratch: &mut [[T; N]]) {
        self.solve_arr(block, scratch);
    }
}

/// Dense vector helpers used across the workspace.
pub mod vecops {
    use super::Scalar;

    /// `y += k·x`.
    pub fn axpy<T: Scalar>(y: &mut [T], k: T, x: &[T]) {
        debug_assert_eq!(y.len(), x.len());
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += k * *xi;
        }
    }

    /// Dot product `Σ xᵢ·yᵢ` (no conjugation).
    pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
        debug_assert_eq!(x.len(), y.len());
        let mut acc = T::zero();
        for (a, b) in x.iter().zip(y.iter()) {
            acc += *a * *b;
        }
        acc
    }

    /// Infinity norm `max |xᵢ|`.
    pub fn norm_inf<T: Scalar>(x: &[T]) -> f64 {
        x.iter().map(|v| v.magnitude()).fold(0.0, f64::max)
    }

    /// Euclidean norm for real vectors.
    pub fn norm2(x: &[f64]) -> f64 {
        x.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Elementwise difference `a - b`.
    pub fn sub<T: Scalar>(a: &[T], b: &[T]) -> Vec<T> {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).map(|(x, y)| *x - *y).collect()
    }

    /// Scales a vector in place.
    pub fn scale<T: Scalar>(x: &mut [T], k: T) {
        for v in x.iter_mut() {
            *v = *v * k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex;

    #[test]
    fn identity_solve_is_identity() {
        let i = DMat::<f64>::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = i.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_known_3x3() {
        // A = [[2,1,1],[1,3,2],[1,0,0]], b = [4,5,6] -> x = [6,15,-23]
        let a = DMat::from_vec(3, 3, vec![2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.0]);
        let x = a.solve(&[4.0, 5.0, 6.0]).unwrap();
        assert!((x[0] - 6.0).abs() < 1e-12);
        assert!((x[1] - 15.0).abs() < 1e-12);
        assert!((x[2] + 23.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = DMat::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = a.solve(&[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = DMat::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        match a.lu() {
            Err(NumError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn nan_entry_reports_non_finite_not_singular() {
        // The NaN hides below a finite diagonal: a max-magnitude pivot scan
        // that only inspects the winner would miss it.
        let a = DMat::from_vec(2, 2, vec![1.0, 0.0, f64::NAN, 1.0]);
        match a.lu() {
            Err(NumError::NonFinite { col: 0 }) => {}
            other => panic!("expected non-finite error, got {other:?}"),
        }
    }

    #[test]
    fn inf_entry_reports_non_finite() {
        let a = DMat::from_vec(2, 2, vec![f64::INFINITY, 0.0, 0.0, 1.0]);
        assert!(matches!(a.lu(), Err(NumError::NonFinite { col: 0 })));
    }

    #[test]
    fn non_square_reports_error() {
        let a = DMat::<f64>::zeros(2, 3);
        assert!(matches!(a.lu(), Err(NumError::NotSquare { .. })));
    }

    #[test]
    fn residual_is_small_for_random_system() {
        // Deterministic pseudo-random fill.
        let n = 24;
        let mut seed = 1u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = DMat::from_fn(n, n, |i, j| rnd() + if i == j { 4.0 } else { 0.0 });
        let b: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let x = a.solve(&b).unwrap();
        let r = vecops::sub(&a.mat_vec(&x), &b);
        assert!(vecops::norm_inf(&r) < 1e-10, "residual too large");
    }

    #[test]
    fn complex_solve_matches_manual() {
        // (1+j)·x = 2 -> x = 1 - j
        let a = DMat::from_vec(1, 1, vec![Complex::new(1.0, 1.0)]);
        let x = a.solve(&[Complex::new(2.0, 0.0)]).unwrap();
        assert!((x[0] - Complex::new(1.0, -1.0)).abs() < 1e-14);
    }

    #[test]
    fn transposed_solve_matches_direct() {
        let a = DMat::from_vec(3, 3, vec![4.0, 1.0, 0.0, 2.0, 5.0, 1.0, 0.5, 1.0, 3.0]);
        let at = a.transpose();
        let b = [1.0, 2.0, 3.0];
        let lu = a.lu().unwrap();
        let x1 = lu.solve_transposed(&b);
        let x2 = at.solve(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn det_of_permutation_has_sign() {
        let a = DMat::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let lu = a.lu().unwrap();
        assert!((lu.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn mat_mul_matches_mat_vec() {
        let a = DMat::from_fn(3, 3, |i, j| (i * 3 + j) as f64 + 1.0);
        let b = DMat::identity(3);
        assert_eq!(a.mat_mul(&b), a);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = DMat::from_vec(3, 3, vec![2.0, 1.0, 1.0, 1.0, 3.0, 2.0, 1.0, 0.0, 0.5]);
        let lu = a.lu().unwrap();
        let b = [4.0, 5.0, 6.0];
        let reference = lu.solve(&b);
        let mut out = [0.0; 3];
        lu.solve_into(&b, &mut out);
        for i in 0..3 {
            assert!(out[i].to_bits() == reference[i].to_bits());
        }
    }

    #[test]
    fn solve_multi_matches_column_solves() {
        let n = 9;
        let mut seed = 3u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = DMat::from_fn(n, n, |i, j| rnd() + if i == j { 5.0 } else { 0.0 });
        let lu = a.lu().unwrap();
        let n_rhs = 4;
        let mut block: Vec<f64> = (0..n * n_rhs).map(|_| rnd()).collect();
        let reference: Vec<Vec<f64>> = (0..n_rhs)
            .map(|k| lu.solve(&block[k * n..(k + 1) * n]))
            .collect();
        let mut scratch = vec![0.0; n];
        lu.solve_multi(&mut block, n_rhs, &mut scratch);
        for k in 0..n_rhs {
            for i in 0..n {
                assert!(
                    block[k * n + i].to_bits() == reference[k][i].to_bits(),
                    "rhs {k} row {i}"
                );
            }
        }
    }

    #[test]
    fn solve_multi_interleaved_matches_solve() {
        let n = 11;
        let mut seed = 9u64;
        let mut rnd = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let a = DMat::from_fn(n, n, |i, j| rnd() + if i == j { 5.0 } else { 0.0 });
        let lu = a.lu().unwrap();
        let n_rhs = 7;
        let mut block: Vec<f64> = (0..n * n_rhs).map(|_| rnd()).collect();
        let reference: Vec<Vec<f64>> = (0..n_rhs)
            .map(|k| {
                let b: Vec<f64> = (0..n).map(|r| block[r * n_rhs + k]).collect();
                lu.solve(&b)
            })
            .collect();
        let mut scratch = vec![0.0; n * n_rhs];
        lu.solve_multi_interleaved(&mut block, n_rhs, &mut scratch);
        for k in 0..n_rhs {
            for r in 0..n {
                assert!(
                    block[r * n_rhs + k].to_bits() == reference[k][r].to_bits(),
                    "rhs {k} row {r}"
                );
            }
        }
    }

    #[test]
    fn refactor_matches_fresh_factorization() {
        let a = DMat::from_vec(3, 3, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0]);
        let b = DMat::from_vec(3, 3, vec![4.0, 1.0, 0.0, 2.0, 5.0, 1.0, 0.5, 1.0, 3.0]);
        let mut lu = a.lu().unwrap();
        lu.refactor(&b).unwrap();
        let fresh = b.lu().unwrap();
        let rhs = [1.0, -2.0, 0.5];
        let x1 = lu.solve(&rhs);
        let x2 = fresh.solve(&rhs);
        for i in 0..3 {
            assert!(x1[i].to_bits() == x2[i].to_bits());
        }
    }

    #[test]
    fn solve_mat_inverts() {
        let a = DMat::from_vec(2, 2, vec![3.0, 1.0, 1.0, 2.0]);
        let lu = a.lu().unwrap();
        let inv = lu.solve_mat(&DMat::identity(2));
        let prod = a.mat_mul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }
}
