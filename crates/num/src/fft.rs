//! Radix-2 FFT and Fourier-series helpers.
//!
//! The LPTV analysis needs Fourier coefficients of periodic waveforms sampled
//! on a uniform grid (Section V of the paper reads performance variations off
//! specific harmonic sidebands). A hand-rolled iterative radix-2 transform is
//! plenty: the PSS grids used by the solvers are powers of two by default, and
//! a direct DFT fallback covers other lengths.

use crate::complex::Complex;
use crate::error::NumError;

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// Computes `X[k] = Σ_n x[n]·e^{-j2πkn/N}` (engineering sign convention).
///
/// # Errors
///
/// Returns [`NumError::FftLength`] if `x.len()` is not a power of two.
///
/// # Examples
///
/// ```
/// use tranvar_num::{fft, Complex};
/// let mut x = vec![Complex::ONE; 4];
/// fft::fft(&mut x)?;
/// assert!((x[0].re - 4.0).abs() < 1e-12);
/// assert!(x[1].abs() < 1e-12);
/// # Ok::<(), tranvar_num::NumError>(())
/// ```
pub fn fft(x: &mut [Complex]) -> Result<(), NumError> {
    transform(x, -1.0)
}

/// In-place inverse FFT (includes the 1/N normalization).
///
/// # Errors
///
/// Returns [`NumError::FftLength`] if `x.len()` is not a power of two.
pub fn ifft(x: &mut [Complex]) -> Result<(), NumError> {
    transform(x, 1.0)?;
    let n = x.len() as f64;
    for v in x.iter_mut() {
        *v = *v / n;
    }
    Ok(())
}

fn transform(x: &mut [Complex], sign: f64) -> Result<(), NumError> {
    let n = x.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(NumError::FftLength { len: n });
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            x.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        let half = len / 2;
        let mut start = 0;
        while start < n {
            let mut w = Complex::ONE;
            for k in 0..half {
                let a = x[start + k];
                let b = x[start + k + half] * w;
                x[start + k] = a + b;
                x[start + k + half] = a - b;
                w *= wlen;
            }
            start += len;
        }
        len <<= 1;
    }
    Ok(())
}

/// Complex Fourier-series coefficient `c_k` of uniformly sampled periodic
/// data: `c_k = (1/N)·Σ_n v[n]·e^{-j2πkn/N}`, so that
/// `v(t) ≈ Σ_k c_k·e^{+j2πk t/T}` and `c_0` is the cycle mean.
///
/// Works for any sample count (direct summation); `k` may be negative.
///
/// # Examples
///
/// ```
/// use tranvar_num::fft::fourier_coeff;
/// let n = 64;
/// let v: Vec<f64> = (0..n)
///     .map(|i| (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos())
///     .collect();
/// let c1 = fourier_coeff(&v, 1);
/// assert!((c1.re - 0.5).abs() < 1e-12); // cos = (e^{jθ}+e^{-jθ})/2
/// ```
pub fn fourier_coeff(samples: &[f64], k: i64) -> Complex {
    let n = samples.len();
    let mut acc = Complex::ZERO;
    let w = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
    for (i, &v) in samples.iter().enumerate() {
        acc += Complex::cis(w * i as f64) * v;
    }
    acc / n as f64
}

/// Fourier-series coefficient of complex periodic samples (see
/// [`fourier_coeff`]).
pub fn fourier_coeff_complex(samples: &[Complex], k: i64) -> Complex {
    let n = samples.len();
    let mut acc = Complex::ZERO;
    let w = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
    for (i, &v) in samples.iter().enumerate() {
        acc += Complex::cis(w * i as f64) * v;
    }
    acc / n as f64
}

/// Amplitude of the fundamental component of a real periodic waveform:
/// `A_c = 2·|c_1|`. This is the `A_c` appearing in eqs. (7)–(9) of the paper.
pub fn fundamental_amplitude(samples: &[f64]) -> f64 {
    2.0 * fourier_coeff(samples, 1).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        let mut x = vec![Complex::ZERO; 6];
        assert!(matches!(fft(&mut x), Err(NumError::FftLength { len: 6 })));
    }

    #[test]
    fn fft_of_delta_is_flat() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x).unwrap();
        for v in x {
            assert!((v - Complex::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let n = 128;
        let orig: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut x = orig.clone();
        fft(&mut x).unwrap();
        ifft(&mut x).unwrap();
        for (a, b) in x.iter().zip(orig.iter()) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_matches_direct_dft() {
        let n = 16;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
            .collect();
        let mut fast = x.clone();
        fft(&mut fast).unwrap();
        for k in 0..n {
            let direct: Complex = (0..n)
                .map(|i| {
                    x[i] * Complex::cis(-2.0 * std::f64::consts::PI * (k * i) as f64 / n as f64)
                })
                .sum();
            assert!((fast[k] - direct).abs() < 1e-10, "bin {k}");
        }
    }

    #[test]
    fn parseval_holds() {
        let n = 64;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.2).cos(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut f = x.clone();
        fft(&mut f).unwrap();
        let freq_energy: f64 = f.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn fourier_coeff_dc_is_mean() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let c0 = fourier_coeff(&v, 0);
        assert!((c0.re - 3.0).abs() < 1e-13);
        assert!(c0.im.abs() < 1e-13);
    }

    #[test]
    fn fourier_coeff_sine_phase() {
        let n = 100;
        let v: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * i as f64 / n as f64).sin())
            .collect();
        // sin(θ) = (e^{jθ} - e^{-jθ})/(2j) -> c1 = 1/(2j) = -0.5j
        let c1 = fourier_coeff(&v, 1);
        assert!(c1.re.abs() < 1e-12);
        assert!((c1.im + 0.5).abs() < 1e-12);
        let cm1 = fourier_coeff(&v, -1);
        assert!((cm1.im - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fundamental_amplitude_of_cosine() {
        let n = 256;
        let amp = 3.3;
        let v: Vec<f64> = (0..n)
            .map(|i| amp * (2.0 * std::f64::consts::PI * i as f64 / n as f64).cos() + 1.0)
            .collect();
        assert!((fundamental_amplitude(&v) - amp).abs() < 1e-10);
    }
}
