//! Sparse matrices in triplet and compressed-sparse-column form, with a
//! left-looking LU factorization (Gilbert–Peierls style), partial pivoting,
//! and a symbolic/numeric split for pattern-reusing refactorization.
//!
//! MNA matrices of circuits are extremely sparse (a handful of entries per
//! row) and — crucially — their sparsity pattern is *fixed for a given
//! circuit*: every timestep and every Newton iteration stamps the same
//! coordinates with different values. The factorization is therefore split
//! KLU-style:
//!
//! - the first [`Csc::lu`] performs the full pivot search and records the
//!   elimination order as a [`SparseSymbolic`];
//! - subsequent same-pattern factorizations go through
//!   [`SparseLu::refactor`] or [`Csc::lu_with`], which replay the stored
//!   pivot order without searching and reuse all factor allocations.
//!
//! Replaying the same pivot order over the same values performs the exact
//! same floating-point operations in the same order, so a refactorization of
//! an unchanged matrix reproduces the from-scratch factors bit-for-bit — a
//! property the engine's tests rely on. A stale pivot order that turns
//! numerically unacceptable on new values is reported as
//! [`NumError::Singular`] so callers can fall back to a fresh pivot search.
//!
//! Solves come in allocating ([`SparseLu::solve`]), zero-allocation
//! ([`SparseLu::solve_into`]) and blocked multi-RHS
//! ([`SparseLu::solve_multi`]) flavors; the blocked path walks each factor
//! column once per *block* instead of once per right-hand side, which is
//! where the transient-sensitivity and LPTV layers get their throughput.

use crate::complex::Scalar;
use crate::error::NumError;

/// Relative pivot-acceptability threshold for fixed-order refactorization:
/// a replayed pivot smaller than this fraction of its column's magnitude is
/// rejected (the caller should re-run the pivot search).
const REFACTOR_PIVOT_RTOL: f64 = 1e-10;

/// Default Markowitz threshold-pivoting parameter: a candidate pivot must be
/// at least this fraction of its column's largest active magnitude. Large
/// enough to keep replayed orders well clear of the
/// `REFACTOR_PIVOT_RTOL` stale-pivot guard, small enough to let the
/// fill-minimizing choice win.
pub const DEFAULT_MARKOWITZ_TAU: f64 = 0.1;

/// A sparse-matrix builder accumulating `(row, col, value)` triplets.
///
/// Duplicate coordinates are summed when compressed, matching the way MNA
/// stamps accumulate conductances.
///
/// # Examples
///
/// ```
/// use tranvar_num::sparse::Triplets;
/// let mut t = Triplets::<f64>::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicates sum
/// let csc = t.to_csc();
/// assert_eq!(csc.get(0, 0), 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct Triplets<T> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> Triplets<T> {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends a triplet.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "triplet out of range");
        self.entries.push((row, col, value));
    }

    /// Number of accumulated (pre-compression) triplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Removes all triplets, retaining the allocation (hot-loop reuse).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over the raw (row, col, value) triplets.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, T)> {
        self.entries.iter()
    }

    /// Returns `true` if no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Copies another builder's shape and entries into this one, retaining
    /// this builder's allocation (hot-loop assembly reuse).
    pub fn copy_from(&mut self, other: &Triplets<T>) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.entries.clear();
        self.entries.extend_from_slice(&other.entries);
    }

    /// Compresses to CSC, summing duplicates.
    pub fn to_csc(&self) -> Csc<T> {
        // Count entries per column.
        let mut counts = vec![0usize; self.cols];
        for &(_, c, _) in &self.entries {
            counts[c] += 1;
        }
        let mut col_ptr = vec![0usize; self.cols + 1];
        for c in 0..self.cols {
            col_ptr[c + 1] = col_ptr[c] + counts[c];
        }
        let nnz = col_ptr[self.cols];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![T::zero(); nnz];
        let mut next = col_ptr.clone();
        for &(r, c, v) in &self.entries {
            let slot = next[c];
            row_idx[slot] = r;
            values[slot] = v;
            next[c] += 1;
        }
        // Sort each column by row and merge duplicates.
        let mut out_ptr = vec![0usize; self.cols + 1];
        let mut out_rows = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, T)> = Vec::new();
        for c in 0..self.cols {
            scratch.clear();
            for k in col_ptr[c]..col_ptr[c + 1] {
                scratch.push((row_idx[k], values[k]));
            }
            scratch.sort_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == r {
                    v += scratch[j].1;
                    j += 1;
                }
                out_rows.push(r);
                out_vals.push(v);
                i = j;
            }
            out_ptr[c + 1] = out_rows.len();
        }
        Csc {
            rows: self.rows,
            cols: self.cols,
            col_ptr: out_ptr,
            row_idx: out_rows,
            values: out_vals,
        }
    }
}

/// A compressed-sparse-column matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc<T> {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Csc<T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Borrows the stored values in column-major pattern order (pairs with
    /// the fixed pattern for cheap change detection between refills).
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Returns the entry at `(row, col)`, or zero if not stored.
    pub fn get(&self, row: usize, col: usize) -> T {
        let lo = self.col_ptr[col];
        let hi = self.col_ptr[col + 1];
        match self.row_idx[lo..hi].binary_search(&row) {
            Ok(k) => self.values[lo + k],
            Err(_) => T::zero(),
        }
    }

    /// Numeric-only value update from a triplet set with the *same sparsity
    /// pattern* as the one this matrix was compressed from (hot-loop reuse:
    /// the MNA pattern of a circuit never changes between timesteps, only
    /// the stamped values do). Zero heap allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::PatternMismatch`] if a triplet addresses a
    /// coordinate that is not stored, or [`NumError::DimensionMismatch`] on
    /// shape disagreement. On error the stored values are unspecified
    /// (partially refilled) — discard the matrix and rebuild with
    /// [`Triplets::to_csc`].
    pub fn refill_from(&mut self, t: &Triplets<T>) -> Result<(), NumError> {
        if t.rows != self.rows || t.cols != self.cols {
            return Err(NumError::DimensionMismatch {
                expected: self.rows,
                actual: t.rows,
            });
        }
        self.values.iter_mut().for_each(|v| *v = T::zero());
        for &(r, c, v) in &t.entries {
            let lo = self.col_ptr[c];
            let hi = self.col_ptr[c + 1];
            match self.row_idx[lo..hi].binary_search(&r) {
                Ok(k) => self.values[lo + k] += v,
                Err(_) => return Err(NumError::PatternMismatch),
            }
        }
        Ok(())
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[T]) -> Vec<T> {
        let mut y = vec![T::zero(); self.rows];
        self.mat_vec_into(x, &mut y);
        y
    }

    /// Matrix–vector product `A·x` into a caller-provided buffer
    /// (zero-allocation hot path).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn mat_vec_into(&self, x: &[T], y: &mut [T]) {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        assert_eq!(y.len(), self.rows, "mat_vec output dimension mismatch");
        y.iter_mut().for_each(|v| *v = T::zero());
        for c in 0..self.cols {
            let xc = x[c];
            if xc == T::zero() {
                continue;
            }
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[k]] += self.values[k] * xc;
            }
        }
    }

    /// Matrix product against an *interleaved* block: `x` holds `width`
    /// right-hand sides row-major (`x[c·width + k]` is row `c` of RHS `k`),
    /// and `y` receives `A·X` in the same layout. The interleaved layout
    /// makes the inner update a contiguous `width`-wide axpy, which
    /// vectorizes — the preferred layout for wide sensitivity batches.
    ///
    /// Per-RHS results are bit-for-bit identical to [`Csc::mat_vec`].
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn mat_vec_interleaved(&self, x: &[T], y: &mut [T], width: usize) {
        assert_eq!(x.len(), self.cols * width, "interleaved x length mismatch");
        assert_eq!(y.len(), self.rows * width, "interleaved y length mismatch");
        y.iter_mut().for_each(|v| *v = T::zero());
        for c in 0..self.cols {
            let xc = &x[c * width..(c + 1) * width];
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                let v = self.values[k];
                let yr = &mut y[self.row_idx[k] * width..(self.row_idx[k] + 1) * width];
                for (yi, xi) in yr.iter_mut().zip(xc.iter()) {
                    *yi += v * *xi;
                }
            }
        }
    }

    /// Converts to dense form (small systems, tests, monodromy assembly).
    pub fn to_dense(&self) -> crate::dense::DMat<T> {
        let mut m = crate::dense::DMat::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                m[(self.row_idx[k], c)] = self.values[k];
            }
        }
        m
    }

    /// Factorizes `A = P⁻¹·L·U` with partial pivoting (left-looking,
    /// Gilbert–Peierls with a dense working column; adequate for the
    /// moderate dimensions of circuit Jacobians). This is the *analyzing*
    /// factorization: it performs the pivot search and records the
    /// elimination order for later [`SparseLu::refactor`] /
    /// [`Csc::lu_with`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`] or [`NumError::Singular`].
    pub fn lu(&self) -> Result<SparseLu<T>, NumError> {
        let mut f = SparseLu::empty(self.rows);
        f.factor_core(self, None)?;
        Ok(f)
    }

    /// Numeric factorization replaying a previously recorded pivot order
    /// (see [`SparseLu::symbolic`]). Skips the pivot search entirely; on the
    /// same values this reproduces [`Csc::lu`] bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] if a replayed pivot is numerically
    /// unacceptable on the new values — re-run [`Csc::lu`] to re-pivot.
    pub fn lu_with(&self, symbolic: &SparseSymbolic) -> Result<SparseLu<T>, NumError> {
        if symbolic.perm.len() != self.rows {
            return Err(NumError::DimensionMismatch {
                expected: self.rows,
                actual: symbolic.perm.len(),
            });
        }
        let mut f = SparseLu::empty(self.rows);
        // Borrow the recorded orders directly — no per-call clone on the
        // per-timestep refactorization path.
        f.factor_core(self, Some((&symbolic.perm, &symbolic.col_order)))?;
        Ok(f)
    }

    /// Computes a Markowitz fill-reducing pivot ordering with threshold
    /// pivoting (`tau` per [`DEFAULT_MARKOWITZ_TAU`]): each elimination step
    /// picks the candidate `(row, col)` minimizing
    /// `(row_nnz − 1)·(col_nnz − 1)` among entries with magnitude at least
    /// `tau` times the column's largest active magnitude. Runs a
    /// right-looking elimination on a dense working copy — O(n³) worst case,
    /// paid once per sparsity pattern, amortized over every replayed
    /// refactorization.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`], [`NumError::Singular`] when no
    /// admissible pivot exists at some step, or [`NumError::NonFinite`].
    pub fn analyze_markowitz(&self, tau: f64) -> Result<SparseSymbolic, NumError> {
        if self.rows != self.cols {
            return Err(NumError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        let mut w = vec![T::zero(); n * n];
        for c in 0..n {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                w[self.row_idx[k] * n + c] = self.values[k];
            }
        }
        let mut row_active = vec![true; n];
        let mut col_active = vec![true; n];
        let mut row_cnt = vec![0usize; n];
        let mut col_cnt = vec![0usize; n];
        let mut perm = Vec::with_capacity(n);
        let mut col_order = Vec::with_capacity(n);
        for _step in 0..n {
            // Active nonzero counts per row and column.
            row_cnt.iter_mut().for_each(|v| *v = 0);
            col_cnt.iter_mut().for_each(|v| *v = 0);
            for r in 0..n {
                if !row_active[r] {
                    continue;
                }
                for c in 0..n {
                    if col_active[c] && w[r * n + c] != T::zero() {
                        row_cnt[r] += 1;
                        col_cnt[c] += 1;
                    }
                }
            }
            // Best admissible pivot: minimal Markowitz score, ties broken by
            // larger magnitude, then lower (row, col) for determinism.
            let mut best: Option<(usize, usize, usize, f64)> = None;
            for c in 0..n {
                if !col_active[c] {
                    continue;
                }
                let mut colmax = 0.0f64;
                for r in 0..n {
                    if !row_active[r] {
                        continue;
                    }
                    let m = w[r * n + c].magnitude();
                    if !m.is_finite() {
                        return Err(NumError::NonFinite { col: c });
                    }
                    colmax = colmax.max(m);
                }
                if colmax == 0.0 {
                    continue;
                }
                let thresh = tau * colmax;
                for r in 0..n {
                    if !row_active[r] {
                        continue;
                    }
                    let m = w[r * n + c].magnitude();
                    if m == 0.0 || m < thresh {
                        continue;
                    }
                    let score = (row_cnt[r] - 1) * (col_cnt[c] - 1);
                    let better = match best {
                        None => true,
                        Some((bs, _, _, bm)) => score < bs || (score == bs && m > bm),
                    };
                    if better {
                        best = Some((score, r, c, m));
                    }
                }
            }
            let (_, pr, pc, _) = best.ok_or(NumError::Singular { col: perm.len() })?;
            perm.push(pr);
            col_order.push(pc);
            row_active[pr] = false;
            col_active[pc] = false;
            // Right-looking update of the active submatrix.
            let pivot = w[pr * n + pc];
            for r in 0..n {
                if !row_active[r] || w[r * n + pc] == T::zero() {
                    continue;
                }
                let f = w[r * n + pc] / pivot;
                for c in 0..n {
                    if col_active[c] {
                        let u = w[pr * n + c];
                        if u != T::zero() {
                            w[r * n + c] -= f * u;
                        }
                    }
                }
            }
        }
        Ok(SparseSymbolic { perm, col_order })
    }

    /// Analyzes with [`Csc::analyze_markowitz`] at the default threshold and
    /// factors with the resulting fill-reducing order.
    ///
    /// # Errors
    ///
    /// Propagates analysis and factorization errors.
    pub fn lu_markowitz(&self) -> Result<SparseLu<T>, NumError> {
        let sym = self.analyze_markowitz(DEFAULT_MARKOWITZ_TAU)?;
        self.lu_with(&sym)
    }
}

/// The reusable symbolic part of a sparse LU: the pivot (elimination) order
/// discovered by an analyzing factorization. For a fixed MNA pattern this is
/// computed once per circuit and replayed every timestep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SparseSymbolic {
    perm: Vec<usize>,
    /// Column elimination order: `col_order[step]` is the original column
    /// eliminated at `step`. Empty means natural order (step == column),
    /// the bit-compat replay path.
    col_order: Vec<usize>,
}

impl SparseSymbolic {
    /// Dimension of the analyzed system.
    pub fn n(&self) -> usize {
        self.perm.len()
    }

    /// The recorded pivot order: `order()[j]` is the original row eliminated
    /// at step `j`.
    pub fn order(&self) -> &[usize] {
        &self.perm
    }

    /// The recorded column elimination order; empty for natural order.
    pub fn col_order(&self) -> &[usize] {
        &self.col_order
    }

    /// `true` when this analysis carries a fill-reducing column order (from
    /// [`Csc::analyze_markowitz`]) rather than the natural one.
    pub fn is_ordered(&self) -> bool {
        !self.col_order.is_empty()
    }
}

/// A sparse LU factorization produced by [`Csc::lu`].
///
/// Factor storage is flattened CSC/CSR-style: each factor is one contiguous
/// index array plus one contiguous value array addressed through an offset
/// table, so numeric refactorizations and triangular solves stream through
/// two flat arrays instead of chasing one heap allocation per column.
#[derive(Clone, Debug)]
pub struct SparseLu<T> {
    n: usize,
    /// perm[step] = original row chosen as pivot for elimination step `step`.
    perm: Vec<usize>,
    /// col_order[step] = original column eliminated at `step`; empty means
    /// natural order (step == column).
    col_order: Vec<usize>,
    /// Flattened L (strictly below-diagonal, unit diagonal implicit): step
    /// `j`'s column occupies `l_idx/l_val[l_ptr[j]..l_ptr[j+1]]` as
    /// (original row, multiplier) pairs sorted by row.
    l_ptr: Vec<usize>,
    l_idx: Vec<usize>,
    l_val: Vec<T>,
    /// Flattened U in pivot-step coordinates: row `j` occupies
    /// `u_idx/u_val[u_ptr[j]..u_ptr[j+1]]` as (step, value) pairs sorted
    /// ascending, diagonal at step == j.
    u_ptr: Vec<usize>,
    u_idx: Vec<usize>,
    u_val: Vec<T>,
    /// Per-step build staging, retained across refactorizations. U rows
    /// receive entries out of row order during the left-looking sweep, so
    /// they are staged here and flattened once per factorization.
    l_build: Vec<Vec<(usize, T)>>,
    u_build: Vec<Vec<(usize, T)>>,
}

impl<T: Scalar> SparseLu<T> {
    fn empty(n: usize) -> Self {
        SparseLu {
            n,
            perm: Vec::new(),
            col_order: Vec::new(),
            l_ptr: Vec::new(),
            l_idx: Vec::new(),
            l_val: Vec::new(),
            u_ptr: Vec::new(),
            u_idx: Vec::new(),
            u_val: Vec::new(),
            l_build: Vec::new(),
            u_build: Vec::new(),
        }
    }

    /// Dimension of the factored system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored factor entries (L strictly-lower + U including the
    /// diagonal) — the fill-in metric the ordering benchmarks report.
    pub fn factor_nnz(&self) -> usize {
        self.l_val.len() + self.u_val.len()
    }

    /// Extracts the reusable symbolic analysis (pivot and column order) so
    /// future same-pattern factorizations can skip the pivot search.
    pub fn symbolic(&self) -> SparseSymbolic {
        SparseSymbolic {
            perm: self.perm.clone(),
            col_order: self.col_order.clone(),
        }
    }

    /// Numeric-only refactorization in place: replays this factorization's
    /// pivot order on the new values of `a` (which must have the same shape;
    /// the usual caller passes the same-pattern matrix of the next timestep)
    /// and reuses every factor allocation. On unchanged values the result is
    /// bit-for-bit identical to a from-scratch [`Csc::lu`].
    ///
    /// # Errors
    ///
    /// Returns [`NumError::Singular`] if a replayed pivot is numerically
    /// unacceptable; the factorization contents are unspecified afterwards
    /// and the caller should fall back to a fresh [`Csc::lu`].
    pub fn refactor(&mut self, a: &Csc<T>) -> Result<(), NumError> {
        if a.rows != self.n || a.cols != self.n {
            return Err(NumError::DimensionMismatch {
                expected: self.n,
                actual: a.rows,
            });
        }
        let perm = std::mem::take(&mut self.perm);
        let cord = std::mem::take(&mut self.col_order);
        let result = self.factor_core(a, Some((&perm, &cord)));
        if result.is_err() {
            // Leave well-formed (if useless) orders behind.
            self.perm = perm;
            self.col_order = cord;
        }
        result
    }

    /// The shared factorization kernel. With `fixed: None` it searches for
    /// pivots in natural column order (analyzing factorization); with
    /// `fixed: Some((perm, col_order))` it replays the given pivot order —
    /// and, when `col_order` is non-empty, the given column elimination
    /// order (numeric refactorization). Existing factor storage is cleared
    /// and reused.
    fn factor_core(
        &mut self,
        a: &Csc<T>,
        fixed: Option<(&[usize], &[usize])>,
    ) -> Result<(), NumError> {
        if a.rows != a.cols {
            return Err(NumError::NotSquare {
                rows: a.rows,
                cols: a.cols,
            });
        }
        let n = a.rows;
        self.n = n;
        // pinv maps original row -> pivot step (usize::MAX while unassigned).
        let mut pinv = vec![usize::MAX; n];
        self.perm.clear();
        self.perm.resize(n, usize::MAX);
        self.col_order.clear();
        let fixed_cols: &[usize] = match fixed {
            Some((_, cord)) if !cord.is_empty() => {
                if cord.len() != n {
                    return Err(NumError::DimensionMismatch {
                        expected: n,
                        actual: cord.len(),
                    });
                }
                self.col_order.extend_from_slice(cord);
                cord
            }
            _ => &[],
        };

        // Clear the build staging, retaining inner allocations.
        for c in self.l_build.iter_mut() {
            c.clear();
        }
        for c in self.u_build.iter_mut() {
            c.clear();
        }
        self.l_build.resize_with(n, Vec::new);
        self.u_build.resize_with(n, Vec::new);
        self.l_build.truncate(n);
        self.u_build.truncate(n);

        // Dense scatter workspace indexed by *original* row.
        let mut work = vec![T::zero(); n];
        let mut touched: Vec<usize> = Vec::with_capacity(n);

        for step in 0..n {
            // Original column eliminated at this step.
            let col = if fixed_cols.is_empty() {
                step
            } else {
                fixed_cols[step]
            };
            // Scatter column `col` of A into the workspace.
            touched.clear();
            for k in a.col_ptr[col]..a.col_ptr[col + 1] {
                let r = a.row_idx[k];
                work[r] = a.values[k];
                touched.push(r);
            }
            // Left-looking update: for each prior step j (in order), if the
            // workspace has a value at the pivot row of j, eliminate with
            // column j of L. Processing j in increasing order is a correct
            // topological order for the dense-workspace variant.
            for j in 0..step {
                let pr = self.perm[j]; // original row holding pivot j
                let ujc = work[pr];
                if ujc == T::zero() {
                    continue;
                }
                // Record U entry (pivot row j, pivot-step coordinate `step`).
                self.u_build[j].push((step, ujc));
                // work -= ujc * L[:, j]
                for &(orig_row, lv) in &self.l_build[j] {
                    if work[orig_row] == T::zero() {
                        touched.push(orig_row);
                    }
                    work[orig_row] -= lv * ujc;
                }
                work[pr] = T::zero();
            }
            // Pivot selection: replay a fixed order, or search for the
            // largest magnitude among unassigned original rows.
            let prow = match fixed {
                Some((order, _)) => {
                    let prow = order[step];
                    let pmag = work[prow].magnitude();
                    if !pmag.is_finite() {
                        return Err(NumError::NonFinite { col });
                    }
                    if pmag == 0.0 {
                        return Err(NumError::Singular { col });
                    }
                    // Guard against a stale pivot order that has become
                    // numerically poor on the new values. A non-finite
                    // value anywhere among the candidate rows is reported
                    // as such, not folded into "singular".
                    let mut colmax = 0.0f64;
                    for &r in touched.iter() {
                        if pinv[r] == usize::MAX {
                            let m = work[r].magnitude();
                            if !m.is_finite() {
                                return Err(NumError::NonFinite { col });
                            }
                            colmax = colmax.max(m);
                        }
                    }
                    if pmag < REFACTOR_PIVOT_RTOL * colmax {
                        return Err(NumError::Singular { col });
                    }
                    prow
                }
                None => {
                    let mut prow = usize::MAX;
                    let mut pmag = 0.0;
                    for &r in touched.iter() {
                        if pinv[r] != usize::MAX {
                            continue;
                        }
                        let m = work[r].magnitude();
                        if !m.is_finite() {
                            return Err(NumError::NonFinite { col });
                        }
                        if m > pmag {
                            pmag = m;
                            prow = r;
                        }
                    }
                    // `touched` can contain duplicates/stale zero entries;
                    // also scan all unassigned rows if nothing usable was
                    // touched.
                    if prow == usize::MAX || pmag == 0.0 {
                        for r in 0..n {
                            if pinv[r] == usize::MAX {
                                let m = work[r].magnitude();
                                if !m.is_finite() {
                                    return Err(NumError::NonFinite { col });
                                }
                                if m > pmag {
                                    pmag = m;
                                    prow = r;
                                }
                            }
                        }
                    }
                    if prow == usize::MAX || pmag == 0.0 {
                        return Err(NumError::Singular { col });
                    }
                    prow
                }
            };
            let pivot = work[prow];
            self.perm[step] = prow;
            pinv[prow] = step;

            // Stage L column (unit diagonal implicit) and clear workspace.
            let lcol = &mut self.l_build[step];
            for &r in touched.iter() {
                let v = work[r];
                if v == T::zero() {
                    continue;
                }
                if r == prow {
                    continue;
                }
                if pinv[r] == usize::MAX {
                    // below-diagonal: belongs to L (scaled)
                    lcol.push((r, v / pivot));
                } else {
                    // This row was already pivotal: belongs to U.
                    self.u_build[pinv[r]].push((step, v));
                }
                work[r] = T::zero();
            }
            work[prow] = T::zero();
            // Deduplicate L entries (duplicate `touched` rows leave zeros
            // behind, which we already skipped; dedupe defensively).
            lcol.sort_by_key(|&(r, _)| r);
            lcol.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
            self.u_build[step].push((step, pivot));
        }
        // Sort U rows by pivot-step position for deterministic solves, then
        // flatten both factors into the contiguous offset-table storage.
        for urow in self.u_build.iter_mut() {
            urow.sort_by_key(|&(s, _)| s);
            urow.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
        }
        self.l_ptr.clear();
        self.l_idx.clear();
        self.l_val.clear();
        self.l_ptr.push(0);
        for lcol in self.l_build.iter() {
            for &(r, v) in lcol.iter() {
                self.l_idx.push(r);
                self.l_val.push(v);
            }
            self.l_ptr.push(self.l_idx.len());
        }
        self.u_ptr.clear();
        self.u_idx.clear();
        self.u_val.clear();
        self.u_ptr.push(0);
        for urow in self.u_build.iter() {
            for &(s, v) in urow.iter() {
                self.u_idx.push(s);
                self.u_val.push(v);
            }
            self.u_ptr.push(self.u_idx.len());
        }
        Ok(())
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.n()`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let mut out = vec![T::zero(); self.n];
        let mut scratch = vec![T::zero(); self.n];
        self.solve_into(b, &mut out, &mut scratch);
        out
    }

    /// Solves `A·x = b` into `out`, using `scratch` as workspace — the
    /// zero-allocation hot path for per-timestep solves.
    ///
    /// # Panics
    ///
    /// Panics if any slice length differs from `self.n()`.
    pub fn solve_into(&self, b: &[T], out: &mut [T], scratch: &mut [T]) {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length mismatch");
        assert_eq!(out.len(), n, "out length mismatch");
        assert_eq!(scratch.len(), n, "scratch length mismatch");
        // Forward: scratch holds the working RHS indexed by original row,
        // out accumulates y indexed by pivot step.
        scratch.copy_from_slice(b);
        for j in 0..n {
            let pr = self.perm[j];
            let yj = scratch[pr];
            out[j] = yj;
            if yj == T::zero() {
                continue;
            }
            for (idx, lv) in self.l_entries(j) {
                scratch[idx] -= lv * yj;
            }
        }
        // Back substitution on U: U is upper triangular in pivot-step
        // coordinates; row j's entries are sorted by step, diagonal at
        // step == j.
        for j in (0..n).rev() {
            let mut acc = out[j];
            let mut diag = T::zero();
            for (c, v) in self.u_entries(j) {
                if c == j {
                    diag = v;
                } else {
                    acc -= v * out[c];
                }
            }
            out[j] = acc / diag;
        }
        // Under a fill-reducing column order, step j solved the unknown of
        // original column col_order[j]: scatter back to original coordinates.
        if !self.col_order.is_empty() {
            scratch.copy_from_slice(out);
            for (step, &c) in self.col_order.iter().enumerate() {
                out[c] = scratch[step];
            }
        }
    }

    /// Iterates step `j`'s L column as (original row, multiplier) pairs.
    #[inline]
    fn l_entries(&self, j: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let (lo, hi) = (self.l_ptr[j], self.l_ptr[j + 1]);
        self.l_idx[lo..hi]
            .iter()
            .zip(self.l_val[lo..hi].iter())
            .map(|(&r, &v)| (r, v))
    }

    /// Iterates pivot row `j` of U as (step, value) pairs sorted by step.
    #[inline]
    fn u_entries(&self, j: usize) -> impl Iterator<Item = (usize, T)> + '_ {
        let (lo, hi) = (self.u_ptr[j], self.u_ptr[j + 1]);
        self.u_idx[lo..hi]
            .iter()
            .zip(self.u_val[lo..hi].iter())
            .map(|(&c, &v)| (c, v))
    }

    /// Solves `A·X = B` for a column-major block of `n_rhs` right-hand sides
    /// in place. `block` holds the RHS columns contiguously
    /// (`block[r + n·k]` is row `r` of RHS `k`) and is overwritten with the
    /// solutions; `scratch` must be another `n·n_rhs` buffer.
    ///
    /// Each L/U column is traversed once per *block* rather than once per
    /// RHS, so for many right-hand sides (sensitivity batches, monodromy
    /// columns) this is substantially faster than repeated
    /// [`SparseLu::solve_into`] calls — and just as importantly it performs
    /// zero heap allocation.
    ///
    /// The per-column arithmetic is identical to [`SparseLu::solve`], so the
    /// blocked path returns bit-for-bit the same solutions as solving each
    /// column separately.
    ///
    /// # Panics
    ///
    /// Panics if `block.len()` or `scratch.len()` differ from
    /// `self.n() * n_rhs`.
    pub fn solve_multi(&self, block: &mut [T], n_rhs: usize, scratch: &mut [T]) {
        let n = self.n;
        assert_eq!(block.len(), n * n_rhs, "block length mismatch");
        assert_eq!(scratch.len(), n * n_rhs, "scratch length mismatch");
        if n_rhs == 0 {
            return;
        }
        // Forward sweep, factor-column outer loop: scratch is the working RHS
        // (original-row indexed), block accumulates y (pivot-step indexed).
        scratch.copy_from_slice(block);
        for j in 0..n {
            let pr = self.perm[j];
            let (llo, lhi) = (self.l_ptr[j], self.l_ptr[j + 1]);
            let lidx = &self.l_idx[llo..lhi];
            let lval = &self.l_val[llo..lhi];
            for k in 0..n_rhs {
                let off = k * n;
                let yj = scratch[off + pr];
                block[off + j] = yj;
                if yj == T::zero() {
                    continue;
                }
                for (&orig_row, &lv) in lidx.iter().zip(lval.iter()) {
                    scratch[off + orig_row] -= lv * yj;
                }
            }
        }
        // Back substitution, factor-row outer loop.
        for j in (0..n).rev() {
            let (ulo, uhi) = (self.u_ptr[j], self.u_ptr[j + 1]);
            let uidx = &self.u_idx[ulo..uhi];
            let uval = &self.u_val[ulo..uhi];
            for k in 0..n_rhs {
                let x = &mut block[k * n..(k + 1) * n];
                let mut acc = x[j];
                let mut diag = T::zero();
                for (&c, &v) in uidx.iter().zip(uval.iter()) {
                    if c == j {
                        diag = v;
                    } else {
                        acc -= v * x[c];
                    }
                }
                x[j] = acc / diag;
            }
        }
        // Scatter each column from pivot-step to original-column coordinates.
        if !self.col_order.is_empty() {
            scratch.copy_from_slice(block);
            for k in 0..n_rhs {
                let off = k * n;
                for (step, &c) in self.col_order.iter().enumerate() {
                    block[off + c] = scratch[off + step];
                }
            }
        }
    }
}

impl<T: Scalar> SparseLu<T> {
    /// Solves `A·X = B` for an *interleaved* block of `n_rhs` right-hand
    /// sides in place (`block[r·n_rhs + k]` is row `r` of RHS `k`);
    /// `scratch` must be another `n·n_rhs` buffer.
    ///
    /// Like [`crate::dense::Lu::solve_multi_interleaved`], every factor
    /// entry turns into a contiguous `n_rhs`-wide axpy. Per-RHS results are
    /// bit-for-bit identical to [`SparseLu::solve`]. Prefer
    /// [`SparseLu::solve_multi_lanes`] when the width is fixed across calls:
    /// its compile-time lane kernels solve the same block faster with the
    /// same bits.
    ///
    /// Scratch contract: `scratch` is a full shadow of the block — exactly
    /// `self.n() * n_rhs` elements — holding the working RHS rows during the
    /// forward sweep. A shorter slice would read stale or out-of-range rows.
    ///
    /// # Panics
    ///
    /// Panics if `block.len()` or `scratch.len()` differ from
    /// `self.n() * n_rhs`.
    pub fn solve_multi_interleaved(&self, block: &mut [T], n_rhs: usize, scratch: &mut [T]) {
        let n = self.n;
        assert_eq!(block.len(), n * n_rhs, "block length mismatch");
        assert_eq!(scratch.len(), n * n_rhs, "scratch length mismatch");
        debug_assert!(
            scratch.len() >= block.len(),
            "interleaved scratch must cover the whole block"
        );
        if n_rhs == 0 {
            return;
        }
        // Forward: scratch is the working RHS (original-row indexed), block
        // accumulates y (pivot-step indexed).
        scratch.copy_from_slice(block);
        for j in 0..n {
            let pr = self.perm[j];
            {
                let (b, s) = (
                    &mut block[j * n_rhs..(j + 1) * n_rhs],
                    &scratch[pr * n_rhs..(pr + 1) * n_rhs],
                );
                b.copy_from_slice(s);
            }
            let yrow = &block[j * n_rhs..(j + 1) * n_rhs];
            for (orig_row, lv) in self.l_entries(j) {
                let wrow = &mut scratch[orig_row * n_rhs..(orig_row + 1) * n_rhs];
                for (w, y) in wrow.iter_mut().zip(yrow.iter()) {
                    *w -= lv * *y;
                }
            }
        }
        // Back substitution on U (pivot-step coordinates).
        for j in (0..n).rev() {
            let mut diag = T::zero();
            for (c, v) in self.u_entries(j) {
                if c == j {
                    diag = v;
                    continue;
                }
                let (lo, hi) = block.split_at_mut(c * n_rhs);
                let xc = &hi[..n_rhs];
                let xj = &mut lo[j * n_rhs..(j + 1) * n_rhs];
                for (a, b) in xj.iter_mut().zip(xc.iter()) {
                    *a -= v * *b;
                }
            }
            let xj = &mut block[j * n_rhs..(j + 1) * n_rhs];
            for a in xj.iter_mut() {
                *a = *a / diag;
            }
        }
        // Scatter rows from pivot-step to original-column coordinates.
        if !self.col_order.is_empty() {
            scratch.copy_from_slice(block);
            for (step, &c) in self.col_order.iter().enumerate() {
                block[c * n_rhs..(c + 1) * n_rhs]
                    .copy_from_slice(&scratch[step * n_rhs..(step + 1) * n_rhs]);
            }
        }
    }

    /// Solves `A·X = B` for an `N`-lane RHS block in place: `block[i]` holds
    /// row `i` of all `N` right-hand sides. `scratch` must also hold
    /// `self.n()` lane blocks.
    ///
    /// The compile-time-width variant of
    /// [`SparseLu::solve_multi_interleaved`]: every factor entry becomes a
    /// fixed-`N` axpy the compiler unrolls into straight-line SIMD. Per-RHS
    /// results are bit-for-bit identical to [`SparseLu::solve_into`].
    ///
    /// # Panics
    ///
    /// Panics if `block.len()` or `scratch.len()` differ from `self.n()`.
    pub fn solve_arr<const N: usize>(&self, block: &mut [[T; N]], scratch: &mut [[T; N]]) {
        let n = self.n;
        assert_eq!(block.len(), n, "lane block length mismatch");
        assert_eq!(scratch.len(), n, "lane scratch length mismatch");
        // Forward: `block` itself is the working RHS (original-row indexed)
        // — no staging copy — and `scratch` receives y (pivot-step indexed).
        // Row `perm[j]` is final by the time column j reads it: L entries
        // only ever update rows that are not yet pivotal.
        for j in 0..n {
            let yrow = block[self.perm[j]];
            scratch[j] = yrow;
            for (orig_row, lv) in self.l_entries(j) {
                let wrow = &mut block[orig_row];
                for (w, y) in wrow.iter_mut().zip(yrow.iter()) {
                    *w -= lv * *y;
                }
            }
        }
        // Back substitution on U (pivot-step coordinates): y is read from
        // `scratch` and each solution row is written straight to its final
        // original-column position in `block` (every input row has been
        // consumed by the forward pass), so no post-scatter pass is needed.
        // The accumulator row lives in a local `[T; N]` so all `N` lanes
        // stay in registers across the row's update sweep.
        let ordered = !self.col_order.is_empty();
        for j in (0..n).rev() {
            let mut diag = T::zero();
            let mut acc = scratch[j];
            for (c, v) in self.u_entries(j) {
                if c == j {
                    diag = v;
                    continue;
                }
                let xc = &block[if ordered { self.col_order[c] } else { c }];
                for (a, b) in acc.iter_mut().zip(xc.iter()) {
                    *a -= v * *b;
                }
            }
            for a in acc.iter_mut() {
                *a = *a / diag;
            }
            block[if ordered { self.col_order[j] } else { j }] = acc;
        }
    }

    /// Solves an RHS-interleaved block through the compile-time lane kernels
    /// ([`SparseLu::solve_arr`]), decomposing `n_rhs` into supported lane
    /// widths.
    ///
    /// `scratch` must hold at least
    /// [`crate::lanes::lanes_scratch_len`]`(self.n(), n_rhs)` elements.
    /// Per-RHS results are bit-for-bit identical to
    /// [`SparseLu::solve_multi_interleaved`] and [`SparseLu::solve_into`].
    pub fn solve_multi_lanes(&self, block: &mut [T], n_rhs: usize, scratch: &mut [T]) {
        crate::lanes::solve_lanes_dispatch(self, self.n, block, n_rhs, scratch);
    }
}

impl<T: Scalar> crate::lanes::LaneSolver<T> for SparseLu<T> {
    fn solve_lane<const N: usize>(&self, block: &mut [[T; N]], scratch: &mut [[T; N]]) {
        self.solve_arr(block, scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{vecops, DMat};

    fn dense_random(n: usize, seed: &mut u64, density: f64) -> (Csc<f64>, DMat<f64>) {
        let rnd = move |seed: &mut u64| {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut t = Triplets::new(n, n);
        let mut d = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let r = rnd(seed);
                if i == j {
                    let v = 4.0 + r;
                    t.push(i, j, v);
                    d[(i, j)] = v;
                } else if r.abs() < density {
                    t.push(i, j, r);
                    d[(i, j)] = r;
                }
            }
        }
        (t.to_csc(), d)
    }

    #[test]
    fn triplets_sum_duplicates() {
        let mut t = Triplets::<f64>::new(3, 3);
        t.push(1, 1, 2.0);
        t.push(1, 1, 3.0);
        t.push(0, 2, -1.0);
        let m = t.to_csc();
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.get(0, 2), -1.0);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn mat_vec_matches_dense() {
        let mut seed = 42u64;
        let (s, d) = dense_random(12, &mut seed, 0.4);
        let x: Vec<f64> = (0..12).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let ys = s.mat_vec(&x);
        let yd = d.mat_vec(&x);
        for (a, b) in ys.iter().zip(yd.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_lu_matches_dense_lu() {
        for trial in 0..6 {
            let mut seed = 1000 + trial;
            let n = 20;
            let (s, d) = dense_random(n, &mut seed, 0.3);
            let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
            let xs = s.lu().unwrap().solve(&b);
            let xd = d.solve(&b).unwrap();
            for (a, bb) in xs.iter().zip(xd.iter()) {
                assert!((a - bb).abs() < 1e-9, "trial {trial}: {a} vs {bb}");
            }
        }
    }

    #[test]
    fn sparse_lu_residual_small() {
        let mut seed = 7u64;
        let n = 40;
        let (s, _) = dense_random(n, &mut seed, 0.15);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = s.lu().unwrap().solve(&b);
        let r = vecops::sub(&s.mat_vec(&x), &b);
        assert!(vecops::norm_inf(&r) < 1e-9);
    }

    #[test]
    fn pivoting_zero_diagonal() {
        let mut t = Triplets::<f64>::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let x = t.to_csc().lu().unwrap().solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_detected() {
        let mut t = Triplets::<f64>::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        // column 1 empty -> singular
        assert!(matches!(t.to_csc().lu(), Err(NumError::Singular { .. })));
    }

    #[test]
    fn nan_value_detected_as_non_finite() {
        let mut t = Triplets::<f64>::new(2, 2);
        t.push(0, 0, f64::NAN);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 1.0);
        assert!(matches!(
            t.to_csc().lu(),
            Err(NumError::NonFinite { col: 0 })
        ));
    }

    #[test]
    fn refactor_with_nan_reports_non_finite() {
        // Factor a healthy matrix, then refactor (fixed pivot replay) with a
        // NaN in the same sparsity pattern: the replay branch must report
        // NonFinite, not Singular.
        let mut t = Triplets::<f64>::new(2, 2);
        t.push(0, 0, 4.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        t.push(1, 1, 3.0);
        let mut lu = t.to_csc().lu().unwrap();
        let mut t2 = Triplets::<f64>::new(2, 2);
        t2.push(0, 0, f64::NAN);
        t2.push(0, 1, 1.0);
        t2.push(1, 0, 1.0);
        t2.push(1, 1, 3.0);
        assert!(matches!(
            lu.refactor(&t2.to_csc()),
            Err(NumError::NonFinite { .. })
        ));
    }

    #[test]
    fn structurally_dense_column_ok() {
        // Arrow matrix: dense last row/col, diagonal elsewhere.
        let n = 15;
        let mut t = Triplets::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
            if i + 1 < n {
                t.push(i, n - 1, 1.0);
                t.push(n - 1, i, 1.0);
            }
        }
        let m = t.to_csc();
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = m.lu().unwrap().solve(&b);
        let r = vecops::sub(&m.mat_vec(&x), &b);
        assert!(vecops::norm_inf(&r) < 1e-10);
    }

    #[test]
    fn to_dense_roundtrip() {
        let mut t = Triplets::<f64>::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(1, 2, 5.0);
        let d = t.to_csc().to_dense();
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 2)], 5.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    /// Replaying the symbolic pivot order on the same values must reproduce
    /// the from-scratch factorization bit-for-bit.
    #[test]
    fn refactor_same_values_is_bit_identical() {
        for trial in 0..5 {
            let mut seed = 300 + trial;
            let n = 25;
            let (s, _) = dense_random(n, &mut seed, 0.25);
            let fresh = s.lu().unwrap();
            // Route 1: lu_with on the recorded symbolic.
            let replayed = s.lu_with(&fresh.symbolic()).unwrap();
            // Route 2: in-place refactor.
            let mut inplace = fresh.clone();
            inplace.refactor(&s).unwrap();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            let x0 = fresh.solve(&b);
            let x1 = replayed.solve(&b);
            let x2 = inplace.solve(&b);
            for i in 0..n {
                assert!(
                    x0[i].to_bits() == x1[i].to_bits(),
                    "trial {trial} lu_with row {i}"
                );
                assert!(
                    x0[i].to_bits() == x2[i].to_bits(),
                    "trial {trial} refactor row {i}"
                );
            }
        }
    }

    /// Refactoring with *different* values (same pattern) must still solve
    /// the new system accurately.
    #[test]
    fn refactor_new_values_solves_new_system() {
        let n = 30;
        let mut seed = 77u64;
        let (s1, _) = dense_random(n, &mut seed, 0.2);
        let mut lu = s1.lu().unwrap();
        // Same pattern, different values: scale + perturb diagonal stamps.
        let mut t = Triplets::new(n, n);
        for c in 0..n {
            for r in 0..n {
                let v = s1.get(r, c);
                if v != 0.0 {
                    t.push(r, c, if r == c { 2.0 * v + 0.5 } else { 0.7 * v });
                }
            }
        }
        let s2 = t.to_csc();
        lu.refactor(&s2).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 0.1).collect();
        let mut x = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        lu.solve_into(&b, &mut x, &mut scratch);
        let r = vecops::sub(&s2.mat_vec(&x), &b);
        assert!(
            vecops::norm_inf(&r) < 1e-9,
            "residual {}",
            vecops::norm_inf(&r)
        );
    }

    /// A stale pivot order that hits a zero pivot reports Singular instead
    /// of producing garbage.
    #[test]
    fn refactor_rejects_stale_pivots() {
        // First matrix pivots on the diagonal; second zeroes that entry.
        let mut t1 = Triplets::<f64>::new(2, 2);
        t1.push(0, 0, 5.0);
        t1.push(0, 1, 1.0);
        t1.push(1, 0, 1.0);
        t1.push(1, 1, 5.0);
        let mut lu = t1.to_csc().lu().unwrap();
        let mut t2 = Triplets::<f64>::new(2, 2);
        t2.push(0, 0, 0.0);
        t2.push(0, 1, 1.0);
        t2.push(1, 0, 1.0);
        t2.push(1, 1, 0.0);
        let s2 = t2.to_csc();
        assert!(matches!(lu.refactor(&s2), Err(NumError::Singular { .. })));
        // A fresh analyzing factorization handles it fine (off-diag pivots).
        let x = s2.lu().unwrap().solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn solve_multi_matches_column_solves() {
        let mut seed = 11u64;
        let n = 24;
        let (s, _) = dense_random(n, &mut seed, 0.25);
        let lu = s.lu().unwrap();
        let n_rhs = 7;
        let mut block = vec![0.0; n * n_rhs];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 13 % 29) as f64) * 0.3 - 2.0;
        }
        let reference: Vec<Vec<f64>> = (0..n_rhs)
            .map(|k| lu.solve(&block[k * n..(k + 1) * n]))
            .collect();
        let mut scratch = vec![0.0; n * n_rhs];
        lu.solve_multi(&mut block, n_rhs, &mut scratch);
        for k in 0..n_rhs {
            for i in 0..n {
                assert!(
                    block[k * n + i].to_bits() == reference[k][i].to_bits(),
                    "rhs {k} row {i}"
                );
            }
        }
    }

    #[test]
    fn solve_multi_interleaved_matches_solve() {
        let mut seed = 19u64;
        let n = 18;
        let (s, _) = dense_random(n, &mut seed, 0.3);
        let lu = s.lu().unwrap();
        let n_rhs = 5;
        // Interleaved layout: block[r * n_rhs + k].
        let mut block = vec![0.0; n * n_rhs];
        for (i, v) in block.iter_mut().enumerate() {
            *v = ((i * 31 % 17) as f64) * 0.25 - 1.5;
        }
        let reference: Vec<Vec<f64>> = (0..n_rhs)
            .map(|k| {
                let b: Vec<f64> = (0..n).map(|r| block[r * n_rhs + k]).collect();
                lu.solve(&b)
            })
            .collect();
        let mut scratch = vec![0.0; n * n_rhs];
        lu.solve_multi_interleaved(&mut block, n_rhs, &mut scratch);
        for k in 0..n_rhs {
            for r in 0..n {
                assert!(
                    block[r * n_rhs + k].to_bits() == reference[k][r].to_bits(),
                    "rhs {k} row {r}"
                );
            }
        }
    }

    #[test]
    fn mat_vec_interleaved_matches_mat_vec() {
        let mut seed = 23u64;
        let (s, _) = dense_random(10, &mut seed, 0.4);
        let width = 3;
        let x: Vec<f64> = (0..10 * width).map(|i| (i as f64) * 0.1 - 1.0).collect();
        let mut y = vec![0.0; 10 * width];
        s.mat_vec_interleaved(&x, &mut y, width);
        for k in 0..width {
            let xk: Vec<f64> = (0..10).map(|r| x[r * width + k]).collect();
            let yk = s.mat_vec(&xk);
            for r in 0..10 {
                assert!((y[r * width + k] - yk[r]).abs() < 1e-15, "rhs {k} row {r}");
            }
        }
    }

    /// Reference solve replicating the pre-flatten `Vec<Vec<(usize, T)>>`
    /// factor walk (same arithmetic order): the flattened storage must be a
    /// pure layout change, bit-for-bit.
    fn reference_solve_preflatten(lu: &SparseLu<f64>, b: &[f64]) -> Vec<f64> {
        let n = lu.n();
        // Rebuild nested factor storage from the flat arrays.
        let l_cols: Vec<Vec<(usize, f64)>> = (0..n).map(|j| lu.l_entries(j).collect()).collect();
        let u_rows: Vec<Vec<(usize, f64)>> = (0..n).map(|j| lu.u_entries(j).collect()).collect();
        let mut scratch = b.to_vec();
        let mut out = vec![0.0; n];
        for j in 0..n {
            let pr = lu.perm[j];
            let yj = scratch[pr];
            out[j] = yj;
            if yj == 0.0 {
                continue;
            }
            for &(orig_row, lv) in &l_cols[j] {
                scratch[orig_row] -= lv * yj;
            }
        }
        for j in (0..n).rev() {
            let mut acc = out[j];
            let mut diag = 0.0;
            for &(c, v) in u_rows[j].iter() {
                if c == j {
                    diag = v;
                } else {
                    acc -= v * out[c];
                }
            }
            out[j] = acc / diag;
        }
        if !lu.col_order.is_empty() {
            let z = out.clone();
            for (step, &c) in lu.col_order.iter().enumerate() {
                out[c] = z[step];
            }
        }
        out
    }

    #[test]
    fn flattened_solve_bit_identical_to_nested_reference() {
        for trial in 0..4 {
            let mut seed = 900 + trial;
            let n = 22;
            let (s, _) = dense_random(n, &mut seed, 0.25);
            let lu = s.lu().unwrap();
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin()).collect();
            let x = lu.solve(&b);
            let xref = reference_solve_preflatten(&lu, &b);
            for i in 0..n {
                assert!(x[i].to_bits() == xref[i].to_bits(), "trial {trial} row {i}");
            }
        }
    }

    #[test]
    fn markowitz_solves_accurately() {
        for trial in 0..5 {
            let mut seed = 500 + trial;
            let n = 30;
            let (s, _) = dense_random(n, &mut seed, 0.2);
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.9).cos()).collect();
            let lu = s.lu_markowitz().unwrap();
            let x = lu.solve(&b);
            let r = vecops::sub(&s.mat_vec(&x), &b);
            assert!(
                vecops::norm_inf(&r) < 1e-9,
                "trial {trial} residual {}",
                vecops::norm_inf(&r)
            );
            // Within machine precision of the natural-order solution.
            let xn = s.lu().unwrap().solve(&b);
            let scale = vecops::norm_inf(&xn).max(1.0);
            for i in 0..n {
                assert!(
                    (x[i] - xn[i]).abs() < 1e-9 * scale,
                    "trial {trial} row {i}: {} vs {}",
                    x[i],
                    xn[i]
                );
            }
        }
    }

    #[test]
    fn markowitz_replay_is_bit_identical() {
        let mut seed = 606u64;
        let n = 28;
        let (s, _) = dense_random(n, &mut seed, 0.25);
        let fresh = s.lu_markowitz().unwrap();
        assert!(fresh.symbolic().is_ordered());
        let replayed = s.lu_with(&fresh.symbolic()).unwrap();
        let mut inplace = fresh.clone();
        inplace.refactor(&s).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x0 = fresh.solve(&b);
        let x1 = replayed.solve(&b);
        let x2 = inplace.solve(&b);
        for i in 0..n {
            assert!(x0[i].to_bits() == x1[i].to_bits(), "lu_with row {i}");
            assert!(x0[i].to_bits() == x2[i].to_bits(), "refactor row {i}");
        }
    }

    #[test]
    fn markowitz_reduces_fill_on_reverse_arrow() {
        // Reverse arrow: dense FIRST row and column. Natural order must
        // eliminate the dense column first, filling in the whole matrix;
        // Markowitz defers it and keeps the factors O(n).
        let n = 40;
        let mut t = Triplets::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(0, i, 1.0);
                t.push(i, 0, 1.0);
            }
        }
        let m = t.to_csc();
        let natural = m.lu().unwrap();
        let ordered = m.lu_markowitz().unwrap();
        assert!(
            ordered.factor_nnz() < natural.factor_nnz() / 4,
            "ordered fill {} vs natural {}",
            ordered.factor_nnz(),
            natural.factor_nnz()
        );
        // And it still solves the system.
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = ordered.solve(&b);
        let r = vecops::sub(&m.mat_vec(&x), &b);
        assert!(vecops::norm_inf(&r) < 1e-10);
    }

    #[test]
    fn sparse_solve_arr_matches_solve_into() {
        let mut seed = 808u64;
        let n = 20;
        let (s, _) = dense_random(n, &mut seed, 0.3);
        for lu in [s.lu().unwrap(), s.lu_markowitz().unwrap()] {
            const W: usize = 4;
            let mut block = [[0.0f64; W]; 20];
            for (i, row) in block.iter_mut().enumerate() {
                for (k, v) in row.iter_mut().enumerate() {
                    *v = ((i * 7 + k * 3) % 11) as f64 * 0.4 - 2.0;
                }
            }
            let mut reference = vec![[0.0f64; W]; n];
            for k in 0..W {
                let b: Vec<f64> = (0..n).map(|r| block[r][k]).collect();
                let mut out = vec![0.0; n];
                let mut scr = vec![0.0; n];
                lu.solve_into(&b, &mut out, &mut scr);
                for r in 0..n {
                    reference[r][k] = out[r];
                }
            }
            let mut scratch = [[0.0f64; W]; 20];
            lu.solve_arr(&mut block, &mut scratch);
            for r in 0..n {
                for k in 0..W {
                    assert!(
                        block[r][k].to_bits() == reference[r][k].to_bits(),
                        "row {r} rhs {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn refill_from_updates_values_in_place() {
        let mut t = Triplets::<f64>::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(1, 1, 2.0);
        t.push(2, 0, 3.0);
        let mut m = t.to_csc();
        let mut t2 = Triplets::<f64>::new(3, 3);
        t2.push(0, 0, 4.0);
        t2.push(0, 0, 0.5); // duplicate sums
        t2.push(1, 1, -2.0);
        // 2,0 omitted: becomes an explicit zero, pattern unchanged.
        m.refill_from(&t2).unwrap();
        assert_eq!(m.get(0, 0), 4.5);
        assert_eq!(m.get(1, 1), -2.0);
        assert_eq!(m.get(2, 0), 0.0);
        assert_eq!(m.nnz(), 3);
        // A triplet outside the pattern is a PatternMismatch.
        let mut t3 = Triplets::<f64>::new(3, 3);
        t3.push(2, 2, 1.0);
        assert!(matches!(m.refill_from(&t3), Err(NumError::PatternMismatch)));
    }
}
