//! Sparse matrices in triplet and compressed-sparse-column form, with a
//! left-looking LU factorization (Gilbert–Peierls style) and partial pivoting.
//!
//! MNA matrices of circuits are extremely sparse (a handful of entries per
//! row). The transient/PSS inner loops factor one Jacobian per Newton
//! iteration, then the LPTV noise analysis re-uses those factors for many
//! right-hand sides — so the split between `factor` and `solve` mirrors the
//! dense kernel in [`crate::dense`].

use crate::complex::Scalar;
use crate::error::NumError;

/// A sparse-matrix builder accumulating `(row, col, value)` triplets.
///
/// Duplicate coordinates are summed when compressed, matching the way MNA
/// stamps accumulate conductances.
///
/// # Examples
///
/// ```
/// use tranvar_num::sparse::Triplets;
/// let mut t = Triplets::<f64>::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicates sum
/// let csc = t.to_csc();
/// assert_eq!(csc.get(0, 0), 3.0);
/// ```
#[derive(Clone, Debug)]
pub struct Triplets<T> {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: Scalar> Triplets<T> {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Triplets {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends a triplet.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: T) {
        assert!(row < self.rows && col < self.cols, "triplet out of range");
        self.entries.push((row, col, value));
    }

    /// Number of accumulated (pre-compression) triplets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Removes all triplets, retaining the allocation (hot-loop reuse).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over the raw (row, col, value) triplets.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, T)> {
        self.entries.iter()
    }

    /// Returns `true` if no triplets have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses to CSC, summing duplicates.
    pub fn to_csc(&self) -> Csc<T> {
        // Count entries per column.
        let mut counts = vec![0usize; self.cols];
        for &(_, c, _) in &self.entries {
            counts[c] += 1;
        }
        let mut col_ptr = vec![0usize; self.cols + 1];
        for c in 0..self.cols {
            col_ptr[c + 1] = col_ptr[c] + counts[c];
        }
        let nnz = col_ptr[self.cols];
        let mut row_idx = vec![0usize; nnz];
        let mut values = vec![T::zero(); nnz];
        let mut next = col_ptr.clone();
        for &(r, c, v) in &self.entries {
            let slot = next[c];
            row_idx[slot] = r;
            values[slot] = v;
            next[c] += 1;
        }
        // Sort each column by row and merge duplicates.
        let mut out_ptr = vec![0usize; self.cols + 1];
        let mut out_rows = Vec::with_capacity(nnz);
        let mut out_vals = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, T)> = Vec::new();
        for c in 0..self.cols {
            scratch.clear();
            for k in col_ptr[c]..col_ptr[c + 1] {
                scratch.push((row_idx[k], values[k]));
            }
            scratch.sort_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut v = scratch[i].1;
                let mut j = i + 1;
                while j < scratch.len() && scratch[j].0 == r {
                    v += scratch[j].1;
                    j += 1;
                }
                out_rows.push(r);
                out_vals.push(v);
                i = j;
            }
            out_ptr[c + 1] = out_rows.len();
        }
        Csc {
            rows: self.rows,
            cols: self.cols,
            col_ptr: out_ptr,
            row_idx: out_rows,
            values: out_vals,
        }
    }
}

/// A compressed-sparse-column matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Csc<T> {
    rows: usize,
    cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<T>,
}

impl<T: Scalar> Csc<T> {
    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entry at `(row, col)`, or zero if not stored.
    pub fn get(&self, row: usize, col: usize) -> T {
        let lo = self.col_ptr[col];
        let hi = self.col_ptr[col + 1];
        match self.row_idx[lo..hi].binary_search(&row) {
            Ok(k) => self.values[lo + k],
            Err(_) => T::zero(),
        }
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mat_vec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.cols, "mat_vec dimension mismatch");
        let mut y = vec![T::zero(); self.rows];
        for c in 0..self.cols {
            let xc = x[c];
            if xc == T::zero() {
                continue;
            }
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                y[self.row_idx[k]] += self.values[k] * xc;
            }
        }
        y
    }

    /// Converts to dense form (small systems, tests, monodromy assembly).
    pub fn to_dense(&self) -> crate::dense::DMat<T> {
        let mut m = crate::dense::DMat::zeros(self.rows, self.cols);
        for c in 0..self.cols {
            for k in self.col_ptr[c]..self.col_ptr[c + 1] {
                m[(self.row_idx[k], c)] = self.values[k];
            }
        }
        m
    }

    /// Factorizes `A = P⁻¹·L·U` with partial pivoting (left-looking,
    /// Gilbert–Peierls with a dense working column; adequate for the
    /// moderate dimensions of circuit Jacobians).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::NotSquare`] or [`NumError::Singular`].
    pub fn lu(&self) -> Result<SparseLu<T>, NumError> {
        if self.rows != self.cols {
            return Err(NumError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let n = self.rows;
        // row_perm[i] = original row currently in pivot position i; inv maps
        // original row -> pivot position (usize::MAX while unassigned).
        let mut pinv = vec![usize::MAX; n];
        let mut perm = vec![usize::MAX; n];

        // L and U stored column-wise as (row-position, value) pairs, where L
        // uses pivot positions and U uses pivot positions for rows.
        let mut l_cols: Vec<Vec<(usize, T)>> = Vec::with_capacity(n);
        let mut u_cols: Vec<Vec<(usize, T)>> = Vec::with_capacity(n);

        // Dense scatter workspace indexed by *original* row.
        let mut work = vec![T::zero(); n];
        let mut touched: Vec<usize> = Vec::with_capacity(n);

        for col in 0..n {
            // Scatter column `col` of A into the workspace.
            touched.clear();
            for k in self.col_ptr[col]..self.col_ptr[col + 1] {
                let r = self.row_idx[k];
                work[r] = self.values[k];
                touched.push(r);
            }
            // Left-looking update: for each prior pivot j (in order), if the
            // workspace has a value at the pivot row of j, eliminate with
            // column j of L. Processing j in increasing order is a correct
            // topological order for the dense-workspace variant.
            for j in 0..col {
                let pr = perm[j]; // original row holding pivot j
                let ujc = work[pr];
                if ujc == T::zero() {
                    continue;
                }
                // Record U entry (pivot position j, column col).
                u_cols[j].push((col, ujc));
                // work -= ujc * L[:, j]
                for &(orig_row, lv) in &l_cols[j] {
                    if work[orig_row] == T::zero() {
                        touched.push(orig_row);
                    }
                    work[orig_row] -= lv * ujc;
                }
                work[pr] = T::zero();
            }
            // Pivot: largest magnitude among unassigned original rows.
            let mut prow = usize::MAX;
            let mut pmag = 0.0;
            for &r in touched.iter() {
                if pinv[r] != usize::MAX {
                    continue;
                }
                let m = work[r].magnitude();
                if m > pmag {
                    pmag = m;
                    prow = r;
                }
            }
            // `touched` can contain duplicates/stale zero entries; also scan
            // all unassigned rows if nothing usable was touched.
            if prow == usize::MAX || pmag == 0.0 {
                for r in 0..n {
                    if pinv[r] == usize::MAX {
                        let m = work[r].magnitude();
                        if m > pmag {
                            pmag = m;
                            prow = r;
                        }
                    }
                }
            }
            if prow == usize::MAX || pmag == 0.0 || pmag.is_nan() {
                return Err(NumError::Singular { col });
            }
            let pivot = work[prow];
            perm[col] = prow;
            pinv[prow] = col;

            // Store L column (unit diagonal implicit) and clear workspace.
            let mut lcol: Vec<(usize, T)> = Vec::new();
            for &r in touched.iter() {
                let v = work[r];
                if v == T::zero() {
                    continue;
                }
                if r == prow {
                    continue;
                }
                if pinv[r] == usize::MAX {
                    // below-diagonal: belongs to L (scaled)
                    lcol.push((r, v / pivot));
                } else {
                    // This row was already pivotal: belongs to U.
                    u_cols[pinv[r]].push((col, v));
                }
                work[r] = T::zero();
            }
            work[prow] = T::zero();
            // Deduplicate L entries (duplicate `touched` rows leave zeros
            // behind, which we already skipped; dedupe defensively).
            lcol.sort_by_key(|&(r, _)| r);
            lcol.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
            l_cols.push(lcol);
            u_cols.push(vec![(col, pivot)]);
        }
        // Sort U columns by row position for deterministic solves.
        for ucol in u_cols.iter_mut() {
            ucol.sort_by_key(|&(r, _)| r);
            ucol.dedup_by(|a, b| {
                if a.0 == b.0 {
                    b.1 += a.1;
                    true
                } else {
                    false
                }
            });
        }
        Ok(SparseLu {
            n,
            perm,
            l_cols,
            u_rows_by_col: u_cols,
        })
    }
}

/// A sparse LU factorization produced by [`Csc::lu`].
#[derive(Clone, Debug)]
pub struct SparseLu<T> {
    n: usize,
    /// perm[j] = original row chosen as pivot for elimination step j.
    perm: Vec<usize>,
    /// L columns: (original row, multiplier), strictly below-diagonal.
    l_cols: Vec<Vec<(usize, T)>>,
    /// For pivot-row j: list of (column, value) entries of U in that row,
    /// stored per column index ascending; first entry is the diagonal? No —
    /// entries are (col, value) with col >= j, sorted ascending.
    u_rows_by_col: Vec<Vec<(usize, T)>>,
}

impl<T: Scalar> SparseLu<T> {
    /// Dimension of the factored system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Solves `A·x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.n()`.
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        let n = self.n;
        // Forward: y indexed by pivot position.
        let mut work = b.to_vec(); // indexed by original row
        let mut y = vec![T::zero(); n];
        for j in 0..n {
            let pr = self.perm[j];
            let yj = work[pr];
            y[j] = yj;
            if yj == T::zero() {
                continue;
            }
            for &(orig_row, lv) in &self.l_cols[j] {
                work[orig_row] -= lv * yj;
            }
        }
        // Back substitution on U: U is upper triangular in pivot coordinates.
        // u_rows_by_col[j] holds row j of U as (col, value) pairs sorted by col.
        let mut x = y;
        for j in (0..n).rev() {
            let row = &self.u_rows_by_col[j];
            // First entry must be the diagonal (col == j).
            let mut acc = x[j];
            let mut diag = T::zero();
            for &(c, v) in row.iter() {
                if c == j {
                    diag = v;
                } else {
                    acc -= v * x[c];
                }
            }
            x[j] = acc / diag;
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{vecops, DMat};

    fn dense_random(n: usize, seed: &mut u64, density: f64) -> (Csc<f64>, DMat<f64>) {
        let rnd = move |seed: &mut u64| {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((*seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut t = Triplets::new(n, n);
        let mut d = DMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let r = rnd(seed);
                if i == j {
                    let v = 4.0 + r;
                    t.push(i, j, v);
                    d[(i, j)] = v;
                } else if r.abs() < density {
                    t.push(i, j, r);
                    d[(i, j)] = r;
                }
            }
        }
        (t.to_csc(), d)
    }

    #[test]
    fn triplets_sum_duplicates() {
        let mut t = Triplets::<f64>::new(3, 3);
        t.push(1, 1, 2.0);
        t.push(1, 1, 3.0);
        t.push(0, 2, -1.0);
        let m = t.to_csc();
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.get(0, 2), -1.0);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn mat_vec_matches_dense() {
        let mut seed = 42u64;
        let (s, d) = dense_random(12, &mut seed, 0.4);
        let x: Vec<f64> = (0..12).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let ys = s.mat_vec(&x);
        let yd = d.mat_vec(&x);
        for (a, b) in ys.iter().zip(yd.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn sparse_lu_matches_dense_lu() {
        for trial in 0..6 {
            let mut seed = 1000 + trial;
            let n = 20;
            let (s, d) = dense_random(n, &mut seed, 0.3);
            let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
            let xs = s.lu().unwrap().solve(&b);
            let xd = d.solve(&b).unwrap();
            for (a, bb) in xs.iter().zip(xd.iter()) {
                assert!((a - bb).abs() < 1e-9, "trial {trial}: {a} vs {bb}");
            }
        }
    }

    #[test]
    fn sparse_lu_residual_small() {
        let mut seed = 7u64;
        let n = 40;
        let (s, _) = dense_random(n, &mut seed, 0.15);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = s.lu().unwrap().solve(&b);
        let r = vecops::sub(&s.mat_vec(&x), &b);
        assert!(vecops::norm_inf(&r) < 1e-9);
    }

    #[test]
    fn pivoting_zero_diagonal() {
        let mut t = Triplets::<f64>::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let x = t.to_csc().lu().unwrap().solve(&[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn singular_detected() {
        let mut t = Triplets::<f64>::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 0, 1.0);
        // column 1 empty -> singular
        assert!(matches!(
            t.to_csc().lu(),
            Err(NumError::Singular { .. })
        ));
    }

    #[test]
    fn structurally_dense_column_ok() {
        // Arrow matrix: dense last row/col, diagonal elsewhere.
        let n = 15;
        let mut t = Triplets::<f64>::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
            if i + 1 < n {
                t.push(i, n - 1, 1.0);
                t.push(n - 1, i, 1.0);
            }
        }
        let m = t.to_csc();
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = m.lu().unwrap().solve(&b);
        let r = vecops::sub(&m.mat_vec(&x), &b);
        assert!(vecops::norm_inf(&r) < 1e-10);
    }

    #[test]
    fn to_dense_roundtrip() {
        let mut t = Triplets::<f64>::new(2, 3);
        t.push(0, 0, 1.0);
        t.push(1, 2, 5.0);
        let d = t.to_csc().to_dense();
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(1, 2)], 5.0);
        assert_eq!(d[(0, 1)], 0.0);
    }
}
