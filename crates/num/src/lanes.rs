//! Compile-time lane blocks for the multi-RHS triangular-solve hot path.
//!
//! The runtime-width interleaved kernels
//! ([`crate::dense::Lu::solve_multi_interleaved`],
//! [`crate::sparse::SparseLu::solve_multi_interleaved`]) turn every factor
//! entry into an `n_rhs`-wide axpy whose trip count is only known at run
//! time, so the compiler emits a vector loop with prologue/remainder
//! handling around every single factor entry. The lane kernels in this
//! module fix the width at *compile time* instead: a block of `N` right-hand
//! sides is a `[[T; N]]` slice, the inner axpy is a fixed-`N` loop the
//! compiler fully unrolls into straight-line SIMD, and
//! [`solve_lanes_dispatch`] decomposes an arbitrary `n_rhs` into lane groups
//! of the supported widths ([`LANE_WIDTHS`]) plus a scalar remainder.
//!
//! Per-RHS arithmetic is identical to the runtime-width kernels (same
//! operations, same order, independent of which lanes share a group), so
//! lane-dispatched solves are **bit-for-bit identical per RHS** to
//! [`crate::dense::Lu::solve_into`] / [`crate::sparse::SparseLu::solve_into`]
//! — the property every `max_abs_diff == 0` bench gate relies on.

use crate::complex::Scalar;

/// Lane widths with a dedicated monomorphized kernel, widest first. The
/// powers of two map onto whole SIMD registers and let the dispatcher
/// greedily decompose any width; 40 additionally gets an exact kernel
/// because it is the logic-path sweep width — the repo's canonical
/// wide-batch workload — and an exact-width match solves the block in a
/// single pass with no staging copies.
pub const LANE_WIDTHS: [usize; 7] = [40, 32, 16, 8, 4, 2, 1];

/// Reinterprets a flat scalar slice as a slice of `N`-wide lane blocks.
///
/// `[T; N]` has the same alignment as `T` and size `N · size_of::<T>()`, so
/// a slice of `len / N` arrays covers exactly the same memory as the flat
/// slice — the cast is purely a type-level regrouping.
///
/// # Panics
///
/// Panics if `s.len()` is not a multiple of `N`, or if `N == 0`.
#[inline]
pub fn as_lane_blocks_mut<T: Scalar, const N: usize>(s: &mut [T]) -> &mut [[T; N]] {
    assert!(N > 0, "lane width must be nonzero");
    assert_eq!(s.len() % N, 0, "slice length not a multiple of lane width");
    let blocks = s.len() / N;
    // SAFETY: `[T; N]` is layout-identical to `N` consecutive `T`s with the
    // alignment of `T`, the element count is exact (checked above), and the
    // returned borrow has the same lifetime and mutability as the input, so
    // no aliasing or out-of-bounds access is possible.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr().cast::<[T; N]>(), blocks) }
}

/// A factorization that can solve an `N`-lane RHS block in place.
///
/// Implemented by [`crate::dense::Lu`] and [`crate::sparse::SparseLu`]; the
/// shared dispatcher [`solve_lanes_dispatch`] drives it so the lane-group
/// decomposition logic exists once.
pub trait LaneSolver<T: Scalar> {
    /// Solves `A·X = B` for an `N`-lane block in place: `block[i]` holds row
    /// `i` of all `N` right-hand sides and is overwritten with the
    /// solutions; `scratch` is an equally sized workspace.
    fn solve_lane<const N: usize>(&self, block: &mut [[T; N]], scratch: &mut [[T; N]]);
}

/// Scratch length required by [`solve_lanes_dispatch`] for an `n × n_rhs`
/// interleaved block.
///
/// When `n_rhs` is itself a supported lane width the block is solved in
/// place and one `n·n_rhs` workspace suffices (the same contract as
/// `solve_multi_interleaved`); otherwise the dispatcher additionally stages
/// each lane group contiguously, which needs a second `n·n_rhs` region.
#[inline]
pub fn lanes_scratch_len(n: usize, n_rhs: usize) -> usize {
    if LANE_WIDTHS.contains(&n_rhs) {
        n * n_rhs
    } else {
        2 * n * n_rhs
    }
}

/// Solves an RHS-interleaved block (`block[i·n_rhs + k]` is row `i` of RHS
/// `k`) by decomposing it into compile-time lane groups and calling the
/// solver's [`LaneSolver::solve_lane`] kernels, widest group first.
///
/// Per-RHS results are bit-for-bit identical to solving each RHS alone: a
/// lane group is solved with exactly the per-RHS operation sequence of
/// `solve_into`, and the gather/scatter staging only moves values.
///
/// # Panics
///
/// Panics if `block.len() != n * n_rhs` or
/// `scratch.len() < lanes_scratch_len(n, n_rhs)`.
pub fn solve_lanes_dispatch<T: Scalar, S: LaneSolver<T>>(
    solver: &S,
    n: usize,
    block: &mut [T],
    n_rhs: usize,
    scratch: &mut [T],
) {
    assert_eq!(block.len(), n * n_rhs, "block length mismatch");
    assert!(
        scratch.len() >= lanes_scratch_len(n, n_rhs),
        "lane scratch too short: {} < {}",
        scratch.len(),
        lanes_scratch_len(n, n_rhs)
    );
    if n_rhs == 0 {
        return;
    }
    // Exact-width fast path: reinterpret the interleaved block in place, no
    // staging copies at all.
    match n_rhs {
        1 => return solve_exact::<T, S, 1>(solver, block, scratch),
        2 => return solve_exact::<T, S, 2>(solver, block, scratch),
        4 => return solve_exact::<T, S, 4>(solver, block, scratch),
        8 => return solve_exact::<T, S, 8>(solver, block, scratch),
        16 => return solve_exact::<T, S, 16>(solver, block, scratch),
        32 => return solve_exact::<T, S, 32>(solver, block, scratch),
        40 => return solve_exact::<T, S, 40>(solver, block, scratch),
        _ => {}
    }
    // General path: greedy lane groups, each gathered into contiguous
    // storage, solved, and scattered back. The gather/scatter is O(n·N) next
    // to the O(factor-nnz·N) solve.
    let (gather, work) = scratch.split_at_mut(n * n_rhs);
    let mut k0 = 0;
    while k0 < n_rhs {
        let rem = n_rhs - k0;
        let width = LANE_WIDTHS.iter().copied().find(|&w| w <= rem).unwrap_or(1);
        match width {
            40 => solve_group::<T, S, 40>(solver, n, block, n_rhs, k0, gather, work),
            32 => solve_group::<T, S, 32>(solver, n, block, n_rhs, k0, gather, work),
            16 => solve_group::<T, S, 16>(solver, n, block, n_rhs, k0, gather, work),
            8 => solve_group::<T, S, 8>(solver, n, block, n_rhs, k0, gather, work),
            4 => solve_group::<T, S, 4>(solver, n, block, n_rhs, k0, gather, work),
            2 => solve_group::<T, S, 2>(solver, n, block, n_rhs, k0, gather, work),
            _ => solve_group::<T, S, 1>(solver, n, block, n_rhs, k0, gather, work),
        }
        k0 += width;
    }
}

#[inline]
fn solve_exact<T: Scalar, S: LaneSolver<T>, const N: usize>(
    solver: &S,
    block: &mut [T],
    scratch: &mut [T],
) {
    let blocks = block.len();
    solver.solve_lane::<N>(
        as_lane_blocks_mut(block),
        as_lane_blocks_mut(&mut scratch[..blocks]),
    );
}

#[inline]
fn solve_group<T: Scalar, S: LaneSolver<T>, const N: usize>(
    solver: &S,
    n: usize,
    block: &mut [T],
    n_rhs: usize,
    k0: usize,
    gather: &mut [T],
    work: &mut [T],
) {
    let g = as_lane_blocks_mut::<T, N>(&mut gather[..n * N]);
    let w = as_lane_blocks_mut::<T, N>(&mut work[..n * N]);
    for (i, gi) in g.iter_mut().enumerate() {
        gi.copy_from_slice(&block[i * n_rhs + k0..i * n_rhs + k0 + N]);
    }
    solver.solve_lane::<N>(g, w);
    for (i, gi) in g.iter().enumerate() {
        block[i * n_rhs + k0..i * n_rhs + k0 + N].copy_from_slice(gi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_blocks_roundtrip() {
        let mut v: Vec<f64> = (0..12).map(|i| i as f64).collect();
        let blocks = as_lane_blocks_mut::<f64, 4>(&mut v);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[1], [4.0, 5.0, 6.0, 7.0]);
        blocks[2][3] = -1.0;
        assert_eq!(v[11], -1.0);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn lane_blocks_reject_ragged() {
        let mut v = vec![0.0f64; 10];
        let _ = as_lane_blocks_mut::<f64, 4>(&mut v);
    }

    #[test]
    fn scratch_len_contract() {
        assert_eq!(lanes_scratch_len(10, 8), 80);
        assert_eq!(lanes_scratch_len(10, 2), 20);
        assert_eq!(lanes_scratch_len(10, 5), 100);
        // 40 is an exact lane width, so it takes the in-place path.
        assert_eq!(lanes_scratch_len(10, 40), 400);
        assert_eq!(lanes_scratch_len(10, 17), 340);
    }
}
