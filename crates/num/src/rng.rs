//! Self-contained pseudo-random number generation: a seedable xoshiro256++
//! uniform generator plus normal (Gaussian) and correlated-normal sampling.
//!
//! Monte-Carlo mismatch analysis draws device-parameter offsets from
//! `N(0, σ²)`; correlated draws use a Cholesky factor per eq. (6) of the
//! paper. The workspace avoids external crates, so the generator (xoshiro256++
//! seeded through SplitMix64) and the Box–Muller transform both live here.

use crate::cholesky::cholesky;
use crate::dense::DMat;
use crate::error::NumError;

/// A small, fast, seedable uniform generator (xoshiro256++).
///
/// Deterministic for a fixed seed on every platform, which is what makes the
/// Monte-Carlo driver reproducible regardless of thread count.
///
/// # Examples
///
/// ```
/// use tranvar_num::rng::Rng64;
/// let mut a = Rng64::seed_from(42);
/// let mut b = Rng64::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a 64-bit seed (SplitMix64 state expansion).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        Rng64 {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use tranvar_num::rng::Rng64;
/// let mut rng = Rng64::seed_from(7);
/// let x = tranvar_num::rng::standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn standard_normal(rng: &mut Rng64) -> f64 {
    // Box–Muller: u1 in (0,1], u2 in [0,1).
    let u1: f64 = 1.0 - rng.uniform();
    let u2: f64 = rng.uniform();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills a vector with independent `N(0,1)` samples.
pub fn standard_normal_vec(rng: &mut Rng64, n: usize) -> Vec<f64> {
    (0..n).map(|_| standard_normal(rng)).collect()
}

/// A sampler for correlated zero-mean Gaussian vectors with a fixed
/// covariance matrix, realized as `y = L·x` with `C = L·Lᵀ` (paper eq. 6).
#[derive(Clone, Debug)]
pub struct CorrelatedNormal {
    factor: DMat<f64>,
}

impl CorrelatedNormal {
    /// Builds the sampler from a covariance matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if the covariance is not positive semi-definite.
    pub fn from_covariance(cov: &DMat<f64>) -> Result<Self, NumError> {
        Ok(CorrelatedNormal {
            factor: cholesky(cov, 0.0)?,
        })
    }

    /// Builds the sampler directly from a mixing matrix `A` (so samples are
    /// `A·x`, covariance `A·Aᵀ`), matching the paper's construction of
    /// correlated pseudo-noise sources.
    pub fn from_mixing(a: DMat<f64>) -> Self {
        CorrelatedNormal { factor: a }
    }

    /// Number of output variables per draw.
    pub fn dim(&self) -> usize {
        self.factor.rows()
    }

    /// Draws one correlated sample vector.
    pub fn sample(&self, rng: &mut Rng64) -> Vec<f64> {
        let x = standard_normal_vec(rng, self.factor.cols());
        self.factor.mat_vec(&x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_stream_is_reproducible() {
        let mut a = Rng64::seed_from(123);
        let mut b = Rng64::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from(124);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng64::seed_from(5);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn normal_moments_are_right() {
        let mut rng = Rng64::seed_from(12345);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_tail_fraction() {
        let mut rng = Rng64::seed_from(99);
        let n = 100_000;
        let beyond_2sigma = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        // True value 4.55%.
        assert!((beyond_2sigma - 0.0455).abs() < 0.005);
    }

    #[test]
    fn correlated_sampler_matches_requested_covariance() {
        let cov = DMat::from_vec(2, 2, vec![4.0, 2.4, 2.4, 9.0]); // rho = 0.4
        let sampler = CorrelatedNormal::from_covariance(&cov).unwrap();
        let mut rng = Rng64::seed_from(3);
        let n = 100_000;
        let (mut s00, mut s01, mut s11) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let y = sampler.sample(&mut rng);
            s00 += y[0] * y[0];
            s01 += y[0] * y[1];
            s11 += y[1] * y[1];
        }
        assert!((s00 / n as f64 - 4.0).abs() < 0.15);
        assert!((s01 / n as f64 - 2.4).abs() < 0.15);
        assert!((s11 / n as f64 - 9.0).abs() < 0.3);
    }

    #[test]
    fn mixing_matrix_covariance_is_aat() {
        // A = [[1,0],[1,1]] -> C = [[1,1],[1,2]]
        let a = DMat::from_vec(2, 2, vec![1.0, 0.0, 1.0, 1.0]);
        let sampler = CorrelatedNormal::from_mixing(a);
        let mut rng = Rng64::seed_from(8);
        let n = 100_000;
        let (mut s00, mut s01, mut s11) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let y = sampler.sample(&mut rng);
            s00 += y[0] * y[0];
            s01 += y[0] * y[1];
            s11 += y[1] * y[1];
        }
        assert!((s00 / n as f64 - 1.0).abs() < 0.05);
        assert!((s01 / n as f64 - 1.0).abs() < 0.05);
        assert!((s11 / n as f64 - 2.0).abs() < 0.08);
    }
}
