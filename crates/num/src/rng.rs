//! Normal (Gaussian) and correlated-normal sampling on top of the `rand`
//! crate's uniform generator.
//!
//! Monte-Carlo mismatch analysis draws device-parameter offsets from
//! `N(0, σ²)`; correlated draws use a Cholesky factor per eq. (6) of the
//! paper. `rand` (without `rand_distr`) only provides uniforms, so the
//! Box–Muller transform lives here.

use crate::cholesky::cholesky;
use crate::dense::DMat;
use crate::error::NumError;
use rand::Rng;

/// Draws one standard-normal sample via the Box–Muller transform.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let x = tranvar_num::rng::standard_normal(&mut rng);
/// assert!(x.is_finite());
/// ```
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller: u1 in (0,1], u2 in [0,1).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Fills a vector with independent `N(0,1)` samples.
pub fn standard_normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| standard_normal(rng)).collect()
}

/// A sampler for correlated zero-mean Gaussian vectors with a fixed
/// covariance matrix, realized as `y = L·x` with `C = L·Lᵀ` (paper eq. 6).
#[derive(Clone, Debug)]
pub struct CorrelatedNormal {
    factor: DMat<f64>,
}

impl CorrelatedNormal {
    /// Builds the sampler from a covariance matrix.
    ///
    /// # Errors
    ///
    /// Returns an error if the covariance is not positive semi-definite.
    pub fn from_covariance(cov: &DMat<f64>) -> Result<Self, NumError> {
        Ok(CorrelatedNormal {
            factor: cholesky(cov, 0.0)?,
        })
    }

    /// Builds the sampler directly from a mixing matrix `A` (so samples are
    /// `A·x`, covariance `A·Aᵀ`), matching the paper's construction of
    /// correlated pseudo-noise sources.
    pub fn from_mixing(a: DMat<f64>) -> Self {
        CorrelatedNormal { factor: a }
    }

    /// Number of output variables per draw.
    pub fn dim(&self) -> usize {
        self.factor.rows()
    }

    /// Draws one correlated sample vector.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let x = standard_normal_vec(rng, self.factor.cols());
        self.factor.mat_vec(&x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_are_right() {
        let mut rng = StdRng::seed_from_u64(12345);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_tail_fraction() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let beyond_2sigma = (0..n)
            .filter(|_| standard_normal(&mut rng).abs() > 2.0)
            .count() as f64
            / n as f64;
        // True value 4.55%.
        assert!((beyond_2sigma - 0.0455).abs() < 0.005);
    }

    #[test]
    fn correlated_sampler_matches_requested_covariance() {
        let cov = DMat::from_vec(2, 2, vec![4.0, 2.4, 2.4, 9.0]); // rho = 0.4
        let sampler = CorrelatedNormal::from_covariance(&cov).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let (mut s00, mut s01, mut s11) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let y = sampler.sample(&mut rng);
            s00 += y[0] * y[0];
            s01 += y[0] * y[1];
            s11 += y[1] * y[1];
        }
        assert!((s00 / n as f64 - 4.0).abs() < 0.15);
        assert!((s01 / n as f64 - 2.4).abs() < 0.15);
        assert!((s11 / n as f64 - 9.0).abs() < 0.3);
    }

    #[test]
    fn mixing_matrix_covariance_is_aat() {
        // A = [[1,0],[1,1]] -> C = [[1,1],[1,2]]
        let a = DMat::from_vec(2, 2, vec![1.0, 0.0, 1.0, 1.0]);
        let sampler = CorrelatedNormal::from_mixing(a);
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let (mut s00, mut s01, mut s11) = (0.0, 0.0, 0.0);
        for _ in 0..n {
            let y = sampler.sample(&mut rng);
            s00 += y[0] * y[0];
            s01 += y[0] * y[1];
            s11 += y[1] * y[1];
        }
        assert!((s00 / n as f64 - 1.0).abs() < 0.05);
        assert!((s01 / n as f64 - 1.0).abs() < 0.05);
        assert!((s11 / n as f64 - 2.0).abs() < 0.08);
    }
}
