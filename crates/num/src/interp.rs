//! Interpolation and waveform-measurement helpers.
//!
//! Delay extraction (Section IV-B of the paper) measures threshold crossings
//! of periodic waveforms; these free functions do the sample-level work and
//! are shared by the transient, Monte-Carlo and LPTV paths so that nominal
//! and perturbed measurements are bit-consistent.

/// Direction of a threshold crossing.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Crossing from below to above the threshold.
    Rising,
    /// Crossing from above to below the threshold.
    Falling,
    /// Either direction.
    Any,
}

/// Linear interpolation of `y(x)` on a sorted abscissa grid.
///
/// Clamps outside the grid.
///
/// # Panics
///
/// Panics if `xs` and `ys` lengths differ or are empty.
pub fn lerp_at(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(!xs.is_empty());
    if x <= xs[0] {
        return ys[0];
    }
    if x >= xs[xs.len() - 1] {
        return ys[ys.len() - 1];
    }
    let idx = match xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
        Ok(i) => return ys[i],
        Err(i) => i,
    };
    let (x0, x1) = (xs[idx - 1], xs[idx]);
    let (y0, y1) = (ys[idx - 1], ys[idx]);
    y0 + (y1 - y0) * (x - x0) / (x1 - x0)
}

/// Finds all threshold crossings of a sampled waveform, returning
/// linearly interpolated crossing times.
pub fn crossings(times: &[f64], values: &[f64], threshold: f64, edge: Edge) -> Vec<f64> {
    assert_eq!(times.len(), values.len());
    let mut out = Vec::new();
    for i in 1..values.len() {
        let (a, b) = (values[i - 1], values[i]);
        let rising = a < threshold && b >= threshold;
        let falling = a > threshold && b <= threshold;
        let take = match edge {
            Edge::Rising => rising,
            Edge::Falling => falling,
            Edge::Any => rising || falling,
        };
        if take {
            let frac = (threshold - a) / (b - a);
            out.push(times[i - 1] + frac * (times[i] - times[i - 1]));
        }
    }
    out
}

/// First crossing at or after `t_min`, if any.
pub fn first_crossing_after(
    times: &[f64],
    values: &[f64],
    threshold: f64,
    edge: Edge,
    t_min: f64,
) -> Option<f64> {
    crossings(times, values, threshold, edge)
        .into_iter()
        .find(|&t| t >= t_min)
}

/// Centered finite-difference slope of a sampled waveform at sample `i`
/// (one-sided at the ends).
pub fn slope_at(times: &[f64], values: &[f64], i: usize) -> f64 {
    assert_eq!(times.len(), values.len());
    let n = times.len();
    assert!(n >= 2 && i < n);
    if i == 0 {
        (values[1] - values[0]) / (times[1] - times[0])
    } else if i == n - 1 {
        (values[n - 1] - values[n - 2]) / (times[n - 1] - times[n - 2])
    } else {
        (values[i + 1] - values[i - 1]) / (times[i + 1] - times[i - 1])
    }
}

/// Is a sample grid uniform to relative tolerance `rel_tol` (each spacing
/// within `rel_tol` of the mean spacing)?
///
/// Grids shorter than three samples are trivially uniform. Consumers that
/// special-case uniform grids (arithmetic means, index-fraction windows)
/// use this to keep their historical fixed-grid arithmetic bit-identical
/// while switching to time-weighted forms on adaptive grids; `1e-9`
/// comfortably absorbs the ULP-level spacing jitter of a grid built as
/// `t0 + k·dt` or `t0 + span·k/n`.
pub fn is_uniform_grid(times: &[f64], rel_tol: f64) -> bool {
    if times.len() < 3 {
        return true;
    }
    let span = times[times.len() - 1] - times[0];
    let mean = span / (times.len() - 1) as f64;
    if mean.is_nan() || mean <= 0.0 {
        return false;
    }
    times
        .windows(2)
        .all(|w| ((w[1] - w[0]) - mean).abs() <= rel_tol * mean)
}

/// Trapezoidal time-weighted mean of `y(t)` over the sampled span — the
/// correct "average value" on a non-uniform grid, where the arithmetic
/// sample mean would over-weight densely sampled regions.
///
/// Falls back to the plain arithmetic mean when the span is degenerate
/// (fewer than two samples or zero length).
///
/// # Panics
///
/// Panics if `times` and `values` lengths differ or are empty.
pub fn time_weighted_mean(times: &[f64], values: &[f64]) -> f64 {
    assert_eq!(times.len(), values.len());
    assert!(!times.is_empty());
    let span = times[times.len() - 1] - times[0];
    if times.len() < 2 || span <= 0.0 {
        return values.iter().sum::<f64>() / values.len() as f64;
    }
    let mut acc = 0.0;
    for i in 1..times.len() {
        acc += 0.5 * (values[i] + values[i - 1]) * (times[i] - times[i - 1]);
    }
    acc / span
}

/// Index of the sample nearest to time `t` on a sorted grid.
pub fn nearest_index(times: &[f64], t: f64) -> usize {
    match times.binary_search_by(|v| v.partial_cmp(&t).unwrap()) {
        Ok(i) => i,
        Err(0) => 0,
        Err(i) if i >= times.len() => times.len() - 1,
        Err(i) => {
            if (t - times[i - 1]).abs() <= (times[i] - t).abs() {
                i - 1
            } else {
                i
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_interior_and_clamp() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 0.0];
        assert_eq!(lerp_at(&xs, &ys, 0.5), 5.0);
        assert_eq!(lerp_at(&xs, &ys, 1.5), 5.0);
        assert_eq!(lerp_at(&xs, &ys, -1.0), 0.0);
        assert_eq!(lerp_at(&xs, &ys, 5.0), 0.0);
        assert_eq!(lerp_at(&xs, &ys, 1.0), 10.0);
    }

    #[test]
    fn finds_rising_crossing() {
        let t = [0.0, 1.0, 2.0, 3.0];
        let v = [0.0, 0.0, 1.0, 1.0];
        let c = crossings(&t, &v, 0.5, Edge::Rising);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 1.5).abs() < 1e-12);
        assert!(crossings(&t, &v, 0.5, Edge::Falling).is_empty());
    }

    #[test]
    fn finds_falling_crossing() {
        let t = [0.0, 1.0, 2.0];
        let v = [1.0, 0.0, 1.0];
        let c = crossings(&t, &v, 0.25, Edge::Falling);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 0.75).abs() < 1e-12);
        let any = crossings(&t, &v, 0.25, Edge::Any);
        assert_eq!(any.len(), 2);
    }

    #[test]
    fn first_crossing_after_skips_early() {
        let t = [0.0, 1.0, 2.0, 3.0, 4.0];
        let v = [0.0, 1.0, 0.0, 1.0, 0.0];
        let c = first_crossing_after(&t, &v, 0.5, Edge::Rising, 1.2).unwrap();
        assert!((c - 2.5).abs() < 1e-12);
        assert!(first_crossing_after(&t, &v, 0.5, Edge::Rising, 4.0).is_none());
    }

    #[test]
    fn slope_of_line_is_constant() {
        let t = [0.0, 1.0, 2.0, 3.0];
        let v = [1.0, 3.0, 5.0, 7.0];
        for i in 0..4 {
            assert!((slope_at(&t, &v, i) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn uniform_grid_detection() {
        let u: Vec<f64> = (0..100).map(|k| 1e-3 + k as f64 * 1e-6).collect();
        assert!(is_uniform_grid(&u, 1e-9));
        // Built by fraction (period·k/n) — ULP jitter must still read uniform.
        let f: Vec<f64> = (0..=256).map(|k| 1e-5 * k as f64 / 256.0).collect();
        assert!(is_uniform_grid(&f, 1e-9));
        let mut nu = u.clone();
        nu[50] += 0.5e-6;
        assert!(!is_uniform_grid(&nu, 1e-9));
        assert!(is_uniform_grid(&[0.0, 1.0], 1e-9));
        assert!(!is_uniform_grid(&[0.0, 0.0, 0.0], 1e-9));
    }

    #[test]
    fn time_weighted_mean_weights_by_spacing() {
        // y = 1 on [0, 1), y = 0 on [1, 4): mean = 1/4 regardless of how
        // densely each region is sampled.
        let t = [0.0, 0.5, 1.0, 4.0];
        let v = [1.0, 1.0, 1.0, 0.0];
        let m = time_weighted_mean(&t, &v);
        assert!((m - (1.0 + 1.5) / 4.0).abs() < 1e-12, "{m}");
        // On a uniform grid of a linear ramp it equals the midpoint value.
        let t: Vec<f64> = (0..=10).map(|k| k as f64).collect();
        let v: Vec<f64> = t.iter().map(|t| 2.0 * t).collect();
        assert!((time_weighted_mean(&t, &v) - 10.0).abs() < 1e-12);
        // Degenerate spans fall back to the sample mean.
        assert_eq!(time_weighted_mean(&[3.0], &[7.0]), 7.0);
        assert_eq!(time_weighted_mean(&[1.0, 1.0], &[2.0, 4.0]), 3.0);
    }

    #[test]
    fn nearest_index_picks_closest() {
        let t = [0.0, 1.0, 2.0];
        assert_eq!(nearest_index(&t, -5.0), 0);
        assert_eq!(nearest_index(&t, 0.4), 0);
        assert_eq!(nearest_index(&t, 0.6), 1);
        assert_eq!(nearest_index(&t, 1.0), 1);
        assert_eq!(nearest_index(&t, 9.0), 2);
    }
}
