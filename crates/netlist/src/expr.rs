//! Numbers and arithmetic expressions.
//!
//! Two jobs live here. First, [`parse_number`] turns SPICE numeric tokens —
//! plain floats, exponent notation, or SI-suffixed magnitudes (`10k`,
//! `30p`, `2meg`) — into `f64`s. Suffixes are folded into the *decimal
//! text* (e.g. `30p` becomes `"30e-12"`) before a single
//! [`f64::from_str`] call, so every value is correctly rounded exactly
//! like a Rust literal with the same digits; there is no runtime
//! multiply-by-power-of-ten that could perturb the last bit. This is what
//! lets deck-elaborated circuits match the programmatic builders
//! byte-for-byte.
//!
//! Second, a tiny expression language for quoted values (`'wp*strength'`,
//! `{sqrt(2)*u}`): `+ - * /`, unary minus, parentheses, `.param`
//! references, and the calls `sqrt`, `abs`, `min`, `max`. Evaluation is
//! plain `f64` arithmetic in source order, so a deck expression performs
//! the *same* floating-point operations as the equivalent builder code.

use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

use crate::error::{NetlistError, Span};

/// Decade shift of each SI suffix, longest-match first (`meg` before `m`).
const SUFFIXES: [(&str, i32); 9] = [
    ("meg", 6),
    ("t", 12),
    ("g", 9),
    ("k", 3),
    ("m", -3),
    ("u", -6),
    ("n", -9),
    ("p", -12),
    ("f", -15),
];

/// Parses a SPICE numeric token (optionally SI-suffixed) to an `f64`.
///
/// The suffix, if any, is merged into the exponent *textually* so the
/// final conversion is one correctly-rounded [`f64::from_str`]:
///
/// ```
/// use tranvar_netlist::{parse_number, Span};
/// let s = Span::new(1, 1);
/// assert_eq!(parse_number("30p", s).unwrap(), 30e-12);
/// assert_eq!(parse_number("1.5k", s).unwrap(), 1.5e3);
/// assert_eq!(parse_number("2meg", s).unwrap(), 2e6);
/// assert!(parse_number("1.2.3", s).is_err());
/// ```
pub fn parse_number(text: &str, span: Span) -> Result<f64, NetlistError> {
    let malformed = || NetlistError::MalformedNumber {
        span,
        text: text.to_string(),
    };
    // Fast path: ordinary float syntax (also covers exponent notation).
    // `from_str` accepts "inf"/"nan" spellings; those are not numbers in a
    // deck, so only word shapes starting like a number are allowed at all.
    let starts_numeric = text
        .strip_prefix(['+', '-'])
        .unwrap_or(text)
        .starts_with(|c: char| c.is_ascii_digit() || c == '.');
    if !starts_numeric {
        return Err(malformed());
    }
    if let Ok(v) = f64::from_str(text) {
        return if v.is_finite() {
            Ok(v)
        } else {
            Err(malformed())
        };
    }
    // Suffixed path: split a trailing alphabetic run and merge its decade
    // into the exponent text.
    let tail_start = text
        .rfind(|c: char| !c.is_ascii_alphabetic())
        .map(|i| i + 1)
        .unwrap_or(0);
    let (mantissa, tail) = text.split_at(tail_start);
    let tail_lower = tail.to_ascii_lowercase();
    let decade = SUFFIXES
        .iter()
        .find(|(s, _)| *s == tail_lower)
        .map(|(_, d)| *d)
        .ok_or_else(malformed)?;
    if mantissa.contains(['e', 'E']) {
        // `1e3k` is ambiguous; require either exponent or suffix.
        return Err(malformed());
    }
    let merged = format!("{mantissa}e{decade}");
    match f64::from_str(&merged) {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(malformed()),
    }
}

/// An arithmetic expression from a quoted deck value.
///
/// Equality ignores spans (so a formatted-and-reparsed expression compares
/// equal to the original) but *does* compare the original number text, so
/// `2u` and `2e-6` are different ASTs even though they evaluate equally.
#[derive(Clone, Debug)]
pub enum Expr {
    /// A numeric literal, keeping its source text for exact round-trips.
    Num {
        /// The parsed value.
        value: f64,
        /// The literal as written (`"30p"`, `"1.5e3"`).
        text: String,
        /// Source position.
        span: Span,
    },
    /// A `.param` reference.
    Ident {
        /// The parameter name.
        name: String,
        /// Source position.
        span: Span,
    },
    /// Unary minus.
    Neg {
        /// The negated operand.
        arg: Box<Expr>,
        /// Source position of the `-`.
        span: Span,
    },
    /// A binary operation (`+`, `-`, `*`, `/`).
    Binary {
        /// The operator character.
        op: char,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source position of the operator.
        span: Span,
    },
    /// A function call (`sqrt`, `abs`, `min`, `max`).
    Call {
        /// The function name, lower-cased.
        func: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Source position of the function name.
        span: Span,
    },
}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Expr::Num {
                    value: a, text: ta, ..
                },
                Expr::Num {
                    value: b, text: tb, ..
                },
            ) => a.to_bits() == b.to_bits() && ta == tb,
            (Expr::Ident { name: a, .. }, Expr::Ident { name: b, .. }) => a == b,
            (Expr::Neg { arg: a, .. }, Expr::Neg { arg: b, .. }) => a == b,
            (
                Expr::Binary {
                    op: oa,
                    lhs: la,
                    rhs: ra,
                    ..
                },
                Expr::Binary {
                    op: ob,
                    lhs: lb,
                    rhs: rb,
                    ..
                },
            ) => oa == ob && la == lb && ra == rb,
            (
                Expr::Call {
                    func: fa, args: aa, ..
                },
                Expr::Call {
                    func: fb, args: ab, ..
                },
            ) => fa == fb && aa == ab,
            _ => false,
        }
    }
}

impl Expr {
    /// The source position of this expression's head token.
    pub fn span(&self) -> Span {
        match self {
            Expr::Num { span, .. }
            | Expr::Ident { span, .. }
            | Expr::Neg { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Call { span, .. } => *span,
        }
    }

    /// Evaluates the expression against the `.param` environment.
    ///
    /// Arithmetic is plain `f64` in source order; a non-finite result
    /// (division by zero, overflow, `sqrt` of a negative) is an
    /// [`NetlistError::InvalidValue`].
    pub fn eval(&self, params: &HashMap<String, f64>) -> Result<f64, NetlistError> {
        let v = match self {
            Expr::Num { value, .. } => *value,
            Expr::Ident { name, span } => {
                *params
                    .get(name)
                    .ok_or_else(|| NetlistError::UndefinedParam {
                        span: *span,
                        name: name.clone(),
                    })?
            }
            Expr::Neg { arg, .. } => -arg.eval(params)?,
            Expr::Binary { op, lhs, rhs, .. } => {
                let a = lhs.eval(params)?;
                let b = rhs.eval(params)?;
                match op {
                    '+' => a + b,
                    '-' => a - b,
                    '*' => a * b,
                    _ => a / b,
                }
            }
            Expr::Call { func, args, span } => {
                let vals: Vec<f64> = args
                    .iter()
                    .map(|a| a.eval(params))
                    .collect::<Result<_, _>>()?;
                match (func.as_str(), vals.as_slice()) {
                    ("sqrt", [x]) => x.sqrt(),
                    ("abs", [x]) => x.abs(),
                    ("min", [a, b]) => a.min(*b),
                    ("max", [a, b]) => a.max(*b),
                    _ => {
                        return Err(NetlistError::Syntax {
                            span: *span,
                            what: format!(
                                "unknown function `{func}` with {} argument(s)",
                                vals.len()
                            ),
                        })
                    }
                }
            }
        };
        if v.is_finite() {
            Ok(v)
        } else {
            Err(NetlistError::InvalidValue {
                span: self.span(),
                what: "expression".to_string(),
                reason: "result is not finite".to_string(),
            })
        }
    }
}

impl fmt::Display for Expr {
    /// Prints the expression fully parenthesized with original number
    /// text, so formatting and reparsing reproduces the identical AST.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num { text, .. } => f.write_str(text),
            Expr::Ident { name, .. } => f.write_str(name),
            Expr::Neg { arg, .. } => write!(f, "(-{arg})"),
            Expr::Binary { op, lhs, rhs, .. } => write!(f, "({lhs}{op}{rhs})"),
            Expr::Call { func, args, .. } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{a}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Parses the body of a quoted expression.
///
/// `base` is the span of the opening quote character; positions inside the
/// expression are offset from `base.col + 1`.
pub fn parse_expr(body: &str, base: Span) -> Result<Expr, NetlistError> {
    let tokens = lex_expr(body, base)?;
    let mut p = ExprParser {
        tokens,
        pos: 0,
        base,
    };
    let e = p.parse_binary(0)?;
    if p.pos < p.tokens.len() {
        return Err(NetlistError::Syntax {
            span: p.tokens[p.pos].1,
            what: format!("unexpected `{}` in expression", p.tokens[p.pos].0),
        });
    }
    Ok(e)
}

#[derive(Clone, Debug, PartialEq)]
enum ETok {
    Num(f64, String),
    Ident(String),
    Op(char),
}

impl fmt::Display for ETok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ETok::Num(_, t) => f.write_str(t),
            ETok::Ident(n) => f.write_str(n),
            ETok::Op(c) => write!(f, "{c}"),
        }
    }
}

fn lex_expr(body: &str, base: Span) -> Result<Vec<(ETok, Span)>, NetlistError> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let span = Span::new(base.line, base.col + 1 + i as u32);
        match c {
            ' ' | '\t' => i += 1,
            '+' | '-' | '*' | '/' | '(' | ')' | ',' => {
                out.push((ETok::Op(c), span));
                i += 1;
            }
            _ if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                // exponent: e/E followed by digits or a signed digit run
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                // SI suffix letters glued to the digits
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphabetic() {
                    i += 1;
                }
                let text = &body[start..i];
                let value = parse_number(text, span)?;
                out.push((ETok::Num(value, text.to_string()), span));
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'.')
                {
                    i += 1;
                }
                out.push((ETok::Ident(body[start..i].to_string()), span));
            }
            _ => {
                return Err(NetlistError::Syntax {
                    span,
                    what: format!("unexpected character `{c}` in expression"),
                });
            }
        }
    }
    Ok(out)
}

struct ExprParser {
    tokens: Vec<(ETok, Span)>,
    pos: usize,
    base: Span,
}

impl ExprParser {
    fn peek(&self) -> Option<&(ETok, Span)> {
        self.tokens.get(self.pos)
    }

    fn parse_binary(&mut self, min_prec: u8) -> Result<Expr, NetlistError> {
        let mut lhs = self.parse_unary()?;
        while let Some((ETok::Op(op), span)) = self.peek().cloned() {
            let prec = match op {
                '+' | '-' => 1,
                '*' | '/' => 2,
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.parse_binary(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, NetlistError> {
        match self.peek().cloned() {
            Some((ETok::Op('-'), span)) => {
                self.pos += 1;
                Ok(Expr::Neg {
                    arg: Box::new(self.parse_unary()?),
                    span,
                })
            }
            Some((ETok::Op('+'), _)) => {
                self.pos += 1;
                self.parse_unary()
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, NetlistError> {
        let Some((tok, span)) = self.peek().cloned() else {
            return Err(NetlistError::Syntax {
                span: self.base,
                what: "empty or truncated expression".to_string(),
            });
        };
        self.pos += 1;
        match tok {
            ETok::Num(value, text) => Ok(Expr::Num { value, text, span }),
            ETok::Ident(name) => {
                if let Some((ETok::Op('('), _)) = self.peek() {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some((ETok::Op(')'), _))) {
                        loop {
                            args.push(self.parse_binary(0)?);
                            match self.peek().cloned() {
                                Some((ETok::Op(','), _)) => self.pos += 1,
                                Some((ETok::Op(')'), _)) => break,
                                other => {
                                    let at = other.map(|(_, s)| s).unwrap_or(span);
                                    return Err(NetlistError::Syntax {
                                        span: at,
                                        what: "expected `,` or `)` in call".to_string(),
                                    });
                                }
                            }
                        }
                    }
                    self.pos += 1; // consume `)`
                    Ok(Expr::Call {
                        func: name.to_ascii_lowercase(),
                        args,
                        span,
                    })
                } else {
                    Ok(Expr::Ident { name, span })
                }
            }
            ETok::Op('(') => {
                let inner = self.parse_binary(0)?;
                match self.peek() {
                    Some((ETok::Op(')'), _)) => {
                        self.pos += 1;
                        Ok(inner)
                    }
                    _ => Err(NetlistError::Syntax {
                        span,
                        what: "unclosed parenthesis in expression".to_string(),
                    }),
                }
            }
            ETok::Op(c) => Err(NetlistError::Syntax {
                span,
                what: format!("unexpected `{c}` in expression"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Span {
        Span::new(1, 1)
    }

    #[test]
    fn suffixes_match_literal_bits() {
        let cases: [(&str, f64); 11] = [
            ("30p", 30e-12),
            ("10f", 10e-15),
            ("1.5k", 1.5e3),
            ("2meg", 2e6),
            ("0.42n", 0.42e-9),
            ("1t", 1e12),
            ("3g", 3e9),
            ("5m", 5e-3),
            ("2u", 2e-6),
            ("1.0e-6", 1.0e-6),
            ("-0.5", -0.5),
        ];
        for (text, want) in cases {
            let got = parse_number(text, s()).unwrap();
            assert_eq!(got.to_bits(), want.to_bits(), "{text}");
        }
    }

    #[test]
    fn malformed_numbers_are_rejected() {
        for text in [
            "1.2.3", "k", "1e3k", "abc", "nan", "inf", "1..2", "--1", "1z",
        ] {
            assert!(
                matches!(
                    parse_number(text, s()),
                    Err(NetlistError::MalformedNumber { .. })
                ),
                "{text}"
            );
        }
    }

    #[test]
    fn expression_eval_matches_builder_arithmetic() {
        let mut env = HashMap::new();
        env.insert("wp".to_string(), 2.0e-6);
        env.insert("strength".to_string(), 0.75);
        let e = parse_expr("wp*strength", s()).unwrap();
        assert_eq!(
            e.eval(&env).unwrap().to_bits(),
            (2.0e-6 * 0.75f64).to_bits()
        );
        let e = parse_expr("sqrt(2)*wp", s()).unwrap();
        assert_eq!(
            e.eval(&env).unwrap().to_bits(),
            (2.0f64.sqrt() * 2.0e-6).to_bits()
        );
        let e = parse_expr("min(1,2)+max(3,4)-abs(-5)", s()).unwrap();
        assert_eq!(e.eval(&env).unwrap(), 0.0);
    }

    #[test]
    fn precedence_and_unary() {
        let env = HashMap::new();
        let e = parse_expr("1+2*3", s()).unwrap();
        assert_eq!(e.eval(&env).unwrap(), 7.0);
        let e = parse_expr("-(1+2)/2", s()).unwrap();
        assert_eq!(e.eval(&env).unwrap(), -1.5);
        let e = parse_expr("2*-3", s()).unwrap();
        assert_eq!(e.eval(&env).unwrap(), -6.0);
    }

    #[test]
    fn display_round_trips_to_equal_ast() {
        for body in [
            "wp*strength",
            "sqrt(2)*u+3.3k",
            "-(a-b)/(c+2meg)",
            "min(1,max(2,3))",
            "1.5e-9",
            "30p",
        ] {
            let e = parse_expr(body, s()).unwrap();
            let printed = e.to_string();
            let again = parse_expr(&printed, s()).unwrap();
            assert_eq!(e, again, "{body} -> {printed}");
        }
    }

    #[test]
    fn eval_errors_are_typed() {
        let env = HashMap::new();
        let e = parse_expr("nope+1", s()).unwrap();
        assert!(matches!(
            e.eval(&env),
            Err(NetlistError::UndefinedParam { .. })
        ));
        let e = parse_expr("1/0", s()).unwrap();
        assert!(matches!(
            e.eval(&env),
            Err(NetlistError::InvalidValue { .. })
        ));
        let e = parse_expr("frob(1)", s()).unwrap();
        assert!(matches!(e.eval(&env), Err(NetlistError::Syntax { .. })));
        assert!(parse_expr("1+", s()).is_err());
        assert!(parse_expr("(1", s()).is_err());
        assert!(parse_expr("", s()).is_err());
    }
}
