//! Elaboration: a parsed [`Deck`] → a [`Circuit`] plus campaign inputs.
//!
//! Elaboration walks the cards in deck order. Definition cards (`.param`,
//! `.model`, `.subckt`) are define-before-use; element and `X` cards add
//! devices to the circuit *in card order*, which fixes both the MNA node
//! numbering (nodes are created at first mention; `.node` pre-declares a
//! creation order) and the device stamp order. Both orders affect
//! floating-point accumulation, so a deck that lists its cards in the same
//! order as a programmatic builder reproduces that builder's results
//! bit-for-bit — the property the golden-deck conformance suite asserts.
//!
//! Campaign cards (`.sigma`, `.sweep`, `.measure`, `.tran`/`.pss`,
//! `.option`) are collected during the walk and applied *after* all
//! elements exist: `.sigma` annotations are applied over matching devices
//! in insertion order (mirroring builders that annotate each device right
//! after adding it), and `.sweep` grids lower onto [`CircuitOverride`]
//! axes whose cross product becomes the scenario list (later cards vary
//! fastest).
//!
//! Every failure — including value-domain violations that the `Circuit`
//! builder methods would assert on — is caught *before* touching the
//! circuit and returned as a spanned [`NetlistError`]; elaboration never
//! panics on any input.

use std::collections::HashMap;

use tranvar_circuit::{
    Circuit, CircuitOverride, DeviceId, MosModel, MosType, NodeId, Pulse, Waveform,
};
use tranvar_core::{Metric, MetricSpec, PssConfig, Scenario};
use tranvar_num::interp::Edge;
use tranvar_pss::{OscOptions, PssOptions};

use crate::ast::{
    Card, CardKind, Deck, Element, Instance, MeasureCard, ModelCard, Name, PssCard, SigmaCard,
    SubcktDef, SweepCard, Value, WaveSpec,
};
use crate::error::{NetlistError, Span};

/// The analysis a deck requests (`.tran` or `.pss`).
#[derive(Clone, Debug, PartialEq)]
pub enum Analysis {
    /// `.tran tstep tstop`: plain transient (not a campaign analysis; the
    /// serving layer rejects it, but programmatic callers can run it).
    Tran {
        /// Time step (s).
        tstep: f64,
        /// Stop time (s).
        tstop: f64,
    },
    /// `.pss <period> [steps= warmup= tol= step_limit=]`: driven
    /// periodic steady state.
    PssDriven {
        /// Forcing period (s).
        period: f64,
        /// `steps=`: shooting steps per period.
        n_steps: Option<usize>,
        /// `warmup=`: forward warm-up cycles.
        warmup_cycles: Option<usize>,
        /// `tol=`: shooting convergence tolerance.
        tol: Option<f64>,
        /// `step_limit=`: inner-Newton update clamp.
        step_limit: Option<f64>,
    },
    /// `.pss osc hint= node= value= [steps= tol=]`: autonomous
    /// (oscillator) periodic steady state.
    PssAutonomous {
        /// `hint=`: order-of-magnitude period estimate (s).
        period_hint: f64,
        /// `node=`: phase-condition node.
        phase_node: NodeId,
        /// `value=`: phase-condition level (V).
        phase_value: f64,
        /// `steps=`: shooting steps per period.
        n_steps: Option<usize>,
        /// `tol=`: shooting convergence tolerance.
        tol: Option<f64>,
    },
}

impl Analysis {
    /// The campaign [`PssConfig`] this analysis maps to (`None` for
    /// `.tran`, which is not a periodic analysis).
    pub fn pss_config(&self) -> Option<PssConfig> {
        match self {
            Analysis::Tran { .. } => None,
            Analysis::PssDriven {
                period,
                n_steps,
                warmup_cycles,
                tol,
                step_limit,
            } => {
                let mut opts = PssOptions::default();
                if let Some(n) = n_steps {
                    opts.n_steps = *n;
                }
                if let Some(w) = warmup_cycles {
                    opts.warmup_cycles = *w;
                }
                if let Some(t) = tol {
                    opts.tol = *t;
                }
                if let Some(s) = step_limit {
                    opts.newton.step_limit = *s;
                }
                Some(PssConfig::Driven {
                    period: *period,
                    opts,
                })
            }
            Analysis::PssAutonomous {
                period_hint,
                phase_node,
                phase_value,
                n_steps,
                tol,
            } => {
                let mut opts = OscOptions::default();
                if let Some(n) = n_steps {
                    opts.pss.n_steps = *n;
                }
                if let Some(t) = tol {
                    opts.pss.tol = *t;
                }
                Some(PssConfig::Autonomous {
                    period_hint: *period_hint,
                    phase_node: *phase_node,
                    phase_value: *phase_value,
                    opts,
                })
            }
        }
    }
}

/// Everything a deck defines: the circuit plus its campaign inputs.
#[derive(Clone, Debug)]
pub struct Elaboration {
    /// The deck title (line 1).
    pub title: String,
    /// The elaborated circuit with all mismatch annotations applied.
    pub circuit: Circuit,
    /// The requested analysis, if the deck has a `.tran`/`.pss` card.
    pub analysis: Option<Analysis>,
    /// Metrics from `.measure` cards, in card order.
    pub metrics: Vec<MetricSpec>,
    /// Scenario grid from the `.sweep` cross product (a single `"nominal"`
    /// scenario when the deck has no `.sweep` cards).
    pub scenarios: Vec<Scenario>,
    /// `.option retry=`: enable the campaign retry ladder.
    pub retry: bool,
    /// `.option deadline_ms=`: cooperative solve deadline.
    pub deadline_ms: Option<u64>,
}

/// What kind of device a label names (for `.sigma`/`.sweep` targeting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DevKind {
    Resistor,
    Capacitor,
    Inductor,
    Vsource,
    Isource,
    Vcvs,
    Vccs,
    Mosfet,
}

/// One added device, tracked by the elaborator for label-based targeting
/// (the `Circuit` itself does not expose labels).
struct Added {
    label: String,
    kind: DevKind,
    id: DeviceId,
}

/// Simple `*` glob match (any character run), case-sensitive.
fn glob_match(pattern: &str, text: &str) -> bool {
    fn rec(p: &[u8], t: &[u8]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some(b'*') => (0..=t.len()).any(|k| rec(&p[1..], &t[k..])),
            Some(c) => t.first() == Some(c) && rec(&p[1..], &t[1..]),
        }
    }
    rec(pattern.as_bytes(), text.as_bytes())
}

struct Elaborator {
    circuit: Circuit,
    params: HashMap<String, f64>,
    models: HashMap<String, (MosType, MosModel)>,
    model_spans: HashMap<String, Span>,
    subckts: HashMap<String, SubcktDef>,
    added: Vec<Added>,
    labels: HashMap<String, Span>,
    /// Non-ground node name → (first-mention span, terminal-connection
    /// count). `.node` declarations start at zero connections.
    node_refs: Vec<(String, Span, usize)>,
}

impl Elaborator {
    fn new() -> Self {
        Elaborator {
            circuit: Circuit::new(),
            params: HashMap::new(),
            models: HashMap::new(),
            model_spans: HashMap::new(),
            subckts: HashMap::new(),
            added: Vec::new(),
            labels: HashMap::new(),
            node_refs: Vec::new(),
        }
    }

    /// Evaluates a value in the global parameter environment.
    fn eval(&self, v: &Value) -> Result<f64, NetlistError> {
        v.expr.eval(&self.params)
    }

    /// Evaluates a value and requires it positive and finite.
    fn eval_positive(&self, v: &Value, what: &str) -> Result<f64, NetlistError> {
        eval_positive_in(&self.params, v, what)
    }

    fn is_ground(name: &str) -> bool {
        name == "0" || name.eq_ignore_ascii_case("gnd")
    }

    /// Resolves a node name, creating it on first use and counting the
    /// terminal connection.
    fn node(&mut self, name: &Name) -> NodeId {
        let id = self.circuit.node(&name.text);
        if !Self::is_ground(&name.text) {
            match self.node_refs.iter_mut().find(|(n, _, _)| *n == name.text) {
                Some((_, _, count)) => *count += 1,
                None => self.node_refs.push((name.text.clone(), name.span, 1)),
            }
        }
        id
    }

    /// Pre-declares nodes in `.node` card order (zero connections so far).
    fn declare_nodes(&mut self, nodes: &[Name]) {
        for n in nodes {
            self.circuit.node(&n.text);
            if !Self::is_ground(&n.text)
                && !self.node_refs.iter().any(|(name, _, _)| *name == n.text)
            {
                self.node_refs.push((n.text.clone(), n.span, 0));
            }
        }
    }

    /// Claims a device label, rejecting duplicates.
    fn claim_label(&mut self, label: &Name) -> Result<(), NetlistError> {
        if self.labels.contains_key(&label.text) {
            return Err(NetlistError::DuplicateDevice {
                span: label.span,
                name: label.text.clone(),
            });
        }
        self.labels.insert(label.text.clone(), label.span);
        Ok(())
    }

    fn define_param(&mut self, name: &Name, value: &Value) -> Result<(), NetlistError> {
        let v = self.eval(value)?;
        self.params.insert(name.text.clone(), v);
        Ok(())
    }

    fn define_model(&mut self, m: &ModelCard) -> Result<(), NetlistError> {
        if self.model_spans.contains_key(&m.name.text) {
            return Err(NetlistError::DuplicateModel {
                span: m.name.span,
                name: m.name.text.clone(),
            });
        }
        let (ty, mut model) = if m.kind.text == "nmos" {
            (MosType::Nmos, MosModel::nmos_013())
        } else {
            (MosType::Pmos, MosModel::pmos_013())
        };
        for (key, value) in &m.params {
            let v = self.eval(value)?;
            if !v.is_finite() {
                return Err(NetlistError::InvalidValue {
                    span: value.span,
                    what: format!("model parameter `{}`", key.text),
                    reason: "must be finite".to_string(),
                });
            }
            match key.text.as_str() {
                "vt0" => model.vt0 = v,
                "kp" => model.kp = v,
                "lambda" => model.lambda = v,
                "n_sub" => model.n_sub = v,
                "cox" => model.cox = v,
                "cov" => model.cov = v,
                "cj" => model.cj = v,
                "gamma_noise" => model.gamma_noise = v,
                "kf" => model.kf = v,
                _ => {
                    return Err(NetlistError::Syntax {
                        span: key.span,
                        what: format!("unknown model parameter `{}`", key.text),
                    })
                }
            }
        }
        self.model_spans.insert(m.name.text.clone(), m.name.span);
        self.models.insert(m.name.text.clone(), (ty, model));
        Ok(())
    }

    /// Adds one element card to the circuit. `env` is the parameter
    /// environment values are evaluated in (the global one at top level; a
    /// merged one inside a subcircuit instance).
    fn add_element(
        &mut self,
        e: &Element,
        env: &HashMap<String, f64>,
        rename: &dyn Fn(&Name) -> Name,
    ) -> Result<(), NetlistError> {
        match e {
            Element::Passive {
                kind,
                label,
                p,
                n,
                value,
            } => {
                let label = rename(label);
                self.claim_label(&label)?;
                let what = match kind {
                    'R' => "resistance",
                    'C' => "capacitance",
                    _ => "inductance",
                };
                let v = eval_positive_in(env, value, what)?;
                let (p, n) = (rename(p), rename(n));
                let (a, b) = (self.node(&p), self.node(&n));
                let id = match kind {
                    'R' => self.circuit.add_resistor(&label.text, a, b, v),
                    'C' => self.circuit.add_capacitor(&label.text, a, b, v),
                    _ => self.circuit.add_inductor(&label.text, a, b, v),
                };
                self.added.push(Added {
                    label: label.text,
                    kind: match kind {
                        'R' => DevKind::Resistor,
                        'C' => DevKind::Capacitor,
                        _ => DevKind::Inductor,
                    },
                    id,
                });
            }
            Element::Source {
                kind,
                label,
                p,
                n,
                wave,
            } => {
                let label = rename(label);
                self.claim_label(&label)?;
                let wave = self.build_wave(wave, env)?;
                let (p, n) = (rename(p), rename(n));
                let (a, b) = (self.node(&p), self.node(&n));
                let (id, kind_tag) = if *kind == 'V' {
                    (
                        self.circuit.add_vsource(&label.text, a, b, wave),
                        DevKind::Vsource,
                    )
                } else {
                    (
                        self.circuit.add_isource(&label.text, a, b, wave),
                        DevKind::Isource,
                    )
                };
                self.added.push(Added {
                    label: label.text,
                    kind: kind_tag,
                    id,
                });
            }
            Element::Controlled {
                kind,
                label,
                p,
                n,
                cp,
                cn,
                gain,
            } => {
                let label = rename(label);
                self.claim_label(&label)?;
                let g = env_eval_finite(env, gain, "gain")?;
                let (p, n, cp, cn) = (rename(p), rename(n), rename(cp), rename(cn));
                let (a, b) = (self.node(&p), self.node(&n));
                let (c, d) = (self.node(&cp), self.node(&cn));
                let (id, kind_tag) = if *kind == 'E' {
                    (
                        self.circuit.add_vcvs(&label.text, a, b, c, d, g),
                        DevKind::Vcvs,
                    )
                } else {
                    (
                        self.circuit.add_vccs(&label.text, a, b, c, d, g),
                        DevKind::Vccs,
                    )
                };
                self.added.push(Added {
                    label: label.text,
                    kind: kind_tag,
                    id,
                });
            }
            Element::Mosfet {
                label,
                d,
                g,
                s,
                model,
                w,
                l,
            } => {
                let label = rename(label);
                self.claim_label(&label)?;
                let (ty, card) =
                    *self
                        .models
                        .get(&model.text)
                        .ok_or_else(|| NetlistError::UnknownModel {
                            span: model.span,
                            name: model.text.clone(),
                        })?;
                let wv = eval_positive_in(env, w, "channel width")?;
                let lv = eval_positive_in(env, l, "channel length")?;
                let (d, g, s) = (rename(d), rename(g), rename(s));
                let (dn, gn, sn) = (self.node(&d), self.node(&g), self.node(&s));
                let id = self
                    .circuit
                    .add_mosfet(&label.text, dn, gn, sn, ty, card, wv, lv);
                self.added.push(Added {
                    label: label.text,
                    kind: DevKind::Mosfet,
                    id,
                });
            }
        }
        Ok(())
    }

    fn build_wave(
        &self,
        wave: &WaveSpec,
        env: &HashMap<String, f64>,
    ) -> Result<Waveform, NetlistError> {
        let f = |v: &Value, what: &str| env_eval_finite(env, v, what);
        Ok(match wave {
            WaveSpec::Dc(v) => Waveform::Dc(f(v, "dc level")?),
            WaveSpec::Pulse(v) => Waveform::Pulse(Pulse {
                v0: f(&v[0], "pulse v0")?,
                v1: f(&v[1], "pulse v1")?,
                delay: f(&v[2], "pulse delay")?,
                rise: f(&v[3], "pulse rise")?,
                fall: f(&v[4], "pulse fall")?,
                width: f(&v[5], "pulse width")?,
                period: f(&v[6], "pulse period")?,
            }),
            WaveSpec::Sin(v) => Waveform::Sin {
                offset: f(&v[0], "sin offset")?,
                ampl: f(&v[1], "sin ampl")?,
                freq: f(&v[2], "sin freq")?,
                delay: f(&v[3], "sin delay")?,
            },
            WaveSpec::Pwl(pts) => {
                let mut out = Vec::with_capacity(pts.len());
                for (t, v) in pts {
                    out.push((f(t, "pwl time")?, f(v, "pwl value")?));
                }
                Waveform::Pwl(out)
            }
        })
    }

    /// Flattens an `X` instance: body elements are added with
    /// `{prefix}.{name}` labels, inner nodes become `{prefix}.{node}`, and
    /// port references map to the instance's outer nodes.
    fn add_instance(&mut self, x: &Instance) -> Result<(), NetlistError> {
        let def = self
            .subckts
            .get(&x.subckt.text)
            .ok_or_else(|| NetlistError::UnknownSubckt {
                span: x.subckt.span,
                name: x.subckt.text.clone(),
            })?
            .clone();
        if x.nodes.len() != def.ports.len() {
            return Err(NetlistError::PortMismatch {
                span: x.label.span,
                name: def.name.text.clone(),
                expected: def.ports.len(),
                got: x.nodes.len(),
            });
        }
        // `Xinv0` → prefix `inv0`, matching the programmatic builders'
        // `{label}.MP` / `{label}.out` convention.
        let prefix = x.label.text[1..].to_string();
        if prefix.is_empty() {
            return Err(NetlistError::Syntax {
                span: x.label.span,
                what: "instance label needs a name after the `X`".to_string(),
            });
        }
        // Instance environment: global params, then subckt defaults, then
        // instance overrides (defaults and overrides evaluate in the global
        // environment).
        let mut env = self.params.clone();
        for (key, value) in &def.params {
            let v = self.eval(value)?;
            env.insert(key.text.clone(), v);
        }
        for (key, value) in &x.params {
            if !def.params.iter().any(|(k, _)| k.text == key.text) {
                return Err(NetlistError::Syntax {
                    span: key.span,
                    what: format!(
                        "subcircuit `{}` has no parameter `{}`",
                        def.name.text, key.text
                    ),
                });
            }
            let v = self.eval(value)?;
            env.insert(key.text.clone(), v);
        }
        let port_map: HashMap<&str, &Name> = def
            .ports
            .iter()
            .zip(x.nodes.iter())
            .map(|(port, outer)| (port.text.as_str(), outer))
            .collect();
        let rename = |name: &Name| -> Name {
            if let Some(outer) = port_map.get(name.text.as_str()) {
                Name {
                    text: outer.text.clone(),
                    span: name.span,
                }
            } else if Self::is_ground(&name.text) {
                name.clone()
            } else {
                Name {
                    text: format!("{prefix}.{}", name.text),
                    span: name.span,
                }
            }
        };
        for e in &def.body {
            self.add_element(e, &env, &rename)?;
        }
        Ok(())
    }

    /// Applies one `.sigma` card over the matching devices in insertion
    /// order.
    fn apply_sigma(&mut self, card: &SigmaCard) -> Result<(), NetlistError> {
        let kv = sigma_kv(card, &self.params)?;
        let want_kind = match card.kind.text.as_str() {
            "pelgrom" => DevKind::Mosfet,
            "r" => DevKind::Resistor,
            "c" => DevKind::Capacitor,
            _ => DevKind::Inductor,
        };
        let targets: Vec<DeviceId> = self
            .added
            .iter()
            .filter(|a| a.kind == want_kind && glob_match(&card.pattern.text, &a.label))
            .map(|a| a.id)
            .collect();
        if targets.is_empty() {
            return Err(NetlistError::UnknownLabel {
                span: card.pattern.span,
                name: card.pattern.text.clone(),
            });
        }
        match kv {
            SigmaKv::Pelgrom { avt, abeta } => {
                for id in targets {
                    self.circuit.annotate_pelgrom(id, avt, abeta);
                }
            }
            SigmaKv::Passive { sigma } => {
                for id in targets {
                    match want_kind {
                        DevKind::Resistor => {
                            self.circuit.annotate_resistor_mismatch(id, sigma);
                        }
                        DevKind::Capacitor => {
                            self.circuit.annotate_capacitor_mismatch(id, sigma);
                        }
                        _ => {
                            self.circuit.annotate_inductor_mismatch(id, sigma);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Finds a device by exact label and kind for `.sweep` targeting.
    fn find_target(&self, name: &Name, kinds: &[DevKind]) -> Result<DeviceId, NetlistError> {
        self.added
            .iter()
            .find(|a| a.label == name.text && kinds.contains(&a.kind))
            .map(|a| a.id)
            .ok_or_else(|| NetlistError::UnknownLabel {
                span: name.span,
                name: name.text.clone(),
            })
    }

    /// Lowers one `.sweep` card to a labeled override axis.
    fn sweep_axis(&self, card: &SweepCard) -> Result<SweepAxis, NetlistError> {
        let mut points = Vec::with_capacity(card.values.len());
        match card.kind.text.as_str() {
            "sigma" => {
                for v in &card.values {
                    let factor = env_eval_finite(&self.params, v, "sigma factor")?;
                    if factor < 0.0 {
                        return Err(NetlistError::InvalidValue {
                            span: v.span,
                            what: "sigma factor".to_string(),
                            reason: "must be non-negative".to_string(),
                        });
                    }
                    points.push((
                        format!("sigma={}", v.expr),
                        CircuitOverride::SigmaScale { factor },
                    ));
                }
            }
            kind => {
                let target = card.target.as_ref().expect("parser ensures a target");
                let (kinds, what): (&[DevKind], &str) = match kind {
                    "source" | "scale" => (&[DevKind::Vsource, DevKind::Isource], "source level"),
                    "r" => (&[DevKind::Resistor], "resistance"),
                    "c" => (&[DevKind::Capacitor], "capacitance"),
                    "l" => (&[DevKind::Inductor], "inductance"),
                    _ => (&[DevKind::Mosfet], "channel width"),
                };
                let device = self.find_target(target, kinds)?;
                for v in &card.values {
                    let ov = match kind {
                        "source" => CircuitOverride::SourceDc {
                            device,
                            value: env_eval_finite(&self.params, v, what)?,
                        },
                        "scale" => CircuitOverride::SourceScale {
                            device,
                            factor: env_eval_finite(&self.params, v, what)?,
                        },
                        "r" => CircuitOverride::Resistance {
                            device,
                            ohms: eval_positive_in(&self.params, v, what)?,
                        },
                        "c" => CircuitOverride::Capacitance {
                            device,
                            farads: eval_positive_in(&self.params, v, what)?,
                        },
                        "l" => CircuitOverride::Inductance {
                            device,
                            henries: eval_positive_in(&self.params, v, what)?,
                        },
                        _ => CircuitOverride::MosWidth {
                            device,
                            width: eval_positive_in(&self.params, v, what)?,
                        },
                    };
                    points.push((format!("{}={}", target.text, v.expr), ov));
                }
            }
        }
        Ok(SweepAxis { points })
    }

    /// Lowers one `.measure` card to a metric spec.
    fn measure(&self, card: &MeasureCard) -> Result<MetricSpec, NetlistError> {
        let find_node = |name: &Name| -> Result<NodeId, NetlistError> {
            self.circuit
                .find_node(&name.text)
                .map_err(|_| NetlistError::UnknownLabel {
                    span: name.span,
                    name: name.text.clone(),
                })
        };
        let metric = match card.kind.text.as_str() {
            "avg" => Metric::DcAverage {
                node: find_node(card.node.as_ref().expect("parser ensures a node"))?,
            },
            "freq" => Metric::Frequency,
            _ => {
                let node = find_node(card.node.as_ref().expect("parser ensures a node"))?;
                let mut threshold = None;
                let mut t_after = 0.0;
                let mut t_ref = 0.0;
                for (key, value) in &card.kv {
                    let v = env_eval_finite(&self.params, value, &key.text)?;
                    match key.text.as_str() {
                        "threshold" => threshold = Some(v),
                        "after" => t_after = v,
                        "ref" => t_ref = v,
                        _ => {
                            return Err(NetlistError::Syntax {
                                span: key.span,
                                what: format!("unknown `.measure delay` key `{}`", key.text),
                            })
                        }
                    }
                }
                let threshold = threshold.ok_or_else(|| NetlistError::Syntax {
                    span: card.name.span,
                    what: "`.measure delay` needs `threshold=`".to_string(),
                })?;
                let edge = card.edge.as_ref().ok_or_else(|| NetlistError::Syntax {
                    span: card.name.span,
                    what: "`.measure delay` needs `edge=rise` or `edge=fall`".to_string(),
                })?;
                let edge = match edge.text.as_str() {
                    "rise" => Edge::Rising,
                    "fall" => Edge::Falling,
                    other => {
                        return Err(NetlistError::Syntax {
                            span: card.edge.as_ref().unwrap().span,
                            what: format!("edge must be `rise` or `fall`, not `{other}`"),
                        })
                    }
                };
                Metric::CrossingShift {
                    node,
                    threshold,
                    edge,
                    t_after,
                    t_ref,
                }
            }
        };
        Ok(MetricSpec::new(&card.name.text, metric))
    }

    /// Lowers one `.pss` card (nodes must already exist).
    fn analysis_pss(&self, span: Span, card: &PssCard) -> Result<Analysis, NetlistError> {
        let mut n_steps = None;
        let mut warmup = None;
        let mut tol = None;
        let mut step_limit = None;
        let mut hint = None;
        let mut phase_value = None;
        for (key, value) in &card.kv {
            match key.text.as_str() {
                "steps" => n_steps = Some(eval_count(&self.params, value, "steps")?),
                "warmup" if !card.osc => warmup = Some(eval_count(&self.params, value, "warmup")?),
                "tol" => tol = Some(eval_positive_in(&self.params, value, "tol")?),
                "step_limit" if !card.osc => {
                    step_limit = Some(eval_positive_in(&self.params, value, "step_limit")?)
                }
                "hint" if card.osc => {
                    hint = Some(eval_positive_in(&self.params, value, "period hint")?)
                }
                "value" if card.osc => {
                    phase_value = Some(env_eval_finite(&self.params, value, "phase value")?)
                }
                _ => {
                    return Err(NetlistError::Syntax {
                        span: key.span,
                        what: format!("unknown `.pss` key `{}`", key.text),
                    })
                }
            }
        }
        if card.osc {
            let period_hint = hint.ok_or_else(|| NetlistError::Syntax {
                span,
                what: "`.pss osc` needs `hint=`".to_string(),
            })?;
            let node = card.node.as_ref().ok_or_else(|| NetlistError::Syntax {
                span,
                what: "`.pss osc` needs `node=`".to_string(),
            })?;
            let phase_node =
                self.circuit
                    .find_node(&node.text)
                    .map_err(|_| NetlistError::UnknownLabel {
                        span: node.span,
                        name: node.text.clone(),
                    })?;
            let phase_value = phase_value.ok_or_else(|| NetlistError::Syntax {
                span,
                what: "`.pss osc` needs `value=`".to_string(),
            })?;
            Ok(Analysis::PssAutonomous {
                period_hint,
                phase_node,
                phase_value,
                n_steps,
                tol,
            })
        } else {
            let period = card.period.as_ref().expect("parser ensures a period");
            let period = eval_positive_in(&self.params, period, "period")?;
            if card.node.is_some() {
                return Err(NetlistError::Syntax {
                    span,
                    what: "`node=` is only valid on `.pss osc`".to_string(),
                });
            }
            Ok(Analysis::PssDriven {
                period,
                n_steps,
                warmup_cycles: warmup,
                tol,
                step_limit,
            })
        }
    }
}

/// The evaluated payload of a `.sigma` card.
enum SigmaKv {
    Pelgrom { avt: f64, abeta: f64 },
    Passive { sigma: f64 },
}

fn sigma_kv(card: &SigmaCard, params: &HashMap<String, f64>) -> Result<SigmaKv, NetlistError> {
    let mut avt = None;
    let mut abeta = None;
    let mut sigma = None;
    for (key, value) in &card.kv {
        let expect_pelgrom = card.kind.text == "pelgrom";
        match key.text.as_str() {
            "avt" if expect_pelgrom => {
                avt = Some(eval_positive_in(params, value, "avt")?);
            }
            "abeta" if expect_pelgrom => {
                abeta = Some(eval_positive_in(params, value, "abeta")?);
            }
            "sigma" if !expect_pelgrom => {
                sigma = Some(eval_positive_in(params, value, "sigma")?);
            }
            _ => {
                return Err(NetlistError::Syntax {
                    span: key.span,
                    what: format!("unknown `.sigma {}` key `{}`", card.kind.text, key.text),
                })
            }
        }
    }
    if card.kind.text == "pelgrom" {
        let avt = avt.ok_or_else(|| NetlistError::Syntax {
            span: card.kind.span,
            what: "`.sigma pelgrom` needs `avt=`".to_string(),
        })?;
        let abeta = abeta.ok_or_else(|| NetlistError::Syntax {
            span: card.kind.span,
            what: "`.sigma pelgrom` needs `abeta=`".to_string(),
        })?;
        Ok(SigmaKv::Pelgrom { avt, abeta })
    } else {
        let sigma = sigma.ok_or_else(|| NetlistError::Syntax {
            span: card.kind.span,
            what: format!("`.sigma {}` needs `sigma=`", card.kind.text),
        })?;
        Ok(SigmaKv::Passive { sigma })
    }
}

/// One sweep axis: labeled override points.
struct SweepAxis {
    points: Vec<(String, CircuitOverride)>,
}

fn env_eval_finite(env: &HashMap<String, f64>, v: &Value, what: &str) -> Result<f64, NetlistError> {
    let x = v.expr.eval(env)?;
    if !x.is_finite() {
        return Err(NetlistError::InvalidValue {
            span: v.span,
            what: what.to_string(),
            reason: "must be finite".to_string(),
        });
    }
    Ok(x)
}

fn eval_positive_in(
    env: &HashMap<String, f64>,
    v: &Value,
    what: &str,
) -> Result<f64, NetlistError> {
    let x = env_eval_finite(env, v, what)?;
    if x <= 0.0 {
        return Err(NetlistError::InvalidValue {
            span: v.span,
            what: what.to_string(),
            reason: "must be positive".to_string(),
        });
    }
    Ok(x)
}

fn eval_count(env: &HashMap<String, f64>, v: &Value, what: &str) -> Result<usize, NetlistError> {
    let x = env_eval_finite(env, v, what)?;
    if x < 0.0 || x.fract() != 0.0 || x > 1e9 {
        return Err(NetlistError::InvalidValue {
            span: v.span,
            what: what.to_string(),
            reason: "must be a non-negative integer".to_string(),
        });
    }
    Ok(x as usize)
}

/// Elaborates a parsed deck into a circuit plus campaign inputs.
///
/// See the module docs for ordering semantics. All failures are spanned
/// [`NetlistError`]s; this function never panics on any input.
pub fn elaborate(deck: &Deck) -> Result<Elaboration, NetlistError> {
    let mut el = Elaborator::new();
    let top_rename = |name: &Name| name.clone();

    // Pass 1, in card order: definitions and elements.
    let mut sigma_cards = Vec::new();
    let mut sweep_cards = Vec::new();
    let mut measure_cards = Vec::new();
    let mut option_cards = Vec::new();
    let mut analysis_card: Option<&Card> = None;
    for card in &deck.cards {
        match &card.kind {
            CardKind::Node(nodes) => el.declare_nodes(nodes),
            CardKind::Param(name, value) => el.define_param(name, value)?,
            CardKind::Model(m) => el.define_model(m)?,
            CardKind::Subckt(def) => {
                if el.subckts.contains_key(&def.name.text) {
                    return Err(NetlistError::Syntax {
                        span: def.name.span,
                        what: format!("subcircuit `{}` is defined twice", def.name.text),
                    });
                }
                el.subckts.insert(def.name.text.clone(), def.clone());
            }
            CardKind::Element(e) => {
                let env = el.params.clone();
                el.add_element(e, &env, &top_rename)?;
            }
            CardKind::Instance(x) => el.add_instance(x)?,
            CardKind::Sigma(s) => sigma_cards.push(s),
            CardKind::Sweep(s) => sweep_cards.push(s),
            CardKind::Measure(m) => measure_cards.push(m),
            CardKind::Option(kv) => option_cards.push(kv),
            CardKind::Tran(..) | CardKind::Pss(_) => {
                if analysis_card.is_some() {
                    return Err(NetlistError::Syntax {
                        span: card.span,
                        what: "deck has more than one analysis card".to_string(),
                    });
                }
                analysis_card = Some(card);
            }
            CardKind::End => {}
        }
    }

    // Dangling-node lint: every non-ground node needs >= 2 terminal
    // connections (a `.node`-declared-but-unused node has 0).
    for (name, span, count) in &el.node_refs {
        if *count < 2 {
            return Err(NetlistError::DanglingNode {
                span: *span,
                node: name.clone(),
            });
        }
    }

    // Pass 2: campaign cards against the complete circuit.
    for s in &sigma_cards {
        el.apply_sigma(s)?;
    }
    let mut axes = Vec::with_capacity(sweep_cards.len());
    for s in &sweep_cards {
        axes.push(el.sweep_axis(s)?);
    }
    let scenarios = cross_product(&axes);
    let mut metrics = Vec::with_capacity(measure_cards.len());
    for m in &measure_cards {
        metrics.push(el.measure(m)?);
    }
    let mut retry = false;
    let mut deadline_ms = None;
    for kv in &option_cards {
        for (key, value) in kv.iter() {
            match key.text.as_str() {
                "retry" => retry = env_eval_finite(&el.params, value, "retry")? != 0.0,
                "deadline_ms" => {
                    let v = env_eval_finite(&el.params, value, "deadline_ms")?;
                    if v < 0.0 || v.fract() != 0.0 {
                        return Err(NetlistError::InvalidValue {
                            span: value.span,
                            what: "deadline_ms".to_string(),
                            reason: "must be a non-negative integer".to_string(),
                        });
                    }
                    deadline_ms = Some(v as u64);
                }
                _ => {
                    return Err(NetlistError::Syntax {
                        span: key.span,
                        what: format!("unknown `.option` key `{}`", key.text),
                    })
                }
            }
        }
    }
    let analysis = match analysis_card {
        None => None,
        Some(card) => Some(match &card.kind {
            CardKind::Tran(tstep, tstop) => {
                let dt = el.eval_positive(tstep, "tran step")?;
                let stop = el.eval_positive(tstop, "tran stop time")?;
                Analysis::Tran {
                    tstep: dt,
                    tstop: stop,
                }
            }
            CardKind::Pss(p) => el.analysis_pss(card.span, p)?,
            _ => unreachable!("analysis_card holds only Tran/Pss"),
        }),
    };

    Ok(Elaboration {
        title: deck.title.clone(),
        circuit: el.circuit,
        analysis,
        metrics,
        scenarios,
        retry,
        deadline_ms,
    })
}

/// Cross product of sweep axes, later axes varying fastest. With no axes,
/// a single `"nominal"` scenario with no overrides.
fn cross_product(axes: &[SweepAxis]) -> Vec<Scenario> {
    if axes.is_empty() {
        return vec![Scenario::new("nominal", vec![])];
    }
    let mut scenarios = vec![Scenario::new(String::new(), vec![])];
    for axis in axes {
        let mut next = Vec::with_capacity(scenarios.len() * axis.points.len());
        for sc in &scenarios {
            for (label, ov) in &axis.points {
                let name = if sc.name.is_empty() {
                    label.clone()
                } else {
                    format!("{} {label}", sc.name)
                };
                let mut overrides = sc.overrides.clone();
                overrides.push(ov.clone());
                next.push(Scenario::new(name, overrides));
            }
        }
        scenarios = next;
    }
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn elab(src: &str) -> Result<Elaboration, NetlistError> {
        elaborate(&parse(src)?)
    }

    #[test]
    fn divider_matches_handbuilt() {
        let e = elab(
            "divider\n\
             V1 a 0 2.0\n\
             R1 a b 1e3\n\
             R2 b 0 1e3\n\
             C1 b 0 1e-12\n\
             .sigma r R1 sigma=10\n\
             .pss 1e-6 steps=16\n\
             .measure vout avg b\n",
        )
        .unwrap();
        let mut want = Circuit::new();
        let a = want.node("a");
        let b = want.node("b");
        want.add_vsource("V1", a, NodeId::GROUND, Waveform::Dc(2.0));
        let r1 = want.add_resistor("R1", a, b, 1e3);
        want.add_resistor("R2", b, NodeId::GROUND, 1e3);
        want.add_capacitor("C1", b, NodeId::GROUND, 1e-12);
        want.annotate_resistor_mismatch(r1, 10.0);
        assert_eq!(format!("{:?}", e.circuit), format!("{want:?}"));
        assert_eq!(e.metrics.len(), 1);
        assert_eq!(e.scenarios, vec![Scenario::new("nominal", vec![])]);
        assert!(matches!(
            e.analysis,
            Some(Analysis::PssDriven {
                n_steps: Some(16),
                ..
            })
        ));
    }

    #[test]
    fn params_subckts_and_instances_flatten() {
        let e = elab(
            "flat\n\
             .param u=1.0e-6\n\
             .model nch nmos\n\
             .model pch pmos\n\
             .subckt inv vdd in out strength=1.0\n\
             MP out in vdd pch w='2.0*u*strength' l=0.13e-6\n\
             MN out in 0 nch w='u*strength' l=0.13e-6\n\
             .ends\n\
             V1 vdd 0 1.2\n\
             V2 a 0 0.6\n\
             Xi0 vdd a b inv strength=0.75\n\
             C1 b 0 1e-15\n",
        )
        .unwrap();
        // Flattened names follow the builders' `{label}.{name}` scheme.
        assert!(e.circuit.find_device("i0.MP").is_ok());
        assert!(e.circuit.find_device("i0.MN").is_ok());
        assert!(e.circuit.find_node("i0.out").is_err(), "out is a port");
        let id = e.circuit.find_device("i0.MP").unwrap();
        match &e.circuit.devices()[id.index()] {
            tranvar_circuit::Device::Mosfet(m) => {
                assert_eq!(m.w.to_bits(), (2.0 * 1.0e-6 * 0.75f64).to_bits());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sweeps_cross_product_later_fastest() {
        let e = elab(
            "sweeps\n\
             V1 a 0 2.0\n\
             R1 a 0 1e3\n\
             .sweep source V1 1.8 2.2\n\
             .sweep sigma 1.0 2.0\n",
        )
        .unwrap();
        let names: Vec<&str> = e.scenarios.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "V1=1.8 sigma=1.0",
                "V1=1.8 sigma=2.0",
                "V1=2.2 sigma=1.0",
                "V1=2.2 sigma=2.0",
            ]
        );
        assert_eq!(e.scenarios[0].overrides.len(), 2);
    }

    #[test]
    fn elaboration_errors_are_typed() {
        // dangling node: `c` has a single connection
        assert!(matches!(
            elab("t\nV1 a 0 1.0\nR1 a c 1e3\n"),
            Err(NetlistError::DanglingNode { .. })
        ));
        // undefined param
        assert!(matches!(
            elab("t\nV1 a 0 1.0\nR1 a 0 'r0'\n"),
            Err(NetlistError::UndefinedParam { .. })
        ));
        // duplicate model
        assert!(matches!(
            elab("t\n.model m nmos\n.model m pmos\nV1 a 0 1.0\nR1 a 0 1e3\n"),
            Err(NetlistError::DuplicateModel { .. })
        ));
        // unknown model
        assert!(matches!(
            elab("t\nV1 a 0 1.0\nM1 a a 0 nope w=1e-6 l=1e-7\n"),
            Err(NetlistError::UnknownModel { .. })
        ));
        // duplicate device
        assert!(matches!(
            elab("t\nV1 a 0 1.0\nR1 a 0 1e3\nR1 a 0 2e3\n"),
            Err(NetlistError::DuplicateDevice { .. })
        ));
        // non-positive value caught before the builder assert
        assert!(matches!(
            elab("t\nV1 a 0 1.0\nR1 a 0 '0.0-5.0'\n"),
            Err(NetlistError::InvalidValue { .. })
        ));
        // unknown subckt / port mismatch
        assert!(matches!(
            elab("t\nV1 a 0 1.0\nX1 a nope\nR1 a 0 1e3\n"),
            Err(NetlistError::UnknownSubckt { .. })
        ));
        // sigma with no matching device
        assert!(matches!(
            elab("t\nV1 a 0 1.0\nR1 a 0 1e3\n.sigma r Q* sigma=1\n"),
            Err(NetlistError::UnknownLabel { .. })
        ));
    }

    #[test]
    fn glob_matching() {
        assert!(glob_match("*", "anything"));
        assert!(glob_match("M*", "M2"));
        assert!(glob_match("*.MP", "inv0.MP"));
        assert!(!glob_match("M*", "R1"));
        assert!(glob_match("R1", "R1"));
        assert!(!glob_match("R1", "R12"));
    }
}
